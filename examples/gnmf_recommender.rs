//! A small recommender built on GNMF (Appendix A) — the paper's
//! motivating application class (collaborative filtering on rating
//! matrices, §1).
//!
//! Factorizes a MovieLens-shaped synthetic rating matrix `V ≈ W × H` with
//! the distributed engine, shows the reconstruction error dropping per
//! iteration, and uses the factors to "recommend": for a user, rank the
//! unrated items by the predicted rating `(W H)[user, item]`.
//!
//! Run with: `cargo run --release --example gnmf_recommender`

use distme::prelude::*;

fn main() {
    // A MovieLens-like demo dataset. Scaling MovieLens down preserves its
    // *density* but leaves too few ratings per user for a visible demo, so
    // this uses a denser miniature with the same shape family.
    let dataset = RatingDataset {
        name: "MovieLens-mini",
        users: 640,
        items: 192,
        ratings: 12_288, // 10% dense
    };
    println!(
        "dataset: {} — {} users x {} items, {} ratings ({:.2}% dense)",
        dataset.name,
        dataset.users,
        dataset.items,
        dataset.ratings,
        dataset.density() * 100.0
    );
    let v = dataset.materialize(64, 2024).expect("materialize V");

    let mut session = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let config = GnmfConfig {
        factor_dim: 24,
        iterations: 8,
    };
    let result = gnmf::run_real(&mut session, &v, &config, 99).expect("GNMF converges");

    println!("\nGNMF objective ‖V − WH‖F per iteration:");
    for (i, obj) in result.objective.iter().enumerate() {
        println!("  iteration {:>2}: {obj:.3}", i + 1);
    }
    let first = result.objective.first().expect("ran iterations");
    let last = result.objective.last().expect("ran iterations");
    println!("  improvement: {:.1}%", (1.0 - last / first) * 100.0);

    // Recommend for user 0: predicted ratings = row 0 of W times H.
    let user = 0u64;
    let wh = result.w.multiply(&result.h).expect("W x H");
    let mut scored: Vec<(u64, f64, bool)> = (0..dataset.items)
        .map(|item| {
            let rated = v.get_element(user, item) != 0.0;
            (item, wh.get_element(user, item), rated)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));

    println!("\ntop-5 unrated items for user {user} (predicted rating):");
    for (item, score, _) in scored.iter().filter(|(_, _, rated)| !rated).take(5) {
        println!("  item {item:>4}: {score:.2}");
    }

    println!(
        "\nengine ran {} distributed multiplies; total shuffled: {:.1} MB",
        config.iterations * 6,
        session.stats().total_shuffle_bytes() as f64 / 1e6
    );
    println!("Paper-scale GNMF comparison: `cargo run -p distme-bench --release --bin fig8`");
}
