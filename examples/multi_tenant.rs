//! Multi-tenant jobs: several callers sharing one cluster.
//!
//! Submits a mix of jobs from three tenants — bulk multiplies at low
//! priority, an interactive chained expression at high priority, and a
//! short GNMF factorization — through the [`JobService`]. All of them
//! interleave on the same worker pool under the scheduler's
//! priority/fair-share policy, admission control bounds how much declared
//! memory is resident at once, and the ledger attributes every byte to
//! the tenant that caused it.
//!
//! Run with: `cargo run --release --example multi_tenant`

use distme::prelude::*;
use distme_matrix::codec;
use std::sync::Arc;

fn main() {
    let svc = JobService::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let cfg = svc.config();
    println!(
        "cluster: {} nodes x {} tasks; admission budget {} MB, {} priority levels\n",
        cfg.nodes,
        cfg.tasks_per_node,
        cfg.scheduler.admission_budget_bytes / 1_000_000,
        cfg.scheduler.priority_levels
    );

    let a = Arc::new(gen(320, 256, 1));
    let b = Arc::new(gen(256, 192, 2));
    let v = Arc::new(
        MatrixGenerator::with_seed(3)
            .value_range(1.0, 5.0)
            .generate(&MatrixMeta::sparse(192, 128, 0.2).with_block_size(32))
            .unwrap(),
    );
    let demand: u64 = a
        .blocks()
        .chain(b.blocks())
        .map(|(_, blk)| codec::encoded_len(blk))
        .sum();

    // Tenant 1: a batch of bulk multiplies at the lowest priority.
    let bulk: Vec<_> = (0..3)
        .map(|i| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            svc.submit(JobSpec::new(TenantId(1)).demand_bytes(demand), move |s| {
                let c = s.matmul(&a, &b)?;
                Ok((i, c.meta().rows, c.meta().cols))
            })
        })
        .collect();

    // Tenant 2: an interactive chained expression at top priority — it
    // wins freed task slots ahead of the bulk work.
    let interactive = {
        let a = Arc::clone(&a);
        svc.submit(
            JobSpec::new(TenantId(2)).priority(3).demand_bytes(demand),
            move |s| {
                let at = s.transpose(&a)?;
                let gram = s.matmul(&at, &a)?;
                s.elementwise(&gram, EwOp::Mul, &gram)
            },
        )
    };

    // Tenant 3: a short GNMF factorization.
    let factorize = {
        let v = Arc::clone(&v);
        svc.submit(JobSpec::new(TenantId(3)).priority(1), move |s| {
            let cfg = GnmfConfig {
                factor_dim: 32,
                iterations: 3,
            };
            gnmf::run_real(s, &v, &cfg, 99)
        })
    };

    let out = interactive.wait().expect("interactive job");
    println!(
        "tenant-2 interactive: {}x{} result, {} ops",
        out.value.meta().rows,
        out.value.meta().cols,
        out.ops_run
    );
    for h in bulk {
        let out = h.wait().expect("bulk job");
        let (i, rows, cols) = out.value;
        println!(
            "tenant-1 bulk #{i}: {rows}x{cols} result, waited {:.1} ms in queue",
            out.queue_wait_secs * 1e3
        );
    }
    let out = factorize.wait().expect("gnmf job");
    println!(
        "tenant-3 GNMF: objective {:.3} -> {:.3} over {} ops\n",
        out.value.objective.first().unwrap(),
        out.value.objective.last().unwrap(),
        out.ops_run
    );

    println!("per-tenant communication (ledger attribution):");
    let total = svc.ledger_snapshot();
    let mut summed = 0u64;
    for t in svc.tenants() {
        let snap = svc.tenant_comm(t);
        let bytes: u64 = Phase::ALL
            .iter()
            .map(|&p| snap.shuffle_bytes(p) + snap.broadcast_bytes(p))
            .sum();
        summed += bytes;
        println!("  {t}: {bytes} bytes moved");
    }
    let cluster_total: u64 = Phase::ALL
        .iter()
        .map(|&p| total.shuffle_bytes(p) + total.broadcast_bytes(p))
        .sum();
    println!("  cluster total: {cluster_total} bytes (tenant sum {summed})");
    assert_eq!(summed, cluster_total, "attribution accounts for every byte");

    let waits = svc.queue_wait_stats();
    println!(
        "\nadmissions: {} total, queue wait p50 {:.1} ms / p95 {:.1} ms",
        waits.submissions,
        waits.p50_secs * 1e3,
        waits.p95_secs * 1e3
    );
}

fn gen(rows: u64, cols: u64, seed: u64) -> BlockMatrix {
    MatrixGenerator::with_seed(seed)
        .value_range(-1.0, 1.0)
        .generate(&MatrixMeta::dense(rows, cols).with_block_size(32))
        .unwrap()
}
