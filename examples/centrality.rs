//! Graph centrality on the engine — §1 lists betweenness centrality among
//! DistME's motivating applications; this example runs its two spectral
//! cousins, PageRank and eigenvector centrality (power iteration), over a
//! synthetic web graph with the distributed engine doing every
//! matrix-vector product.
//!
//! Run with: `cargo run --release --example centrality`

use distme::engine::algorithms;
use distme::prelude::*;

/// Builds a column-stochastic link matrix for a synthetic web: `hubs`
/// popular pages that everyone links to, plus a ring so the chain is
/// irreducible.
fn web_graph(n: usize, hubs: usize, bs: u64) -> BlockMatrix {
    let mut out_links: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (page, links) in out_links.iter_mut().enumerate() {
        // Everyone links to the hubs...
        for hub in 0..hubs {
            if hub != page {
                links.push(hub);
            }
        }
        // ...and to the next page in the ring.
        links.push((page + 1) % n);
    }
    let mut triplets: Vec<(u64, u64, f64)> = Vec::new();
    for (page, targets) in out_links.iter().enumerate() {
        let p = 1.0 / targets.len() as f64;
        for &t in targets {
            triplets.push((t as u64, page as u64, p)); // column-stochastic
        }
    }

    let meta = MatrixMeta::sparse(n as u64, n as u64, 0.05).with_block_size(bs);
    let mut links = BlockMatrix::new(meta);
    type BlockTriplets = std::collections::BTreeMap<(u32, u32), Vec<(usize, usize, f64)>>;
    let mut per_block: BlockTriplets = Default::default();
    for (i, j, v) in triplets {
        per_block
            .entry(((i / bs) as u32, (j / bs) as u32))
            .or_default()
            .push(((i % bs) as usize, (j % bs) as usize, v));
    }
    for ((bi, bj), trips) in per_block {
        let (r, c) = meta.block_dims(bi, bj);
        links
            .put(
                bi,
                bj,
                Block::Sparse(
                    CsrBlock::from_triplets(r as usize, c as usize, trips).expect("valid"),
                ),
            )
            .expect("in grid");
    }
    links
}

fn main() {
    let (n, hubs, bs) = (256usize, 4usize, 32u64);
    let links = web_graph(n, hubs, bs);
    println!(
        "web graph: {n} pages, {hubs} hubs, {} links ({} blocks)\n",
        links.nnz(),
        links.num_materialized()
    );

    let mut session = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);

    // --- PageRank ---------------------------------------------------------
    let ranks = algorithms::pagerank(&mut session, &links, 0.85, 30).expect("pagerank converges");
    let mut scored: Vec<(usize, f64)> = (0..n)
        .map(|p| (p, ranks.get_element(p as u64, 0)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("PageRank (damping 0.85, 30 iterations) — top pages:");
    for (page, score) in scored.iter().take(6) {
        let tag = if *page < hubs { "  <- hub" } else { "" };
        println!("  page {page:>4}: {score:.5}{tag}");
    }
    let mass: f64 = ranks.total_sum();
    println!("  total rank mass: {mass:.6} (must be 1)\n");
    assert!((mass - 1.0).abs() < 1e-9);
    assert!(
        scored[..hubs].iter().all(|(p, _)| *p < hubs),
        "hubs must lead"
    );

    // --- Eigenvector centrality --------------------------------------------
    let pair = algorithms::power_iteration(&mut session, &links, 80, 11).expect("power iteration");
    println!(
        "dominant eigenvalue of the link matrix: {:.6} (stochastic ⇒ 1), residual {:.2e}",
        pair.value, pair.residual
    );
    assert!((pair.value - 1.0).abs() < 1e-6);

    println!(
        "\nengine ran {:.1} MB of shuffles over {} distributed multiplies",
        session.stats().total_shuffle_bytes() as f64 / 1e6,
        30 + 81
    );
}
