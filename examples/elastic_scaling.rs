//! Elasticity at paper scale: what "elastic" in the paper's title means.
//!
//! Sweeps the `N × 1K × N` workload of Fig. 6(c) on the simulated 9-node
//! cluster and watches each fixed-strategy method hit its wall — BMM and
//! CPMM run out of memory, RMM times out — while CuboidMM *re-shapes its
//! cuboids* (the printed (P, Q, R)) to stay inside θt at every size.
//!
//! Run with: `cargo run --release --example elastic_scaling`

use distme::core::optimizer::{self, OptimizerConfig};
use distme::prelude::*;

fn main() {
    println!("simulated cluster: 9 nodes x 10 tasks, θt = 6 GB, 10 GbE, GTX 1080 Ti per node");
    println!("workload: C = A x B with A: N x 1K, B: 1K x N (Fig. 6(c))\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "N", "BMM", "CPMM", "RMM", "CuboidMM", "(P*,Q*,R*)"
    );

    for n in [100_000u64, 250_000, 500_000, 750_000, 1_000_000] {
        let problem = MatmulProblem::dense(n, 1_000, n);
        let mut row = Vec::new();
        for method in [
            MulMethod::Bmm,
            MulMethod::Cpmm,
            MulMethod::Rmm,
            MulMethod::CuboidAuto,
        ] {
            let mut sim = SimCluster::new(ClusterConfig::paper_cluster_gpu());
            row.push(match sim_exec::simulate(&mut sim, &problem, method) {
                Ok(stats) => format!("{:.0}s", stats.elapsed_secs),
                Err(e) => e.annotation().to_string(),
            });
        }
        let spec = optimizer::optimize(
            &problem,
            &OptimizerConfig::from_cluster(&ClusterConfig::paper_cluster_gpu()),
        )
        .map(|o| o.spec.to_string())
        .unwrap_or_else(|| "-".into());
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>14}",
            format!("{}K", n / 1000),
            row[0],
            row[1],
            row[2],
            row[3],
            spec
        );
    }

    println!("\nBMM dies when a task's output row no longer fits θt; CPMM when |A|+|B|");
    println!("exceeds a task; RMM drowns the scheduler in tasks. CuboidMM grows P and Q");
    println!("with N so every cuboid stays under θt — elasticity by re-partitioning,");
    println!("not by failing.");
}
