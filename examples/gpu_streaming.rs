//! Algorithm 1 up close: subcuboid partitioning and GPU streaming (§4).
//!
//! Part 1 runs Algorithm 1 *for real*: a cuboid too big for the (virtual)
//! device memory θg is split into subcuboids, iterated with a
//! device-resident C accumulator, and the result is verified against the
//! plain product — while θg shrinks and the iteration count grows.
//!
//! Part 2 replays the schedule on the simulated GTX 1080 Ti and compares
//! the paper's streamed schedule (§4.3) against the naive
//! copy-everything-then-compute method — the ablation behind the claim
//! that streaming "could hide some memory access latency".
//!
//! Run with: `cargo run --release --example gpu_streaming`

use distme::core::cuboid::{CuboidGrid, CuboidSpec};
use distme::core::{gpu_local, subcuboid::CuboidSides, MatmulProblem};
use distme::gpu::{work, GpuConfig, GpuDevice, GpuWork};
use distme::prelude::*;
use distme::sim::SimTime;

fn main() {
    // ---- Part 1: real execution under shrinking θg -----------------------
    let bs = 32u64;
    let am = MatrixMeta::dense(8 * bs, 12 * bs).with_block_size(bs);
    let bm = MatrixMeta::dense(12 * bs, 6 * bs).with_block_size(bs);
    let a = MatrixGenerator::with_seed(5).generate(&am).expect("gen A");
    let b = MatrixGenerator::with_seed(6).generate(&bm).expect("gen B");
    let problem = MatmulProblem::new(am, bm).expect("shapes agree");
    let grid = CuboidGrid::new(&problem, CuboidSpec::new(1, 1, 1));
    let cuboid = grid.cuboid(0, 0, 0);
    let reference = a.multiply(&b).expect("reference");

    let block_bytes = 8 * bs * bs;
    println!(
        "cuboid: {:?} blocks of {} KiB",
        cuboid.extents(),
        block_bytes >> 10
    );
    println!(
        "{:>14} {:>14} {:>12} {:>12} {:>10}",
        "θg (blocks)", "(P2,Q2,R2)", "iterations", "kernels", "max |err|"
    );
    for blocks_budget in [200u64, 48, 24, 12, 6] {
        let theta_g = blocks_budget * block_bytes;
        let result = gpu_local::execute_cuboid_real(&cuboid, &a, &b, &problem, theta_g)
            .expect("feasible budget");
        let mut c = BlockMatrix::new(problem.c);
        for (id, blk) in result.blocks {
            c.put(id.row, id.col, Block::Dense(blk)).expect("in grid");
        }
        let err = c.max_abs_diff(&reference).expect("same shape");
        println!(
            "{:>14} {:>14} {:>12} {:>12} {:>10.1e}",
            blocks_budget,
            result.spec.to_string(),
            result.iterations,
            result.kernel_calls,
            err
        );
        assert!(err < 1e-9);
    }
    println!("same product at every θg — the schedule only changes *when* data moves.\n");

    // ---- Part 2: streamed vs naive on the simulated device ---------------
    let sides = CuboidSides::of(
        &cuboid,
        problem.a_block_bytes(),
        problem.b_block_bytes(),
        problem.c_block_bytes(),
    );
    let theta_g = 24 * block_bytes;
    let flops = cuboid.voxels() as f64 * problem.flops_per_voxel();
    let (spec, gpu_work) = gpu_local::plan_work(&sides, theta_g, flops, false).expect("feasible");
    // Scale the device down so this toy cuboid is actually interesting.
    let mut cfg = GpuConfig::tiny(theta_g);
    cfg.h2d_bytes_per_sec = 50.0e6;
    cfg.d2h_bytes_per_sec = 50.0e6;
    cfg.kernel_flops_per_sec = 1.0e9;
    println!(
        "simulated device: subcuboid {spec}, {} kernel calls over {} streams",
        gpu_work.kernel_calls, gpu_work.streams
    );
    let run = |schedule: fn(&mut GpuDevice, SimTime, &GpuWork) -> work::GpuTaskReport| {
        let mut dev = GpuDevice::new(cfg);
        let report = schedule(&mut dev, SimTime::ZERO, &gpu_work);
        (report.elapsed_secs(), dev.kernel_busy_secs())
    };
    let (naive_secs, busy) = run(work::execute_naive);
    let (streamed_secs, _) = run(work::execute_streamed);
    println!("naive    (§4.3 strawman): {naive_secs:.3}s  (kernel busy {busy:.3}s)");
    println!("streamed (Algorithm 1)  : {streamed_secs:.3}s");
    println!(
        "streaming hides {:.0}% of the PCI-E time behind kernels",
        (1.0 - streamed_secs / naive_secs) * 100.0
    );
    assert!(streamed_secs < naive_secs);
}
