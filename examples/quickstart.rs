//! Quickstart: distributed matrix multiplication with CuboidMM.
//!
//! Builds two block matrices, multiplies them with each of the paper's
//! methods over a thread-backed virtual cluster, verifies every result
//! against the single-node reference, and prints the measured
//! communication per method — a miniature of Fig. 6 running for real on
//! your machine.
//!
//! Run with: `cargo run --release --example quickstart`

use distme::prelude::*;

fn main() {
    // 768 x 768 matrices of 128 x 128 blocks: a 6 x 6 x 6 voxel model.
    let meta = MatrixMeta::dense(768, 768).with_block_size(128);
    let a = MatrixGenerator::with_seed(7)
        .generate(&meta)
        .expect("generate A");
    let b = MatrixGenerator::with_seed(8)
        .generate(&meta)
        .expect("generate B");
    let reference = a.multiply(&b).expect("reference product");

    let cluster = LocalCluster::new(ClusterConfig::laptop());
    println!(
        "virtual cluster: {} nodes x {} slots, θt = {} MB/task\n",
        cluster.config().nodes,
        cluster.config().tasks_per_node,
        cluster.config().task_mem_bytes >> 20
    );
    println!(
        "{:<10} {:>12} {:>16} {:>16} {:>12}",
        "method", "tasks", "shuffled (MB)", "broadcast (MB)", "max |err|"
    );

    for method in [
        MulMethod::Bmm,
        MulMethod::Cpmm,
        MulMethod::Rmm,
        MulMethod::Crmm,
        MulMethod::CuboidAuto,
    ] {
        let (c, stats) = real_exec::multiply(&cluster, &a, &b, method).expect("multiply succeeds");
        let err = c.max_abs_diff(&reference).expect("same shape");
        println!(
            "{:<10} {:>12} {:>16.2} {:>16.2} {:>12.2e}",
            method.name(),
            stats.phase(Phase::LocalMult).tasks,
            stats.total_shuffle_bytes() as f64 / 1e6,
            stats.total_broadcast_bytes() as f64 / 1e6,
            err
        );
        assert!(err < 1e-9, "distributed result must match the reference");
    }

    println!("\nAll methods computed the same product; CuboidMM moved the least data\n(shuffle + broadcast).");
    println!(
        "Paper-scale versions of this comparison: `cargo run -p distme-bench --release --bin fig6`"
    );
}
