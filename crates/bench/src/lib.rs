//! # distme-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§6 + appendix),
//! each printing the paper's reported values next to the values this
//! reproduction measures on the simulated cluster:
//!
//! | target | regenerates |
//! |---|---|
//! | `table4` | Table 4 — optimal (P\*, Q\*, R\*) per input shape |
//! | `fig6`   | Fig. 6(a–f) — BMM/CPMM/RMM/CuboidMM elapsed + communication |
//! | `fig7`   | Fig. 7(a–g) — systems comparison, step ratios, comm, GPU util |
//! | `fig8`   | Fig. 8(a–d) — GNMF on MovieLens/Netflix/YahooMusic |
//! | `fig9`   | Fig. 9(a–b) — (P, Q, R) sweep around the optimum |
//! | `table5` | Table 5 — ScaLAPACK/SciDB/DistME(C) |
//!
//! Run with `cargo run -p distme-bench --release --bin <target>`.
//! Criterion micro-benchmarks for the real-execution hot paths live under
//! `benches/`.
//!
//! Absolute paper numbers come from a Spark cluster whose shuffle
//! compression, serialization, and scheduler we can only calibrate, so the
//! contract (per EXPERIMENTS.md) is *shape*: orderings, crossovers, and
//! failure annotations must match; absolute times should land within a
//! small factor.

use distme_cluster::{JobError, JobStats};

/// A measured cell: seconds/bytes, or the failure annotation.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Measured value.
    Value(f64),
    /// Job failed with the paper-style annotation ("O.O.M.", "T.O.", ...).
    Failed(&'static str),
    /// Not applicable / not reported.
    Blank,
}

impl Cell {
    /// From a simulation result, extracting elapsed seconds.
    pub fn elapsed(r: &Result<JobStats, JobError>) -> Cell {
        match r {
            Ok(s) => Cell::Value(s.elapsed_secs),
            Err(e) => Cell::Failed(e.annotation()),
        }
    }

    /// From a simulation result, extracting communication megabytes.
    pub fn comm_mb(r: &Result<JobStats, JobError>) -> Cell {
        match r {
            Ok(s) => Cell::Value(s.communication_bytes() as f64 / 1e6),
            Err(e) => Cell::Failed(e.annotation()),
        }
    }

    /// Renders with the given precision.
    pub fn render(&self, precision: usize) -> String {
        match self {
            Cell::Value(v) => format!("{v:.precision$}"),
            Cell::Failed(a) => (*a).to_string(),
            Cell::Blank => "-".to_string(),
        }
    }
}

/// A paper-reported reference cell.
#[derive(Debug, Clone, Copy)]
pub enum Paper {
    /// Value as printed in the paper.
    Reported(f64),
    /// The paper annotates a failure here.
    Fails(&'static str),
    /// Not reported / unreadable from the figure.
    Unreported,
}

impl Paper {
    /// Renders for table output.
    pub fn render(&self, precision: usize) -> String {
        match self {
            Paper::Reported(v) => format!("{v:.precision$}"),
            Paper::Fails(a) => (*a).to_string(),
            Paper::Unreported => "?".to_string(),
        }
    }

    /// True when both sides agree on success-vs-failure, and (for
    /// failures) on the annotation.
    pub fn outcome_matches(&self, cell: &Cell) -> bool {
        match (self, cell) {
            (Paper::Reported(_), Cell::Value(_)) => true,
            (Paper::Fails(a), Cell::Failed(b)) => a == b,
            (Paper::Unreported, _) => true,
            _ => false,
        }
    }
}

/// Prints one comparison table: rows of `label, [paper, ours] per column`.
pub fn print_comparison(
    title: &str,
    column_names: &[&str],
    rows: &[(String, Vec<(Paper, Cell)>)],
    precision: usize,
) {
    println!("\n== {title} ==");
    print!("{:<16}", "");
    for c in column_names {
        print!("{:>24}", format!("{c} (paper/ours)"));
    }
    println!();
    let mut mismatches = 0;
    for (label, cells) in rows {
        print!("{label:<16}");
        for (paper, ours) in cells {
            print!(
                "{:>24}",
                format!("{} / {}", paper.render(precision), ours.render(precision))
            );
            if !paper.outcome_matches(ours) {
                mismatches += 1;
            }
        }
        println!();
    }
    if mismatches > 0 {
        println!("!! {mismatches} outcome mismatches (success-vs-failure) against the paper");
    } else {
        println!("ok: all success/failure outcomes match the paper");
    }
}

/// Geometric-mean ratio of ours/paper over comparable (both-succeeded)
/// cells — the harness's headline "calibration factor" per figure.
pub fn geometric_calibration(rows: &[(String, Vec<(Paper, Cell)>)]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for (_, cells) in rows {
        for (paper, ours) in cells {
            if let (Paper::Reported(p), Cell::Value(o)) = (paper, ours) {
                if *p > 0.0 && *o > 0.0 {
                    log_sum += (o / p).ln();
                    n += 1;
                }
            }
        }
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::Value(12.345).render(1), "12.3");
        assert_eq!(Cell::Failed("O.O.M.").render(0), "O.O.M.");
        assert_eq!(Cell::Blank.render(0), "-");
    }

    #[test]
    fn outcome_matching() {
        assert!(Paper::Reported(5.0).outcome_matches(&Cell::Value(6.0)));
        assert!(Paper::Fails("O.O.M.").outcome_matches(&Cell::Failed("O.O.M.")));
        assert!(!Paper::Fails("O.O.M.").outcome_matches(&Cell::Value(1.0)));
        assert!(!Paper::Reported(5.0).outcome_matches(&Cell::Failed("T.O.")));
        assert!(Paper::Unreported.outcome_matches(&Cell::Failed("T.O.")));
    }

    #[test]
    fn calibration_factor() {
        let rows = vec![(
            "x".to_string(),
            vec![
                (Paper::Reported(100.0), Cell::Value(200.0)),
                (Paper::Reported(100.0), Cell::Value(50.0)),
                (Paper::Fails("O.O.M."), Cell::Failed("O.O.M.")),
            ],
        )];
        let g = geometric_calibration(&rows).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
        assert!(geometric_calibration(&[]).is_none());
    }
}
