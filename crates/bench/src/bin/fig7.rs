//! Figure 7: comparison among MatFast(C/G), SystemML(C/G), and
//! DistME(C/G) (§6.3).
//!
//! Panels (a)–(d) sweep four workload families; (e) reports per-step time
//! ratios; (f) communication; (g) GPU core utilization. Paper values that
//! are legible in the figure or derivable from the prose ratios are shown;
//! the rest print as `?`.
//!
//! Usage: `fig7 [general|common-dim|two-large|sparse|ratios|comm|gpu-util|all]`

use distme_bench::{print_comparison, Cell, Paper};
use distme_cluster::{ClusterConfig, JobError, JobStats, SimCluster};
use distme_core::MatmulProblem;
use distme_engine::SystemProfile;
use distme_matrix::MatrixMeta;

/// The systems of Fig. 7, in the paper's legend order.
const SYSTEMS: [(&str, SystemProfile, bool); 6] = [
    ("MatFast(C)", SystemProfile::MatFast, false),
    ("MatFast(G)", SystemProfile::MatFast, true),
    ("SystemML(C)", SystemProfile::SystemMl, false),
    ("SystemML(G)", SystemProfile::SystemMl, true),
    ("DistME(C)", SystemProfile::DistMe, false),
    ("DistME(G)", SystemProfile::DistMe, true),
];

fn cluster(gpu: bool) -> ClusterConfig {
    let base = if gpu {
        ClusterConfig::paper_cluster_gpu()
    } else {
        ClusterConfig::paper_cluster()
    };
    // Fig. 7 has runs far beyond 4 000 s (Fig. 7(c) is measured in
    // minutes), so the matmul T.O. budget does not apply.
    base.with_timeout(f64::MAX)
}

fn run(problem: &MatmulProblem, profile: SystemProfile, gpu: bool) -> Result<JobStats, JobError> {
    let cfg = cluster(gpu);
    let mut sim = SimCluster::new(cfg);
    let resolved = profile.resolve(problem, &cfg);
    distme_core::sim_exec::simulate_resolved(&mut sim, problem, &resolved)
}

fn sweep(title: &str, labels: &[&str], problems: &[MatmulProblem], paper: &[[Paper; 6]]) {
    let mut rows = Vec::new();
    for (idx, p) in problems.iter().enumerate() {
        let cells: Vec<(Paper, Cell)> = SYSTEMS
            .iter()
            .enumerate()
            .map(|(s, &(_, profile, gpu))| (paper[idx][s], Cell::elapsed(&run(p, profile, gpu))))
            .collect();
        rows.push((labels[idx].to_string(), cells));
    }
    let names: Vec<&str> = SYSTEMS.iter().map(|s| s.0).collect();
    print_comparison(title, &names, &rows, 0);
}

fn half_dense(i: u64, k: u64, j: u64) -> MatmulProblem {
    MatmulProblem::new(MatrixMeta::sparse(i, k, 0.5), MatrixMeta::sparse(k, j, 0.5))
        .expect("consistent")
}

fn general() {
    use Paper::*;
    // Paper values: DistME(C) read from Fig. 7(a) (71/156/326); the rest
    // derived from §6.3's ratios (3.1x, 1.62x, 2.54x, and the G-variant
    // speedups 3.8x/2.39x/5.59x).
    let labels = ["30K", "40K", "50K"];
    let problems: Vec<_> = [30_000u64, 40_000, 50_000]
        .iter()
        .map(|&n| half_dense(n, n, n))
        .collect();
    let paper = [
        [
            Reported(220.0),
            Reported(58.0),
            Reported(115.0),
            Reported(48.0),
            Reported(71.0),
            Reported(13.0),
        ],
        [
            Fails("O.O.M."),
            Fails("O.O.M."),
            Reported(396.0),
            Reported(166.0),
            Reported(156.0),
            Reported(28.0),
        ],
        [
            Fails("O.O.M."),
            Fails("O.O.M."),
            Unreported,
            Unreported,
            Reported(326.0),
            Reported(58.0),
        ],
    ];
    sweep(
        "Fig. 7(a): two general matrices (N x N x N) — elapsed (s)",
        &labels,
        &problems,
        &paper,
    );
    println!("paper claims: DistME(C) 3.1x/1.62x faster than MatFast(C)/SystemML(C) at 30K;\nMatFast O.O.M. from 40K; GPU speedups 3.8x/2.39x/5.59x");
}

fn common_dim() {
    use Paper::*;
    let labels = ["5M", "10M", "20M"];
    let problems: Vec<_> = [5_000_000u64, 10_000_000, 20_000_000]
        .iter()
        .map(|&n| half_dense(5_000, n, 5_000))
        .collect();
    let paper = [
        [
            Reported(3_182.0),
            Reported(1_525.0),
            Reported(2_048.0),
            Reported(1_207.0),
            Reported(1_627.0),
            Reported(488.0),
        ],
        [
            Reported(6_428.0),
            Reported(2_430.0),
            Reported(4_207.0),
            Reported(3_182.0),
            Reported(3_639.0),
            Reported(1_116.0),
        ],
        [
            Fails("E.D.C."),
            Fails("E.D.C."),
            Fails("E.D.C."),
            Fails("E.D.C."),
            Reported(7_240.0),
            Reported(2_121.0),
        ],
    ];
    sweep(
        "Fig. 7(b): common large dimension (5K x N x 5K) — elapsed (s)",
        &labels,
        &problems,
        &paper,
    );
    println!("paper claims: E.D.C. (>36 TB intermediate) at 20M for SystemML/MatFast;\nDistME incurs only ~1.5 TB of intermediate data");
    // Report DistME's intermediate volume at 20M for the 1.5 TB claim.
    let p = &problems[2];
    if let Ok(stats) = run(p, SystemProfile::DistMe, false) {
        println!(
            "DistME intermediate data at 20M: {:.2} TB (paper: ~1.5 TB)",
            stats.intermediate_bytes as f64 / 1e12
        );
    }
}

fn two_large() {
    use Paper::*;
    // Fig. 7(c) is measured in MINUTES in the paper; we print seconds and
    // show the paper's values converted (x60).
    let labels = ["1M", "1.5M", "2M"];
    let problems: Vec<_> = [1_000_000u64, 1_500_000, 2_000_000]
        .iter()
        .map(|&n| half_dense(n, 1_000, 1_000_000))
        .collect();
    let paper = [
        [
            Fails("O.O.M."),
            Fails("O.O.M."),
            Reported(1_158.0 * 60.0),
            Reported(1_122.0 * 60.0),
            Reported(235.0 * 60.0),
            Reported(169.0 * 60.0),
        ],
        [
            Fails("O.O.M."),
            Fails("O.O.M."),
            Fails("E.D.C."),
            Fails("E.D.C."),
            Reported(346.0 * 60.0),
            Reported(269.0 * 60.0),
        ],
        [
            Fails("O.O.M."),
            Fails("O.O.M."),
            Fails("E.D.C."),
            Fails("E.D.C."),
            Reported(439.0 * 60.0),
            Reported(345.0 * 60.0),
        ],
    ];
    sweep(
        "Fig. 7(c): two large dimensions (N x 1K x 1M) — elapsed (s)",
        &labels,
        &problems,
        &paper,
    );
    println!("paper claims: MatFast O.O.M. everywhere (CPMM with |C| huge);\nSystemML uses RMM, E.D.C. at 1.5M/2M; DistME(C)/(G) 4.92x/6.63x faster at 1M");
}

fn sparse() {
    use Paper::*;
    let labels = ["1e-4", "1e-3", "1e-2"];
    let problems: Vec<_> = [0.0001f64, 0.001, 0.01]
        .iter()
        .map(|&sp| {
            MatmulProblem::new(
                MatrixMeta::sparse(500_000, 1_000_000, sp),
                MatrixMeta::dense(1_000_000, 1_000),
            )
            .expect("consistent")
        })
        .collect();
    let paper = [
        [
            Reported(1_201.0),
            Reported(1_080.0),
            Reported(1_265.0),
            Reported(1_076.0),
            Reported(618.0),
            Reported(196.0),
        ],
        [
            Unreported,
            Unreported,
            Unreported,
            Unreported,
            Reported(758.0),
            Reported(251.0),
        ],
        [
            Reported(2_756.0),
            Reported(2_300.0),
            Reported(3_131.0),
            Reported(2_522.0),
            Reported(910.0),
            Reported(341.0),
        ],
    ];
    sweep(
        "Fig. 7(d): one large sparse x one small dense (500K x 1M x 1K) — elapsed (s)",
        &labels,
        &problems,
        &paper,
    );
}

fn ratios() {
    // Fig. 7(e): time ratio of the three steps, 40K^3 workload.
    let p = half_dense(40_000, 40_000, 40_000);
    println!("\n== Fig. 7(e): time ratio of three steps (40K^3) ==");
    println!(
        "{:<14} {:>22} {:>22} {:>22}",
        "system", "repartition %", "local mult %", "aggregation %"
    );
    let paper: [(&str, [f64; 3]); 6] = [
        ("MatFast(C)", [2.6, 77.7, 19.7]),
        ("SystemML(C)", [2.3, 77.9, 19.8]),
        ("DistME(C)", [5.5, 90.8, 3.7]),
        ("MatFast(G)", [4.6, 58.3, 37.1]),
        ("SystemML(G)", [5.6, 48.1, 46.3]),
        ("DistME(G)", [27.2, 54.3, 18.5]),
    ];
    for (idx, &(name, profile, gpu)) in SYSTEMS.iter().enumerate() {
        let _ = idx;
        let result = run(&p, profile, gpu);
        let (pname, pvals) = paper
            .iter()
            .find(|(n, _)| *n == name)
            .expect("paper row exists");
        match result {
            Ok(stats) => {
                let r = stats.time_ratios();
                println!(
                    "{:<14} {:>10.1} / {:<9.1} {:>10.1} / {:<9.1} {:>10.1} / {:<9.1}",
                    pname,
                    pvals[0],
                    r[0] * 100.0,
                    pvals[1],
                    r[1] * 100.0,
                    pvals[2],
                    r[2] * 100.0
                );
            }
            Err(e) => println!("{pname:<14} {}", e.annotation()),
        }
    }
    println!("(format: paper % / ours %)");
}

fn comm() {
    // Fig. 7(f): shuffled data for four workloads, three systems (C).
    println!("\n== Fig. 7(f): communication (logical GB) ==");
    let workloads: Vec<(&str, MatmulProblem)> = vec![
        ("40K^3", half_dense(40_000, 40_000, 40_000)),
        ("5K x 5M x 5K", half_dense(5_000, 5_000_000, 5_000)),
        ("1M x 1K x 1M", half_dense(1_000_000, 1_000, 1_000_000)),
        (
            "500K x 1M x 1K (1e-4)",
            MatmulProblem::new(
                MatrixMeta::sparse(500_000, 1_000_000, 0.0001),
                MatrixMeta::dense(1_000_000, 1_000),
            )
            .expect("consistent"),
        ),
    ];
    println!(
        "{:<24} {:>14} {:>14} {:>14}",
        "workload", "MatFast", "SystemML", "DistME"
    );
    for (label, p) in &workloads {
        let mut cols = Vec::new();
        for profile in [
            SystemProfile::MatFast,
            SystemProfile::SystemMl,
            SystemProfile::DistMe,
        ] {
            cols.push(match run(p, profile, false) {
                Ok(s) => format!("{:.0}", s.communication_bytes() as f64 / 1e9),
                Err(e) => e.annotation().to_string(),
            });
        }
        println!(
            "{:<24} {:>14} {:>14} {:>14}",
            label, cols[0], cols[1], cols[2]
        );
    }
    println!("paper claim: at 1M x 1K x 1M DistME shuffles 3.18x less than SystemML");
}

fn gpu_util() {
    // Fig. 7(g): average GPU core utilization, dense and sparse workloads.
    // The paper does not state the sizes; 30K^3 is the largest dense size
    // every system (including MatFast) completes.
    println!("\n== Fig. 7(g): GPU core utilization (%) ==");
    let dense = half_dense(30_000, 30_000, 30_000);
    let sparse = MatmulProblem::new(
        MatrixMeta::sparse(500_000, 1_000_000, 0.001),
        MatrixMeta::dense(1_000_000, 1_000),
    )
    .expect("consistent");
    let paper = [
        ("MatFast", 72.8, 40.2),
        ("SystemML", 69.2, 39.4),
        ("DistME", 98.4, 79.7),
    ];
    println!(
        "{:<12} {:>24} {:>24}",
        "system", "dense (paper/ours)", "sparse (paper/ours)"
    );
    for (idx, profile) in [
        SystemProfile::MatFast,
        SystemProfile::SystemMl,
        SystemProfile::DistMe,
    ]
    .iter()
    .enumerate()
    {
        let util = |p: &MatmulProblem| -> String {
            match run(p, *profile, true) {
                Ok(s) => s
                    .gpu_utilization
                    .map(|u| format!("{:.1}", u * 100.0))
                    .unwrap_or_else(|| "-".into()),
                Err(e) => e.annotation().to_string(),
            }
        };
        println!(
            "{:<12} {:>24} {:>24}",
            paper[idx].0,
            format!("{:.1} / {}", paper[idx].1, util(&dense)),
            format!("{:.1} / {}", paper[idx].2, util(&sparse)),
        );
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "general" => general(),
        "common-dim" => common_dim(),
        "two-large" => two_large(),
        "sparse" => sparse(),
        "ratios" => ratios(),
        "comm" => comm(),
        "gpu-util" => gpu_util(),
        "all" => {
            general();
            common_dim();
            two_large();
            sparse();
            ratios();
            comm();
            gpu_util();
        }
        other => {
            eprintln!(
                "unknown panel '{other}'; use general|common-dim|two-large|sparse|ratios|comm|gpu-util|all"
            );
            std::process::exit(2);
        }
    }
}
