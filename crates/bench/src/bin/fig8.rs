//! Figure 8: GNMF performance comparison (§6.4).
//!
//! Panels (a)–(c): accumulated execution time over 10 GNMF iterations on
//! MovieLens / Netflix / YahooMusic at factor dimension 200, across seven
//! systems. Panel (d): YahooMusic while varying the factor dimension over
//! {200, 500, 1000} — MatFast O.O.M.s from 500 up.
//!
//! Usage: `fig8 [movielens|netflix|yahoo|factor-dim|all]`

use distme_cluster::ClusterConfig;
use distme_engine::gnmf::{self, GnmfConfig};
use distme_engine::{RatingDataset, SystemProfile};

/// The seven systems of Figs. 8(a–c), in the paper's legend order.
const SYSTEMS: [(&str, SystemProfile, bool); 7] = [
    ("MatFast(C)", SystemProfile::MatFast, false),
    ("MatFast(G)", SystemProfile::MatFast, true),
    ("SystemML(C)", SystemProfile::SystemMl, false),
    ("SystemML(G)", SystemProfile::SystemMl, true),
    ("DMac", SystemProfile::Dmac, false),
    ("DistME(C)", SystemProfile::DistMe, false),
    ("DistME(G)", SystemProfile::DistMe, true),
];

fn cluster(gpu: bool) -> ClusterConfig {
    let mut cfg = if gpu {
        ClusterConfig::paper_cluster_gpu()
    } else {
        ClusterConfig::paper_cluster()
    };
    // Rating values (reals in [1, 5]) and dense factor matrices compress
    // far less than Fig. 6's low-entropy synthetic data.
    cfg.wire_compression_ratio = 0.5;
    cfg.with_timeout(f64::MAX)
}

fn dataset_panel(dataset: &RatingDataset) {
    println!(
        "\n== Fig. 8 ({}): GNMF accumulated time over 10 iterations, factor dim 200 ==",
        dataset.name
    );
    println!(
        "{:<14} {:>12} {:>40}",
        "system", "total (s)", "per-iteration cumulative"
    );
    let gcfg = GnmfConfig::default();
    let mut totals: Vec<(&str, Option<f64>)> = Vec::new();
    for (name, profile, gpu) in SYSTEMS {
        match gnmf::simulate(cluster(gpu), profile, dataset, &gcfg) {
            Ok(report) => {
                let head: Vec<String> = report
                    .cumulative_secs
                    .iter()
                    .step_by(3)
                    .map(|s| format!("{s:.0}"))
                    .collect();
                println!(
                    "{:<14} {:>12.0} {:>40}",
                    name,
                    report.total_secs(),
                    head.join(" → ")
                );
                totals.push((name, Some(report.total_secs())));
            }
            Err(e) => {
                println!("{:<14} {:>12}", name, e.annotation());
                totals.push((name, None));
            }
        }
    }
    let get = |n: &str| totals.iter().find(|t| t.0 == n).and_then(|t| t.1);
    if let (Some(d), Some(s), Some(m)) = (get("DistME(G)"), get("SystemML(G)"), get("MatFast(G)")) {
        let (paper_s, paper_m) = match dataset.name {
            "MovieLens" => (1.2, 1.56),
            "Netflix" => (1.7, 3.5),
            _ => (1.92, 3.45),
        };
        println!(
            "speedup of DistME(G): vs SystemML(G) {:.2}x (paper {paper_s}x), vs MatFast(G) {:.2}x (paper {paper_m}x)",
            s / d,
            m / d
        );
    }
}

fn factor_dim_panel() {
    println!("\n== Fig. 8(d): GNMF on YahooMusic while varying the factor dimension ==");
    // Paper values (seconds, total over 10 iterations) where legible:
    // SystemML(G): 741 / 1578 / 3255; DistME(G): 302 / 526 / 836;
    // MatFast: O.O.M. at 500 and 1000.
    let paper: [(&str, [Option<&str>; 3]); 4] = [
        ("MatFast(C)", [None, Some("O.O.M."), Some("O.O.M.")]),
        ("SystemML(G)", [Some("741"), Some("1578"), Some("3255")]),
        ("DistME(C)", [Some("582"), None, None]),
        ("DistME(G)", [Some("302"), Some("526"), Some("836")]),
    ];
    println!(
        "{:<14} {:>20} {:>20} {:>20}",
        "system", "f=200 (paper/ours)", "f=500", "f=1000"
    );
    let selections: [(&str, SystemProfile, bool); 4] = [
        ("MatFast(C)", SystemProfile::MatFast, false),
        ("SystemML(G)", SystemProfile::SystemMl, true),
        ("DistME(C)", SystemProfile::DistMe, false),
        ("DistME(G)", SystemProfile::DistMe, true),
    ];
    for (idx, (name, profile, gpu)) in selections.into_iter().enumerate() {
        let mut cells = Vec::new();
        for (fi, f) in [200u64, 500, 1000].into_iter().enumerate() {
            let gcfg = GnmfConfig {
                factor_dim: f,
                iterations: 10,
            };
            let ours =
                match gnmf::simulate(cluster(gpu), profile, &RatingDataset::YAHOO_MUSIC, &gcfg) {
                    Ok(r) => format!("{:.0}", r.total_secs()),
                    Err(e) => e.annotation().to_string(),
                };
            let paper_cell = paper[idx].1[fi].unwrap_or("?");
            cells.push(format!("{paper_cell} / {ours}"));
        }
        println!(
            "{:<14} {:>20} {:>20} {:>20}",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!("paper claims: MatFast O.O.M. for factor dims > 500 (we model the 500 boundary);");
    println!("DistME(G) outperforms SystemML(G) by 3.88x at factor dim 1000");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "movielens" => dataset_panel(&RatingDataset::MOVIELENS),
        "netflix" => dataset_panel(&RatingDataset::NETFLIX),
        "yahoo" => dataset_panel(&RatingDataset::YAHOO_MUSIC),
        "factor-dim" => factor_dim_panel(),
        "all" => {
            dataset_panel(&RatingDataset::MOVIELENS);
            dataset_panel(&RatingDataset::NETFLIX);
            dataset_panel(&RatingDataset::YAHOO_MUSIC);
            factor_dim_panel();
        }
        other => {
            eprintln!("unknown panel '{other}'; use movielens|netflix|yahoo|factor-dim|all");
            std::process::exit(2);
        }
    }
}
