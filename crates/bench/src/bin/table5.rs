//! Table 5: comparison with ScaLAPACK and SciDB (§6.5).
//!
//! ScaLAPACK/SciDB run under the SUMMA model; DistME(C) runs CuboidMM on
//! the CPU-only simulated cluster. Ten processes per node, no GPU, and no
//! 4 000 s cap (the paper reports a 70-minute ScaLAPACK run).

use distme_bench::{print_comparison, Cell, Paper};
use distme_cluster::{ClusterConfig, SimCluster};
use distme_core::summa::{self, HpcSystem, SummaConfig};
use distme_core::{sim_exec, MatmulProblem, MulMethod};

fn main() {
    use Paper::*;
    let cases: Vec<(&str, MatmulProblem, [Paper; 3])> = vec![
        (
            "10K^3",
            MatmulProblem::dense(10_000, 10_000, 10_000),
            [Reported(31.0), Reported(33.0), Reported(42.0)],
        ),
        (
            "50K^3",
            MatmulProblem::dense(50_000, 50_000, 50_000),
            [Reported(1_865.0), Reported(1_998.0), Reported(1_663.0)],
        ),
        (
            "5K x 1M x 5K",
            MatmulProblem::dense(5_000, 1_000_000, 5_000),
            [Reported(995.0), Reported(1_069.0), Reported(326.0)],
        ),
        (
            "5K x 5M x 5K",
            MatmulProblem::dense(5_000, 5_000_000, 5_000),
            [Reported(4_200.0), Fails("O.O.M."), Reported(1_620.0)],
        ),
        (
            "100K x 1K x 100K",
            MatmulProblem::dense(100_000, 1_000, 100_000),
            [Reported(248.0), Reported(332.0), Reported(122.0)],
        ),
        (
            "500K x 1K x 500K",
            MatmulProblem::dense(500_000, 1_000, 500_000),
            [Fails("O.O.M."), Fails("O.O.M."), Reported(3_420.0)],
        ),
    ];

    let cluster = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
    let summa_cfg = SummaConfig::default();

    let mut rows = Vec::new();
    for (label, problem, paper) in cases {
        let sl = summa::simulate(&cluster, &problem, HpcSystem::ScaLapack, &summa_cfg);
        let sd = summa::simulate(&cluster, &problem, HpcSystem::SciDb, &summa_cfg);
        let mut sim = SimCluster::new(cluster);
        let dm = sim_exec::simulate(&mut sim, &problem, MulMethod::CuboidAuto);
        rows.push((
            label.to_string(),
            vec![
                (paper[0], Cell::elapsed(&sl)),
                (paper[1], Cell::elapsed(&sd)),
                (paper[2], Cell::elapsed(&dm)),
            ],
        ));
    }
    print_comparison(
        "Table 5: ScaLAPACK vs SciDB vs DistME(C) — elapsed time (s)",
        &["ScaLAPACK", "SciDB", "DistME(C)"],
        &rows,
        0,
    );
    println!(
        "paper prose checks:\n\
         - 'In all experiments, ScaLAPACK shows a better performance than SciDB'\n\
         - DistME(C) loses at 10K^3 but wins at 50K^3\n\
         - DistME(C) ~3x faster on the common-large-dimension type\n\
         - only DistME(C) completes 500K x 1K x 500K"
    );
}
