//! Figure 6: performance comparison among BMM, CPMM, RMM, and CuboidMM.
//!
//! Six panels — elapsed time and communication cost for three dataset
//! types (two general matrices, common large dimension, two large
//! dimensions) — run on the GPU-equipped simulated cluster, exactly as the
//! paper runs all four methods "on DistME and so exploit GPU computation"
//! (§6.2). Matrices are dense format at sparsity 0.5.
//!
//! Usage: `fig6 [general|common-dim|two-large|all]`

use distme_bench::{geometric_calibration, print_comparison, Cell, Paper};
use distme_cluster::{ClusterConfig, SimCluster};
use distme_core::{sim_exec, MatmulProblem, MulMethod};
use distme_matrix::MatrixMeta;

const METHODS: [MulMethod; 4] = [
    MulMethod::Rmm,
    MulMethod::Cpmm,
    MulMethod::Bmm,
    MulMethod::CuboidAuto,
];
const METHOD_NAMES: [&str; 4] = ["RMM", "CPMM", "BMM", "CuboidMM"];

/// The paper runs Fig. 6 at sparsity 0.5, which is stored dense (§2.1's
/// 0.4 crossover) but serialized/compressed by Spark.
fn problem(i: u64, k: u64, j: u64) -> MatmulProblem {
    MatmulProblem::new(MatrixMeta::sparse(i, k, 0.5), MatrixMeta::sparse(k, j, 0.5))
        .expect("shapes consistent")
}

fn run(
    p: &MatmulProblem,
    m: MulMethod,
) -> Result<distme_cluster::JobStats, distme_cluster::JobError> {
    // Fig. 6 enforces the 4 000 s T.O. budget.
    let mut sim = SimCluster::new(ClusterConfig::paper_cluster_gpu());
    sim_exec::simulate(&mut sim, p, m)
}

fn panel(
    title_time: &str,
    title_comm: &str,
    labels: &[&str],
    problems: &[MatmulProblem],
    paper_time: &[[Paper; 4]],
    paper_comm: &[[Paper; 4]],
) {
    let mut time_rows = Vec::new();
    let mut comm_rows = Vec::new();
    for (idx, p) in problems.iter().enumerate() {
        let results: Vec<_> = METHODS.iter().map(|&m| run(p, m)).collect();
        time_rows.push((
            labels[idx].to_string(),
            paper_time[idx]
                .iter()
                .zip(results.iter())
                .map(|(pp, r)| (*pp, Cell::elapsed(r)))
                .collect::<Vec<_>>(),
        ));
        comm_rows.push((
            labels[idx].to_string(),
            paper_comm[idx]
                .iter()
                .zip(results.iter())
                .map(|(pp, r)| (*pp, Cell::comm_mb(r)))
                .collect::<Vec<_>>(),
        ));
    }
    print_comparison(title_time, &METHOD_NAMES, &time_rows, 0);
    if let Some(g) = geometric_calibration(&time_rows) {
        println!("geometric ours/paper time ratio: {g:.2}x");
    }
    print_comparison(title_comm, &METHOD_NAMES, &comm_rows, 0);
    println!(
        "note: our comm is logical (uncompressed) bytes; the paper reports Spark's\n\
         post-lz4 shuffle counters on highly compressible synthetic data — compare\n\
         per-method *ratios*, which are compression-invariant."
    );
}

fn general() {
    use Paper::*;
    let labels = ["70K", "80K", "90K", "100K"];
    let problems: Vec<_> = [70_000u64, 80_000, 90_000, 100_000]
        .iter()
        .map(|&n| problem(n, n, n))
        .collect();
    let time = [
        [
            Reported(796.0),
            Reported(434.0),
            Reported(390.0),
            Reported(206.0),
        ],
        [
            Reported(1185.0),
            Reported(594.0),
            Unreported,
            Reported(247.0),
        ],
        [
            Reported(1757.0),
            Reported(797.0),
            Fails("O.O.M."),
            Reported(329.0),
        ],
        [
            Reported(2712.0),
            Reported(1236.0),
            Fails("O.O.M."),
            Reported(444.0),
        ],
    ];
    let comm = [
        [
            Reported(39_921.0),
            Reported(17_285.0),
            Reported(22_253.0),
            Reported(1_730.0),
        ],
        [
            Reported(59_651.0),
            Reported(27_379.0),
            Unreported,
            Reported(2_751.0),
        ],
        [
            Reported(84_731.0),
            Reported(35_637.0),
            Fails("O.O.M."),
            Reported(3_602.0),
        ],
        [
            Reported(116_231.0),
            Reported(48_786.0),
            Fails("O.O.M."),
            Reported(5_974.0),
        ],
    ];
    panel(
        "Fig. 6(a): two general matrices (N x N x N) — elapsed time (s)",
        "Fig. 6(d): two general matrices — communication (MB)",
        &labels,
        &problems,
        &time,
        &comm,
    );
}

fn common_dim() {
    use Paper::*;
    let labels = ["100K", "500K", "1M", "5M"];
    let problems: Vec<_> = [100_000u64, 500_000, 1_000_000, 5_000_000]
        .iter()
        .map(|&n| problem(10_000, n, 10_000))
        .collect();
    let time = [
        [
            Reported(37.0),
            Reported(26.0),
            Reported(28.0),
            Reported(19.0),
        ],
        [Reported(153.0), Reported(94.0), Unreported, Reported(63.0)],
        [
            Reported(382.0),
            Reported(251.0),
            Fails("O.O.M."),
            Reported(75.0),
        ],
        [
            Reported(2292.0),
            Reported(1281.0),
            Fails("O.O.M."),
            Reported(327.0),
        ],
    ];
    let comm = [
        [
            Reported(1_232.0),
            Reported(428.0),
            Reported(401.0),
            Reported(291.0),
        ],
        [
            Reported(5_982.0),
            Reported(1_872.0),
            Unreported,
            Reported(512.0),
        ],
        [
            Reported(35_728.0),
            Reported(27_893.0),
            Fails("O.O.M."),
            Reported(1_235.0),
        ],
        [
            Reported(440_983.0),
            Reported(350_973.0),
            Fails("O.O.M."),
            Reported(5_812.0),
        ],
    ];
    panel(
        "Fig. 6(b): common large dimension (10K x N x 10K) — elapsed time (s)",
        "Fig. 6(e): common large dimension — communication (MB)",
        &labels,
        &problems,
        &time,
        &comm,
    );
}

fn two_large() {
    use Paper::*;
    let labels = ["100K", "250K", "500K", "750K"];
    let problems: Vec<_> = [100_000u64, 250_000, 500_000, 750_000]
        .iter()
        .map(|&n| problem(n, 1_000, n))
        .collect();
    let time = [
        [
            Reported(44.0),
            Reported(138.0),
            Reported(23.0),
            Reported(18.0),
        ],
        [
            Reported(379.0),
            Reported(883.0),
            Reported(248.0),
            Reported(62.0),
        ],
        [
            Reported(1_440.0),
            Fails("O.O.M."),
            Reported(390.0),
            Reported(240.0),
        ],
        [
            Fails("T.O."),
            Fails("O.O.M."),
            Fails("O.O.M."),
            Reported(357.0),
        ],
    ];
    let comm = [
        [
            Reported(1_102.0),
            Reported(21.0),
            Reported(7.0),
            Reported(7.0),
        ],
        [
            Reported(6_983.0),
            Reported(402.0),
            Unreported,
            Reported(231.0),
        ],
        [
            Reported(21_903.0),
            Fails("O.O.M."),
            Reported(2_404.0),
            Reported(839.0),
        ],
        [
            Fails("T.O."),
            Fails("O.O.M."),
            Fails("O.O.M."),
            Reported(1_814.0),
        ],
    ];
    panel(
        "Fig. 6(c): two large dimensions (N x 1K x N) — elapsed time (s)",
        "Fig. 6(f): two large dimensions — communication (MB)",
        &labels,
        &problems,
        &time,
        &comm,
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "general" => general(),
        "common-dim" => common_dim(),
        "two-large" => two_large(),
        "all" => {
            general();
            common_dim();
            two_large();
        }
        other => {
            eprintln!("unknown panel '{other}'; use general|common-dim|two-large|all");
            std::process::exit(2);
        }
    }
}
