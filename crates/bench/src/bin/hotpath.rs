//! Hot-path microbenchmarks: the compute/serialization floor under every
//! distributed run.
//!
//! Measures, on this machine:
//!
//! * packed GEMM / GEMM-TN throughput (GFLOP/s) across shapes that stress
//!   the blocking edges;
//! * standalone CRC-32 throughput (GB/s) per dispatch tier (bytewise,
//!   slicing-by-8, PCLMUL folding where available) plus the active tier,
//!   so codec regressions are attributable to checksum vs copy vs framing;
//! * codec throughput (GB/s) for dense and sparse blocks — the hot path
//!   exactly as the transport ships each kind (dense: aligned fused
//!   encode and zero-copy `decode_view`; sparse: `encode_into` a reused
//!   buffer and `decode_slice`) against an in-binary replica of the
//!   original per-element loop, so the speedup is tracked against a
//!   fixed reference, not a moving one;
//! * transport round-trip throughput through the wire path;
//! * block-migration throughput of an elastic resize cycle (grow 4→9,
//!   shrink 9→4) over a resident working set;
//! * wall time of one fixed CuboidMM job on the real executor;
//! * sparse ML kernel throughput — SDDMM and SpMM GFLOP/s over the
//!   entries the kernels actually visit — plus end-to-end ALS
//!   iterations/s on the real backend;
//! * job-service throughput (jobs/s) at 1/4/16 concurrent submissions,
//!   with the admission queue-wait p50/p95.
//!
//! Writes the results as JSON (default `BENCH_hotpath.json`, `--out` to
//! override) and self-checks that the emitted document parses. `--smoke`
//! shrinks every workload to a few milliseconds for CI; `--codec-only`
//! emits just the crc + codec sections, and `--check-codec` exits nonzero
//! unless both dense and sparse `roundtrip_speedup` are ≥ 1.0 (the
//! `make codec-smoke` CI gate).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use distme_cluster::stats::Phase;
use distme_cluster::{
    ClusterConfig, ClusterStores, LocalCluster, RetryPolicy, ScratchPool, StoreKey, Transport,
    TransportStats, WireMove,
};
use distme_core::real_exec::{multiply, multiply_with, RealExecOptions};
use distme_core::MulMethod;
use distme_matrix::kernels::gemm::{gemm, gemm_tn};
use distme_matrix::{codec, Block, BlockId, CsrBlock, DenseBlock, MatrixGenerator, MatrixMeta};
use std::time::Instant;

fn main() {
    let mut smoke = false;
    let mut codec_only = false;
    let mut check_codec = false;
    let mut coded = false;
    let mut out = String::from("BENCH_hotpath.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--codec-only" => codec_only = true,
            "--check-codec" => check_codec = true,
            "--coded" => coded = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown argument: {other} \
                 (expected --smoke / --codec-only / --check-codec / --coded / --out PATH)"
            ),
        }
    }

    let mut doc = String::from("{\n");
    doc.push_str("  \"bench\": \"hotpath\",\n");
    doc.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    if !codec_only {
        doc.push_str(&format!("  \"gemm\": {},\n", bench_gemm(smoke)));
    }
    doc.push_str(&format!("  \"crc\": {},\n", bench_crc(smoke)));
    let codec = bench_codec(smoke);
    if codec_only {
        doc.push_str(&format!("  \"codec\": {}\n", codec.json));
    } else {
        doc.push_str(&format!("  \"codec\": {},\n", codec.json));
        doc.push_str(&format!("  \"transport\": {},\n", bench_transport(smoke)));
        doc.push_str(&format!("  \"rebalance\": {},\n", bench_rebalance(smoke)));
        doc.push_str(&format!("  \"cuboid_job\": {},\n", bench_cuboid_job(smoke)));
        doc.push_str(&format!(
            "  \"cuboid_job_pipelined\": {},\n",
            bench_cuboid_job_pipelined(smoke)
        ));
        if coded {
            doc.push_str(&format!("  \"coded\": {},\n", bench_coded(smoke)));
        }
        doc.push_str(&format!("  \"sparse\": {},\n", bench_sparse(smoke)));
        doc.push_str(&format!("  \"service\": {}\n", bench_service(smoke)));
    }
    doc.push('}');

    json_check(&doc).expect("emitted benchmark document must be valid JSON");
    std::fs::write(&out, format!("{doc}\n")).expect("write benchmark JSON");
    println!("wrote {out}");

    if check_codec {
        println!(
            "codec check: dense roundtrip_speedup {:.4}, sparse roundtrip_speedup {:.4}",
            codec.dense_speedup, codec.sparse_speedup
        );
        assert!(
            codec.dense_speedup >= 1.0,
            "dense hot path regressed below the seed-style loop: speedup {:.4} < 1.0",
            codec.dense_speedup
        );
        assert!(
            codec.sparse_speedup >= 1.0,
            "sparse hot path regressed below the seed-style loop: speedup {:.4} < 1.0",
            codec.sparse_speedup
        );
        println!("codec check: ok");
    }
}

/// Formats an `f64` as a JSON number (non-finite values become 0).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0".into()
    }
}

fn seeded_dense(rows: usize, cols: usize, seed: u64) -> DenseBlock {
    let mut state = seed | 1;
    DenseBlock::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % 200) as f64 / 100.0 - 1.0
    })
}

fn seeded_sparse(rows: usize, cols: usize, every: usize, seed: u64) -> CsrBlock {
    let mut state = seed | 1;
    let mut trips = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            if ((state >> 33) as usize).is_multiple_of(every) {
                trips.push((i, j, ((state >> 40) % 19) as f64 - 9.0));
            }
        }
    }
    CsrBlock::from_triplets(rows, cols, trips).expect("valid triplets")
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

fn bench_gemm(smoke: bool) -> String {
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(32, 32, 32), (48, 16, 24)]
    } else {
        &[
            (1000, 1000, 1000),
            (512, 512, 512),
            (256, 256, 256),
            (2000, 64, 2000),
            (64, 2000, 64),
        ]
    };
    let mut rows = Vec::new();
    for &(m, k, n) in shapes {
        rows.push(gemm_row("gemm", m, k, n, smoke, |a, b, c| {
            gemm(1.0, a, b, 0.0, c).expect("shapes match")
        }));
    }
    // gemm_tn at the headline shape (a stored k x m).
    let (m, k, n) = if smoke {
        (32, 32, 32)
    } else {
        (1000, 1000, 1000)
    };
    rows.push(gemm_tn_row(m, k, n, smoke));
    format!("[\n    {}\n  ]", rows.join(",\n    "))
}

fn gemm_row(
    kernel: &str,
    m: usize,
    k: usize,
    n: usize,
    smoke: bool,
    f: impl Fn(&DenseBlock, &DenseBlock, &mut DenseBlock),
) -> String {
    let a = seeded_dense(m, k, 3);
    let b = seeded_dense(k, n, 5);
    let mut c = DenseBlock::zeros(m, n);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    // Enough repetitions for ~3 GFLOP of work per shape (2 reps in smoke).
    let reps = if smoke {
        2
    } else {
        ((3.0e9 / flops).ceil() as usize).max(3)
    };
    f(&a, &b, &mut c); // warm up (feature detection, page-in)
    let t = Instant::now();
    for _ in 0..reps {
        f(&a, &b, &mut c);
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(&c);
    let gflops = flops * reps as f64 / secs / 1e9;
    format!(
        "{{\"kernel\": \"{kernel}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \
         \"reps\": {reps}, \"gflops\": {}}}",
        num(gflops)
    )
}

fn gemm_tn_row(m: usize, k: usize, n: usize, smoke: bool) -> String {
    let a = seeded_dense(k, m, 3);
    let b = seeded_dense(k, n, 5);
    let mut c = DenseBlock::zeros(m, n);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let reps = if smoke {
        2
    } else {
        ((3.0e9 / flops).ceil() as usize).max(3)
    };
    gemm_tn(1.0, &a, &b, 0.0, &mut c).expect("shapes match");
    let t = Instant::now();
    for _ in 0..reps {
        gemm_tn(1.0, &a, &b, 0.0, &mut c).expect("shapes match");
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(&c);
    let gflops = flops * reps as f64 / secs / 1e9;
    format!(
        "{{\"kernel\": \"gemm_tn\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \
         \"reps\": {reps}, \"gflops\": {}}}",
        num(gflops)
    )
}

// ---------------------------------------------------------------------------
// CRC: standalone checksum throughput per dispatch tier
// ---------------------------------------------------------------------------

/// GB/s of each available CRC tier over a frame-sized buffer, plus the tier
/// the dispatcher actually picks — so a codec regression is attributable to
/// checksum vs copy vs framing at a glance.
fn bench_crc(smoke: bool) -> String {
    use codec::CrcTier;
    let n = if smoke { 64 * 1024 } else { 512 * 1024 };
    let mut state = 0x0123_4567_89ab_cdefu64;
    let data: Vec<u8> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 56) as u8
        })
        .collect();
    let mut tiers = Vec::new();
    for tier in CrcTier::ALL {
        if !tier.available() {
            continue;
        }
        // ~1 GB of input per tier in full mode (bytewise gets fewer reps).
        let reps = if smoke {
            4
        } else if tier == CrcTier::Bytewise {
            256
        } else {
            2048
        };
        let mut acc = 0u32;
        let t = Instant::now();
        for _ in 0..reps {
            acc ^= codec::crc32_with_tier(tier, &data).expect("tier available");
        }
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        tiers.push(format!(
            "{{\"tier\": \"{}\", \"gbps\": {}}}",
            tier.name(),
            num((n * reps) as f64 / secs / 1e9)
        ));
    }
    format!(
        "{{\"bytes\": {n}, \"active\": \"{}\", \"tiers\": [\n    {}\n  ]}}",
        codec::active_crc_tier().name(),
        tiers.join(",\n    ")
    )
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// The codec section's JSON plus the speedups `--check-codec` gates on.
struct CodecBench {
    json: String,
    dense_speedup: f64,
    sparse_speedup: f64,
}

fn bench_codec(smoke: bool) -> CodecBench {
    // Distributed jobs ship sub-matrix blocks, not whole operands; 256x256
    // (512 KB dense) matches the block-size regime of the executor's jobs,
    // so this is the traffic the transport actually serializes.
    let side = if smoke { 64 } else { 256 };
    let dense = Block::Dense(seeded_dense(side, side, 7));
    let sparse = Block::Sparse(seeded_sparse(side, side, 20, 9));
    let (dense_json, dense_speedup) = codec_section(&dense, smoke);
    let (sparse_json, sparse_speedup) = codec_section(&sparse, smoke);
    CodecBench {
        json: format!("{{\n    \"dense\": {dense_json},\n    \"sparse\": {sparse_json}\n  }}"),
        dense_speedup,
        sparse_speedup,
    }
}

fn codec_section(block: &Block, smoke: bool) -> (String, f64) {
    let len = codec::encoded_len(block) as usize;
    // ~256 MB of traffic per direction in full mode.
    let reps = if smoke {
        3
    } else {
        (256_000_000 / len.max(1)).clamp(8, 4096)
    };

    // Hot path, exactly as the transport ships each block kind: dense takes
    // the zero-copy route (fresh exact-size buffer, aligned fused encode,
    // freeze, `decode_view` aliasing the frame); sparse reuses one scratch
    // buffer and materializes with `decode_slice`.
    let (hot_enc, hot_dec) = match block {
        Block::Dense(_) => {
            let t = Instant::now();
            for _ in 0..reps {
                let mut buf = BytesMut::with_capacity(len + 7);
                codec::encode_aligned(block, &mut buf);
                std::hint::black_box(&buf);
            }
            let hot_enc = t.elapsed().as_secs_f64();
            let mut buf = BytesMut::with_capacity(len + 7);
            let pad = codec::encode_aligned(block, &mut buf);
            let wire = buf.freeze();
            let frame = wire.slice(pad..wire.len());
            let t = Instant::now();
            for _ in 0..reps {
                let b = codec::decode_view(&frame).expect("round-trips");
                std::hint::black_box(&b);
            }
            (hot_enc, t.elapsed().as_secs_f64())
        }
        Block::Sparse(_) => {
            let mut buf = BytesMut::default();
            codec::encode_into(block, &mut buf);
            let t = Instant::now();
            for _ in 0..reps {
                buf.clear();
                codec::encode_into(block, &mut buf);
            }
            let hot_enc = t.elapsed().as_secs_f64();
            let t = Instant::now();
            for _ in 0..reps {
                let b = codec::decode_slice(&buf).expect("round-trips");
                std::hint::black_box(&b);
            }
            (hot_enc, t.elapsed().as_secs_f64())
        }
    };

    // Reference path: the original per-element loop into a fresh buffer
    // (frozen into `Bytes`, as the transport used to ship), decoded
    // element by element.
    let t = Instant::now();
    let mut frozen = encode_elementwise(block);
    for _ in 1..reps {
        frozen = encode_elementwise(block);
    }
    let ref_enc = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..reps {
        let b = decode_elementwise(frozen.clone()).expect("round-trips");
        std::hint::black_box(&b);
    }
    let ref_dec = t.elapsed().as_secs_f64();

    let moved = (len * reps) as f64;
    let gbps = |secs: f64| moved / secs / 1e9;
    let hot_rt = gbps(hot_enc + hot_dec);
    let ref_rt = gbps(ref_enc + ref_dec);
    let speedup = hot_rt / ref_rt;
    let json = format!(
        "{{\"bytes\": {len}, \"reps\": {reps}, \
         \"hot\": {{\"encode_gbps\": {}, \"decode_gbps\": {}, \"roundtrip_gbps\": {}}}, \
         \"seed_style\": {{\"encode_gbps\": {}, \"decode_gbps\": {}, \"roundtrip_gbps\": {}}}, \
         \"roundtrip_speedup\": {}}}",
        num(gbps(hot_enc)),
        num(gbps(hot_dec)),
        num(hot_rt),
        num(gbps(ref_enc)),
        num(gbps(ref_dec)),
        num(ref_rt),
        num(speedup)
    );
    (json, speedup)
}

/// The seed codec's encoder: one `put_*` per element, frozen to `Bytes`.
fn encode_elementwise(block: &Block) -> Bytes {
    let mut buf = BytesMut::with_capacity(codec::encoded_len(block) as usize);
    match block {
        Block::Dense(d) => {
            buf.put_u8(1);
            buf.put_u32_le(d.rows() as u32);
            buf.put_u32_le(d.cols() as u32);
            for &v in d.data() {
                buf.put_f64_le(v);
            }
        }
        Block::Sparse(s) => {
            buf.put_u8(2);
            buf.put_u32_le(s.rows() as u32);
            buf.put_u32_le(s.cols() as u32);
            buf.put_u32_le(s.nnz() as u32);
            for &p in s.row_ptr() {
                buf.put_u32_le(p);
            }
            for &j in s.col_idx() {
                buf.put_u32_le(j);
            }
            for &v in s.values() {
                buf.put_f64_le(v);
            }
        }
    }
    buf.freeze()
}

/// The seed codec's decoder: one `get_*` per element out of `Bytes`.
fn decode_elementwise(mut buf: Bytes) -> Result<Block, String> {
    let tag = buf.get_u8();
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    match tag {
        1 => {
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows * cols {
                data.push(buf.get_f64_le());
            }
            DenseBlock::from_vec(rows, cols, data)
                .map(Block::Dense)
                .map_err(|e| e.to_string())
        }
        2 => {
            let nnz = buf.get_u32_le() as usize;
            let mut row_ptr = Vec::with_capacity(rows + 1);
            for _ in 0..=rows {
                row_ptr.push(buf.get_u32_le());
            }
            let mut col_idx = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                col_idx.push(buf.get_u32_le());
            }
            let mut values = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                values.push(buf.get_f64_le());
            }
            CsrBlock::from_raw_parts(rows, cols, row_ptr, col_idx, values)
                .map(Block::Sparse)
                .map_err(|e| e.to_string())
        }
        t => Err(format!("bad tag {t}")),
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

fn bench_transport(smoke: bool) -> String {
    let side = if smoke { 64 } else { 1000 };
    let moves = if smoke { 3 } else { 64 };
    let stores = ClusterStores::new(2);
    let stats = TransportStats::default();
    let scratch = ScratchPool::default();
    let block = Block::Dense(seeded_dense(side, side, 11));
    let key = StoreKey::operand(1, BlockId::new(0, 0));
    stores
        .node(0)
        .install(key, std::sync::Arc::new(block.clone()));
    let transport = Transport::new(&stores, &stats, &scratch, None, RetryPolicy::no_retry());
    let mv = WireMove {
        phase: Phase::Repartition,
        from_node: 0,
        to_node: 1,
        wire_bytes: codec::encoded_len(&block),
        src: key,
        dst: key,
    };
    transport.execute(&mv, 0).expect("moves"); // warm the scratch pool
    let t = Instant::now();
    for _ in 0..moves {
        transport.execute(&mv, 0).expect("moves");
    }
    let secs = t.elapsed().as_secs_f64();
    let payload = codec::encoded_len(&block) as f64 * moves as f64;
    format!(
        "{{\"moves\": {moves}, \"block_bytes\": {}, \"roundtrip_gbps\": {}, \
         \"scratch_reuses\": {}}}",
        codec::encoded_len(&block),
        num(payload / secs / 1e9),
        scratch.reuses()
    )
}

// ---------------------------------------------------------------------------
// Elastic rebalance: migration cost of a grow/shrink cycle
// ---------------------------------------------------------------------------

fn bench_rebalance(smoke: bool) -> String {
    use distme_cluster::rebalance::home_node;
    let side = if smoke { 32 } else { 256 };
    let blocks: u64 = if smoke { 8 } else { 96 };
    let mut cluster = LocalCluster::new(ClusterConfig::laptop()); // 4 nodes
    let block_bytes = codec::encoded_len(&Block::Dense(seeded_dense(side, side, 13)));
    // A dual-homed resident working set, as a finished job leaves it.
    for i in 0..blocks {
        let id = BlockId::new((i % 12) as u32, (i / 12) as u32);
        let key = StoreKey::operand(1, id);
        let blk = std::sync::Arc::new(Block::Dense(seeded_dense(side, side, 13 + i)));
        cluster
            .stores()
            .ingest(home_node(id, 0, 4), key, std::sync::Arc::clone(&blk));
        cluster.stores().ingest(home_node(id, 1, 4), key, blk);
    }
    let t = Instant::now();
    let grow = cluster.scale_to(9).expect("grow");
    let shrink = cluster.scale_to(4).expect("shrink");
    let secs = t.elapsed().as_secs_f64();
    let moves = grow.moves + shrink.moves;
    let payload = grow.payload_bytes + shrink.payload_bytes;
    format!(
        "{{\"blocks\": {blocks}, \"block_bytes\": {block_bytes}, \
         \"grow_moves\": {}, \"shrink_moves\": {}, \"payload_bytes\": {payload}, \
         \"seconds\": {}, \"migration_gbps\": {}, \"moves_per_sec\": {}}}",
        grow.moves,
        shrink.moves,
        num(secs),
        num(payload as f64 / secs / 1e9),
        num(moves as f64 / secs)
    )
}

// ---------------------------------------------------------------------------
// Fixed CuboidMM job on the real executor
// ---------------------------------------------------------------------------

fn bench_cuboid_job(smoke: bool) -> String {
    let bs: u64 = if smoke { 16 } else { 128 };
    let (bi, bk, bj) = (6u64, 5u64, 4u64);
    let (m, k, n) = (bi * bs, bk * bs, bj * bs);
    let a = MatrixGenerator::with_seed(11)
        .value_range(-1.0, 1.0)
        .generate(&MatrixMeta::dense(m, k).with_block_size(bs))
        .expect("generates");
    let b = MatrixGenerator::with_seed(22)
        .value_range(-1.0, 1.0)
        .generate(&MatrixMeta::dense(k, n).with_block_size(bs))
        .expect("generates");
    let reps = if smoke { 1 } else { 3 };
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let cluster = LocalCluster::new(ClusterConfig::laptop());
        let t = Instant::now();
        let (prod, _) = multiply(&cluster, &a, &b, MulMethod::CuboidAuto).expect("job runs");
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&prod);
    }
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    format!(
        "{{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"block_size\": {bs}, \
         \"method\": \"CuboidAuto\", \"wall_seconds\": {}, \"gflops\": {}}}",
        num(best),
        num(flops / best / 1e9)
    )
}

/// The same fixed CuboidMM job through the pipelined executor, which
/// streams k-panels so deliveries overlap compute. Also reports the
/// overlap counters from the job's stats so the hidden-communication
/// fraction is tracked alongside the throughput.
fn bench_cuboid_job_pipelined(smoke: bool) -> String {
    let bs: u64 = if smoke { 16 } else { 128 };
    let (bi, bk, bj) = (6u64, 5u64, 4u64);
    let (m, k, n) = (bi * bs, bk * bs, bj * bs);
    let a = MatrixGenerator::with_seed(11)
        .value_range(-1.0, 1.0)
        .generate(&MatrixMeta::dense(m, k).with_block_size(bs))
        .expect("generates");
    let b = MatrixGenerator::with_seed(22)
        .value_range(-1.0, 1.0)
        .generate(&MatrixMeta::dense(k, n).with_block_size(bs))
        .expect("generates");
    let opts = RealExecOptions {
        pipelined: true,
        ..Default::default()
    };
    let reps = if smoke { 1 } else { 3 };
    let mut best = f64::INFINITY;
    let mut overlap = 0.0;
    let mut hits = 0u64;
    let mut stalls = 0u64;
    for _ in 0..reps {
        let cluster = LocalCluster::new(ClusterConfig::laptop());
        let t = Instant::now();
        let (prod, stats) =
            multiply_with(&cluster, &a, &b, MulMethod::CuboidAuto, opts).expect("job runs");
        let wall = t.elapsed().as_secs_f64();
        if wall < best {
            best = wall;
            overlap = stats.overlap_ratio.unwrap_or(0.0);
            hits = stats.prefetch_hits;
            stalls = stats.prefetch_stalls;
        }
        std::hint::black_box(&prod);
    }
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    format!(
        "{{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"block_size\": {bs}, \
         \"method\": \"CuboidAuto\", \"wall_seconds\": {}, \"gflops\": {}, \
         \"overlap_ratio\": {}, \"prefetch_hits\": {hits}, \"prefetch_stalls\": {stalls}}}",
        num(best),
        num(flops / best / 1e9),
        num(overlap)
    )
}

// ---------------------------------------------------------------------------
// Coded replication: parity encode throughput and recovery bytes saved
// ---------------------------------------------------------------------------

/// Three measurements behind `--coded`: XOR parity encode GB/s over a
/// dual-homed working set; a decommission of a node holding sole-copy
/// blocks (typed loss with coding off vs parity-decoded recovery with it
/// on); and a fixed-seed 1%-drop chaos job where coding turns lineage
/// retransmissions of coded blocks into local reconstructions — the
/// `retransmitted_bytes_saved` delta.
fn bench_coded(smoke: bool) -> String {
    use distme_cluster::rebalance::home_node;
    use distme_cluster::{coding, FaultSpec, JobError, ReplicationPolicy};
    use std::sync::Arc;

    let side = if smoke { 32 } else { 256 };
    let blocks: u64 = if smoke { 8 } else { 96 };
    // A dual-homed resident working set, as a finished job leaves it.
    let build = |policy: ReplicationPolicy| {
        let cluster = LocalCluster::new(ClusterConfig::laptop().with_replication(policy));
        for i in 0..blocks {
            let id = BlockId::new((i % 12) as u32, (i / 12) as u32);
            let key = StoreKey::operand(1, id);
            let blk = Arc::new(Block::Dense(seeded_dense(side, side, 17 + i)));
            cluster
                .stores()
                .ingest(home_node(id, 0, 4), key, Arc::clone(&blk));
            cluster.stores().ingest(home_node(id, 1, 4), key, blk);
        }
        cluster
    };

    // Parity encode throughput: GB/s of member payload scanned per pass
    // (each pass re-encodes the full set after an eviction, as a resize
    // does).
    let mut xor_cluster = build(ReplicationPolicy::Xor);
    let block_bytes = codec::encoded_len(&Block::Dense(seeded_dense(side, side, 17)));
    let payload = block_bytes * blocks;
    let reps: u64 = if smoke { 2 } else { 16 };
    let mut parity_blocks = 0;
    let mut secs = 0.0;
    for _ in 0..reps {
        coding::evict_all_parity(xor_cluster.stores());
        let t = Instant::now();
        parity_blocks = xor_cluster.encode_parity(1);
        secs += t.elapsed().as_secs_f64();
    }
    let encode_gbps = (payload * reps) as f64 / secs / 1e9;

    // One decommission of a node holding a sole-copy block: with coding
    // off the loss is typed and the matrix is evicted; with XOR parity
    // the same loss decodes from group survivors.
    let victim = xor_cluster
        .stores()
        .resident_keys()
        .into_iter()
        .find(|(k, holders)| !k.is_parity() && holders.len() == 1)
        .map(|(_, holders)| *holders.iter().next().unwrap());
    let mut off_cluster = build(ReplicationPolicy::Off);
    let (off_lost, xor_reconstructed, xor_reconstruction_bytes) = match victim {
        Some(node) => {
            let off_lost = match off_cluster.decommission_node(node) {
                Err(JobError::NodeDecommissioned { lost_blocks, .. }) => lost_blocks as u64,
                _ => 0,
            };
            match xor_cluster.decommission_node(node) {
                Ok(report) => (
                    off_lost,
                    report.stats.reconstructed_blocks,
                    report.stats.reconstruction_payload_bytes,
                ),
                Err(_) => (off_lost, 0, 0),
            }
        }
        None => (0, 0, 0),
    };

    // Fixed-seed chaos: the same CuboidMM job at a 1% drop rate, coding
    // off vs on. Dropped deliveries of coded (copy-0) blocks decode from
    // group survivors instead of re-riding the wire.
    let bs: u64 = if smoke { 16 } else { 64 };
    let (m, k, n) = (6 * bs, 5 * bs, 4 * bs);
    let a = MatrixGenerator::with_seed(11)
        .value_range(-1.0, 1.0)
        .generate(&MatrixMeta::dense(m, k).with_block_size(bs))
        .expect("generates");
    let b = MatrixGenerator::with_seed(22)
        .value_range(-1.0, 1.0)
        .generate(&MatrixMeta::dense(k, n).with_block_size(bs))
        .expect("generates");
    let chaos = |policy: ReplicationPolicy| {
        let cluster = LocalCluster::new(ClusterConfig::laptop().with_replication(policy));
        cluster.inject_faults(FaultSpec {
            seed: 77,
            drop_rate: 0.01,
            corrupt_rate: 0.0,
            crash_rate: 0.0,
            blackouts: Vec::new(),
        });
        let (prod, stats) =
            multiply(&cluster, &a, &b, MulMethod::CuboidAuto).expect("recovers under faults");
        std::hint::black_box(&prod);
        stats
    };
    let off_stats = chaos(ReplicationPolicy::Off);
    let xor_stats = chaos(ReplicationPolicy::Xor);
    let saved = off_stats
        .retransmitted_payload_bytes
        .saturating_sub(xor_stats.retransmitted_payload_bytes);

    format!(
        "{{\n    \"parity_encode\": {{\"blocks\": {blocks}, \"block_bytes\": {block_bytes}, \
         \"parity_blocks\": {parity_blocks}, \"reps\": {reps}, \"encode_gbps\": {}}},\n    \
         \"decommission\": {{\"off_lost_blocks\": {off_lost}, \
         \"xor_reconstructed_blocks\": {xor_reconstructed}, \
         \"xor_reconstruction_bytes\": {xor_reconstruction_bytes}}},\n    \
         \"chaos_drop\": {{\"drop_rate\": 0.01, \
         \"retransmitted_bytes_off\": {}, \"retransmitted_bytes_xor\": {}, \
         \"reconstructed_blocks_xor\": {}, \"reconstruction_bytes_xor\": {}, \
         \"retransmitted_bytes_saved\": {saved}}}\n  }}",
        num(encode_gbps),
        off_stats.retransmitted_payload_bytes,
        xor_stats.retransmitted_payload_bytes,
        xor_stats.reconstructed_blocks,
        xor_stats.reconstruction_payload_bytes,
    )
}

// ---------------------------------------------------------------------------
// Sparse ML kernels: SDDMM / SpMM throughput and the ALS iteration rate
// ---------------------------------------------------------------------------

/// Local sparse-kernel throughput in GFLOP/s — flops counted over the
/// entries the kernels actually visit (`2·k` per sampled SDDMM entry,
/// `2·n` per stored SpMM entry) — plus end-to-end ALS iterations/s on the
/// real backend, where each iteration runs two SpMM jobs, two dense
/// Grams, two driver-side `f × f` ridge solves, and an SDDMM-sampled
/// objective.
fn bench_sparse(smoke: bool) -> String {
    use distme_engine::{als, AlsConfig, RealSession, SystemProfile};
    use distme_matrix::kernels::{sddmm, spmm};

    let (m, k, n) = if smoke { (64, 48, 64) } else { (512, 256, 512) };
    let every = 16; // ~6% density
    let a = seeded_dense(m, k, 3);
    let b = seeded_dense(k, n, 5);
    let reps = if smoke { 2 } else { 20 };

    let mask = seeded_sparse(m, n, every, 9);
    let mask_nnz = mask.nnz();
    let mut sddmm_best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let c = sddmm::sddmm(&a, &b, &mask).expect("dims agree");
        sddmm_best = sddmm_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&c);
    }
    let sddmm_gflops = 2.0 * k as f64 * mask_nnz as f64 / sddmm_best / 1e9;

    let sa = seeded_sparse(m, k, every, 13);
    let sa_nnz = sa.nnz();
    let mut spmm_best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let c = spmm::csr_dense(&sa, &b).expect("dims agree");
        spmm_best = spmm_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&c);
    }
    let spmm_gflops = 2.0 * sa_nnz as f64 * n as f64 / spmm_best / 1e9;

    // The transpose-aware variant: Aᵀ·B scattered without materializing
    // the transpose (`at` is k-major storage of the same logical operand).
    let at = seeded_sparse(k, m, every, 13);
    let bt = seeded_dense(k, n, 5);
    let mut spmm_t_best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let c = sddmm::csr_t_dense(&at, &bt).expect("dims agree");
        spmm_t_best = spmm_t_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&c);
    }
    let spmm_t_gflops = 2.0 * at.nnz() as f64 * n as f64 / spmm_t_best / 1e9;

    // End-to-end ALS on the real backend.
    let (users, items, factor_dim) = (96u64, 64u64, 16u64);
    let v = MatrixGenerator::with_seed(3)
        .value_range(1.0, 5.0)
        .generate(&MatrixMeta::sparse(users, items, 0.2).with_block_size(16))
        .expect("generates");
    let iterations = if smoke { 2 } else { 8 };
    let cfg = AlsConfig {
        factor_dim,
        iterations,
        lambda: 0.1,
    };
    let mut session = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let t = Instant::now();
    let res = als::run_real(&mut session, &v, &cfg, 42).expect("ALS runs");
    let als_secs = t.elapsed().as_secs_f64();
    let final_objective = res.objective.last().copied().unwrap_or(0.0);
    std::hint::black_box(&res.w);

    format!(
        "{{\n    \"sddmm\": {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"nnz\": {mask_nnz}, \
         \"gflops\": {}}},\n    \
         \"spmm\": {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"nnz\": {sa_nnz}, \
         \"gflops\": {}}},\n    \
         \"spmm_transpose\": {{\"gflops\": {}}},\n    \
         \"als\": {{\"users\": {users}, \"items\": {items}, \"factor_dim\": {factor_dim}, \
         \"iterations\": {iterations}, \"iters_per_sec\": {}, \"final_objective\": {}}}\n  }}",
        num(sddmm_gflops),
        num(spmm_gflops),
        num(spmm_t_gflops),
        num(iterations as f64 / als_secs),
        num(final_objective),
    )
}

// ---------------------------------------------------------------------------
// Job service: multi-tenant submission throughput
// ---------------------------------------------------------------------------

/// Jobs/s of identical multiplies pushed through the job service at 1, 4
/// and 16 concurrent submissions, plus the admission queue-wait tail.
fn bench_service(smoke: bool) -> String {
    use distme_cluster::TenantId;
    use distme_engine::session::RealOps;
    use distme_engine::{JobService, JobSpec, SystemProfile};
    use std::sync::Arc;

    let bs: u64 = if smoke { 16 } else { 32 };
    let dim = 4 * bs;
    let a = Arc::new(
        MatrixGenerator::with_seed(11)
            .value_range(-1.0, 1.0)
            .generate(&MatrixMeta::dense(dim, dim).with_block_size(bs))
            .expect("generates"),
    );
    let b = Arc::new(
        MatrixGenerator::with_seed(22)
            .value_range(-1.0, 1.0)
            .generate(&MatrixMeta::dense(dim, dim).with_block_size(bs))
            .expect("generates"),
    );
    let mut entries = Vec::new();
    for &concurrent in &[1usize, 4, 16] {
        let svc = JobService::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let jobs = if smoke { concurrent } else { concurrent * 4 };
        let t = Instant::now();
        let mut pending = Vec::new();
        for i in 0..jobs {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            pending.push(svc.submit(
                JobSpec::new(TenantId(i as u32 % 4)).priority(i as u8 % 4),
                move |s| s.matmul(&a, &b),
            ));
            // Keep at most `concurrent` jobs in flight.
            if pending.len() == concurrent {
                pending.remove(0).wait().expect("job runs");
            }
        }
        for h in pending {
            h.wait().expect("job runs");
        }
        let secs = t.elapsed().as_secs_f64();
        let waits = svc.queue_wait_stats();
        entries.push(format!(
            "{{\"concurrent\": {concurrent}, \"jobs\": {jobs}, \"jobs_per_sec\": {}, \
             \"queue_wait_p50_secs\": {}, \"queue_wait_p95_secs\": {}}}",
            num(jobs as f64 / secs),
            num(waits.p50_secs),
            num(waits.p95_secs)
        ));
    }
    format!("[\n    {}\n  ]", entries.join(",\n    "))
}

// ---------------------------------------------------------------------------
// JSON self-check (no serde in the workspace): a strict recursive-descent
// parser over the emitted document.
// ---------------------------------------------------------------------------

fn json_check(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    json_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                json_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                json_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => {
                        *pos += 1;
                        skip_ws(b, pos);
                    }
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                json_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at {pos}")),
                }
            }
        }
        Some(b'"') => json_string(b, pos),
        Some(b't') => json_literal(b, pos, "true"),
        Some(b'f') => json_literal(b, pos, "false"),
        Some(b'n') => json_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            Ok(())
        }
        _ => Err(format!("unexpected byte at {pos}")),
    }
}

fn json_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(()),
            b'\\' => *pos += 1,
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn json_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at {pos}"))
    }
}
