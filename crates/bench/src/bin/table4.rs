//! Table 4: sizes of input matrices and the optimal parameters of
//! CuboidMM.
//!
//! Prints, for each of the paper's twelve input shapes, the paper's
//! `(P*, Q*, R*)` and the parameters our exhaustive Eq. 2 search selects,
//! together with the Eq. 4 cost of both — our choice must never cost more.
//!
//! Two pruning regimes are shown: the §3.2 rule (`P·Q·R ≥ M·Tc = 90`) and
//! the node-level floor (`≥ M = 9`) Table 4's small rows are only
//! consistent with (see EXPERIMENTS.md).

use distme_core::optimizer::{cost_bytes, mem_bytes, optimize, OptimizerConfig};
use distme_core::{CuboidSpec, MatmulProblem};

struct Case {
    label: &'static str,
    problem: MatmulProblem,
    paper: (u32, u32, u32),
}

fn cases() -> Vec<Case> {
    let mk = |label, i, k, j, paper| Case {
        label,
        problem: MatmulProblem::dense(i, k, j),
        paper,
    };
    vec![
        mk("70K x 70K x 70K", 70_000, 70_000, 70_000, (4, 7, 4)),
        mk("80K x 80K x 80K", 80_000, 80_000, 80_000, (6, 7, 4)),
        mk("90K x 90K x 90K", 90_000, 90_000, 90_000, (10, 5, 5)),
        mk("100K x 100K x 100K", 100_000, 100_000, 100_000, (7, 9, 5)),
        mk("10K x 100K x 10K", 10_000, 100_000, 10_000, (1, 1, 9)),
        mk("10K x 500K x 10K", 10_000, 500_000, 10_000, (1, 1, 18)),
        mk("10K x 1M x 10K", 10_000, 1_000_000, 10_000, (1, 1, 36)),
        mk("10K x 5M x 10K", 10_000, 5_000_000, 10_000, (1, 1, 176)),
        mk("100K x 1K x 100K", 100_000, 1_000, 100_000, (9, 10, 1)),
        mk("250K x 1K x 250K", 250_000, 1_000, 250_000, (8, 13, 1)),
        mk("500K x 1K x 500K", 500_000, 1_000, 500_000, (17, 24, 1)),
        mk("750K x 1K x 750K", 750_000, 1_000, 750_000, (26, 35, 1)),
    ]
}

fn main() {
    println!("Table 4: optimal CuboidMM parameters (θt = 6 GB)");
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "input (I x K x J)", "paper", "ours(>=90)", "ours(>=9)", "cost paper", "cost ours"
    );
    let strict = OptimizerConfig {
        task_mem_bytes: 6_000_000_000,
        min_parallelism: 90,
    };
    let node_floor = OptimizerConfig {
        task_mem_bytes: 6_000_000_000,
        min_parallelism: 9,
    };
    let mut worse = 0;
    for case in cases() {
        let t0 = std::time::Instant::now();
        let o90 = optimize(&case.problem, &strict);
        let o9 = optimize(&case.problem, &node_floor);
        let search_secs = t0.elapsed().as_secs_f64();

        let paper_spec = CuboidSpec::new(case.paper.0, case.paper.1, case.paper.2);
        let paper_cost = cost_bytes(&case.problem, paper_spec) as f64 / 1e9;
        let ours = o9.expect("every Table 4 shape is feasible at θt = 6 GB");
        let ours_cost = ours.cost_bytes as f64 / 1e9;
        if ours_cost > paper_cost {
            worse += 1;
        }
        println!(
            "{:<22} {:>12} {:>14} {:>14} {:>10.1}GB {:>10.1}GB   ({search_secs:.3}s search)",
            case.label,
            format!("{paper_spec}"),
            o90.map(|o| o.spec.to_string())
                .unwrap_or_else(|| "-".into()),
            ours.spec.to_string(),
            paper_cost,
            ours_cost,
        );
        assert!(
            mem_bytes(&case.problem, ours.spec) <= 6_000_000_000,
            "optimizer violated θt"
        );
    }
    println!(
        "\nrows where our Eq.2 search costs more than the paper's parameters: {worse} (expect 0)"
    );
    println!(
        "note: '§3.2 says the search itself takes 0.3 s for 100K x 100K; ours is shown per row'"
    );
}
