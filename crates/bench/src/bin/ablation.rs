//! Ablations of the design choices DESIGN.md calls out — each knob turned
//! off in isolation, measured on representative paper-scale workloads.
//!
//! 1. **GPU streaming** (Algorithm 1 vs the naive §4.3 schedule);
//! 2. **Cuboid sharing** (CuboidMM vs RMM's voxel hashing vs CRMM's cubic
//!    logical blocks — the related-work ablation of §7);
//! 3. **Optimizer pruning floor** (`P·Q·R ≥ M·Tc` vs node-level `≥ M`);
//! 4. **Multi-GPU per node** (the paper's future work);
//! 5. **Dynamic load balancing** (future work) on a ragged cuboid grid;
//! 6. **Block size** sweep around the paper's 1000 × 1000 default.
//!
//! Usage: `ablation [streaming|sharing|pruning|multi-gpu|balancing|block-size|all]`

use distme_cluster::{ClusterConfig, SimCluster};
use distme_core::optimizer::{self, OptimizerConfig};
use distme_core::{sim_exec, MatmulProblem, MulMethod, ResolvedMethod};
use distme_matrix::MatrixMeta;

fn problem(i: u64, k: u64, j: u64) -> MatmulProblem {
    MatmulProblem::new(MatrixMeta::sparse(i, k, 0.5), MatrixMeta::sparse(k, j, 0.5))
        .expect("consistent")
}

fn elapsed(cfg: ClusterConfig, p: &MatmulProblem, m: MulMethod) -> String {
    let mut sim = SimCluster::new(cfg);
    match sim_exec::simulate(&mut sim, p, m) {
        Ok(s) => format!("{:.0}s", s.elapsed_secs),
        Err(e) => e.annotation().to_string(),
    }
}

fn streaming() {
    println!("\n== Ablation 1: GPU streaming (Algorithm 1) vs naive copy-then-compute ==");
    let base = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
    let mut naive = base;
    naive.gpu_streaming = false;
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "workload", "streamed", "naive", "gain"
    );
    for (label, p) in [
        ("70K^3", problem(70_000, 70_000, 70_000)),
        ("100K^3", problem(100_000, 100_000, 100_000)),
        ("10K x 1M x 10K", problem(10_000, 1_000_000, 10_000)),
    ] {
        let s = {
            let mut sim = SimCluster::new(base);
            sim_exec::simulate(&mut sim, &p, MulMethod::CuboidAuto)
                .expect("runs")
                .elapsed_secs
        };
        let n = {
            let mut sim = SimCluster::new(naive);
            sim_exec::simulate(&mut sim, &p, MulMethod::CuboidAuto)
                .expect("runs")
                .elapsed_secs
        };
        println!(
            "{:<22} {:>11.0}s {:>11.0}s {:>9.1}%",
            label,
            s,
            n,
            (n - s) / n * 100.0
        );
    }
    println!(
        "(§4.3: with Tc tasks sharing each device through MPS, inter-task interleaving\n         already hides most copy time; the intra-task gain appears when one task owns\n         the device — see `cargo run --release --example gpu_streaming`)"
    );
}

fn sharing() {
    println!("\n== Ablation 2: communication sharing — CuboidMM vs CRMM vs RMM ==");
    let cfg = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "workload", "CuboidMM", "CRMM", "RMM"
    );
    for (label, p) in [
        ("70K^3", problem(70_000, 70_000, 70_000)),
        ("10K x 500K x 10K", problem(10_000, 500_000, 10_000)),
        ("250K x 1K x 250K", problem(250_000, 1_000, 250_000)),
    ] {
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            label,
            elapsed(cfg, &p, MulMethod::CuboidAuto),
            elapsed(cfg, &p, MulMethod::Crmm),
            elapsed(cfg, &p, MulMethod::Rmm),
        );
    }
    println!("(§7: cubic logical blocks recover most of RMM's loss; free-form cuboids the rest)");
}

fn pruning() {
    println!("\n== Ablation 3: optimizer parallelism floor ==");
    println!(
        "{:<22} {:>14} {:>14} {:>16} {:>16}",
        "workload", ">=M*Tc spec", ">=M spec", "cost (>=M*Tc)", "cost (>=M)"
    );
    for (label, p) in [
        ("10K x 100K x 10K", problem(10_000, 100_000, 10_000)),
        ("10K x 1M x 10K", problem(10_000, 1_000_000, 10_000)),
        ("100K x 1K x 100K", problem(100_000, 1_000, 100_000)),
    ] {
        let strict = optimizer::optimize(
            &p,
            &OptimizerConfig {
                task_mem_bytes: 6_000_000_000,
                min_parallelism: 90,
            },
        )
        .expect("feasible");
        let loose = optimizer::optimize(
            &p,
            &OptimizerConfig {
                task_mem_bytes: 6_000_000_000,
                min_parallelism: 9,
            },
        )
        .expect("feasible");
        println!(
            "{:<22} {:>14} {:>14} {:>14.0}GB {:>14.0}GB",
            label,
            strict.spec.to_string(),
            loose.spec.to_string(),
            strict.cost_bytes as f64 / 1e9,
            loose.cost_bytes as f64 / 1e9,
        );
    }
    println!("(lower floor → fewer, bigger cuboids → less replication, less parallelism)");
}

fn multi_gpu() {
    println!("\n== Ablation 4 (future work): multiple GPUs per node ==");
    let p = problem(100_000, 100_000, 100_000);
    println!("{:<12} {:>12} {:>12}", "GPUs/node", "elapsed", "speedup");
    let mut baseline = None;
    for gpus in [1usize, 2, 4] {
        let mut cfg = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
        cfg.gpus_per_node = gpus;
        let mut sim = SimCluster::new(cfg);
        let secs = sim_exec::simulate(&mut sim, &p, MulMethod::CuboidAuto)
            .expect("runs")
            .elapsed_secs;
        let base = *baseline.get_or_insert(secs);
        println!("{:<12} {:>11.0}s {:>11.2}x", gpus, secs, base / secs);
    }
    println!("(kernel-bound workloads scale with devices until PCI-E/NIC dominate)");
}

fn balancing() {
    println!("\n== Ablation 5 (future work): dynamic load balancing on a ragged grid ==");
    // 95 x 95 x 95 blocks under (7, 7, 7): ceil width 14 makes the last
    // slab only 11 blocks — static round-robin placement wastes slots.
    let p = problem(95_000, 95_000, 95_000);
    let spec = distme_core::CuboidSpec::new(7, 7, 7);
    for dynamic in [false, true] {
        let mut cfg = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
        cfg.dynamic_scheduling = dynamic;
        let resolved = ResolvedMethod::resolve(
            MulMethod::Cuboid(spec),
            &p,
            &OptimizerConfig::from_cluster(&cfg),
        );
        let mut sim = SimCluster::new(cfg);
        let secs = sim_exec::simulate_resolved(&mut sim, &p, &resolved)
            .expect("runs")
            .elapsed_secs;
        println!(
            "{:<28} {:>10.0}s",
            if dynamic {
                "dynamic (earliest-free node)"
            } else {
                "static round-robin"
            },
            secs
        );
    }
}

fn block_size() {
    println!("\n== Ablation 6: block size (paper default 1000 x 1000) ==");
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "block", "(P*,Q*,R*)", "elapsed", "comm (GB)"
    );
    for bs in [500u64, 1000, 2000, 4000] {
        let a = MatrixMeta::sparse(70_000, 70_000, 0.5).with_block_size(bs);
        let b = MatrixMeta::sparse(70_000, 70_000, 0.5).with_block_size(bs);
        let p = MatmulProblem::new(a, b).expect("consistent");
        let cfg = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
        let spec = optimizer::optimize(&p, &OptimizerConfig::from_cluster(&cfg))
            .map(|o| o.spec.to_string())
            .unwrap_or_else(|| "infeasible".into());
        let mut sim = SimCluster::new(cfg);
        match sim_exec::simulate(&mut sim, &p, MulMethod::CuboidAuto) {
            Ok(s) => println!(
                "{:<12} {:>14} {:>13.0}s {:>16.0}",
                bs,
                spec,
                s.elapsed_secs,
                s.communication_bytes() as f64 / 1e9
            ),
            Err(e) => println!("{:<12} {:>14} {:>14}", bs, spec, e.annotation()),
        }
    }
    println!("(finer blocks → finer cuboid granularity but more per-block overhead)");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "streaming" => streaming(),
        "sharing" => sharing(),
        "pruning" => pruning(),
        "multi-gpu" => multi_gpu(),
        "balancing" => balancing(),
        "block-size" => block_size(),
        "all" => {
            streaming();
            sharing();
            pruning();
            multi_gpu();
            balancing();
            block_size();
        }
        other => {
            eprintln!(
                "unknown ablation '{other}'; use streaming|sharing|pruning|multi-gpu|balancing|block-size|all"
            );
            std::process::exit(2);
        }
    }
}
