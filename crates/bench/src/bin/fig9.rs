//! Figure 9 (Appendix B): elapsed time and communication while varying
//! (P, Q, R) around the optimum for 70K x 70K x 70K.
//!
//! The paper sweeps (P, R) at Q ∈ {7, 10, 14} for the time panel, and the
//! specific parameter list of Fig. 9(b) for the communication panel,
//! asserting the optimizer's (4, 7, 4) is the minimum of both.

use distme_cluster::{ClusterConfig, SimCluster};
use distme_core::optimizer::{cost_bytes, OptimizerConfig};
use distme_core::{sim_exec, CuboidSpec, MatmulProblem, MulMethod, ResolvedMethod};
use distme_matrix::MatrixMeta;

fn problem() -> MatmulProblem {
    MatmulProblem::new(
        MatrixMeta::sparse(70_000, 70_000, 0.5),
        MatrixMeta::sparse(70_000, 70_000, 0.5),
    )
    .expect("consistent")
}

fn simulate_spec(p: &MatmulProblem, spec: CuboidSpec) -> Result<f64, String> {
    let mut sim = SimCluster::new(ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX));
    let resolved = ResolvedMethod::resolve(
        MulMethod::Cuboid(spec),
        p,
        &OptimizerConfig::from_cluster(sim.config()),
    );
    sim_exec::simulate_resolved(&mut sim, p, &resolved)
        .map(|s| s.elapsed_secs)
        .map_err(|e| e.annotation().to_string())
}

fn main() {
    let prob = problem();

    // Fig. 9(a): elapsed times while varying (P, R) for Q in {7, 10, 14}.
    // Paper series (seconds):
    //   Q=7 : (10,4)=237 (8,4)=232 (6,4)=223 (4,4)=206 (4,5)=215 (4,6)=232 (4,7)=239
    //   Q=10: (10,4)=244 (8,4)=243 (6,4)=232 (4,4)=220 (4,5)=232 (4,6)=239 (4,7)=240
    //   Q=14: (10,4)=269 (8,4)=266 (6,4)=256 (4,4)=232 (4,5)=243 (4,6)=251 (4,7)=255
    let pr_points: [(u32, u32); 7] = [(10, 4), (8, 4), (6, 4), (4, 4), (4, 5), (4, 6), (4, 7)];
    let paper_times: [(u32, [f64; 7]); 3] = [
        (7, [237.0, 232.0, 223.0, 206.0, 215.0, 232.0, 239.0]),
        (10, [244.0, 243.0, 232.0, 220.0, 232.0, 239.0, 240.0]),
        (14, [269.0, 266.0, 256.0, 232.0, 243.0, 251.0, 255.0]),
    ];
    println!("== Fig. 9(a): elapsed time (s) while varying (P, Q, R), 70K^3 ==");
    println!("{:<10} {:>4} {:>14} {:>14}", "(P,R)", "Q", "paper", "ours");
    let mut ours_q7 = Vec::new();
    for (q, papers) in paper_times {
        for (idx, &(p, r)) in pr_points.iter().enumerate() {
            let spec = CuboidSpec::new(p, q, r);
            let ours = simulate_spec(&prob, spec);
            let ours_str = match &ours {
                Ok(v) => format!("{v:.0}"),
                Err(a) => a.clone(),
            };
            println!(
                "{:<10} {:>4} {:>14.0} {:>14}",
                format!("({p},{r})"),
                q,
                papers[idx],
                ours_str
            );
            if q == 7 {
                ours_q7.push(((p, q, r), ours.ok()));
            }
        }
    }
    // The paper's optimum (4,7,4) should be the fastest point of the Q=7
    // series in our simulation too.
    if let Some(best) = ours_q7
        .iter()
        .filter_map(|(spec, v)| v.map(|v| (*spec, v)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
    {
        println!(
            "fastest Q=7 point (ours): (P,Q,R)=({},{},{}) at {:.0}s  [paper: (4,7,4) at 206s]",
            best.0 .0, best.0 .1, best.0 .2, best.1
        );
    }

    // Fig. 9(b): amount of transferred data + Cost() while varying (P,Q,R).
    // Paper: measured GB = [5.6, 4.7, 2.5, 1.7, 2.1, 4.4, 5.5] for
    // [(10,7,4),(8,7,4),(6,7,4),(4,7,4),(4,7,5),(4,7,6),(4,7,7)].
    let sweep: [(u32, u32, u32); 7] = [
        (10, 7, 4),
        (8, 7, 4),
        (6, 7, 4),
        (4, 7, 4),
        (4, 7, 5),
        (4, 7, 6),
        (4, 7, 7),
    ];
    let paper_gb = [5.6, 4.7, 2.5, 1.7, 2.1, 4.4, 5.5];
    println!("\n== Fig. 9(b): communication while varying (P, Q, R), 70K^3 ==");
    println!(
        "{:<12} {:>14} {:>16} {:>16}",
        "(P,Q,R)", "paper (GB)", "ours logical(GB)", "Cost() (GB)"
    );
    let mut measured = Vec::new();
    for (idx, &(p, q, r)) in sweep.iter().enumerate() {
        let spec = CuboidSpec::new(p, q, r);
        let mut sim = SimCluster::new(ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX));
        let resolved = ResolvedMethod::resolve(
            MulMethod::Cuboid(spec),
            &prob,
            &OptimizerConfig::from_cluster(sim.config()),
        );
        let stats = sim_exec::simulate_resolved(&mut sim, &prob, &resolved)
            .expect("all sweep points are feasible");
        let ours = stats.communication_bytes() as f64 / 1e9;
        let cost = cost_bytes(&prob, spec) as f64 / 1e9;
        println!(
            "{:<12} {:>14.1} {:>16.1} {:>16.1}",
            spec.to_string(),
            paper_gb[idx],
            ours,
            cost
        );
        measured.push(((p, q, r), ours));
    }
    let min = measured
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    println!(
        "minimum-communication point (ours): {:?}  [paper: (4,7,4)]",
        min.0
    );
    assert_eq!(
        min.0,
        (4, 7, 4),
        "the optimum must minimize measured communication"
    );
    println!("ok: (4,7,4) minimizes measured communication, matching Fig. 9(b)");
}
