//! Criterion micro-benchmarks for the CuboidMM parameter search — §3.2
//! claims "determination of the optimal parameters takes only 0.3 seconds
//! using a single thread" for 100K x 100K; these benches verify our search
//! is comfortably inside that budget, plus the subcuboid search of §4.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distme_core::optimizer::{optimize, OptimizerConfig};
use distme_core::subcuboid::{self, CuboidSides};
use distme_core::MatmulProblem;

fn paper_cfg() -> OptimizerConfig {
    OptimizerConfig {
        task_mem_bytes: 6_000_000_000,
        min_parallelism: 90,
    }
}

fn bench_cuboid_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuboid_optimizer");
    let cases = [
        ("100K^3", MatmulProblem::dense(100_000, 100_000, 100_000)),
        (
            "10K x 5M x 10K",
            MatmulProblem::dense(10_000, 5_000_000, 10_000),
        ),
        (
            "750K x 1K x 750K",
            MatmulProblem::dense(750_000, 1_000, 750_000),
        ),
    ];
    for (label, problem) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &problem, |bench, p| {
            bench.iter(|| optimize(p, &paper_cfg()).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_subcuboid_search(c: &mut Criterion) {
    let sides = CuboidSides {
        extents: (18, 12, 25),
        a_block_bytes: 8_000_000,
        b_block_bytes: 8_000_000,
        c_block_bytes: 8_000_000,
    };
    c.bench_function("subcuboid_optimizer_theta_g_1GB", |bench| {
        bench.iter(|| subcuboid::optimize(&sides, 1_000_000_000).expect("feasible"));
    });
}

criterion_group!(benches, bench_cuboid_search, bench_subcuboid_search);
criterion_main!(benches);
