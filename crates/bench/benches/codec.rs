//! Criterion micro-benchmarks for the block codec — the shuffle's
//! serialization path (§5 credits SparkSQL-style serialization for part of
//! DistME's win; this is our equivalent).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use distme_matrix::{codec, Block, CsrBlock, DenseBlock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dense_block(n: usize) -> Block {
    let mut rng = StdRng::seed_from_u64(1);
    Block::Dense(DenseBlock::from_fn(n, n, |_, _| rng.gen()))
}

fn sparse_block(n: usize, density: f64) -> Block {
    let mut rng = StdRng::seed_from_u64(2);
    let mut trips = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if rng.gen::<f64>() < density {
                trips.push((i, j, rng.gen::<f64>() + 0.1));
            }
        }
    }
    Block::Sparse(CsrBlock::from_triplets(n, n, trips).expect("valid"))
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_encode");
    for (label, block) in [
        ("dense_256", dense_block(256)),
        ("sparse_512_1pct", sparse_block(512, 0.01)),
    ] {
        group.throughput(Throughput::Bytes(codec::encoded_len(&block)));
        group.bench_with_input(BenchmarkId::from_parameter(label), &block, |bench, b| {
            bench.iter(|| codec::encode(b));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_decode");
    for (label, block) in [
        ("dense_256", dense_block(256)),
        ("sparse_512_1pct", sparse_block(512, 0.01)),
    ] {
        let bytes = codec::encode(&block);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &bytes, |bench, b| {
            bench.iter(|| codec::decode(b.clone()).expect("valid payload"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
