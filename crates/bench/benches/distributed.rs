//! Criterion benchmarks for the distributed paths: real end-to-end
//! multiplies per method at laptop scale (the measured counterpart of the
//! simulated figures), and the paper-scale simulation itself (which must
//! be fast enough to sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distme_cluster::{ClusterConfig, LocalCluster, SimCluster};
use distme_core::{real_exec, sim_exec, MatmulProblem, MulMethod};
use distme_matrix::{BlockMatrix, MatrixGenerator, MatrixMeta};

fn operands() -> (BlockMatrix, BlockMatrix) {
    let am = MatrixMeta::dense(512, 512).with_block_size(128);
    let bm = MatrixMeta::dense(512, 512).with_block_size(128);
    (
        MatrixGenerator::with_seed(1).generate(&am).expect("gen"),
        MatrixGenerator::with_seed(2).generate(&bm).expect("gen"),
    )
}

fn bench_real_methods(c: &mut Criterion) {
    let (a, b) = operands();
    let cluster = LocalCluster::new(ClusterConfig::laptop());
    let mut group = c.benchmark_group("real_multiply_512");
    group.sample_size(10);
    for method in [
        MulMethod::Bmm,
        MulMethod::Cpmm,
        MulMethod::Rmm,
        MulMethod::CuboidAuto,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |bench, &m| {
                bench.iter(|| real_exec::multiply(&cluster, &a, &b, m).expect("succeeds"));
            },
        );
    }
    group.finish();
}

fn bench_single_node_reference(c: &mut Criterion) {
    let (a, b) = operands();
    let mut group = c.benchmark_group("single_node_reference_512");
    group.sample_size(10);
    group.bench_function("block_matrix_multiply", |bench| {
        bench.iter(|| a.multiply(&b).expect("succeeds"));
    });
    group.finish();
}

fn bench_simulation_speed(c: &mut Criterion) {
    // One paper-scale simulated job must run in milliseconds so the
    // harness can sweep entire figures.
    let p = MatmulProblem::dense(100_000, 100_000, 100_000);
    c.bench_function("simulate_cuboid_100K_cubed", |bench| {
        bench.iter(|| {
            let mut sim = SimCluster::new(ClusterConfig::paper_cluster_gpu());
            sim_exec::simulate(&mut sim, &p, MulMethod::CuboidAuto).expect("succeeds")
        });
    });
}

criterion_group!(
    benches,
    bench_real_methods,
    bench_single_node_reference,
    bench_simulation_speed
);
criterion_main!(benches);
