//! Criterion benchmarks for GNMF: one real multiplicative-update iteration
//! at laptop scale, and one simulated iteration at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use distme_cluster::ClusterConfig;
use distme_engine::gnmf::{self, GnmfConfig};
use distme_engine::{RatingDataset, RealSession, SystemProfile};

fn bench_real_iteration(c: &mut Criterion) {
    let v = RatingDataset::MOVIELENS
        .scaled(800)
        .materialize(64, 42)
        .expect("generates");
    let mut group = c.benchmark_group("gnmf_real");
    group.sample_size(10);
    group.bench_function("one_iteration_movielens_scaled", |bench| {
        bench.iter(|| {
            let mut session = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
            gnmf::run_real(
                &mut session,
                &v,
                &GnmfConfig {
                    factor_dim: 16,
                    iterations: 1,
                },
                7,
            )
            .expect("succeeds")
        });
    });
    group.finish();
}

fn bench_simulated_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnmf_sim");
    group.sample_size(10);
    group.bench_function("yahoo_two_iterations", |bench| {
        bench.iter(|| {
            gnmf::simulate(
                ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX),
                SystemProfile::DistMe,
                &RatingDataset::YAHOO_MUSIC,
                &GnmfConfig {
                    factor_dim: 200,
                    iterations: 2,
                },
            )
            .expect("succeeds")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_real_iteration, bench_simulated_run);
criterion_main!(benches);
