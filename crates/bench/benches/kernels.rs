//! Criterion micro-benchmarks for the local kernels — the substitutes for
//! MKL/cuBLAS/cuSPARSE whose throughput calibrates the simulator's
//! compute-rate constants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use distme_matrix::kernels::{gemm, spgemm, spmm};
use distme_matrix::{CsrBlock, DenseBlock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dense(rows: usize, cols: usize, seed: u64) -> DenseBlock {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseBlock::from_fn(rows, cols, |_, _| rng.gen::<f64>() - 0.5)
}

fn sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrBlock {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trips = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if rng.gen::<f64>() < density {
                trips.push((i, j, rng.gen::<f64>() + 0.1));
            }
        }
    }
    CsrBlock::from_triplets(rows, cols, trips).expect("valid triplets")
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [128usize, 256, 512] {
        let a = dense(n, n, 1);
        let b = dense(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut out = DenseBlock::zeros(n, n);
            bench.iter(|| gemm::gemm(1.0, &a, &b, 0.0, &mut out).expect("dims match"));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_dense");
    for density in [0.01f64, 0.1] {
        let a = sparse(512, 512, density, 3);
        let b = dense(512, 128, 4);
        group.throughput(Throughput::Elements((2 * a.nnz() * 128) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("density_{density}")),
            &density,
            |bench, _| {
                bench.iter(|| spmm::csr_dense(&a, &b).expect("dims match"));
            },
        );
    }
    group.finish();
}

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    let a = sparse(512, 512, 0.02, 5);
    let b = sparse(512, 512, 0.02, 6);
    group.bench_function("csr_csr_512_2pct", |bench| {
        bench.iter(|| spgemm::csr_csr(&a, &b).expect("dims match"));
    });
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let a = dense(512, 512, 7);
    c.bench_function("dense_transpose_512", |bench| bench.iter(|| a.transpose()));
}

criterion_group!(
    benches,
    bench_gemm,
    bench_spmm,
    bench_spgemm,
    bench_transpose
);
criterion_main!(benches);
