//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds from simulation start.
///
/// Stored as `f64`; all simulation arithmetic is deterministic (no wall-clock
/// involvement), so equal inputs always give bit-equal times.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point at `secs` seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or NaN — virtual time is always a valid
    /// forward offset (internal invariant).
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid sim time {secs}");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: f64) -> SimTime {
        debug_assert!(secs >= 0.0, "cannot move time backwards by {secs}");
        SimTime(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1.5) + 2.5;
        assert_eq!(t.as_secs(), 4.0);
        assert_eq!(t - SimTime::from_secs(1.0), 3.0);
        assert_eq!(t.since(SimTime::from_secs(10.0)), 0.0);
    }

    #[test]
    fn ordering_helpers() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.23456).to_string(), "1.235s");
    }
}
