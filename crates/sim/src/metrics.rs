//! Simulation metrics helpers.

use crate::time::SimTime;

/// Accumulates busy intervals of a resource to compute utilization over a
/// window — used for the GPU core utilization the paper measures with
//  `nvidia-smi` (Fig. 7(g)).
///
/// Intervals may be recorded out of order; overlapping intervals are merged
/// when utilization is computed, so concurrent kernels on different streams
/// don't double-count.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    intervals: Vec<(f64, f64)>,
}

impl BusyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval `[start, end]`.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        let (s, e) = (start.as_secs(), end.as_secs());
        if e > s {
            self.intervals.push((s, e));
        }
    }

    /// Total busy seconds after merging overlaps.
    pub fn busy_secs(&self) -> f64 {
        let mut iv = self.intervals.clone();
        iv.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("times are never NaN"));
        let mut total = 0.0;
        let mut cur: Option<(f64, f64)> = None;
        for (s, e) in iv {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    total += ce - cs;
                    cur = Some((s, e));
                    let _ = cs;
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    /// Utilization over `[window_start, window_end]`: merged busy time
    /// clipped to the window, divided by the window length. Returns 0 for an
    /// empty window.
    pub fn utilization(&self, window_start: SimTime, window_end: SimTime) -> f64 {
        let (ws, we) = (window_start.as_secs(), window_end.as_secs());
        if we <= ws {
            return 0.0;
        }
        let clipped = BusyTracker {
            intervals: self
                .intervals
                .iter()
                .filter_map(|&(s, e)| {
                    let cs = s.max(ws);
                    let ce = e.min(we);
                    (ce > cs).then_some((cs, ce))
                })
                .collect(),
        };
        clipped.busy_secs() / (we - ws)
    }

    /// Latest recorded end time.
    pub fn last_end(&self) -> SimTime {
        SimTime::from_secs(self.intervals.iter().map(|&(_, e)| e).fold(0.0, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disjoint_intervals_sum() {
        let mut b = BusyTracker::new();
        b.record(t(0.0), t(1.0));
        b.record(t(2.0), t(4.0));
        assert_eq!(b.busy_secs(), 3.0);
    }

    #[test]
    fn overlapping_intervals_merge() {
        let mut b = BusyTracker::new();
        b.record(t(0.0), t(2.0));
        b.record(t(1.0), t(3.0));
        b.record(t(2.5), t(2.75));
        assert_eq!(b.busy_secs(), 3.0);
    }

    #[test]
    fn out_of_order_recording() {
        let mut b = BusyTracker::new();
        b.record(t(5.0), t(6.0));
        b.record(t(0.0), t(1.0));
        assert_eq!(b.busy_secs(), 2.0);
    }

    #[test]
    fn utilization_clips_to_window() {
        let mut b = BusyTracker::new();
        b.record(t(0.0), t(4.0));
        assert!((b.utilization(t(2.0), t(6.0)) - 0.5).abs() < 1e-12);
        assert_eq!(b.utilization(t(10.0), t(12.0)), 0.0);
        assert_eq!(b.utilization(t(3.0), t(3.0)), 0.0);
    }

    #[test]
    fn zero_length_intervals_ignored() {
        let mut b = BusyTracker::new();
        b.record(t(1.0), t(1.0));
        assert_eq!(b.busy_secs(), 0.0);
        assert_eq!(b.last_end().as_secs(), 0.0);
    }

    #[test]
    fn last_end_tracks_max() {
        let mut b = BusyTracker::new();
        b.record(t(0.0), t(9.0));
        b.record(t(1.0), t(2.0));
        assert_eq!(b.last_end().as_secs(), 9.0);
    }
}
