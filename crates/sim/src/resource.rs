//! Contended resources with virtual-time timelines.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A fixed-rate FIFO server: requests are served one at a time, in request
/// order, at `rate` units/second.
///
/// Models resources whose service is effectively serialized: a node's NIC
/// (bytes/s), the PCI-E H2D copy engine ("H2D copies of these streams cannot
/// overlap with each other", §4.3), a saturated GPU SM array (flop/s), or a
/// disk (bytes/s).
#[derive(Debug, Clone)]
pub struct FifoServer {
    rate: f64,
    free_at: SimTime,
    busy: f64,
    served: f64,
}

impl FifoServer {
    /// Creates a server with the given service rate (units/second).
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite rate (configuration bug).
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid server rate {rate}");
        FifoServer {
            rate,
            free_at: SimTime::ZERO,
            busy: 0.0,
            served: 0.0,
        }
    }

    /// Requests service of `amount` units, becoming ready at `ready`.
    /// Returns `(start, done)` times.
    pub fn request(&mut self, ready: SimTime, amount: f64) -> (SimTime, SimTime) {
        debug_assert!(amount >= 0.0, "negative service amount");
        if amount == 0.0 {
            // Zero work neither waits for the queue nor occupies it.
            return (ready, ready);
        }
        let start = ready.max(self.free_at);
        let duration = amount / self.rate;
        let done = start + duration;
        self.free_at = done;
        self.busy += duration;
        self.served += amount;
        (start, done)
    }

    /// Time at which the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy seconds accumulated.
    pub fn busy_secs(&self) -> f64 {
        self.busy
    }

    /// Total units served.
    pub fn total_served(&self) -> f64 {
        self.served
    }

    /// Service rate in units/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// `k` identical parallel servers; each request occupies one server for a
/// caller-computed duration.
///
/// Models Spark's `Tc` concurrent task slots per node and CUDA's concurrent
/// stream limit. Requests are admitted greedily onto the earliest-free slot.
#[derive(Debug, Clone)]
pub struct SlotPool {
    free_times: BinaryHeap<Reverse<OrderedTime>>,
    slots: usize,
}

/// `f64` wrapper giving `SimTime` a total order inside the heap. Virtual
/// times are never NaN (checked at construction), so the order is total.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedTime(f64);

impl Eq for OrderedTime {}
impl PartialOrd for OrderedTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("sim times are never NaN")
    }
}

impl SlotPool {
    /// Creates a pool of `slots` parallel servers, all free at time zero.
    ///
    /// # Panics
    /// Panics when `slots == 0` (configuration bug).
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "slot pool needs at least one slot");
        let mut free_times = BinaryHeap::with_capacity(slots);
        for _ in 0..slots {
            free_times.push(Reverse(OrderedTime(0.0)));
        }
        SlotPool { free_times, slots }
    }

    /// Acquires a slot for `duration` seconds, not before `ready`.
    /// Returns `(start, done)`.
    pub fn acquire(&mut self, ready: SimTime, duration: f64) -> (SimTime, SimTime) {
        debug_assert!(duration >= 0.0);
        let Reverse(OrderedTime(earliest)) = self
            .free_times
            .pop()
            .expect("pool always has `slots` entries");
        let start = ready.max(SimTime::from_secs(earliest));
        let done = start + duration;
        self.free_times.push(Reverse(OrderedTime(done.as_secs())));
        (start, done)
    }

    /// Two-phase acquisition for callers that only learn the occupancy
    /// duration *after* seeing the start time (e.g. a task whose network
    /// fetches depend on when its slot frees up): pops the earliest-free
    /// slot and returns the start time. The caller **must** pair this with
    /// [`SlotPool::release`] or the slot is lost.
    pub fn acquire_at(&mut self, ready: SimTime) -> SimTime {
        let Reverse(OrderedTime(earliest)) = self
            .free_times
            .pop()
            .expect("pool always has `slots` entries");
        ready.max(SimTime::from_secs(earliest))
    }

    /// Returns a slot taken with [`SlotPool::acquire_at`], free from `done`.
    pub fn release(&mut self, done: SimTime) {
        assert!(
            self.free_times.len() < self.slots,
            "release without matching acquire_at"
        );
        self.free_times.push(Reverse(OrderedTime(done.as_secs())));
    }

    /// Earliest time any slot becomes free (for placement decisions).
    pub fn earliest_free(&self) -> SimTime {
        let Reverse(OrderedTime(t)) = self
            .free_times
            .peek()
            .expect("pool always has `slots` entries");
        SimTime::from_secs(*t)
    }

    /// Time when all slots are idle (makespan of admitted work).
    pub fn all_free_at(&self) -> SimTime {
        let latest = self
            .free_times
            .iter()
            .map(|Reverse(OrderedTime(t))| *t)
            .fold(0.0, f64::max);
        SimTime::from_secs(latest)
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

/// Error raised when a [`Gauge`] allocation exceeds capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeError {
    /// Requested additional amount.
    pub requested: u64,
    /// Level before the failed allocation.
    pub in_use: u64,
    /// Capacity limit.
    pub capacity: u64,
}

impl std::fmt::Display for GaugeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "allocation of {} exceeds capacity {} (in use: {})",
            self.requested, self.capacity, self.in_use
        )
    }
}

impl std::error::Error for GaugeError {}

/// A capacity counter with peak tracking.
///
/// Models bounded memories: a task's heap budget θt, GPU device memory θg,
/// or cluster disk. Exceeding the capacity is reported as an error so the
/// caller can surface the paper's O.O.M./E.D.C. failure annotations.
#[derive(Debug, Clone)]
pub struct Gauge {
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl Gauge {
    /// Creates a gauge with `capacity` units (bytes, typically).
    pub fn new(capacity: u64) -> Self {
        Gauge {
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Allocates `amount` units.
    ///
    /// # Errors
    /// Returns [`GaugeError`] when the allocation would exceed capacity;
    /// the gauge is left unchanged.
    pub fn alloc(&mut self, amount: u64) -> Result<(), GaugeError> {
        let new = self.in_use.saturating_add(amount);
        if new > self.capacity {
            return Err(GaugeError {
                requested: amount,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use = new;
        self.peak = self.peak.max(new);
        Ok(())
    }

    /// Releases `amount` units (saturates at zero).
    pub fn free(&mut self, amount: u64) {
        self.in_use = self.in_use.saturating_sub(amount);
    }

    /// Currently allocated units.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark since creation.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Capacity limit.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Remaining headroom.
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_server_serializes_requests() {
        let mut nic = FifoServer::new(100.0); // 100 B/s
        let (s1, d1) = nic.request(SimTime::ZERO, 200.0);
        assert_eq!(s1.as_secs(), 0.0);
        assert_eq!(d1.as_secs(), 2.0);
        // Second request ready at t=1 must wait until t=2.
        let (s2, d2) = nic.request(SimTime::from_secs(1.0), 100.0);
        assert_eq!(s2.as_secs(), 2.0);
        assert_eq!(d2.as_secs(), 3.0);
        assert_eq!(nic.busy_secs(), 3.0);
        assert_eq!(nic.total_served(), 300.0);
    }

    #[test]
    fn fifo_server_idle_gap() {
        let mut s = FifoServer::new(10.0);
        s.request(SimTime::ZERO, 10.0); // done at 1.0
        let (start, done) = s.request(SimTime::from_secs(5.0), 10.0);
        assert_eq!(start.as_secs(), 5.0);
        assert_eq!(done.as_secs(), 6.0);
        assert_eq!(s.busy_secs(), 2.0); // gaps don't count as busy
    }

    #[test]
    #[should_panic(expected = "invalid server rate")]
    fn zero_rate_rejected() {
        let _ = FifoServer::new(0.0);
    }

    #[test]
    fn slot_pool_runs_k_in_parallel() {
        let mut pool = SlotPool::new(2);
        let (_, d1) = pool.acquire(SimTime::ZERO, 10.0);
        let (_, d2) = pool.acquire(SimTime::ZERO, 10.0);
        assert_eq!(d1.as_secs(), 10.0);
        assert_eq!(d2.as_secs(), 10.0);
        // Third task waits for a slot.
        let (s3, d3) = pool.acquire(SimTime::ZERO, 5.0);
        assert_eq!(s3.as_secs(), 10.0);
        assert_eq!(d3.as_secs(), 15.0);
        assert_eq!(pool.all_free_at().as_secs(), 15.0);
    }

    #[test]
    fn slot_pool_wave_scheduling_matches_spark() {
        // 10 equal tasks over 3 slots => ceil(10/3) = 4 waves.
        let mut pool = SlotPool::new(3);
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let (_, done) = pool.acquire(SimTime::ZERO, 1.0);
            last = last.max(done);
        }
        assert_eq!(last.as_secs(), 4.0);
    }

    #[test]
    fn slot_pool_respects_ready_time() {
        let mut pool = SlotPool::new(1);
        let (s, _) = pool.acquire(SimTime::from_secs(7.0), 1.0);
        assert_eq!(s.as_secs(), 7.0);
    }

    #[test]
    fn two_phase_acquire_release() {
        let mut pool = SlotPool::new(1);
        let start = pool.acquire_at(SimTime::ZERO);
        assert_eq!(start.as_secs(), 0.0);
        pool.release(SimTime::from_secs(3.0));
        let start2 = pool.acquire_at(SimTime::from_secs(1.0));
        assert_eq!(start2.as_secs(), 3.0);
        pool.release(SimTime::from_secs(4.0));
        assert_eq!(pool.all_free_at().as_secs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "release without matching acquire_at")]
    fn unbalanced_release_panics() {
        let mut pool = SlotPool::new(1);
        pool.release(SimTime::ZERO);
    }

    #[test]
    fn gauge_tracks_peak_and_rejects_overflow() {
        let mut g = Gauge::new(100);
        g.alloc(60).unwrap();
        g.alloc(40).unwrap();
        assert_eq!(g.peak(), 100);
        assert_eq!(g.available(), 0);
        let err = g.alloc(1).unwrap_err();
        assert_eq!(err.in_use, 100);
        assert_eq!(err.capacity, 100);
        // Failed alloc leaves state unchanged.
        assert_eq!(g.in_use(), 100);
        g.free(70);
        assert_eq!(g.in_use(), 30);
        assert_eq!(g.peak(), 100);
        g.alloc(50).unwrap();
        assert_eq!(g.peak(), 100);
    }

    #[test]
    fn gauge_free_saturates() {
        let mut g = Gauge::new(10);
        g.alloc(5).unwrap();
        g.free(100);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn gauge_error_display() {
        let e = GaugeError {
            requested: 5,
            in_use: 8,
            capacity: 10,
        };
        assert!(e.to_string().contains("exceeds capacity 10"));
    }
}
