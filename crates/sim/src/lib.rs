//! # distme-sim — virtual-time resource simulation core
//!
//! The DistME paper evaluates on a 9-node Spark cluster with 80 GB-scale
//! matrices. Reproducing those experiments requires *simulating* the cluster:
//! this crate provides the deterministic virtual-time machinery that
//! `distme-cluster` (nodes, NICs, disks) and `distme-gpu` (PCI-E bus, kernel
//! engine, streams) are built from.
//!
//! The model is **timeline-based discrete-event simulation**: each contended
//! resource keeps a timeline of when it is free, and work items *request*
//! service with a ready-time, receiving back their completion time:
//!
//! * [`FifoServer`] — a fixed-rate server (a 10 GbE NIC, a PCI-E copy engine,
//!   a GPU's SM array) that serves requests in request order;
//! * [`SlotPool`] — `k` parallel servers (Spark's `Tc` task slots per node,
//!   CUDA's concurrent-stream limit);
//! * [`Gauge`] — a capacity counter with peak tracking (task heap memory,
//!   GPU device memory, cluster disk) used to detect the paper's O.O.M. and
//!   E.D.C. failure modes;
//! * [`BusyTracker`] — busy-time accumulation for utilization metrics
//!   (Fig. 7(g)'s GPU core utilization).
//!
//! All state is plain and deterministic: simulating the same plan twice gives
//! identical times, which the test suite relies on.

pub mod metrics;
pub mod resource;
pub mod time;

pub use metrics::BusyTracker;
pub use resource::{FifoServer, Gauge, GaugeError, SlotPool};
pub use time::SimTime;
