//! The job service's multi-tenancy contract (`make service-smoke`):
//!
//! * **Bit-parity** — a job submitted through the service, racing other
//!   tenants' jobs on the shared worker pool, produces result bytes and
//!   per-job byte statistics identical to the same job run solo;
//! * **Attribution** — per-tenant ledger deltas sum exactly to the
//!   cluster-wide totals;
//! * **Admission** — a submission whose declared demand would overshoot
//!   the cluster memory budget *queues* (bounding concurrent resident
//!   memory) instead of failing or OOMing, and runs once capacity frees;
//!   a full queue and an out-of-range priority are the only rejections.

use distme_cluster::{ClusterConfig, JobStats, LedgerSnapshot, Phase, TenantId};
use distme_engine::service::{JobService, JobSpec, JobStatus};
use distme_engine::session::RealOps;
use distme_engine::systems::SystemProfile;
use distme_engine::{gnmf, GnmfConfig};
use distme_matrix::elementwise::EwOp;
use distme_matrix::{codec, BlockMatrix, MatrixGenerator, MatrixMeta};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn service() -> JobService {
    JobService::new(ClusterConfig::laptop(), SystemProfile::DistMe)
}

fn dense(rows: u64, cols: u64, seed: u64) -> BlockMatrix {
    MatrixGenerator::with_seed(seed)
        .generate(&MatrixMeta::dense(rows, cols).with_block_size(16))
        .unwrap()
}

/// Exact bytes of a matrix: block ids plus their codec encodings, in
/// deterministic id order.
fn fingerprint(m: &BlockMatrix) -> Vec<u8> {
    let mut out = Vec::new();
    for (id, blk) in m.blocks() {
        out.extend_from_slice(&id.row.to_le_bytes());
        out.extend_from_slice(&id.col.to_le_bytes());
        out.extend_from_slice(&codec::encode(blk));
    }
    out
}

/// Every deterministic byte/count field of a job's stats (timings are
/// wall-clock and excluded).
fn comm_signature(s: &JobStats) -> Vec<u64> {
    let mut v = vec![
        s.intermediate_bytes,
        s.transport_payload_bytes,
        s.redelivered_moves,
        s.retransmitted_payload_bytes,
        s.retries,
        s.peak_task_mem_bytes,
    ];
    for &p in Phase::ALL.iter() {
        let ph = s.phase(p);
        v.extend([
            ph.shuffle_bytes,
            ph.cross_node_bytes,
            ph.broadcast_bytes,
            ph.tasks as u64,
        ]);
    }
    v
}

fn spin_until(deadline: Duration, mut pred: impl FnMut() -> bool) {
    let start = Instant::now();
    while !pred() {
        assert!(start.elapsed() < deadline, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn concurrent_jobs_match_their_solo_runs_bit_for_bit() {
    // Three job shapes: a plain multiply, a chained
    // transpose→matmul→elementwise expression, and a short GNMF run.
    let a = Arc::new(dense(80, 64, 5));
    let b = Arc::new(dense(64, 48, 6));
    let x = Arc::new(dense(48, 48, 7));
    let v = Arc::new(
        MatrixGenerator::with_seed(3)
            .value_range(1.0, 5.0)
            .generate(&MatrixMeta::sparse(96, 64, 0.2).with_block_size(16))
            .unwrap(),
    );
    let gnmf_cfg = GnmfConfig {
        factor_dim: 16,
        iterations: 2,
    };

    let multiply_job = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        move |s: &mut distme_engine::TenantSession<'_>| s.matmul(&a, &b)
    };
    let chain_job = {
        let x = Arc::clone(&x);
        move |s: &mut distme_engine::TenantSession<'_>| {
            let xt = s.transpose(&x)?;
            let sym = s.matmul(&xt, &x)?;
            s.elementwise(&sym, EwOp::Mul, &sym)
        }
    };
    let gnmf_job = {
        let v = Arc::clone(&v);
        move |s: &mut distme_engine::TenantSession<'_>| {
            let res = gnmf::run_real(s, &v, &gnmf_cfg, 99)?;
            Ok(res.w)
        }
    };

    // Solo baselines: each job alone on a fresh, idle service.
    let solo_mul = service()
        .run(JobSpec::new(TenantId(1)), multiply_job.clone())
        .unwrap();
    let solo_chain = service()
        .run(JobSpec::new(TenantId(2)), chain_job.clone())
        .unwrap();
    let solo_gnmf = service()
        .run(JobSpec::new(TenantId(3)), gnmf_job.clone())
        .unwrap();

    // The same three jobs racing on one shared cluster, twice over with
    // mixed priorities, so stages genuinely interleave.
    let svc = service();
    let handles = vec![
        svc.submit(JobSpec::new(TenantId(1)), multiply_job.clone()),
        svc.submit(JobSpec::new(TenantId(2)).priority(1), chain_job.clone()),
        svc.submit(JobSpec::new(TenantId(3)).priority(2), gnmf_job.clone()),
        svc.submit(JobSpec::new(TenantId(1)).priority(3), multiply_job.clone()),
        svc.submit(JobSpec::new(TenantId(2)), chain_job.clone()),
    ];
    let solos = [&solo_mul, &solo_chain, &solo_gnmf, &solo_mul, &solo_chain];
    for (h, solo) in handles.into_iter().zip(solos) {
        let out = h.wait().unwrap();
        assert_eq!(
            fingerprint(&out.value),
            fingerprint(&solo.value),
            "a job racing other tenants must produce its solo result bytes"
        );
        assert_eq!(
            comm_signature(&out.stats),
            comm_signature(&solo.stats),
            "a job racing other tenants must report its solo byte stats"
        );
        assert_eq!(out.ops_run, solo.ops_run);
    }
}

/// The sparse family under multi-tenancy: an ALS run — SpMM and SDDMM
/// jobs interleaved with dense Grams and transposes — racing other
/// tenants' jobs must produce factors, objective series, and per-job byte
/// stats bit-identical to its solo run.
#[test]
fn concurrent_als_matches_its_solo_run_bit_for_bit() {
    use distme_engine::{als, AlsConfig};
    let a = Arc::new(dense(80, 64, 5));
    let b = Arc::new(dense(64, 48, 6));
    let v = Arc::new(
        MatrixGenerator::with_seed(3)
            .value_range(1.0, 5.0)
            .generate(&MatrixMeta::sparse(96, 64, 0.2).with_block_size(16))
            .unwrap(),
    );
    let als_cfg = AlsConfig {
        factor_dim: 16,
        iterations: 2,
        lambda: 0.1,
    };
    let als_job = {
        let v = Arc::clone(&v);
        move |s: &mut distme_engine::TenantSession<'_>| {
            let res = als::run_real(s, &v, &als_cfg, 99)?;
            Ok((res.w, res.h, res.objective))
        }
    };
    let multiply_job = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        move |s: &mut distme_engine::TenantSession<'_>| s.matmul(&a, &b)
    };

    let solo = service()
        .run(JobSpec::new(TenantId(1)), als_job.clone())
        .unwrap();

    // Two ALS runs race each other and a stream of dense multiplies.
    let svc = service();
    let h_als_a = svc.submit(JobSpec::new(TenantId(1)), als_job.clone());
    let h_mul_a = svc.submit(JobSpec::new(TenantId(2)).priority(1), multiply_job.clone());
    let h_als_b = svc.submit(JobSpec::new(TenantId(3)).priority(2), als_job.clone());
    let h_mul_b = svc.submit(JobSpec::new(TenantId(2)).priority(3), multiply_job);
    let als_a = h_als_a.wait().unwrap();
    h_mul_a.wait().unwrap();
    let als_b = h_als_b.wait().unwrap();
    h_mul_b.wait().unwrap();
    for out in [&als_a, &als_b] {
        let (w, h, objective) = &out.value;
        assert_eq!(
            fingerprint(w),
            fingerprint(&solo.value.0),
            "racing ALS must produce its solo W bytes"
        );
        assert_eq!(
            fingerprint(h),
            fingerprint(&solo.value.1),
            "racing ALS must produce its solo H bytes"
        );
        let bits = |o: &[f64]| o.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(objective), bits(&solo.value.2));
        assert_eq!(
            comm_signature(&out.stats),
            comm_signature(&solo.stats),
            "racing ALS must report its solo byte stats"
        );
        assert_eq!(out.ops_run, solo.ops_run);
    }
}

#[test]
fn per_tenant_ledger_deltas_sum_to_the_cluster_total() {
    let a = Arc::new(dense(80, 64, 11));
    let b = Arc::new(dense(64, 48, 12));
    let svc = service();
    let handles: Vec<_> = (0..6u32)
        .map(|i| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            svc.submit(
                JobSpec::new(TenantId(1 + i % 3)).priority(i as u8 % 4),
                move |s| s.matmul(&a, &b),
            )
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let total = svc.ledger_snapshot();
    let tenants = svc.tenants();
    assert_eq!(tenants, vec![TenantId(1), TenantId(2), TenantId(3)]);
    let summed = tenants.iter().fold(LedgerSnapshot::default(), |acc, &t| {
        acc.plus(&svc.tenant_comm(t))
    });
    assert_eq!(
        summed, total,
        "per-tenant attribution must account for every cluster byte"
    );
    for t in tenants {
        assert!(svc.tenant_comm(t).shuffle_bytes(Phase::Repartition) > 0);
    }
}

fn tight_budget_config(budget: u64, queue_depth: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::laptop();
    cfg.scheduler.admission_budget_bytes = budget;
    cfg.scheduler.queue_depth = queue_depth;
    cfg
}

/// A job that parks holding its admission until `gate` flips, then
/// returns — the tool for freezing the admission controller mid-state.
fn gated_job(
    gate: Arc<AtomicBool>,
) -> impl FnOnce(&mut distme_engine::TenantSession<'_>) -> Result<u32, distme_cluster::JobError>
       + Send
       + 'static {
    move |_s| {
        while !gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(7)
    }
}

#[test]
fn over_budget_submission_queues_and_memory_stays_bounded() {
    let budget = 100;
    let svc = JobService::new(tight_budget_config(budget, 8), SystemProfile::DistMe);
    let gate = Arc::new(AtomicBool::new(false));

    let first = svc.submit(
        JobSpec::new(TenantId(1)).demand_bytes(80),
        gated_job(Arc::clone(&gate)),
    );
    spin_until(Duration::from_secs(10), || {
        first.status() == JobStatus::Running
    });

    // 80 + 80 > 100: the second submission must queue, not fail — and the
    // admitted resident demand must stay under the budget while it waits.
    let second = svc.submit(
        JobSpec::new(TenantId(2)).demand_bytes(80),
        gated_job(Arc::clone(&gate)),
    );
    spin_until(Duration::from_secs(10), || svc.load().queued_jobs == 1);
    assert_eq!(second.status(), JobStatus::Queued);
    let load = svc.load();
    assert_eq!(load.admitted_jobs, 1);
    assert!(
        load.admitted_mem_bytes <= budget,
        "admission control must bound concurrent resident memory: {} > {budget}",
        load.admitted_mem_bytes
    );

    // Capacity frees → the queued job is admitted and completes.
    gate.store(true, Ordering::SeqCst);
    assert_eq!(first.wait().unwrap().value, 7);
    let out = second.wait().unwrap();
    assert_eq!(out.value, 7);
    assert!(
        out.queue_wait_secs > 0.0,
        "the queued job must report its admission wait"
    );
    assert_eq!(svc.load().admitted_jobs, 0);
    assert_eq!(svc.queue_wait_stats().submissions, 2);
}

#[test]
fn a_full_submission_queue_rejects_with_queue_full() {
    // Depth 1: one job running (holding the whole budget), one queued —
    // the third submission must be rejected, annotated Q.F.
    let svc = JobService::new(tight_budget_config(100, 1), SystemProfile::DistMe);
    let gate = Arc::new(AtomicBool::new(false));
    let first = svc.submit(
        JobSpec::new(TenantId(1)).demand_bytes(100),
        gated_job(Arc::clone(&gate)),
    );
    spin_until(Duration::from_secs(10), || {
        first.status() == JobStatus::Running
    });
    let second = svc.submit(
        JobSpec::new(TenantId(2)).demand_bytes(100),
        gated_job(Arc::clone(&gate)),
    );
    spin_until(Duration::from_secs(10), || svc.load().queued_jobs == 1);
    let third = svc.submit(
        JobSpec::new(TenantId(3)).demand_bytes(100),
        gated_job(Arc::clone(&gate)),
    );
    spin_until(Duration::from_secs(10), || {
        third.status() == JobStatus::Failed
    });
    let err = third.wait().unwrap_err();
    assert_eq!(err.annotation(), "Q.F.");

    gate.store(true, Ordering::SeqCst);
    first.wait().unwrap();
    second.wait().unwrap();
}

#[test]
fn an_out_of_range_priority_fails_the_handle() {
    let svc = service();
    let levels = svc.config().scheduler.priority_levels;
    let h = svc.submit(
        JobSpec::new(TenantId(1)).priority(levels),
        |_s: &mut distme_engine::TenantSession<'_>| Ok(0u8),
    );
    let err = h.wait().unwrap_err();
    assert_eq!(err.annotation(), "INV");
}

#[test]
fn the_shared_plan_cache_plans_identical_jobs_once() {
    let a = Arc::new(dense(80, 64, 21));
    let b = Arc::new(dense(64, 48, 22));
    let svc = service();
    let handles: Vec<_> = (0..4u32)
        .map(|i| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            svc.submit(JobSpec::new(TenantId(1 + i)), move |s| s.matmul(&a, &b))
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let st = svc.plan_cache_stats();
    assert_eq!(
        st.misses, 1,
        "four identical jobs across tenants must share one plan"
    );
    assert_eq!(st.hits, 3);
}
