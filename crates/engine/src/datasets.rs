//! The evaluation's rating datasets (Table 3) as synthetic equivalents.
//!
//! The real MovieLens/Netflix/YahooMusic files are not redistributable
//! here; GNMF's runtime behaviour depends only on the rating matrix's
//! shape and non-zero count, both of which Table 3 specifies exactly. The
//! synthetic matrices have uniformly-placed non-zeros with rating-like
//! values in `[1, 5]`.

use distme_matrix::{BlockMatrix, MatrixError, MatrixGenerator, MatrixMeta};

/// A users × items rating dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatingDataset {
    /// Dataset name as the paper prints it.
    pub name: &'static str,
    /// Number of users (rows of V).
    pub users: u64,
    /// Number of items (columns of V).
    pub items: u64,
    /// Number of ratings (non-zeros of V).
    pub ratings: u64,
}

impl RatingDataset {
    /// MovieLens (small): 27 753 444 ratings, 283 228 users, 58 098 items.
    pub const MOVIELENS: RatingDataset = RatingDataset {
        name: "MovieLens",
        users: 283_228,
        items: 58_098,
        ratings: 27_753_444,
    };

    /// Netflix (medium): 100 480 507 ratings, 480 189 users, 17 770 items.
    pub const NETFLIX: RatingDataset = RatingDataset {
        name: "Netflix",
        users: 480_189,
        items: 17_770,
        ratings: 100_480_507,
    };

    /// YahooMusic (large): 717 872 016 ratings, 1 823 179 users,
    /// 136 736 items.
    pub const YAHOO_MUSIC: RatingDataset = RatingDataset {
        name: "YahooMusic",
        users: 1_823_179,
        items: 136_736,
        ratings: 717_872_016,
    };

    /// The three datasets in the paper's small → large order.
    pub const ALL: [RatingDataset; 3] = [Self::MOVIELENS, Self::NETFLIX, Self::YAHOO_MUSIC];

    /// Fraction of non-zero cells.
    pub fn density(&self) -> f64 {
        self.ratings as f64 / (self.users as f64 * self.items as f64)
    }

    /// Descriptor of the rating matrix `V` at full scale (for simulation).
    pub fn meta(&self) -> MatrixMeta {
        MatrixMeta::sparse(self.users, self.items, self.density())
    }

    /// A shape-preserving scaled-down copy (for real execution): rows,
    /// columns shrink by `factor`, density is preserved.
    pub fn scaled(&self, factor: u64) -> RatingDataset {
        let users = (self.users / factor).max(1);
        let items = (self.items / factor).max(1);
        RatingDataset {
            name: self.name,
            users,
            items,
            ratings: ((users * items) as f64 * self.density()).round() as u64,
        }
    }

    /// Materializes the (synthetic) rating matrix with the given block
    /// size — call on scaled-down instances only.
    ///
    /// # Errors
    /// Propagates generator errors.
    pub fn materialize(&self, block_size: u64, seed: u64) -> Result<BlockMatrix, MatrixError> {
        let meta = self.meta().with_block_size(block_size);
        MatrixGenerator::with_seed(seed)
            .value_range(1.0, 5.0)
            .generate(&meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_statistics() {
        assert_eq!(RatingDataset::MOVIELENS.ratings, 27_753_444);
        assert_eq!(RatingDataset::NETFLIX.users, 480_189);
        assert_eq!(RatingDataset::YAHOO_MUSIC.items, 136_736);
    }

    #[test]
    fn densities_are_sparse() {
        for d in RatingDataset::ALL {
            let rho = d.density();
            assert!(rho > 1e-4 && rho < 0.02, "{}: {rho}", d.name);
            assert!(!d.meta().is_dense_storage());
        }
    }

    #[test]
    fn scaling_preserves_density() {
        let d = RatingDataset::NETFLIX;
        let s = d.scaled(100);
        assert!((s.density() - d.density()).abs() / d.density() < 0.05);
        assert_eq!(s.users, 4_801);
    }

    #[test]
    fn materialized_matrix_matches_stats() {
        let d = RatingDataset::MOVIELENS.scaled(500);
        let v = d.materialize(128, 42).unwrap();
        assert_eq!(v.meta().rows, d.users);
        assert_eq!(v.meta().cols, d.items);
        let nnz = v.nnz();
        let expect = d.ratings;
        // Per-block rounding keeps us within a few percent.
        assert!(
            (nnz as f64 - expect as f64).abs() / expect as f64 <= 0.10,
            "nnz {nnz} vs expected {expect}"
        );
        // Rating-like values.
        let (id, blk) = v.blocks().next().unwrap();
        let _ = id;
        let d0 = blk.to_dense();
        assert!(d0
            .data()
            .iter()
            .filter(|v| **v != 0.0)
            .all(|v| (1.0..5.0).contains(v)));
    }
}
