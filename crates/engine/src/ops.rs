//! Non-multiply operators: transpose and element-wise (§5 lists
//! element-wise, matrix multiplication, and transpose as DistME's
//! operator set).

use distme_cluster::{ComputeWork, JobError, JobStats, Phase, PhaseStats, SimCluster, SimTask};
use distme_matrix::elementwise::EwOp;
use distme_matrix::{BlockMatrix, MatrixMeta};

/// Simulates a distributed transpose: every block is shuffled to its
/// transposed grid position (one full pass over the matrix), unless the
/// engine reuses partitioning (DMac/DistME dependency-aware planning), in
/// which case the transpose is a metadata operation.
pub fn sim_transpose(
    cluster: &mut SimCluster,
    x: &MatrixMeta,
    reuse_partitioning: bool,
) -> Result<(MatrixMeta, JobStats), JobError> {
    let out = x.transposed();
    if reuse_partitioning {
        return Ok((out, JobStats::default()));
    }
    cluster.start_job();
    let cfg = *cluster.config();
    let total = x.total_bytes();
    let t = (cfg.total_slots() as u64).min(x.num_blocks()).max(1);
    let tasks: Vec<SimTask> = (0..t)
        .map(|i| {
            let share = split(total, t, i);
            SimTask {
                shuffle_in_bytes: share,
                local_read_bytes: 0,
                compute: ComputeWork::Cpu {
                    // One element move per element.
                    flops: split(x.elements(), t, i) as f64,
                },
                shuffle_out_bytes: share,
                local_write_bytes: 0,
                mem_bytes: 2 * x.block_bytes(),
            }
        })
        .collect();
    let s = cluster.run_stage(&tasks, 0)?;
    let mut stats = JobStats {
        elapsed_secs: cluster.job_elapsed_secs(),
        peak_task_mem_bytes: s.peak_task_mem_bytes,
        intermediate_bytes: s.shuffle_write_bytes,
        ..Default::default()
    };
    *stats.phase_mut(Phase::Repartition) = PhaseStats {
        secs: s.secs,
        shuffle_bytes: s.shuffle_read_bytes,
        cross_node_bytes: s.cross_node_bytes,
        broadcast_bytes: 0,
        tasks: s.tasks,
    };
    Ok((out, stats))
}

/// Simulates an element-wise combination of two co-partitioned matrices
/// (the `∗` and `/` of the GNMF update). Cached operands zip locally; the
/// cost is one pass of arithmetic.
pub fn sim_elementwise(
    cluster: &mut SimCluster,
    x: &MatrixMeta,
    y: &MatrixMeta,
) -> Result<(MatrixMeta, JobStats), JobError> {
    if x.rows != y.rows || x.cols != y.cols {
        return Err(JobError::TaskFailed {
            task: 0,
            message: format!(
                "elementwise shape mismatch: {}x{} vs {}x{}",
                x.rows, x.cols, y.rows, y.cols
            ),
        });
    }
    cluster.start_job();
    let cfg = *cluster.config();
    let t = (cfg.total_slots() as u64).min(x.num_blocks()).max(1);
    let tasks: Vec<SimTask> = (0..t)
        .map(|i| SimTask {
            shuffle_in_bytes: 0,
            local_read_bytes: 0,
            compute: ComputeWork::Cpu {
                flops: split(x.elements(), t, i) as f64,
            },
            shuffle_out_bytes: 0,
            local_write_bytes: 0,
            mem_bytes: 3 * x.block_bytes(),
        })
        .collect();
    let s = cluster.run_stage(&tasks, 0)?;
    let mut stats = JobStats {
        elapsed_secs: cluster.job_elapsed_secs(),
        peak_task_mem_bytes: s.peak_task_mem_bytes,
        ..Default::default()
    };
    stats.phase_mut(Phase::LocalMult).secs = s.secs;
    stats.phase_mut(Phase::LocalMult).tasks = s.tasks;
    // The result keeps the left operand's sparsity for Mul/Div semantics.
    Ok((*x, stats))
}

/// Real transpose with shuffle accounting on the thread-backed cluster.
pub fn real_transpose(
    cluster: &distme_cluster::LocalCluster,
    x: &BlockMatrix,
    reuse_partitioning: bool,
) -> (BlockMatrix, JobStats) {
    let t0 = std::time::Instant::now();
    let out = x.transpose();
    let mut stats = JobStats::default();
    if !reuse_partitioning {
        for (id, blk) in x.blocks() {
            let from = (id.row as usize + id.col as usize) % cluster.config().nodes;
            let to = (id.col as usize + id.row as usize * 7) % cluster.config().nodes;
            cluster.ledger().record_shuffle(
                Phase::Repartition,
                from,
                to,
                distme_matrix::codec::encoded_len(blk),
            );
        }
    }
    stats.elapsed_secs = t0.elapsed().as_secs_f64();
    stats.phase_mut(Phase::Repartition).secs = stats.elapsed_secs;
    (out, stats)
}

/// Real element-wise combination.
///
/// # Errors
/// Returns [`JobError::TaskFailed`] on shape mismatch.
pub fn real_elementwise(
    x: &BlockMatrix,
    op: EwOp,
    y: &BlockMatrix,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let t0 = std::time::Instant::now();
    let out = x.elementwise(op, y).map_err(|e| JobError::TaskFailed {
        task: 0,
        message: e.to_string(),
    })?;
    let mut stats = JobStats {
        elapsed_secs: t0.elapsed().as_secs_f64(),
        ..JobStats::default()
    };
    stats.phase_mut(Phase::LocalMult).secs = stats.elapsed_secs;
    Ok((out, stats))
}

fn split(total: u64, parts: u64, idx: u64) -> u64 {
    let base = total / parts;
    base + u64::from(idx < total % parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_cluster::ClusterConfig;
    use distme_matrix::MatrixGenerator;

    fn sim() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster())
    }

    #[test]
    fn sim_transpose_costs_one_pass() {
        let x = MatrixMeta::dense(50_000, 20_000);
        let (out, stats) = sim_transpose(&mut sim(), &x, false).unwrap();
        assert_eq!((out.rows, out.cols), (20_000, 50_000));
        assert_eq!(
            stats.phase(Phase::Repartition).shuffle_bytes,
            x.total_bytes()
        );
        assert!(stats.elapsed_secs > 0.0);
    }

    #[test]
    fn sim_transpose_free_with_partition_reuse() {
        let x = MatrixMeta::dense(50_000, 20_000);
        let (_, stats) = sim_transpose(&mut sim(), &x, true).unwrap();
        assert_eq!(stats.elapsed_secs, 0.0);
        assert_eq!(stats.total_shuffle_bytes(), 0);
    }

    #[test]
    fn sim_elementwise_validates_shapes() {
        let x = MatrixMeta::dense(100, 100);
        let y = MatrixMeta::dense(100, 200);
        assert!(sim_elementwise(&mut sim(), &x, &y).is_err());
        let y = MatrixMeta::dense(100, 100);
        let (out, stats) = sim_elementwise(&mut sim(), &x, &y).unwrap();
        assert_eq!(out.rows, 100);
        assert!(stats.elapsed_secs > 0.0);
        assert_eq!(stats.total_shuffle_bytes(), 0);
    }

    #[test]
    fn real_ops_compute_correctly() {
        let meta = MatrixMeta::dense(60, 40).with_block_size(20);
        let x = MatrixGenerator::with_seed(1).generate(&meta).unwrap();
        let cluster = distme_cluster::LocalCluster::new(ClusterConfig::laptop());
        let (t, stats) = real_transpose(&cluster, &x, false);
        assert_eq!(t.meta().rows, 40);
        assert!(stats.elapsed_secs >= 0.0);
        assert!(cluster.ledger().shuffle_bytes(Phase::Repartition) > 0);

        let y = MatrixGenerator::with_seed(2).generate(&meta).unwrap();
        let (sum, _) = real_elementwise(&x, EwOp::Add, &y).unwrap();
        assert_eq!(
            sum.get_element(5, 5),
            x.get_element(5, 5) + y.get_element(5, 5)
        );
        let z = MatrixGenerator::with_seed(3)
            .generate(&MatrixMeta::dense(10, 10).with_block_size(5))
            .unwrap();
        assert!(real_elementwise(&x, EwOp::Add, &z).is_err());
    }
}
