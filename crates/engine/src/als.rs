//! Alternating Least Squares over the distributed sparse kernels.
//!
//! ALS factorizes a rating matrix `V ≈ W × H` (with `W: users × f`,
//! `H: f × items`) by alternating ridge-regularized normal-equation
//! solves:
//!
//! ```text
//! W ← V Hᵀ (H Hᵀ + λI)⁻¹        Hᵀ ← Vᵀ W (Wᵀ W + λI)⁻¹
//! ```
//!
//! The heavy products run as distributed plans: `V Hᵀ` and `Vᵀ W` are
//! SpMM jobs ([`MulMethod::SpmmShift`] — the sparse operand stays sharded
//! by rows while the skinny dense factor panels move), the `f × f` Grams
//! are ordinary dense GEMM, and the per-iteration objective samples the
//! reconstruction only at the rating positions with an SDDMM job
//! ([`MulMethod::Sddmm`]) — `‖P(V) ⊙ (W H) − V‖F` never materializes the
//! dense `W H`. Only the `f × f` ridge solve happens driver-side (a
//! deterministic Gauss–Jordan inverse), re-entering the cluster as a
//! dense multiply by the inverted Gram.
//!
//! Like GNMF, the algorithm has two faces: [`run_real`] factorizes
//! materialized matrices through any [`RealOps`] session (solo
//! [`RealSession`](crate::session::RealSession) or a multi-tenant
//! [`TenantSession`](crate::service::TenantSession)), and [`simulate`]
//! replays the identical operator sequence per iteration on the simulated
//! cluster for Table-3-scale datasets.

use crate::datasets::RatingDataset;
use crate::session::{RealOps, SimSession};
use crate::systems::SystemProfile;
use distme_cluster::{ClusterConfig, JobError, JobStats};
use distme_matrix::elementwise::EwOp;
use distme_matrix::{Block, BlockMatrix, DenseBlock, MatrixGenerator, MatrixMeta};

/// ALS hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlsConfig {
    /// Rank of the factorization.
    pub factor_dim: u64,
    /// Number of alternating update rounds (each updates both factors).
    pub iterations: usize,
    /// Ridge regularization strength added to the Gram diagonals.
    pub lambda: f64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig {
            factor_dim: 200,
            iterations: 10,
            lambda: 0.1,
        }
    }
}

/// Result of a simulated ALS run.
#[derive(Debug, Clone)]
pub struct AlsReport {
    /// Dataset name.
    pub dataset: &'static str,
    /// System that ran it.
    pub system: &'static str,
    /// Accumulated elapsed seconds *after* each iteration.
    pub cumulative_secs: Vec<f64>,
    /// Statistics accumulated over the whole run.
    pub stats: JobStats,
}

impl AlsReport {
    /// Total elapsed seconds over all iterations.
    pub fn total_secs(&self) -> f64 {
        self.cumulative_secs.last().copied().unwrap_or(0.0)
    }
}

/// Simulates `iterations` of ALS for `dataset` under `profile`.
///
/// # Errors
/// Propagates the first operator failure.
pub fn simulate(
    cfg: ClusterConfig,
    profile: SystemProfile,
    dataset: &RatingDataset,
    als: &AlsConfig,
) -> Result<AlsReport, JobError> {
    let mut session = SimSession::new(cfg, profile);
    let v = dataset.meta();
    let f = als.factor_dim;
    let h = MatrixMeta::dense(f, v.cols);
    let gram_inv = MatrixMeta::dense(f, f);

    let vt = session.transpose(&v)?;
    let mut cumulative = Vec::with_capacity(als.iterations);
    for _ in 0..als.iterations {
        iteration_sim(&mut session, &v, &vt, &h, &gram_inv)?;
        cumulative.push(session.stats().elapsed_secs);
    }
    Ok(AlsReport {
        dataset: dataset.name,
        system: profile.name(),
        cumulative_secs: cumulative,
        stats: *session.stats(),
    })
}

/// One simulated alternating round — the exact operator sequence of the
/// real face, minus the zero-communication driver-side `f × f` solves.
fn iteration_sim(
    s: &mut SimSession,
    v: &MatrixMeta,
    vt: &MatrixMeta,
    h: &MatrixMeta,
    gram_inv: &MatrixMeta,
) -> Result<(), JobError> {
    // --- W update: W ← (V Hᵀ) (H Hᵀ + λI)⁻¹ ---
    let ht = s.transpose(h)?;
    let vht = s.spmm(v, &ht)?;
    let _hht = s.matmul(h, &ht)?;
    let w = s.matmul(&vht, gram_inv)?;
    // --- H update: Hᵀ ← (Vᵀ W) (Wᵀ W + λI)⁻¹ ---
    let wt = s.transpose(&w)?;
    let _wtw = s.matmul(&wt, &w)?;
    let vtw = s.spmm(vt, &w)?;
    let ht_next = s.matmul(&vtw, gram_inv)?;
    let h_next = s.transpose(&ht_next)?;
    // --- sampled objective: ‖P(V) ⊙ (W H) − V‖F ---
    let pred = s.sddmm(&w, &h_next, v)?;
    let _diff = s.elementwise(&pred, EwOp::Sub, v)?;
    Ok(())
}

/// Result of a real ALS factorization.
#[derive(Debug)]
pub struct AlsResult {
    /// Left factor, `users × factor_dim`.
    pub w: BlockMatrix,
    /// Right factor, `factor_dim × items`.
    pub h: BlockMatrix,
    /// Sampled reconstruction error `‖P(V) ⊙ (W H) − V‖F` after each
    /// iteration, where `P(V)` is the rating pattern.
    pub objective: Vec<f64>,
}

/// Runs ALS for real on a materialized rating matrix.
///
/// # Errors
/// Propagates operator failures and a singular regularized Gram (only
/// possible at `lambda == 0` with degenerate factors).
pub fn run_real<S: RealOps>(
    session: &mut S,
    v: &BlockMatrix,
    cfg: &AlsConfig,
    seed: u64,
) -> Result<AlsResult, JobError> {
    run_real_with(session, v, cfg, seed, |_, _| Ok(()))
}

/// [`run_real`] with a between-iterations hook: `after_iteration(session,
/// i)` runs after iteration `i` completes, which is where elastic resizes
/// slot into a factorization without perturbing its arithmetic.
///
/// # Errors
/// Propagates operator failures and errors returned by the hook.
pub fn run_real_with<S, F>(
    session: &mut S,
    v: &BlockMatrix,
    cfg: &AlsConfig,
    seed: u64,
    mut after_iteration: F,
) -> Result<AlsResult, JobError>
where
    S: RealOps,
    F: FnMut(&mut S, usize) -> Result<(), JobError>,
{
    let bs = v.meta().block_size;
    let f = cfg.factor_dim;
    let gen_h = MatrixGenerator::with_seed(seed ^ 0x515).value_range(0.1, 1.0);
    let mut h = gen_h
        .generate(&MatrixMeta::dense(f, v.meta().cols).with_block_size(bs))
        .map_err(to_job)?;
    let mut w = BlockMatrix::new(MatrixMeta::dense(v.meta().rows, f).with_block_size(bs));

    // V is stationary across iterations, so its transpose is hoisted.
    let vt = session.transpose(v)?;

    let mut objective = Vec::with_capacity(cfg.iterations);
    for iter in 0..cfg.iterations {
        // W ← (V Hᵀ) (H Hᵀ + λI)⁻¹
        let ht = session.transpose(&h)?;
        let vht = session.spmm(v, &ht)?;
        let hht = session.matmul(&h, &ht)?;
        let gram_h = ridge_inverse(&hht, cfg.lambda, bs)?;
        w = session.matmul(&vht, &gram_h)?;
        // Hᵀ ← (Vᵀ W) (Wᵀ W + λI)⁻¹
        let wt = session.transpose(&w)?;
        let wtw = session.matmul(&wt, &w)?;
        let gram_w = ridge_inverse(&wtw, cfg.lambda, bs)?;
        let vtw = session.spmm(&vt, &w)?;
        let ht_next = session.matmul(&vtw, &gram_w)?;
        h = session.transpose(&ht_next)?;
        // Sampled objective via SDDMM: never materializes the dense W·H.
        let pred = session.sddmm(&w, &h, v)?;
        let diff = session.elementwise(&pred, EwOp::Sub, v)?;
        objective.push(diff.frobenius_norm());
        after_iteration(session, iter)?;
    }
    Ok(AlsResult { w, h, objective })
}

/// Driver-side `(G + λI)⁻¹` of an `f × f` Gram, materialized back into a
/// block matrix so it re-enters the cluster as an ordinary dense operand.
///
/// Gauss–Jordan with deterministic partial pivoting: identical input bits
/// yield identical output bits, which is what keeps elastic and
/// concurrent ALS runs bit-comparable.
///
/// # Errors
/// Returns a task failure when the regularized Gram is singular.
fn ridge_inverse(gram: &BlockMatrix, lambda: f64, bs: u64) -> Result<BlockMatrix, JobError> {
    let n = gram.meta().rows as usize;
    if gram.meta().cols as usize != n {
        return Err(JobError::TaskFailed {
            task: 0,
            message: format!(
                "ridge_inverse needs a square Gram, got {}x{}",
                gram.meta().rows,
                gram.meta().cols
            ),
        });
    }
    let mut a = vec![0.0_f64; n * n];
    for (i, row) in a.chunks_exact_mut(n).enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = gram.get_element(i as u64, j as u64);
        }
        row[i] += lambda;
    }
    let mut inv = vec![0.0_f64; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Deterministic partial pivot: first row of maximal |a[r][col]|.
        let mut piv = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if a[piv * n + col].abs() < 1e-12 {
            return Err(JobError::TaskFailed {
                task: 0,
                message: format!("singular regularized Gram at column {col}"),
            });
        }
        if piv != col {
            for j in 0..n {
                a.swap(piv * n + j, col * n + j);
                inv.swap(piv * n + j, col * n + j);
            }
        }
        let d = a[col * n + col];
        for j in 0..n {
            a[col * n + j] /= d;
            inv[col * n + j] /= d;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a[r * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..n {
                a[r * n + j] -= factor * a[col * n + j];
                inv[r * n + j] -= factor * inv[col * n + j];
            }
        }
    }

    let meta = MatrixMeta::dense(n as u64, n as u64).with_block_size(bs);
    let mut out = BlockMatrix::new(meta);
    for bi in 0..meta.block_rows() {
        for bj in 0..meta.block_cols() {
            let (r, c) = meta.block_dims(bi, bj);
            let block = DenseBlock::from_fn(r as usize, c as usize, |i, j| {
                let gi = bi as usize * bs as usize + i;
                let gj = bj as usize * bs as usize + j;
                inv[gi * n + gj]
            });
            out.put(bi, bj, Block::Dense(block)).map_err(to_job)?;
        }
    }
    Ok(out)
}

fn to_job(e: distme_matrix::MatrixError) -> JobError {
    JobError::TaskFailed {
        task: 0,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::RealSession;

    fn tiny_v() -> BlockMatrix {
        let meta = MatrixMeta::sparse(96, 64, 0.2).with_block_size(16);
        MatrixGenerator::with_seed(3)
            .value_range(1.0, 5.0)
            .generate(&meta)
            .unwrap()
    }

    #[test]
    fn real_als_reduces_the_sampled_error() {
        let v = tiny_v();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let cfg = AlsConfig {
            factor_dim: 16,
            iterations: 6,
            lambda: 0.1,
        };
        let res = run_real(&mut s, &v, &cfg, 99).unwrap();
        assert_eq!(res.objective.len(), 6);
        // The first reading is already post-solve, so the remaining head
        // room is modest — but the series keeps shrinking monotonically.
        for pair in res.objective.windows(2) {
            assert!(
                pair[1] <= pair[0] * (1.0 + 1e-9),
                "sampled objective increased: {:?}",
                res.objective
            );
        }
        let first = res.objective[0];
        let last = *res.objective.last().unwrap();
        assert!(
            last < first * 0.85,
            "no real progress: {first} -> {last} ({:?})",
            res.objective
        );
        // Factors have the right shapes.
        assert_eq!(res.w.meta().rows, 96);
        assert_eq!(res.w.meta().cols, 16);
        assert_eq!(res.h.meta().rows, 16);
        assert_eq!(res.h.meta().cols, 64);
    }

    #[test]
    fn ridge_inverse_actually_inverts() {
        // A small SPD-ish matrix: G = Mᵀ M built from a seeded generator.
        let meta = MatrixMeta::dense(24, 24).with_block_size(16);
        let m = MatrixGenerator::with_seed(11)
            .value_range(0.1, 1.0)
            .generate(&meta)
            .unwrap();
        let mt = m.transpose();
        let gram = mt.multiply(&m).unwrap();
        let lambda = 0.5;
        let inv = ridge_inverse(&gram, lambda, 16).unwrap();
        // (G + λI) · inv ≈ I.
        let prod = {
            let mut shifted = gram;
            for i in 0..24u64 {
                let cur = shifted.get_element(i, i);
                let bs = 16u64;
                let (bi, bj) = ((i / bs) as u32, (i / bs) as u32);
                let mut blk = shifted.get(bi, bj).unwrap().to_dense();
                blk.set((i % bs) as usize, (i % bs) as usize, cur + lambda);
                shifted.put(bi, bj, Block::Dense(blk)).unwrap();
            }
            shifted.multiply(&inv).unwrap()
        };
        for i in 0..24 {
            for j in 0..24 {
                let want = if i == j { 1.0 } else { 0.0 };
                let got = prod.get_element(i, j);
                assert!(
                    (got - want).abs() < 1e-8,
                    "(G+λI)·inv deviates at ({i},{j}): {got}"
                );
            }
        }
    }

    #[test]
    fn ridge_inverse_rejects_a_singular_gram() {
        // The zero Gram with λ = 0 is singular.
        let zero = BlockMatrix::new(MatrixMeta::dense(8, 8).with_block_size(8));
        assert!(ridge_inverse(&zero, 0.0, 8).is_err());
        // ... and invertible once regularized.
        assert!(ridge_inverse(&zero, 0.1, 8).is_ok());
    }

    /// A grid where every ALS distributed op falls under the optimizer's
    /// §3.2 voxel exception, making the decomposition — and therefore the
    /// floating-point summation order — independent of the node count.
    fn elastic_cfg(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            tasks_per_node: 10,
            ..ClusterConfig::laptop()
        }
    }

    fn small_v() -> BlockMatrix {
        let meta = MatrixMeta::sparse(64, 48, 0.3).with_block_size(16);
        MatrixGenerator::with_seed(3)
            .value_range(1.0, 5.0)
            .generate(&meta)
            .unwrap()
    }

    /// Exact bit pattern of a factor: block ids plus every f64's bits.
    fn factor_bits(m: &BlockMatrix) -> Vec<u64> {
        let mut out = Vec::new();
        for (id, blk) in m.blocks() {
            out.push(u64::from(id.row));
            out.push(u64::from(id.col));
            out.extend(blk.to_dense().data().iter().map(|x| x.to_bits()));
        }
        out
    }

    #[test]
    fn als_grown_mid_run_matches_a_fixed_grid_bit_for_bit() {
        let v = small_v();
        let cfg = AlsConfig {
            factor_dim: 16,
            iterations: 5,
            lambda: 0.1,
        };
        let mut fixed = RealSession::new(elastic_cfg(9), SystemProfile::DistMe);
        let baseline = run_real(&mut fixed, &v, &cfg, 42).unwrap();

        let mut elastic = RealSession::new(elastic_cfg(4), SystemProfile::DistMe);
        let mut grew = None;
        let res = run_real_with(&mut elastic, &v, &cfg, 42, |s, iter| {
            if iter == 2 {
                grew = Some(s.scale_to(9)?);
            }
            Ok(())
        })
        .unwrap();

        let report = grew.expect("the resize hook must run");
        assert!(report.moves > 0, "a grow must migrate resident blocks");
        assert_eq!((report.from_nodes, report.to_nodes), (4, 9));
        assert!(elastic.stats().rebalanced_moves > 0);
        assert_eq!(factor_bits(&res.w), factor_bits(&baseline.w));
        assert_eq!(factor_bits(&res.h), factor_bits(&baseline.h));
        let bits = |o: &[f64]| o.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&res.objective), bits(&baseline.objective));
    }

    #[test]
    fn simulated_als_runs_on_movielens() {
        let cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
        let report = simulate(
            cfg,
            SystemProfile::DistMe,
            &RatingDataset::MOVIELENS,
            &AlsConfig {
                factor_dim: 100,
                iterations: 4,
                lambda: 0.1,
            },
        )
        .unwrap();
        assert_eq!(report.cumulative_secs.len(), 4);
        for w in report.cumulative_secs.windows(2) {
            assert!(w[1] > w[0], "cumulative time must strictly increase");
        }
        assert_eq!(report.dataset, "MovieLens");
        assert_eq!(report.system, "DistME");
    }

    #[test]
    fn als_is_deterministic_across_identical_runs() {
        let v = small_v();
        let cfg = AlsConfig {
            factor_dim: 16,
            iterations: 3,
            lambda: 0.1,
        };
        let mut s1 = RealSession::new(elastic_cfg(4), SystemProfile::DistMe);
        let r1 = run_real(&mut s1, &v, &cfg, 7).unwrap();
        let mut s2 = RealSession::new(elastic_cfg(4), SystemProfile::DistMe);
        let r2 = run_real(&mut s2, &v, &cfg, 7).unwrap();
        assert_eq!(factor_bits(&r1.w), factor_bits(&r2.w));
        assert_eq!(factor_bits(&r1.h), factor_bits(&r2.h));
        let bits = |o: &[f64]| o.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&r1.objective), bits(&r2.objective));
    }
}
