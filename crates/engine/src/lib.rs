//! # distme-engine — the DistME matrix computation engine
//!
//! The user-facing engine of §5, plus the comparison-system emulation the
//! evaluation needs:
//!
//! * [`expr`] — a matrix-expression API (the stand-in for DistME's Scala
//!   API): build `W.t().matmul(&V)`-style trees and evaluate them;
//! * [`session`] — one generic evaluation context over pluggable backends:
//!   [`session::SimSession`] runs operators against the paper-scale
//!   simulated cluster, [`session::RealSession`] runs them with real
//!   blocks on the thread-backed cluster — both are aliases of
//!   [`session::Session`];
//! * [`service`] — the multi-tenant front end on the real backend: jobs
//!   from several tenants pass admission control and interleave on the
//!   shared worker pool, bit-identical to their solo runs;
//! * [`systems`] — planner profiles for every system in §6: DistME
//!   (CuboidMM), SystemML (BMM/CPMM/RMM heuristic), MatFast-naive (CPMM),
//!   DMac (CPMM + dependency-aware partitioning), each in CPU "(C)" and
//!   GPU "(G)" variants, plus ScaLAPACK and SciDB via the SUMMA model;
//! * [`ops`] — the non-multiply operators (transpose, element-wise) in both
//!   execution modes;
//! * [`gnmf`] — Gaussian Non-negative Matrix Factorization (Appendix A),
//!   the paper's complex-query benchmark, with a real numeric
//!   implementation (multiplicative updates, monotone objective) and a
//!   paper-scale simulation;
//! * [`als`] — an Alternating Least Squares recommender on the sparse
//!   method family: `V Hᵀ`/`Vᵀ W` as SpMM jobs, the sampled objective as
//!   an SDDMM job, driver-side `f × f` ridge solves;
//! * [`datasets`] — the Table 3 rating datasets (MovieLens, Netflix,
//!   YahooMusic) as synthetic equivalents with matching shape and nnz;
//! * [`algorithms`] — more of §1's motivating workloads on the engine:
//!   power iteration, PageRank, ridge regression.

pub mod algorithms;
pub mod als;
pub mod datasets;
pub mod expr;
pub mod gnmf;
pub mod ops;
pub mod service;
pub mod session;
pub mod systems;

pub use als::{AlsConfig, AlsReport, AlsResult};
pub use datasets::RatingDataset;
pub use gnmf::{GnmfConfig, GnmfReport};
pub use service::{JobHandle, JobOutput, JobService, JobSpec, JobStatus, TenantSession};
pub use session::{
    EngineBackend, RealBackend, RealOps, RealSession, Session, SimBackend, SimSession,
};
pub use systems::SystemProfile;
