//! Gaussian Non-negative Matrix Factorization (Appendix A).
//!
//! GNMF approximates a non-negative rating matrix `V ≈ W × H` with the
//! multiplicative update rules of Eq. 7:
//!
//! ```text
//! H ← H ∗ (Wᵀ V) / (Wᵀ W H)        W ← W ∗ (V Hᵀ) / (W H Hᵀ)
//! ```
//!
//! This module provides both faces: [`run_real`] performs the actual
//! factorization on materialized matrices (its objective `‖V − WH‖F` is
//! non-increasing — property-tested), and [`simulate`] replays the same
//! operator sequence per iteration on the simulated cluster for the
//! paper-scale experiments of Fig. 8. The operator sequence follows the
//! DMac-style plan the paper adopts ("We use the same query plan with DMac
//! for the GNMF query").

use crate::datasets::RatingDataset;
use crate::session::{RealOps, SimSession};
use crate::systems::SystemProfile;
use distme_cluster::{ClusterConfig, JobError, JobStats};
use distme_matrix::elementwise::EwOp;
use distme_matrix::{BlockMatrix, MatrixGenerator, MatrixMeta};

/// GNMF hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnmfConfig {
    /// Rank of the factorization (the paper's "factor dimension"; 200 in
    /// Figs. 8(a–c), swept over {200, 500, 1000} in Fig. 8(d)).
    pub factor_dim: u64,
    /// Number of multiplicative-update iterations (the paper runs 10).
    pub iterations: usize,
}

impl Default for GnmfConfig {
    fn default() -> Self {
        GnmfConfig {
            factor_dim: 200,
            iterations: 10,
        }
    }
}

/// Result of a simulated GNMF run.
#[derive(Debug, Clone)]
pub struct GnmfReport {
    /// Dataset name.
    pub dataset: &'static str,
    /// System that ran it.
    pub system: &'static str,
    /// Accumulated elapsed seconds *after* each iteration — the series the
    /// Fig. 8(a–c) curves plot.
    pub cumulative_secs: Vec<f64>,
    /// Statistics accumulated over the whole run.
    pub stats: JobStats,
}

impl GnmfReport {
    /// Total elapsed seconds over all iterations.
    pub fn total_secs(&self) -> f64 {
        self.cumulative_secs.last().copied().unwrap_or(0.0)
    }
}

/// Simulates `iterations` of GNMF for `dataset` under `profile`.
///
/// # Errors
/// Propagates the first operator failure — e.g. MatFast's O.O.M. at
/// factor dimensions ≥ 500 (Fig. 8(d)).
pub fn simulate(
    cfg: ClusterConfig,
    profile: SystemProfile,
    dataset: &RatingDataset,
    gnmf: &GnmfConfig,
) -> Result<GnmfReport, JobError> {
    let mut session = SimSession::new(cfg, profile);
    let v = dataset.meta();
    let f = gnmf.factor_dim;
    let w = MatrixMeta::dense(v.rows, f);
    let h = MatrixMeta::dense(f, v.cols);

    let mut cumulative = Vec::with_capacity(gnmf.iterations);
    for _ in 0..gnmf.iterations {
        iteration_sim(&mut session, &v, &w, &h)?;
        cumulative.push(session.stats().elapsed_secs);
    }
    Ok(GnmfReport {
        dataset: dataset.name,
        system: profile.name(),
        cumulative_secs: cumulative,
        stats: *session.stats(),
    })
}

/// One simulated multiplicative-update iteration (both factor updates).
fn iteration_sim(
    s: &mut SimSession,
    v: &MatrixMeta,
    w: &MatrixMeta,
    h: &MatrixMeta,
) -> Result<(), JobError> {
    // --- H update: H ∗ (WᵀV) / (WᵀW H) ---
    let wt = s.transpose(w)?;
    let wtv = s.matmul(&wt, v)?;
    let wtw = s.matmul(&wt, w)?;
    let wtwh = s.matmul(&wtw, h)?;
    let num = s.elementwise(h, EwOp::Mul, &wtv)?;
    let _h_next = s.elementwise(&num, EwOp::Div, &wtwh)?;
    // --- W update: W ∗ (V Hᵀ) / (W H Hᵀ) ---
    let ht = s.transpose(h)?;
    let vht = s.matmul(v, &ht)?;
    let hht = s.matmul(h, &ht)?;
    let whht = s.matmul(w, &hht)?;
    let num = s.elementwise(w, EwOp::Mul, &vht)?;
    let _w_next = s.elementwise(&num, EwOp::Div, &whht)?;
    Ok(())
}

/// Result of a real GNMF factorization.
#[derive(Debug)]
pub struct GnmfResult {
    /// Left factor, `users × factor_dim`.
    pub w: BlockMatrix,
    /// Right factor, `factor_dim × items`.
    pub h: BlockMatrix,
    /// `‖V − WH‖F` after each iteration (non-increasing).
    pub objective: Vec<f64>,
}

/// Runs GNMF for real on a materialized rating matrix.
///
/// # Errors
/// Propagates operator failures (shape errors, O.O.M. under tight θt).
pub fn run_real<S: RealOps>(
    session: &mut S,
    v: &BlockMatrix,
    cfg: &GnmfConfig,
    seed: u64,
) -> Result<GnmfResult, JobError> {
    run_real_with(session, v, cfg, seed, |_, _| Ok(()))
}

/// [`run_real`] with a between-iterations hook: `after_iteration(session,
/// i)` runs after iteration `i` completes, which is where elastic resizes
/// ([`RealSession::scale_to`], [`RealSession::autoscale`]) slot into a
/// factorization without perturbing its arithmetic.
///
/// # Errors
/// Propagates operator failures and errors returned by the hook.
pub fn run_real_with<S, F>(
    session: &mut S,
    v: &BlockMatrix,
    cfg: &GnmfConfig,
    seed: u64,
    mut after_iteration: F,
) -> Result<GnmfResult, JobError>
where
    S: RealOps,
    F: FnMut(&mut S, usize) -> Result<(), JobError>,
{
    let bs = v.meta().block_size;
    let f = cfg.factor_dim;
    let gen_w = MatrixGenerator::with_seed(seed).value_range(0.1, 1.0);
    let gen_h = MatrixGenerator::with_seed(seed ^ 0xABCD).value_range(0.1, 1.0);
    let mut w = gen_w
        .generate(&MatrixMeta::dense(v.meta().rows, f).with_block_size(bs))
        .map_err(to_job)?;
    let mut h = gen_h
        .generate(&MatrixMeta::dense(f, v.meta().cols).with_block_size(bs))
        .map_err(to_job)?;

    let mut objective = Vec::with_capacity(cfg.iterations);
    for iter in 0..cfg.iterations {
        // H ← H ∗ (WᵀV) / (WᵀW H)
        let wt = session.transpose(&w)?;
        let wtv = session.matmul(&wt, v)?;
        let wtw = session.matmul(&wt, &w)?;
        let wtwh = session.matmul(&wtw, &h)?;
        let num = session.elementwise(&h, EwOp::Mul, &wtv)?;
        h = session.elementwise(&num, EwOp::Div, &wtwh)?;
        // W ← W ∗ (V Hᵀ) / (W H Hᵀ)
        let ht = session.transpose(&h)?;
        let vht = session.matmul(v, &ht)?;
        let hht = session.matmul(&h, &ht)?;
        let whht = session.matmul(&w, &hht)?;
        let num = session.elementwise(&w, EwOp::Mul, &vht)?;
        w = session.elementwise(&num, EwOp::Div, &whht)?;

        objective.push(frobenius_residual(v, &w, &h)?);
        after_iteration(session, iter)?;
    }
    Ok(GnmfResult { w, h, objective })
}

/// `‖V − WH‖F` on materialized matrices.
fn frobenius_residual(v: &BlockMatrix, w: &BlockMatrix, h: &BlockMatrix) -> Result<f64, JobError> {
    let wh = w.multiply(h).map_err(to_job)?;
    let diff = v.elementwise(EwOp::Sub, &wh).map_err(to_job)?;
    Ok(diff.frobenius_norm())
}

fn to_job(e: distme_matrix::MatrixError) -> JobError {
    JobError::TaskFailed {
        task: 0,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::RealSession;

    fn tiny_v() -> BlockMatrix {
        // A small positive rating matrix.
        let meta = MatrixMeta::sparse(96, 64, 0.2).with_block_size(16);
        MatrixGenerator::with_seed(3)
            .value_range(1.0, 5.0)
            .generate(&meta)
            .unwrap()
    }

    #[test]
    fn real_gnmf_objective_is_monotone_nonincreasing() {
        let v = tiny_v();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let cfg = GnmfConfig {
            factor_dim: 16,
            iterations: 6,
        };
        let res = run_real(&mut s, &v, &cfg, 99).unwrap();
        assert_eq!(res.objective.len(), 6);
        for pair in res.objective.windows(2) {
            assert!(
                pair[1] <= pair[0] * (1.0 + 1e-9),
                "objective increased: {:?}",
                res.objective
            );
        }
        // Factors have the right shapes.
        assert_eq!(res.w.meta().rows, 96);
        assert_eq!(res.w.meta().cols, 16);
        assert_eq!(res.h.meta().rows, 16);
        assert_eq!(res.h.meta().cols, 64);
    }

    #[test]
    fn real_gnmf_actually_reduces_error() {
        let v = tiny_v();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let cfg = GnmfConfig {
            factor_dim: 24,
            iterations: 8,
        };
        let res = run_real(&mut s, &v, &cfg, 1).unwrap();
        let first = res.objective[0];
        let last = *res.objective.last().unwrap();
        assert!(last < first * 0.9, "no real progress: {first} -> {last}");
    }

    #[test]
    fn factors_stay_nonnegative() {
        let v = tiny_v();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let cfg = GnmfConfig {
            factor_dim: 8,
            iterations: 4,
        };
        let res = run_real(&mut s, &v, &cfg, 7).unwrap();
        for (_, blk) in res.w.blocks() {
            assert!(blk.to_dense().data().iter().all(|&x| x >= 0.0));
        }
        for (_, blk) in res.h.blocks() {
            assert!(blk.to_dense().data().iter().all(|&x| x >= 0.0));
        }
    }

    /// A grid where every GNMF matmul falls under the optimizer's §3.2
    /// voxel exception (`voxels < M·Tc` ⇒ spec `(I, J, K)`, no search):
    /// the decomposition — and therefore the floating-point summation
    /// order — is then *independent of the node count*, which is what
    /// makes elastic runs bit-comparable to fixed-grid runs.
    fn elastic_cfg(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            tasks_per_node: 10,
            ..ClusterConfig::laptop()
        }
    }

    fn small_v() -> BlockMatrix {
        // 4 x 3 blocks: at factor_dim 16 the largest matmul has 12 voxels,
        // under even the 4-node grid's 40 slots.
        let meta = MatrixMeta::sparse(64, 48, 0.3).with_block_size(16);
        MatrixGenerator::with_seed(3)
            .value_range(1.0, 5.0)
            .generate(&meta)
            .unwrap()
    }

    /// Exact bit pattern of a factor: block ids plus every f64's bits.
    fn factor_bits(m: &BlockMatrix) -> Vec<u64> {
        let mut out = Vec::new();
        for (id, blk) in m.blocks() {
            out.push(u64::from(id.row));
            out.push(u64::from(id.col));
            out.extend(blk.to_dense().data().iter().map(|x| x.to_bits()));
        }
        out
    }

    #[test]
    fn gnmf_grown_mid_run_matches_a_fixed_grid_bit_for_bit() {
        let v = small_v();
        let cfg = GnmfConfig {
            factor_dim: 16,
            iterations: 6,
        };
        let mut fixed = RealSession::new(elastic_cfg(9), SystemProfile::DistMe);
        let baseline = run_real(&mut fixed, &v, &cfg, 42).unwrap();

        let mut elastic = RealSession::new(elastic_cfg(4), SystemProfile::DistMe);
        let mut grew = None;
        let res = run_real_with(&mut elastic, &v, &cfg, 42, |s, iter| {
            if iter == 2 {
                grew = Some(s.scale_to(9)?);
            }
            Ok(())
        })
        .unwrap();

        let report = grew.expect("the resize hook must run");
        assert!(report.moves > 0, "a grow must migrate resident blocks");
        assert_eq!((report.from_nodes, report.to_nodes), (4, 9));
        assert!(elastic.stats().rebalanced_moves > 0);
        assert!(elastic.stats().rebalanced_payload_bytes > 0);
        assert_eq!(factor_bits(&res.w), factor_bits(&baseline.w));
        assert_eq!(factor_bits(&res.h), factor_bits(&baseline.h));
        let bits = |o: &[f64]| o.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&res.objective), bits(&baseline.objective));
    }

    #[test]
    fn gnmf_shrunk_mid_run_drains_live_blocks_without_drift() {
        let v = small_v();
        let cfg = GnmfConfig {
            factor_dim: 16,
            iterations: 6,
        };
        let mut fixed = RealSession::new(elastic_cfg(4), SystemProfile::DistMe);
        let baseline = run_real(&mut fixed, &v, &cfg, 42).unwrap();

        let mut elastic = RealSession::new(elastic_cfg(9), SystemProfile::DistMe);
        let mut shrank = None;
        let res = run_real_with(&mut elastic, &v, &cfg, 42, |s, iter| {
            if iter == 2 {
                // Live factor blocks sit on the 9-grid's tail nodes here;
                // the drain must re-home them before the grid truncates.
                shrank = Some(s.scale_to(4)?);
            }
            Ok(())
        })
        .unwrap();

        let report = shrank.expect("the resize hook must run");
        assert!(report.moves > 0, "a shrink must drain the leaving nodes");
        assert_eq!(report.lost_blocks, 0, "dual-homed blocks never get lost");
        assert_eq!(factor_bits(&res.w), factor_bits(&baseline.w));
        assert_eq!(factor_bits(&res.h), factor_bits(&baseline.h));
    }

    #[test]
    fn autoscaler_grows_the_cluster_during_gnmf() {
        use distme_cluster::ElasticPolicy;
        let v = small_v();
        let cfg = GnmfConfig {
            factor_dim: 16,
            iterations: 3,
        };
        let mut s = RealSession::new(
            ClusterConfig {
                nodes: 2,
                ..ClusterConfig::laptop()
            },
            SystemProfile::DistMe,
        );
        let policy = ElasticPolicy::default_band(2, 4);
        let mut resizes = Vec::new();
        let res = run_real_with(&mut s, &v, &cfg, 7, |s, _| {
            if let Some(r) = s.autoscale(&policy)? {
                resizes.push((r.from_nodes, r.to_nodes));
            }
            Ok(())
        })
        .unwrap();
        assert!(
            !resizes.is_empty(),
            "12 ops/iteration on 4 slots is far over the scale-up threshold"
        );
        assert!(s.cluster().config().nodes > 2);
        assert!(
            s.cluster().config().nodes <= 4,
            "policy must respect max_nodes"
        );
        for w in res.objective.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-9),
                "objective increased across a resize"
            );
        }
    }

    #[test]
    fn simulated_gnmf_runs_ten_iterations_on_movielens() {
        let cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
        let report = simulate(
            cfg,
            SystemProfile::DistMe,
            &RatingDataset::MOVIELENS,
            &GnmfConfig::default(),
        )
        .unwrap();
        assert_eq!(report.cumulative_secs.len(), 10);
        // Strictly increasing cumulative time.
        for w in report.cumulative_secs.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(report.dataset, "MovieLens");
        assert_eq!(report.system, "DistME");
    }

    #[test]
    fn matfast_ooms_at_factor_500_on_yahoo() {
        // Fig. 8(d): "When the factor dimension is larger than 500,
        // MatFast fails due to O.O.M." — V·Hᵀ materializes an
        // |C| = 1.8M x 500 intermediate per CPMM task.
        let cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
        let err = simulate(
            cfg,
            SystemProfile::MatFast,
            &RatingDataset::YAHOO_MUSIC,
            &GnmfConfig {
                factor_dim: 500,
                iterations: 1,
            },
        )
        .unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
        // And it survives the default factor dimension of 200.
        let ok = simulate(
            ClusterConfig::paper_cluster().with_timeout(f64::MAX),
            SystemProfile::MatFast,
            &RatingDataset::YAHOO_MUSIC,
            &GnmfConfig {
                factor_dim: 200,
                iterations: 1,
            },
        );
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn distme_survives_factor_1000() {
        let cfg = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
        let report = simulate(
            cfg,
            SystemProfile::DistMe,
            &RatingDataset::YAHOO_MUSIC,
            &GnmfConfig {
                factor_dim: 1000,
                iterations: 1,
            },
        );
        assert!(report.is_ok(), "{report:?}");
    }

    #[test]
    fn distme_beats_legacy_systems_on_netflix() {
        let mk = || ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
        let gnmf = GnmfConfig {
            factor_dim: 200,
            iterations: 2,
        };
        let distme = simulate(mk(), SystemProfile::DistMe, &RatingDataset::NETFLIX, &gnmf).unwrap();
        let systemml = simulate(
            mk(),
            SystemProfile::SystemMl,
            &RatingDataset::NETFLIX,
            &gnmf,
        )
        .unwrap();
        let matfast =
            simulate(mk(), SystemProfile::MatFast, &RatingDataset::NETFLIX, &gnmf).unwrap();
        assert!(
            distme.total_secs() < systemml.total_secs(),
            "DistME {:.0}s vs SystemML {:.0}s",
            distme.total_secs(),
            systemml.total_secs()
        );
        assert!(
            distme.total_secs() < matfast.total_secs(),
            "DistME {:.0}s vs MatFast {:.0}s",
            distme.total_secs(),
            matfast.total_secs()
        );
    }
}
