//! Algorithm library on top of the engine's distributed operators.
//!
//! §1 motivates DistME with "collaborative filtering, Cholesky
//! factorization, singular value decomposition, LU factorization,
//! betweenness centrality, and deep neural network" — workloads whose
//! inner loop is distributed matrix multiplication. Besides GNMF
//! ([`crate::gnmf`]), this module implements three more members of that
//! family, each driving [`RealSession`] the way a user program would:
//!
//! * [`power_iteration`] — dominant eigenpair (the SVD/PCA building block);
//! * [`pagerank`] — centrality over a sparse link matrix;
//! * [`ridge_regression_gd`] — L2-regularized least squares by gradient
//!   descent (the simplest "ML training loop" shape: Xᵀ(Xw − y) per step).

use crate::session::RealSession;
use distme_cluster::JobError;
use distme_matrix::elementwise::EwOp;
use distme_matrix::{BlockMatrix, MatrixGenerator, MatrixMeta};

/// Result of [`power_iteration`].
#[derive(Debug)]
pub struct EigenPair {
    /// Estimated dominant eigenvalue (Rayleigh quotient at the last step).
    pub value: f64,
    /// Estimated unit eigenvector, `n × 1`.
    pub vector: BlockMatrix,
    /// `‖A·v − λ·v‖F` at termination.
    pub residual: f64,
}

/// Estimates the dominant eigenpair of a square matrix by power iteration:
/// `v ← A·v / ‖A·v‖`.
///
/// # Errors
/// Returns a job error on shape mismatch or cluster failure; converging to
/// a zero vector (nilpotent A) is reported as a task failure.
pub fn power_iteration(
    session: &mut RealSession,
    a: &BlockMatrix,
    iterations: usize,
    seed: u64,
) -> Result<EigenPair, JobError> {
    let n = a.meta().rows;
    if n != a.meta().cols {
        return Err(JobError::TaskFailed {
            task: 0,
            message: format!(
                "power iteration needs a square matrix, got {n}x{}",
                a.meta().cols
            ),
        });
    }
    let bs = a.meta().block_size;
    let mut v = MatrixGenerator::with_seed(seed)
        .value_range(0.1, 1.0)
        .generate(&MatrixMeta::dense(n, 1).with_block_size(bs))
        .map_err(to_job)?;
    normalize(&mut v)?;

    let mut value = 0.0;
    for _ in 0..iterations {
        let av = session.matmul(a, &v)?;
        let norm = av.frobenius_norm();
        if norm == 0.0 {
            return Err(JobError::TaskFailed {
                task: 0,
                message: "power iteration collapsed to the zero vector".into(),
            });
        }
        // Rayleigh quotient λ = vᵀ(Av) (v is unit length).
        value = dot(&v, &av);
        v = av.scale(1.0 / norm);
    }
    let av = session.matmul(a, &v)?;
    let residual = av
        .elementwise(EwOp::Sub, &v.scale(value))
        .map_err(to_job)?
        .frobenius_norm();
    Ok(EigenPair {
        value,
        vector: v,
        residual,
    })
}

/// PageRank over a column-stochastic link matrix `P` (entry `(i, j)` is the
/// probability of moving to page `i` from page `j`):
/// `r ← d·P·r + (1 − d)/n`.
///
/// Returns the rank vector (sums to 1).
///
/// # Errors
/// Returns a job error on a non-square input or cluster failure.
pub fn pagerank(
    session: &mut RealSession,
    links: &BlockMatrix,
    damping: f64,
    iterations: usize,
) -> Result<BlockMatrix, JobError> {
    let n = links.meta().rows;
    if n != links.meta().cols {
        return Err(JobError::TaskFailed {
            task: 0,
            message: "pagerank needs a square link matrix".into(),
        });
    }
    let bs = links.meta().block_size;
    let uniform = 1.0 / n as f64;
    // r0 = uniform distribution.
    let ones = MatrixGenerator::with_seed(0)
        .value_range(1.0, 1.0 + f64::EPSILON)
        .generate(&MatrixMeta::dense(n, 1).with_block_size(bs))
        .map_err(to_job)?;
    let teleport = ones.scale(uniform * (1.0 - damping));
    let mut r = ones.scale(uniform);

    for _ in 0..iterations {
        let pr = session.matmul(links, &r)?;
        // Dangling-node mass: what the damped walk lost this step gets
        // redistributed uniformly so r stays a distribution.
        let walked = pr.total_sum();
        let dangling = (1.0 - walked).max(0.0) * damping * uniform;
        r = pr
            .scale(damping)
            .elementwise(EwOp::Add, &teleport)
            .map_err(to_job)?
            .elementwise(EwOp::Add, &ones.scale(dangling))
            .map_err(to_job)?;
    }
    Ok(r)
}

/// Result of [`ridge_regression_gd`].
#[derive(Debug)]
pub struct RidgeFit {
    /// Learned weights, `d × 1`.
    pub weights: BlockMatrix,
    /// Training loss `‖Xw − y‖² + λ‖w‖²` after each step (non-increasing
    /// for a small enough learning rate).
    pub loss: Vec<f64>,
}

/// Fits `min_w ‖Xw − y‖² + λ‖w‖²` by full-batch gradient descent with the
/// distributed engine computing `Xw` and `Xᵀ(Xw − y)`.
///
/// # Errors
/// Returns a job error on shape mismatch or cluster failure.
pub fn ridge_regression_gd(
    session: &mut RealSession,
    x: &BlockMatrix,
    y: &BlockMatrix,
    lambda: f64,
    learning_rate: f64,
    iterations: usize,
    seed: u64,
) -> Result<RidgeFit, JobError> {
    let (n, d) = (x.meta().rows, x.meta().cols);
    if y.meta().rows != n || y.meta().cols != 1 {
        return Err(JobError::TaskFailed {
            task: 0,
            message: format!(
                "ridge regression needs y of {n}x1, got {}x{}",
                y.meta().rows,
                y.meta().cols
            ),
        });
    }
    let bs = x.meta().block_size;
    let mut w = MatrixGenerator::with_seed(seed)
        .value_range(-0.01, 0.01)
        .generate(&MatrixMeta::dense(d, 1).with_block_size(bs))
        .map_err(to_job)?;
    let xt = session.transpose(x)?;

    let mut loss = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let xw = session.matmul(x, &w)?;
        let resid = xw.elementwise(EwOp::Sub, y).map_err(to_job)?;
        let grad = session
            .matmul(&xt, &resid)?
            .scale(2.0)
            .elementwise(EwOp::Add, &w.scale(2.0 * lambda))
            .map_err(to_job)?;
        w = w
            .elementwise(EwOp::Sub, &grad.scale(learning_rate))
            .map_err(to_job)?;
        let l = resid.frobenius_norm().powi(2) + lambda * w.frobenius_norm().powi(2);
        loss.push(l);
    }
    Ok(RidgeFit { weights: w, loss })
}

/// Dot product of two equal-shape matrices (used on `n × 1` vectors).
fn dot(a: &BlockMatrix, b: &BlockMatrix) -> f64 {
    a.elementwise(EwOp::Mul, b)
        .expect("shapes checked by caller")
        .total_sum()
}

/// Normalizes a vector to unit Frobenius norm in place.
fn normalize(v: &mut BlockMatrix) -> Result<(), JobError> {
    let norm = v.frobenius_norm();
    if norm == 0.0 {
        return Err(JobError::TaskFailed {
            task: 0,
            message: "cannot normalize the zero vector".into(),
        });
    }
    *v = v.scale(1.0 / norm);
    Ok(())
}

fn to_job(e: distme_matrix::MatrixError) -> JobError {
    JobError::TaskFailed {
        task: 0,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemProfile;
    use distme_cluster::ClusterConfig;
    use distme_matrix::{Block, CsrBlock, DenseBlock};

    fn session() -> RealSession {
        RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe)
    }

    #[test]
    fn power_iteration_finds_a_planted_eigenpair() {
        // A = Q diag(5, 1, ..., 1) Q^T would need a Q; simpler: a rank-1
        // bump over identity: A = I + 4·u·uᵀ with unit u has dominant
        // eigenvalue 5 along u.
        let n = 32u64;
        let bs = 16u64;
        let u: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).sin()).collect();
        let norm = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        let u: Vec<f64> = u.iter().map(|x| x / norm).collect();
        let meta = MatrixMeta::dense(n, n).with_block_size(bs);
        let mut a = BlockMatrix::new(meta);
        for bi in 0..2u32 {
            for bj in 0..2u32 {
                let d = DenseBlock::from_fn(16, 16, |i, j| {
                    let (gi, gj) = (bi as usize * 16 + i, bj as usize * 16 + j);
                    4.0 * u[gi] * u[gj] + if gi == gj { 1.0 } else { 0.0 }
                });
                a.put(bi, bj, Block::Dense(d)).unwrap();
            }
        }
        let mut s = session();
        let pair = power_iteration(&mut s, &a, 60, 7).unwrap();
        assert!((pair.value - 5.0).abs() < 1e-6, "eigenvalue {}", pair.value);
        assert!(pair.residual < 1e-6, "residual {}", pair.residual);
        // Eigenvector parallel to u (up to sign).
        let got: Vec<f64> = (0..n).map(|i| pair.vector.get_element(i, 0)).collect();
        let cos: f64 = got.iter().zip(u.iter()).map(|(a, b)| a * b).sum();
        assert!(cos.abs() > 0.999, "cosine {cos}");
    }

    #[test]
    fn power_iteration_rejects_rectangular() {
        let meta = MatrixMeta::dense(32, 16).with_block_size(16);
        let a = MatrixGenerator::with_seed(1).generate(&meta).unwrap();
        assert!(power_iteration(&mut session(), &a, 3, 1).is_err());
    }

    #[test]
    fn pagerank_is_a_distribution_and_ranks_the_hub() {
        // A 48-node star-ish graph: every page links to page 0, page 0
        // links uniformly everywhere. Column-stochastic P.
        let n = 48usize;
        let bs = 16u64;
        let mut trips: Vec<(usize, usize, f64)> = Vec::new();
        for j in 1..n {
            trips.push((0, j, 1.0)); // page j links only to page 0
        }
        for i in 0..n {
            trips.push((i, 0, 1.0 / n as f64)); // page 0 links everywhere
        }
        let meta = MatrixMeta::sparse(n as u64, n as u64, 0.05).with_block_size(bs);
        let mut links = BlockMatrix::new(meta);
        type BlockTriplets = std::collections::BTreeMap<(u32, u32), Vec<(usize, usize, f64)>>;
        let mut per_block: BlockTriplets = Default::default();
        for (i, j, v) in trips {
            per_block
                .entry(((i / 16) as u32, (j / 16) as u32))
                .or_default()
                .push((i % 16, j % 16, v));
        }
        for ((bi, bj), t) in per_block {
            links
                .put(
                    bi,
                    bj,
                    Block::Sparse(CsrBlock::from_triplets(16, 16, t).unwrap()),
                )
                .unwrap();
        }
        let mut s = session();
        let r = pagerank(&mut s, &links, 0.85, 40).unwrap();
        let total = r.total_sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        let hub = r.get_element(0, 0);
        for i in 1..n as u64 {
            assert!(hub > r.get_element(i, 0), "hub must dominate page {i}");
        }
    }

    #[test]
    fn ridge_recovers_planted_weights() {
        // y = X w* exactly; GD should drive the loss down and approach w*.
        let (n, d, bs) = (96u64, 16u64, 16u64);
        let x = MatrixGenerator::with_seed(5)
            .value_range(-1.0, 1.0)
            .generate(&MatrixMeta::dense(n, d).with_block_size(bs))
            .unwrap();
        let w_star = MatrixGenerator::with_seed(6)
            .value_range(-1.0, 1.0)
            .generate(&MatrixMeta::dense(d, 1).with_block_size(bs))
            .unwrap();
        let y = x.multiply(&w_star).unwrap();
        let mut s = session();
        let fit = ridge_regression_gd(&mut s, &x, &y, 0.0, 0.004, 120, 9).unwrap();
        // Loss decreases overall and ends near zero.
        let first = fit.loss[0];
        let last = *fit.loss.last().unwrap();
        assert!(last < first * 1e-3, "loss {first} -> {last}");
        let err = fit.weights.max_abs_diff(&w_star).unwrap();
        assert!(err < 0.05, "weight error {err}");
    }

    #[test]
    fn ridge_regularization_shrinks_weights() {
        let (n, d, bs) = (64u64, 16u64, 16u64);
        let x = MatrixGenerator::with_seed(5)
            .generate(&MatrixMeta::dense(n, d).with_block_size(bs))
            .unwrap();
        let y = MatrixGenerator::with_seed(8)
            .generate(&MatrixMeta::dense(n, 1).with_block_size(bs))
            .unwrap();
        let mut s = session();
        let free = ridge_regression_gd(&mut s, &x, &y, 0.0, 0.002, 80, 3).unwrap();
        let ridge = ridge_regression_gd(&mut s, &x, &y, 5.0, 0.002, 80, 3).unwrap();
        assert!(
            ridge.weights.frobenius_norm() < free.weights.frobenius_norm(),
            "λ must shrink the solution"
        );
    }

    #[test]
    fn ridge_validates_target_shape() {
        let x = MatrixGenerator::with_seed(1)
            .generate(&MatrixMeta::dense(32, 16).with_block_size(16))
            .unwrap();
        let bad_y = MatrixGenerator::with_seed(2)
            .generate(&MatrixMeta::dense(32, 2).with_block_size(16))
            .unwrap();
        assert!(ridge_regression_gd(&mut session(), &x, &bad_y, 0.1, 0.01, 3, 1).is_err());
    }
}
