//! Planner profiles of the systems compared in §6.
//!
//! The paper ports its GPU kernels into SystemML and MatFast so that the
//! systems differ only in *how they plan distributed multiplications*
//! (§6.1). We emulate the same isolation: every profile runs on the same
//! substrate and differs only in method choice, output-residency
//! semantics, and partitioning reuse.

use distme_cluster::ClusterConfig;
use distme_core::{MatmulProblem, MulMethod, OptimizerConfig, ResolvedMethod};

/// Shuffle-format size overhead of the legacy systems relative to DistME's
/// columnar serialization (§5). Calibrated against Fig. 7(c): SystemML's
/// RMM repartition (24–32 TB logical at N = 1.5M/2M) must exceed the 36 TB
/// cluster disk while the 16 TB at N = 1M must not.
pub const LEGACY_SER_OVERHEAD: f64 = 1.6;

/// A system's planning behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemProfile {
    /// DistME (this paper): CuboidMM with the §3.2 optimizer; streams task
    /// outputs; exploits cuboid-level GPU computation.
    DistMe,
    /// SystemML: picks BMM ("mapmm") when the broadcast side is small,
    /// RMM when a CPMM task's inputs cannot fit θt, CPMM otherwise —
    /// reproducing the choices §6.3 reports (CPMM on Figs. 7(a,b,d),
    /// RMM on Fig. 7(c)). Holds intermediate outputs resident.
    SystemMl,
    /// MatFast (naive version, the one the authors could run): always
    /// CPMM. Holds intermediate outputs resident — which is why it
    /// O.O.M.s on Fig. 7(c) and on GNMF factor dimensions ≥ 500.
    MatFast,
    /// DMac: CPMM, but with dependency-aware output partitioning across
    /// the ops of a complex query — consecutive operators reuse
    /// partitioning, so transpose repartitions are free.
    Dmac,
}

impl SystemProfile {
    /// All Spark-based profiles in the paper's comparison order.
    pub const ALL: [SystemProfile; 4] = [
        SystemProfile::MatFast,
        SystemProfile::SystemMl,
        SystemProfile::Dmac,
        SystemProfile::DistMe,
    ];

    /// Display name, matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SystemProfile::DistMe => "DistME",
            SystemProfile::SystemMl => "SystemML",
            SystemProfile::MatFast => "MatFast",
            SystemProfile::Dmac => "DMac",
        }
    }

    /// Chooses the multiplication method for one problem the way this
    /// system's optimizer would.
    pub fn method_for(&self, problem: &MatmulProblem, cluster: &ClusterConfig) -> MulMethod {
        match self {
            SystemProfile::DistMe => MulMethod::CuboidAuto,
            SystemProfile::MatFast | SystemProfile::Dmac => MulMethod::Cpmm,
            SystemProfile::SystemMl => {
                let theta_t = cluster.task_mem_bytes;
                // mapmm: broadcast the smaller side when it comfortably
                // fits beside a task's other operands.
                if problem.b.total_bytes() <= theta_t / 4
                    && problem.a.total_bytes() > problem.b.total_bytes()
                {
                    return MulMethod::Bmm;
                }
                // CPMM needs each task to hold |A|/K + |B|/K.
                let k = problem.dims().2 as u64;
                let cpmm_task_input =
                    problem.a.total_bytes() / k.max(1) + problem.b.total_bytes() / k.max(1);
                if cpmm_task_input <= theta_t {
                    MulMethod::Cpmm
                } else {
                    MulMethod::Rmm
                }
            }
        }
    }

    /// Resolves a problem to an executable method under this profile,
    /// applying the profile's output-residency semantics.
    pub fn resolve(&self, problem: &MatmulProblem, cluster: &ClusterConfig) -> ResolvedMethod {
        let method = self.method_for(problem, cluster);
        let mut resolved =
            ResolvedMethod::resolve(method, problem, &OptimizerConfig::from_cluster(cluster));
        if self.legacy_output_resident() {
            resolved = resolved.with_resident_output();
        }
        if *self != SystemProfile::DistMe {
            // Java-serialized block records vs DistME's columnar codec,
            // and the grafted GPU kernels run unconditionally (§6.1: "we
            // modify both SystemML and MatFast so as to support GPU-based
            // matrix multiplication").
            resolved = resolved
                .with_ser_overhead(LEGACY_SER_OVERHEAD)
                .with_unconditional_gpu();
        }
        resolved
    }

    /// MatFast's naive version materializes a CPMM task's whole
    /// intermediate output (Table 2's `|C|` memory term) — the cause of
    /// its O.O.M. at 40K in Fig. 7(a). SystemML's mature buffer manager
    /// spills, and DistME streams, so neither holds |C| resident.
    pub fn legacy_output_resident(&self) -> bool {
        matches!(self, SystemProfile::MatFast)
    }

    /// DMac exploits matrix dependencies so an operator's output is
    /// already partitioned for the next operator — transposes and chained
    /// reuses avoid repartition shuffles (§7).
    pub fn reuses_partitioning(&self) -> bool {
        matches!(self, SystemProfile::Dmac | SystemProfile::DistMe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::MatrixMeta;

    fn cluster() -> ClusterConfig {
        ClusterConfig::paper_cluster()
    }

    #[test]
    fn distme_always_uses_cuboid() {
        let p = MatmulProblem::dense(30_000, 30_000, 30_000);
        assert_eq!(
            SystemProfile::DistMe.method_for(&p, &cluster()),
            MulMethod::CuboidAuto
        );
    }

    #[test]
    fn matfast_always_uses_cpmm() {
        for p in [
            MatmulProblem::dense(30_000, 30_000, 30_000),
            MatmulProblem::dense(1_000_000, 1_000, 1_000_000),
        ] {
            assert_eq!(
                SystemProfile::MatFast.method_for(&p, &cluster()),
                MulMethod::Cpmm
            );
        }
    }

    #[test]
    fn systemml_choices_match_section_6_3() {
        let c = cluster();
        // Fig. 7(a): two general matrices => CPMM.
        let p = MatmulProblem::dense(40_000, 40_000, 40_000);
        assert_eq!(SystemProfile::SystemMl.method_for(&p, &c), MulMethod::Cpmm);
        // Fig. 7(b): common large dimension => CPMM.
        let p = MatmulProblem::dense(5_000, 10_000_000, 5_000);
        assert_eq!(SystemProfile::SystemMl.method_for(&p, &c), MulMethod::Cpmm);
        // Fig. 7(c): two large dimensions, K = 1 block => RMM.
        let p = MatmulProblem::dense(1_000_000, 1_000, 1_000_000);
        assert_eq!(SystemProfile::SystemMl.method_for(&p, &c), MulMethod::Rmm);
        // Small broadcast side => BMM.
        let a = MatrixMeta::dense(1_000_000, 1_000);
        let b = MatrixMeta::dense(1_000, 200);
        let p = MatmulProblem::new(a, b).unwrap();
        assert_eq!(SystemProfile::SystemMl.method_for(&p, &c), MulMethod::Bmm);
    }

    #[test]
    fn residency_flags() {
        assert!(!SystemProfile::DistMe.legacy_output_resident());
        assert!(!SystemProfile::SystemMl.legacy_output_resident());
        assert!(SystemProfile::MatFast.legacy_output_resident());
        let p = MatmulProblem::dense(30_000, 30_000, 30_000);
        let r = SystemProfile::MatFast.resolve(&p, &cluster());
        assert!(r.output_resident);
        let r = SystemProfile::DistMe.resolve(&p, &cluster());
        assert!(!r.output_resident);
    }

    #[test]
    fn names_and_reuse() {
        assert_eq!(SystemProfile::Dmac.name(), "DMac");
        assert!(SystemProfile::Dmac.reuses_partitioning());
        assert!(!SystemProfile::MatFast.reuses_partitioning());
    }
}
