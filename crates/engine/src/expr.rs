//! The matrix-expression API — DistME's user-facing query surface.
//!
//! §5: "it allows users to describe their matrix computation queries
//! (e.g., GNMF) using Scala API. From the query described by users, DistME
//! generates a kind of physical plan that can be executed in either CPU or
//! GPU." Here the query is an [`Expr`] tree; the "plan generation" is the
//! per-operator method selection the session's
//! [`crate::systems::SystemProfile`] performs.
//!
//! ```
//! use distme_engine::expr::Expr;
//! use distme_engine::{RealSession, SystemProfile};
//! use distme_cluster::ClusterConfig;
//! use distme_matrix::{MatrixGenerator, MatrixMeta};
//!
//! let meta = MatrixMeta::dense(64, 64).with_block_size(16);
//! let a = MatrixGenerator::with_seed(1).generate(&meta).unwrap();
//! // Gram matrix: Aᵀ × A
//! let query = Expr::value(a.clone()).t().matmul(Expr::value(a));
//! let mut session = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
//! let gram = query.eval_real(&mut session).unwrap();
//! assert_eq!(gram.meta().rows, 64);
//! ```

use crate::session::{RealSession, SimSession};
use distme_cluster::JobError;
use distme_matrix::elementwise::EwOp;
use distme_matrix::{BlockMatrix, MatrixMeta};
use std::sync::Arc;

/// A lazy matrix expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A materialized input matrix (real evaluation; simulation uses its
    /// descriptor).
    Value(Arc<BlockMatrix>),
    /// A virtual input known only by shape (simulation only).
    Virtual(MatrixMeta),
    /// Matrix product.
    MatMul(Box<Expr>, Box<Expr>),
    /// Transpose.
    Transpose(Box<Expr>),
    /// Element-wise combination.
    Elementwise(EwOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Wraps a materialized matrix.
    pub fn value(m: BlockMatrix) -> Expr {
        Expr::Value(Arc::new(m))
    }

    /// Wraps a shared materialized matrix.
    pub fn shared(m: Arc<BlockMatrix>) -> Expr {
        Expr::Value(m)
    }

    /// A virtual input for paper-scale simulation.
    pub fn virtual_input(meta: MatrixMeta) -> Expr {
        Expr::Virtual(meta)
    }

    /// `self × rhs`.
    pub fn matmul(self, rhs: Expr) -> Expr {
        Expr::MatMul(Box::new(self), Box::new(rhs))
    }

    /// `selfᵀ`.
    pub fn t(self) -> Expr {
        Expr::Transpose(Box::new(self))
    }

    /// Hadamard product `self ∗ rhs`.
    pub fn ew_mul(self, rhs: Expr) -> Expr {
        Expr::Elementwise(EwOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// Element-wise division (sparse-safe: `x/0 = 0`).
    pub fn ew_div(self, rhs: Expr) -> Expr {
        Expr::Elementwise(EwOp::Div, Box::new(self), Box::new(rhs))
    }

    /// Element-wise sum.
    pub fn ew_add(self, rhs: Expr) -> Expr {
        Expr::Elementwise(EwOp::Add, Box::new(self), Box::new(rhs))
    }

    /// Element-wise difference.
    pub fn ew_sub(self, rhs: Expr) -> Expr {
        Expr::Elementwise(EwOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// Number of operator nodes (excluding inputs).
    pub fn num_operators(&self) -> usize {
        match self {
            Expr::Value(_) | Expr::Virtual(_) => 0,
            Expr::Transpose(x) => 1 + x.num_operators(),
            Expr::MatMul(a, b) | Expr::Elementwise(_, a, b) => {
                1 + a.num_operators() + b.num_operators()
            }
        }
    }

    /// Evaluates with real blocks on a [`RealSession`] (post-order; each
    /// multiply is planned by the session's profile).
    ///
    /// # Errors
    /// Fails on virtual inputs, shape mismatches, or cluster failures.
    pub fn eval_real(&self, session: &mut RealSession) -> Result<BlockMatrix, JobError> {
        match self {
            Expr::Value(m) => Ok((**m).clone()),
            Expr::Virtual(_) => Err(JobError::TaskFailed {
                task: 0,
                message: "virtual inputs cannot be evaluated for real".into(),
            }),
            Expr::MatMul(a, b) => {
                let av = a.eval_real(session)?;
                let bv = b.eval_real(session)?;
                session.matmul(&av, &bv)
            }
            Expr::Transpose(x) => {
                let xv = x.eval_real(session)?;
                session.transpose(&xv)
            }
            Expr::Elementwise(op, a, b) => {
                let av = a.eval_real(session)?;
                let bv = b.eval_real(session)?;
                session.elementwise(&av, *op, &bv)
            }
        }
    }

    /// Evaluates shapes/costs on a [`SimSession`] at paper scale.
    ///
    /// # Errors
    /// Propagates simulated failure modes (O.O.M. / T.O. / E.D.C.).
    pub fn eval_sim(&self, session: &mut SimSession) -> Result<MatrixMeta, JobError> {
        match self {
            Expr::Value(m) => Ok(*m.meta()),
            Expr::Virtual(meta) => Ok(*meta),
            Expr::MatMul(a, b) => {
                let am = a.eval_sim(session)?;
                let bm = b.eval_sim(session)?;
                session.matmul(&am, &bm)
            }
            Expr::Transpose(x) => {
                let xm = x.eval_sim(session)?;
                session.transpose(&xm)
            }
            Expr::Elementwise(op, a, b) => {
                let am = a.eval_sim(session)?;
                let bm = b.eval_sim(session)?;
                session.elementwise(&am, *op, &bm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemProfile;
    use distme_cluster::ClusterConfig;
    use distme_matrix::MatrixGenerator;

    fn matrix(rows: u64, cols: u64, seed: u64) -> BlockMatrix {
        let meta = MatrixMeta::dense(rows, cols).with_block_size(16);
        MatrixGenerator::with_seed(seed).generate(&meta).unwrap()
    }

    #[test]
    fn gram_matrix_expression() {
        let a = matrix(48, 32, 1);
        let expect = a.transpose().multiply(&a).unwrap();
        let shared = Arc::new(a);
        let q = Expr::shared(Arc::clone(&shared))
            .t()
            .matmul(Expr::shared(shared));
        assert_eq!(q.num_operators(), 2);
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let got = q.eval_real(&mut s).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
    }

    #[test]
    fn elementwise_and_operator_count() {
        let a = matrix(32, 32, 2);
        let b = matrix(32, 32, 3);
        let q = Expr::value(a.clone())
            .ew_mul(Expr::value(b.clone()))
            .ew_add(Expr::value(a.clone()));
        assert_eq!(q.num_operators(), 2);
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let got = q.eval_real(&mut s).unwrap();
        let want = a
            .elementwise(EwOp::Mul, &b)
            .unwrap()
            .elementwise(EwOp::Add, &a)
            .unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-12);
    }

    #[test]
    fn sim_eval_tracks_shapes_and_costs() {
        let v = Expr::virtual_input(MatrixMeta::dense(50_000, 20_000));
        let w = Expr::virtual_input(MatrixMeta::dense(50_000, 200));
        let q = w.t().matmul(v); // 200 x 20_000
        let mut s = SimSession::new(ClusterConfig::paper_cluster(), SystemProfile::DistMe);
        let out = q.eval_sim(&mut s).unwrap();
        assert_eq!((out.rows, out.cols), (200, 20_000));
        assert!(s.stats().elapsed_secs > 0.0);
        assert_eq!(s.ops_run(), 2);
    }

    #[test]
    fn virtual_inputs_rejected_in_real_mode() {
        let q = Expr::virtual_input(MatrixMeta::dense(10, 10));
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        assert!(q.eval_real(&mut s).is_err());
    }
}
