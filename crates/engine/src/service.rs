//! The multi-tenant job service: one cluster, many concurrent callers.
//!
//! [`Session`](crate::session::Session) is a single-caller front end: one
//! owner, one mutable borrow, one job at a time. [`JobService`] is the
//! engine's shared front end on the same substrate — jobs from several
//! tenants are submitted concurrently, pass the cluster scheduler's
//! admission control (θt-style memory budgeting summed across admitted
//! jobs: an over-budget submission *queues* rather than failing), and
//! their stages interleave on the cluster's shared worker pool under the
//! scheduler's priority/fair-share policy.
//!
//! Determinism contract: a job submitted through the service produces
//! **bit-identical** results and per-job statistics to the same operators
//! run directly through a `Session` on an identical cluster. Task indices
//! within a stage are handed out in order regardless of which job's
//! workers interleave between them, model bytes are computed from the
//! plan's routing view, and physical payload counters are job-local —
//! nothing a concurrent job does can leak into another job's results or
//! stats (`crates/engine/tests/service.rs` enforces this).
//!
//! ```no_run
//! use distme_engine::service::{JobService, JobSpec};
//! use distme_engine::session::RealOps;
//! use distme_engine::systems::SystemProfile;
//! use distme_cluster::{ClusterConfig, TenantId};
//! # let (a, b) = unimplemented!();
//! let svc = JobService::new(ClusterConfig::laptop(), SystemProfile::DistMe);
//! let h = svc.submit(JobSpec::new(TenantId(1)), move |s| s.matmul(&a, &b));
//! let out = h.wait().unwrap();
//! println!("{} ops for {}", out.ops_run, out.tenant);
//! ```

use crate::session::{plan_key, RealOps};
use crate::systems::SystemProfile;
use distme_cluster::{
    ClusterConfig, ElasticPolicy, JobError, JobStats, LedgerSnapshot, LocalCluster, QueueWaitStats,
    RebalanceReport, Scheduler, SchedulerLoad, TenantId,
};
use distme_core::real_exec::{self, RealExecOptions};
use distme_core::{
    JobPlan, MatmulProblem, MulMethod, OptimizerConfig, PlanCache, PlanCacheStats, ResolvedMethod,
};
use distme_matrix::elementwise::EwOp;
use distme_matrix::BlockMatrix;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;

/// What a submission declares about itself: identity, scheduling class,
/// and the memory demand the admission controller holds against the
/// cluster budget while the job runs.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Tenant the job's traffic, leases and stats are attributed to.
    pub tenant: TenantId,
    /// Scheduler priority (higher wins freed slots first; clamped to the
    /// cluster's configured `priority_levels`).
    pub priority: u8,
    /// Declared resident-memory demand, charged against
    /// `SchedulerConfig::admission_budget_bytes` for the job's lifetime.
    pub demand_bytes: u64,
}

impl JobSpec {
    /// A spec for `tenant` at priority 0 with zero declared demand.
    pub fn new(tenant: TenantId) -> Self {
        JobSpec {
            tenant,
            priority: 0,
            demand_bytes: 0,
        }
    }

    /// Sets the scheduler priority.
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the declared memory demand.
    #[must_use]
    pub fn demand_bytes(mut self, bytes: u64) -> Self {
        self.demand_bytes = bytes;
        self
    }
}

/// Where a submitted job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the submission queue for admission (memory budget).
    Queued,
    /// Admitted; its stages are running on the shared worker pool.
    Running,
    /// Completed successfully; [`JobHandle::wait`] returns the output.
    Finished,
    /// Rejected at submission or failed while running.
    Failed,
}

/// A finished job: its value plus the service-side measurements.
#[derive(Debug)]
pub struct JobOutput<T> {
    /// What the job closure returned.
    pub value: T,
    /// Statistics accumulated over the job's operators.
    pub stats: JobStats,
    /// Number of operators the job ran.
    pub ops_run: usize,
    /// Seconds the job waited in the submission queue before admission.
    pub queue_wait_secs: f64,
    /// The tenant the job ran as.
    pub tenant: TenantId,
}

struct Slot<T> {
    status: JobStatus,
    result: Option<Result<JobOutput<T>, JobError>>,
}

struct HandleState<T> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
}

impl<T> HandleState<T> {
    fn set_status(&self, status: JobStatus) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        slot.status = status;
        self.cv.notify_all();
    }

    fn finish(&self, result: Result<JobOutput<T>, JobError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        slot.status = if result.is_ok() {
            JobStatus::Finished
        } else {
            JobStatus::Failed
        };
        slot.result = Some(result);
        self.cv.notify_all();
    }
}

/// A submitted job: poll it with [`status`](Self::status) or block on
/// [`wait`](Self::wait). Dropping the handle detaches the job — it keeps
/// running to completion.
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
}

impl<T> JobHandle<T> {
    /// The job's current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.state
            .slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .status
    }

    /// Blocks until the job finishes and returns its output.
    ///
    /// # Errors
    /// The submission rejection ([`JobError::QueueFull`],
    /// [`JobError::InvalidSubmission`]) or whatever the job's operators
    /// failed with.
    pub fn wait(self) -> Result<JobOutput<T>, JobError> {
        let mut slot = self.state.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.result.take() {
                return result;
            }
            slot = self.state.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }
}

struct Shared {
    /// Jobs hold read locks while running; membership changes (autoscale,
    /// explicit resizes) take the write lock, so a resize waits for
    /// in-flight jobs and new jobs see the post-resize epoch.
    cluster: RwLock<LocalCluster>,
    /// Clone of the cluster's scheduler handle, reachable without the
    /// cluster lock: queued submissions must not block a resize and vice
    /// versa.
    scheduler: Scheduler,
    /// One plan cache shared by every tenant's jobs (epoch-safe and
    /// exactly-once under concurrency; see `core::plan_cache`).
    plans: PlanCache<Arc<JobPlan>>,
    profile: SystemProfile,
}

/// The multi-tenant engine front end: a shared cluster behind a
/// submission queue. See the module docs for the determinism contract.
pub struct JobService {
    shared: Arc<Shared>,
}

impl JobService {
    /// Builds a service on a fresh cluster for `cfg`, planning every
    /// tenant's multiplies with `profile`.
    pub fn new(cfg: ClusterConfig, profile: SystemProfile) -> Self {
        let cluster = LocalCluster::new(cfg);
        let scheduler = cluster.scheduler().clone();
        JobService {
            shared: Arc::new(Shared {
                cluster: RwLock::new(cluster),
                scheduler,
                plans: PlanCache::new(),
                profile,
            }),
        }
    }

    /// Submits `job` for `spec`'s tenant and returns immediately with a
    /// handle. The job passes admission control on a driver thread: while
    /// the declared demand would overshoot the cluster memory budget it
    /// *queues* (status [`JobStatus::Queued`]); a full submission queue or
    /// an out-of-range priority fails the handle instead.
    pub fn submit<T, F>(&self, spec: JobSpec, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut TenantSession<'_>) -> Result<T, JobError> + Send + 'static,
    {
        let state = Arc::new(HandleState {
            slot: Mutex::new(Slot {
                status: JobStatus::Queued,
                result: None,
            }),
            cv: Condvar::new(),
        });
        let shared = Arc::clone(&self.shared);
        let thread_state = Arc::clone(&state);
        thread::spawn(move || {
            let ticket =
                match shared
                    .scheduler
                    .submit(spec.tenant, spec.priority, spec.demand_bytes)
                {
                    Ok(t) => t,
                    Err(e) => return thread_state.finish(Err(e)),
                };
            thread_state.set_status(JobStatus::Running);
            let queue_wait_secs = ticket.queue_wait_secs;
            let cluster = shared.cluster.read().unwrap_or_else(|p| p.into_inner());
            let mut session = TenantSession {
                cluster: &cluster,
                shared: &shared,
                tenant: spec.tenant,
                priority: spec.priority,
                stats: JobStats::default(),
                ops_run: 0,
            };
            let value = job(&mut session);
            let stats = session.stats;
            let ops_run = session.ops_run;
            drop(cluster);
            // Admission released only now: the budget bounds *concurrent*
            // resident jobs, so the ticket must outlive the work.
            drop(ticket);
            thread_state.finish(value.map(|value| JobOutput {
                value,
                stats,
                ops_run,
                queue_wait_secs,
                tenant: spec.tenant,
            }));
        });
        JobHandle { state }
    }

    /// The blocking compatibility path: [`submit`](Self::submit) +
    /// [`JobHandle::wait`]. Call sites written against the synchronous
    /// `Session` move over by wrapping their operators in one closure.
    ///
    /// # Errors
    /// See [`JobHandle::wait`].
    pub fn run<T, F>(&self, spec: JobSpec, job: F) -> Result<JobOutput<T>, JobError>
    where
        T: Send + 'static,
        F: FnOnce(&mut TenantSession<'_>) -> Result<T, JobError> + Send + 'static,
    {
        self.submit(spec, job).wait()
    }

    /// The scheduler's live load (queue depths, held slots, admitted
    /// memory) — the autoscaler's pressure signal.
    pub fn load(&self) -> SchedulerLoad {
        self.shared.scheduler.load()
    }

    /// Queue-wait distribution over every admission so far.
    pub fn queue_wait_stats(&self) -> QueueWaitStats {
        self.shared.scheduler.queue_wait_stats()
    }

    /// Cluster-wide communication totals.
    pub fn ledger_snapshot(&self) -> LedgerSnapshot {
        self.read_cluster().ledger().snapshot()
    }

    /// Communication attributed to `tenant` (its jobs' ledger charges).
    /// Tenant snapshots sum to the cluster total by construction.
    pub fn tenant_comm(&self, tenant: TenantId) -> LedgerSnapshot {
        self.read_cluster().ledger().tenant_snapshot(tenant)
    }

    /// Every tenant the ledger has seen traffic from.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.read_cluster().ledger().tenants()
    }

    /// Hit/miss/invalidation counters of the shared plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.shared.plans.stats()
    }

    /// A copy of the cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        *self.read_cluster().config()
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.read_cluster().epoch()
    }

    /// Resizes the cluster once in-flight jobs drain (write lock); queued
    /// submissions then plan against the new epoch.
    ///
    /// # Errors
    /// Propagates transport failures during the resize's migration.
    pub fn scale_to(&self, nodes: usize) -> Result<RebalanceReport, JobError> {
        self.shared
            .cluster
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .scale_to(nodes)
    }

    /// Applies `policy` to the scheduler's live load
    /// ([`ElasticPolicy::recommend_from_load`]): the multi-tenant
    /// replacement for the per-session autoscaler, seeing every
    /// concurrent job's pressure instead of the last job's stats.
    /// `Ok(None)` means the pool is inside the utilization band.
    ///
    /// # Errors
    /// Propagates transport failures during the resize's migration.
    pub fn autoscale(&self, policy: &ElasticPolicy) -> Result<Option<RebalanceReport>, JobError> {
        let load = self.shared.scheduler.load();
        let (nodes, tasks_per_node) = {
            let cluster = self.read_cluster();
            (cluster.config().nodes, cluster.config().tasks_per_node)
        };
        match policy.recommend_from_load(&load, nodes, tasks_per_node) {
            Some(target) => self.scale_to(target).map(Some),
            None => Ok(None),
        }
    }

    fn read_cluster(&self) -> std::sync::RwLockReadGuard<'_, LocalCluster> {
        self.shared
            .cluster
            .read()
            .unwrap_or_else(|p| p.into_inner())
    }
}

/// One job's view of the shared cluster: the [`RealOps`] operator surface
/// with every stage tagged by the job's tenant and priority, and per-job
/// statistics accumulated across its operators. Handed to the job closure
/// by [`JobService::submit`]; holds the cluster read lock for the job's
/// duration.
pub struct TenantSession<'a> {
    cluster: &'a LocalCluster,
    shared: &'a Shared,
    tenant: TenantId,
    priority: u8,
    stats: JobStats,
    ops_run: usize,
}

impl TenantSession<'_> {
    /// The tenant this job runs as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Statistics accumulated over the job's operators so far.
    pub fn stats(&self) -> &JobStats {
        &self.stats
    }

    /// Number of operators run so far.
    pub fn ops_run(&self) -> usize {
        self.ops_run
    }

    /// The underlying cluster (read-only: ledger and store access).
    pub fn cluster(&self) -> &LocalCluster {
        self.cluster
    }

    fn absorb(&mut self, stats: JobStats) {
        self.stats.merge(&stats);
        self.ops_run += 1;
    }

    /// Plans a sparse-family multiply through the shared epoch-safe cache
    /// (`SpmmShift` without a mask, `Sddmm` with one) and the per-job
    /// execution options.
    fn sparse_plan(
        &self,
        a: &BlockMatrix,
        b: &BlockMatrix,
        mask: Option<&BlockMatrix>,
    ) -> Result<(Arc<JobPlan>, RealExecOptions), JobError> {
        let (problem, method) = match mask {
            Some(m) => (
                MatmulProblem::sddmm(*a.meta(), *b.meta(), *m.meta()),
                MulMethod::Sddmm,
            ),
            None => (
                MatmulProblem::new(*a.meta(), *b.meta()),
                MulMethod::SpmmShift,
            ),
        };
        let problem = problem.map_err(|e| JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        })?;
        let resolved = ResolvedMethod::resolve(
            method,
            &problem,
            &OptimizerConfig::from_cluster(self.cluster.config()),
        );
        let epoch = self.cluster.epoch();
        let plan = self
            .shared
            .plans
            .get_or_insert(epoch, &plan_key(&problem, &resolved), || {
                Arc::new(
                    JobPlan::from_resolved(&problem, &resolved, self.cluster.config())
                        .at_epoch(epoch),
                )
            });
        let opts = RealExecOptions {
            gpu_task_mem_bytes: None,
            tenant: self.tenant,
            priority: self.priority,
            ..Default::default()
        };
        Ok((plan, opts))
    }
}

impl RealOps for TenantSession<'_> {
    fn matmul(&mut self, a: &BlockMatrix, b: &BlockMatrix) -> Result<BlockMatrix, JobError> {
        let problem =
            MatmulProblem::new(*a.meta(), *b.meta()).map_err(|e| JobError::TaskFailed {
                task: 0,
                message: e.to_string(),
            })?;
        let resolved = self.shared.profile.resolve(&problem, self.cluster.config());
        let epoch = self.cluster.epoch();
        let plan = self
            .shared
            .plans
            .get_or_insert(epoch, &plan_key(&problem, &resolved), || {
                Arc::new(
                    JobPlan::from_resolved(&problem, &resolved, self.cluster.config())
                        .at_epoch(epoch),
                )
            });
        let opts = RealExecOptions {
            gpu_task_mem_bytes: None,
            tenant: self.tenant,
            priority: self.priority,
            ..Default::default()
        };
        let (out, stats) = real_exec::execute_plan(self.cluster, a, b, &plan, opts)?;
        self.absorb(stats);
        Ok(out)
    }

    fn transpose(&mut self, x: &BlockMatrix) -> Result<BlockMatrix, JobError> {
        let (out, stats) =
            crate::ops::real_transpose(self.cluster, x, self.shared.profile.reuses_partitioning());
        self.absorb(stats);
        Ok(out)
    }

    fn elementwise(
        &mut self,
        x: &BlockMatrix,
        op: EwOp,
        y: &BlockMatrix,
    ) -> Result<BlockMatrix, JobError> {
        let (out, stats) = crate::ops::real_elementwise(x, op, y)?;
        self.absorb(stats);
        Ok(out)
    }

    fn spmm(&mut self, a: &BlockMatrix, b: &BlockMatrix) -> Result<BlockMatrix, JobError> {
        let (plan, opts) = self.sparse_plan(a, b, None)?;
        let (out, stats) = real_exec::execute_plan(self.cluster, a, b, &plan, opts)?;
        self.absorb(stats);
        Ok(out)
    }

    fn sddmm(
        &mut self,
        a: &BlockMatrix,
        b: &BlockMatrix,
        mask: &BlockMatrix,
    ) -> Result<BlockMatrix, JobError> {
        let (plan, opts) = self.sparse_plan(a, b, Some(mask))?;
        let (out, stats) =
            real_exec::execute_plan_masked(self.cluster, a, b, Some(mask), &plan, opts)?;
        self.absorb(stats);
        Ok(out)
    }
}
