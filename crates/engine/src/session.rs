//! Evaluation sessions: the engine's execution contexts.

use crate::ops;
use crate::systems::SystemProfile;
use distme_cluster::{ClusterConfig, JobError, JobStats, LocalCluster, SimCluster};
use distme_core::{real_exec, sim_exec, MatmulProblem};
use distme_matrix::elementwise::EwOp;
use distme_matrix::{BlockMatrix, MatrixMeta};

/// A paper-scale session: operators run against the simulated cluster and
/// only *descriptors* flow; per-operator statistics accumulate.
pub struct SimSession {
    cluster: SimCluster,
    profile: SystemProfile,
    accumulated: JobStats,
    ops_run: usize,
}

impl SimSession {
    /// Creates a session for `profile` on a cluster configuration.
    pub fn new(cfg: ClusterConfig, profile: SystemProfile) -> Self {
        SimSession {
            cluster: SimCluster::new(cfg),
            profile,
            accumulated: JobStats::default(),
            ops_run: 0,
        }
    }

    /// The session's system profile.
    pub fn profile(&self) -> SystemProfile {
        self.profile
    }

    /// Statistics accumulated over every operator run so far.
    pub fn stats(&self) -> &JobStats {
        &self.accumulated
    }

    /// Number of operators executed.
    pub fn ops_run(&self) -> usize {
        self.ops_run
    }

    /// Resets the accumulated statistics (e.g. between GNMF iterations).
    pub fn reset_stats(&mut self) {
        self.accumulated = JobStats::default();
        self.ops_run = 0;
    }

    /// Distributed multiply `a × b` with the profile's planner.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    pub fn matmul(&mut self, a: &MatrixMeta, b: &MatrixMeta) -> Result<MatrixMeta, JobError> {
        let problem = MatmulProblem::new(*a, *b).map_err(|e| JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        })?;
        let resolved = self.profile.resolve(&problem, self.cluster.config());
        let stats = sim_exec::simulate_resolved(&mut self.cluster, &problem, &resolved)?;
        self.absorb(stats);
        Ok(problem.c)
    }

    /// Distributed transpose.
    ///
    /// # Errors
    /// Propagates cluster failure modes.
    pub fn transpose(&mut self, x: &MatrixMeta) -> Result<MatrixMeta, JobError> {
        let (out, stats) =
            ops::sim_transpose(&mut self.cluster, x, self.profile.reuses_partitioning())?;
        self.absorb(stats);
        Ok(out)
    }

    /// Element-wise combination of co-partitioned matrices.
    ///
    /// # Errors
    /// Returns a task failure on shape mismatch.
    pub fn elementwise(&mut self, x: &MatrixMeta, y: &MatrixMeta) -> Result<MatrixMeta, JobError> {
        let (out, stats) = ops::sim_elementwise(&mut self.cluster, x, y)?;
        self.absorb(stats);
        Ok(out)
    }

    fn absorb(&mut self, stats: JobStats) {
        self.accumulated.merge(&stats);
        self.ops_run += 1;
    }
}

/// A laptop-scale session: operators run with real blocks on the
/// thread-backed cluster; values are actual [`BlockMatrix`]es.
pub struct RealSession {
    cluster: LocalCluster,
    profile: SystemProfile,
    accumulated: JobStats,
}

impl RealSession {
    /// Creates a session for `profile`.
    pub fn new(cfg: ClusterConfig, profile: SystemProfile) -> Self {
        RealSession {
            cluster: LocalCluster::new(cfg),
            profile,
            accumulated: JobStats::default(),
        }
    }

    /// The underlying cluster (ledger access for tests).
    pub fn cluster(&self) -> &LocalCluster {
        &self.cluster
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &JobStats {
        &self.accumulated
    }

    /// Distributed multiply with the profile's planner.
    ///
    /// # Errors
    /// Propagates shape errors, O.O.M., and scheduler failures.
    pub fn matmul(&mut self, a: &BlockMatrix, b: &BlockMatrix) -> Result<BlockMatrix, JobError> {
        let problem =
            MatmulProblem::new(*a.meta(), *b.meta()).map_err(|e| JobError::TaskFailed {
                task: 0,
                message: e.to_string(),
            })?;
        let method = self.profile.method_for(&problem, self.cluster.config());
        let (c, stats) = real_exec::multiply(&self.cluster, a, b, method)?;
        self.accumulated.merge(&stats);
        Ok(c)
    }

    /// Transpose with shuffle accounting.
    pub fn transpose(&mut self, x: &BlockMatrix) -> BlockMatrix {
        let (out, stats) =
            ops::real_transpose(&self.cluster, x, self.profile.reuses_partitioning());
        self.accumulated.merge(&stats);
        out
    }

    /// Element-wise combination.
    ///
    /// # Errors
    /// Returns a task failure on shape mismatch.
    pub fn elementwise(
        &mut self,
        x: &BlockMatrix,
        op: EwOp,
        y: &BlockMatrix,
    ) -> Result<BlockMatrix, JobError> {
        let (out, stats) = ops::real_elementwise(x, op, y)?;
        self.accumulated.merge(&stats);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::MatrixGenerator;

    #[test]
    fn sim_session_accumulates_stats() {
        let mut s = SimSession::new(ClusterConfig::paper_cluster(), SystemProfile::DistMe);
        let a = MatrixMeta::dense(20_000, 20_000);
        let b = MatrixMeta::dense(20_000, 20_000);
        let c = s.matmul(&a, &b).unwrap();
        assert_eq!((c.rows, c.cols), (20_000, 20_000));
        let after_one = s.stats().elapsed_secs;
        assert!(after_one > 0.0);
        let _ = s.matmul(&c, &b).unwrap();
        assert!(s.stats().elapsed_secs > after_one);
        assert_eq!(s.ops_run(), 2);
        s.reset_stats();
        assert_eq!(s.stats().elapsed_secs, 0.0);
    }

    #[test]
    fn sim_session_chains_transpose_and_ew() {
        let mut s = SimSession::new(ClusterConfig::paper_cluster(), SystemProfile::SystemMl);
        let x = MatrixMeta::dense(10_000, 4_000);
        let xt = s.transpose(&x).unwrap();
        assert_eq!(xt.rows, 4_000);
        let y = s.elementwise(&x, &x).unwrap();
        assert_eq!(y.rows, 10_000);
        assert_eq!(s.ops_run(), 2);
    }

    #[test]
    fn real_session_multiplies_correctly_per_profile() {
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let reference = a.multiply(&b).unwrap();
        for profile in SystemProfile::ALL {
            let mut s = RealSession::new(ClusterConfig::laptop(), profile);
            let c = s.matmul(&a, &b).unwrap();
            assert!(
                c.max_abs_diff(&reference).unwrap() < 1e-9,
                "{} diverged",
                profile.name()
            );
        }
    }

    #[test]
    fn real_session_full_expression() {
        // (A^T)^T * A element-multiplied with A*... exercise chaining.
        let meta = MatrixMeta::dense(48, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(7).generate(&meta).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let at = s.transpose(&a);
        let sym = s.matmul(&at, &a).unwrap(); // A^T A is symmetric
        let symt = s.transpose(&sym);
        assert!(sym.max_abs_diff(&symt).unwrap() < 1e-9);
        let hadamard = s.elementwise(&sym, EwOp::Mul, &symt).unwrap();
        assert!(hadamard.get_element(0, 0) >= 0.0); // squares
    }
}
