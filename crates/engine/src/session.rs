//! Evaluation sessions: the engine's execution contexts.
//!
//! One generic [`Session`] drives either backend. A backend pairs a
//! cluster (simulated or thread-backed) with a value representation
//! (descriptors or materialized block matrices); the session layers the
//! system profile's planning and the per-operator statistics accumulation
//! on top, identically for both. `SimSession` and `RealSession` are plain
//! type aliases — there is no duplicated session logic to drift apart.

use crate::ops;
use crate::systems::SystemProfile;
use distme_cluster::{
    ClusterConfig, ExecutionBackend, JobError, JobStats, LocalCluster, SimCluster,
};
use distme_core::real_exec::{self, RealExecOptions};
use distme_core::{sim_exec, MatmulProblem};
use distme_matrix::elementwise::EwOp;
use distme_matrix::{BlockMatrix, MatrixMeta};
use std::sync::Arc;

/// A place session operators execute: a cluster plus the value
/// representation that flows between operators on it.
pub trait EngineBackend {
    /// The underlying cluster type.
    type Cluster: ExecutionBackend;
    /// What a matrix *is* on this backend: a descriptor (sim) or a
    /// materialized block matrix (real).
    type Value;

    /// Builds the backend on a fresh cluster.
    fn from_config(cfg: ClusterConfig) -> Self;

    /// The underlying cluster (configuration and ledger access).
    fn cluster(&self) -> &Self::Cluster;

    /// Distributed multiply `a × b` planned by `profile`.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    fn matmul(
        &mut self,
        profile: SystemProfile,
        a: &Self::Value,
        b: &Self::Value,
    ) -> Result<(Self::Value, JobStats), JobError>;

    /// Distributed transpose.
    ///
    /// # Errors
    /// Propagates cluster failure modes.
    fn transpose(
        &mut self,
        profile: SystemProfile,
        x: &Self::Value,
    ) -> Result<(Self::Value, JobStats), JobError>;

    /// Element-wise combination of co-partitioned matrices.
    ///
    /// # Errors
    /// Returns a task failure on shape mismatch.
    fn elementwise(
        &mut self,
        x: &Self::Value,
        op: EwOp,
        y: &Self::Value,
    ) -> Result<(Self::Value, JobStats), JobError>;
}

/// The paper-scale backend: only descriptors flow; every operator is
/// lowered onto the simulated cluster's resource models.
pub struct SimBackend {
    cluster: SimCluster,
}

impl EngineBackend for SimBackend {
    type Cluster = SimCluster;
    type Value = MatrixMeta;

    fn from_config(cfg: ClusterConfig) -> Self {
        SimBackend {
            cluster: SimCluster::new(cfg),
        }
    }

    fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    fn matmul(
        &mut self,
        profile: SystemProfile,
        a: &MatrixMeta,
        b: &MatrixMeta,
    ) -> Result<(MatrixMeta, JobStats), JobError> {
        let problem = MatmulProblem::new(*a, *b).map_err(|e| JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        })?;
        let resolved = profile.resolve(&problem, self.cluster.config());
        let stats = sim_exec::simulate_resolved(&mut self.cluster, &problem, &resolved)?;
        Ok((problem.c, stats))
    }

    fn transpose(
        &mut self,
        profile: SystemProfile,
        x: &MatrixMeta,
    ) -> Result<(MatrixMeta, JobStats), JobError> {
        ops::sim_transpose(&mut self.cluster, x, profile.reuses_partitioning())
    }

    fn elementwise(
        &mut self,
        x: &MatrixMeta,
        _op: EwOp,
        y: &MatrixMeta,
    ) -> Result<(MatrixMeta, JobStats), JobError> {
        // The sim cost model is op-independent: one arithmetic pass.
        ops::sim_elementwise(&mut self.cluster, x, y)
    }
}

/// The laptop-scale backend: operators run with real blocks on the
/// thread-backed cluster and results are checked against references.
pub struct RealBackend {
    cluster: LocalCluster,
}

impl EngineBackend for RealBackend {
    type Cluster = LocalCluster;
    type Value = BlockMatrix;

    fn from_config(cfg: ClusterConfig) -> Self {
        RealBackend {
            cluster: LocalCluster::new(cfg),
        }
    }

    fn cluster(&self) -> &LocalCluster {
        &self.cluster
    }

    fn matmul(
        &mut self,
        profile: SystemProfile,
        a: &BlockMatrix,
        b: &BlockMatrix,
    ) -> Result<(BlockMatrix, JobStats), JobError> {
        let problem =
            MatmulProblem::new(*a.meta(), *b.meta()).map_err(|e| JobError::TaskFailed {
                task: 0,
                message: e.to_string(),
            })?;
        let resolved = profile.resolve(&problem, self.cluster.config());
        real_exec::multiply_resolved(&self.cluster, a, b, &resolved, RealExecOptions::default())
    }

    fn transpose(
        &mut self,
        profile: SystemProfile,
        x: &BlockMatrix,
    ) -> Result<(BlockMatrix, JobStats), JobError> {
        Ok(ops::real_transpose(
            &self.cluster,
            x,
            profile.reuses_partitioning(),
        ))
    }

    fn elementwise(
        &mut self,
        x: &BlockMatrix,
        op: EwOp,
        y: &BlockMatrix,
    ) -> Result<(BlockMatrix, JobStats), JobError> {
        ops::real_elementwise(x, op, y)
    }
}

/// An evaluation session over backend `B`: per-operator statistics
/// accumulate across the expression being evaluated.
pub struct Session<B: EngineBackend> {
    backend: B,
    profile: SystemProfile,
    accumulated: JobStats,
    ops_run: usize,
}

/// A paper-scale session: operators run against the simulated cluster and
/// only *descriptors* flow.
pub type SimSession = Session<SimBackend>;

/// A laptop-scale session: operators run with real blocks; values are
/// actual [`BlockMatrix`]es.
pub type RealSession = Session<RealBackend>;

impl<B: EngineBackend> Session<B> {
    /// Creates a session for `profile` on a cluster configuration.
    pub fn new(cfg: ClusterConfig, profile: SystemProfile) -> Self {
        Session {
            backend: B::from_config(cfg),
            profile,
            accumulated: JobStats::default(),
            ops_run: 0,
        }
    }

    /// The session's system profile.
    pub fn profile(&self) -> SystemProfile {
        self.profile
    }

    /// The underlying cluster (ledger access for tests).
    pub fn cluster(&self) -> &B::Cluster {
        self.backend.cluster()
    }

    /// Statistics accumulated over every operator run so far.
    pub fn stats(&self) -> &JobStats {
        &self.accumulated
    }

    /// Number of operators executed.
    pub fn ops_run(&self) -> usize {
        self.ops_run
    }

    /// Resets the accumulated statistics (e.g. between GNMF iterations).
    pub fn reset_stats(&mut self) {
        self.accumulated = JobStats::default();
        self.ops_run = 0;
    }

    /// Distributed multiply `a × b` with the profile's planner.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    pub fn matmul(&mut self, a: &B::Value, b: &B::Value) -> Result<B::Value, JobError> {
        let (out, stats) = self.backend.matmul(self.profile, a, b)?;
        self.absorb(stats);
        Ok(out)
    }

    /// Distributed transpose.
    ///
    /// # Errors
    /// Propagates cluster failure modes.
    pub fn transpose(&mut self, x: &B::Value) -> Result<B::Value, JobError> {
        let (out, stats) = self.backend.transpose(self.profile, x)?;
        self.absorb(stats);
        Ok(out)
    }

    /// Element-wise combination of co-partitioned matrices.
    ///
    /// # Errors
    /// Returns a task failure on shape mismatch.
    pub fn elementwise(
        &mut self,
        x: &B::Value,
        op: EwOp,
        y: &B::Value,
    ) -> Result<B::Value, JobError> {
        let (out, stats) = self.backend.elementwise(x, op, y)?;
        self.absorb(stats);
        Ok(out)
    }

    fn absorb(&mut self, stats: JobStats) {
        self.accumulated.merge(&stats);
        self.ops_run += 1;
    }
}

impl Session<RealBackend> {
    /// Arms seeded fault injection on the session's cluster: every
    /// subsequent operator runs under `spec`'s drop/corruption/crash/
    /// blackout schedule until [`Session::clear_faults`].
    ///
    /// # Panics
    /// If a fault rate is outside `[0, 1]` or a blackout window is
    /// inverted.
    pub fn inject_faults(&self, spec: distme_cluster::FaultSpec) -> Arc<distme_cluster::FaultPlan> {
        self.backend.cluster.inject_faults(spec)
    }

    /// Disarms fault injection; later operators run fault-free.
    pub fn clear_faults(&self) {
        self.backend.cluster.clear_faults();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::MatrixGenerator;

    #[test]
    fn sim_session_accumulates_stats() {
        let mut s = SimSession::new(ClusterConfig::paper_cluster(), SystemProfile::DistMe);
        let a = MatrixMeta::dense(20_000, 20_000);
        let b = MatrixMeta::dense(20_000, 20_000);
        let c = s.matmul(&a, &b).unwrap();
        assert_eq!((c.rows, c.cols), (20_000, 20_000));
        let after_one = s.stats().elapsed_secs;
        assert!(after_one > 0.0);
        let _ = s.matmul(&c, &b).unwrap();
        assert!(s.stats().elapsed_secs > after_one);
        assert_eq!(s.ops_run(), 2);
        s.reset_stats();
        assert_eq!(s.stats().elapsed_secs, 0.0);
    }

    #[test]
    fn sim_session_chains_transpose_and_ew() {
        let mut s = SimSession::new(ClusterConfig::paper_cluster(), SystemProfile::SystemMl);
        let x = MatrixMeta::dense(10_000, 4_000);
        let xt = s.transpose(&x).unwrap();
        assert_eq!(xt.rows, 4_000);
        let y = s.elementwise(&x, EwOp::Mul, &x).unwrap();
        assert_eq!(y.rows, 10_000);
        assert_eq!(s.ops_run(), 2);
    }

    #[test]
    fn real_session_multiplies_correctly_per_profile() {
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let reference = a.multiply(&b).unwrap();
        for profile in SystemProfile::ALL {
            let mut s = RealSession::new(ClusterConfig::laptop(), profile);
            let c = s.matmul(&a, &b).unwrap();
            assert!(
                c.max_abs_diff(&reference).unwrap() < 1e-9,
                "{} diverged",
                profile.name()
            );
        }
    }

    #[test]
    fn real_session_reuses_resident_operands() {
        // The session's cluster keeps operand placements resident across
        // ops: a chained multiply over the same factor (GNMF's pattern)
        // finds its blocks already on their home nodes.
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        s.matmul(&a, &b).unwrap();
        let reused_before = s.cluster().stores().ingest_reused();
        s.matmul(&a, &b).unwrap();
        assert!(
            s.cluster().stores().ingest_reused() > reused_before,
            "second op over the same operands should re-ingest nothing"
        );
    }

    #[test]
    fn real_session_ledger_accumulates_across_ops() {
        use distme_cluster::Phase;
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        s.matmul(&a, &b).unwrap();
        let after_one: u64 = Phase::ALL
            .iter()
            .map(|&p| s.cluster().ledger().shuffle_bytes(p))
            .sum();
        assert!(after_one > 0);
        s.matmul(&a, &b).unwrap();
        // No per-job reset: session-level totals are running sums, and an
        // identical plan charges identical bytes.
        let after_two: u64 = Phase::ALL
            .iter()
            .map(|&p| s.cluster().ledger().shuffle_bytes(p))
            .sum();
        assert_eq!(after_two, 2 * after_one);
    }

    #[test]
    fn real_session_full_expression() {
        // (A^T)^T * A element-multiplied with A*... exercise chaining.
        let meta = MatrixMeta::dense(48, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(7).generate(&meta).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let at = s.transpose(&a).unwrap();
        let sym = s.matmul(&at, &a).unwrap(); // A^T A is symmetric
        let symt = s.transpose(&sym).unwrap();
        assert!(sym.max_abs_diff(&symt).unwrap() < 1e-9);
        let hadamard = s.elementwise(&sym, EwOp::Mul, &symt).unwrap();
        assert!(hadamard.get_element(0, 0) >= 0.0); // squares
    }
}
