//! Evaluation sessions: the engine's execution contexts.
//!
//! One generic [`Session`] drives either backend. A backend pairs a
//! cluster (simulated or thread-backed) with a value representation
//! (descriptors or materialized block matrices); the session layers the
//! system profile's planning and the per-operator statistics accumulation
//! on top, identically for both. `SimSession` and `RealSession` are plain
//! type aliases — there is no duplicated session logic to drift apart.

use crate::ops;
use crate::systems::SystemProfile;
use distme_cluster::{
    ClusterConfig, ElasticPolicy, ExecutionBackend, JobError, JobStats, LocalCluster,
    RebalanceReport, SimCluster,
};
use distme_core::real_exec::{self, RealExecOptions};
use distme_core::{
    sim_exec, JobPlan, MatmulProblem, MulMethod, OptimizerConfig, PlanCache, ResolvedMethod,
};
use distme_matrix::elementwise::EwOp;
use distme_matrix::{BlockMatrix, MatrixMeta};
use std::sync::Arc;

/// A place session operators execute: a cluster plus the value
/// representation that flows between operators on it.
pub trait EngineBackend {
    /// The underlying cluster type.
    type Cluster: ExecutionBackend;
    /// What a matrix *is* on this backend: a descriptor (sim) or a
    /// materialized block matrix (real).
    type Value;

    /// Builds the backend on a fresh cluster.
    fn from_config(cfg: ClusterConfig) -> Self;

    /// The underlying cluster (configuration and ledger access).
    fn cluster(&self) -> &Self::Cluster;

    /// Distributed multiply `a × b` planned by `profile`.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    fn matmul(
        &mut self,
        profile: SystemProfile,
        a: &Self::Value,
        b: &Self::Value,
    ) -> Result<(Self::Value, JobStats), JobError>;

    /// Distributed transpose.
    ///
    /// # Errors
    /// Propagates cluster failure modes.
    fn transpose(
        &mut self,
        profile: SystemProfile,
        x: &Self::Value,
    ) -> Result<(Self::Value, JobStats), JobError>;

    /// Element-wise combination of co-partitioned matrices.
    ///
    /// # Errors
    /// Returns a task failure on shape mismatch.
    fn elementwise(
        &mut self,
        x: &Self::Value,
        op: EwOp,
        y: &Self::Value,
    ) -> Result<(Self::Value, JobStats), JobError>;

    /// Distributed sparse × dense multiply via the shift schedule
    /// ([`MulMethod::SpmmShift`]): the sparse operand's row stripes stay
    /// put, the dense factor's panels repartition to them. The sparse
    /// method family is profile-independent — every system runs the same
    /// schedule.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    fn spmm(
        &mut self,
        a: &Self::Value,
        b: &Self::Value,
    ) -> Result<(Self::Value, JobStats), JobError>;

    /// Distributed SDDMM `mask ⊙ (a · b)` ([`MulMethod::Sddmm`]): the
    /// sampling mask rides with `a`'s row partition and never moves.
    ///
    /// # Errors
    /// Propagates shape errors (including a mask/operand mismatch) and the
    /// cluster failure modes.
    fn sddmm(
        &mut self,
        a: &Self::Value,
        b: &Self::Value,
        mask: &Self::Value,
    ) -> Result<(Self::Value, JobStats), JobError>;
}

/// Cache key for a multiply plan: the problem and the resolved method
/// pin the routing completely for a given membership epoch (the epoch
/// itself is the cache's invalidation axis, not part of the key).
pub(crate) fn plan_key(problem: &MatmulProblem, resolved: &distme_core::ResolvedMethod) -> String {
    format!("{problem:?}|{resolved:?}")
}

/// The paper-scale backend: only descriptors flow; every operator is
/// lowered onto the simulated cluster's resource models.
pub struct SimBackend {
    cluster: SimCluster,
    plans: PlanCache<Arc<JobPlan>>,
}

impl SimBackend {
    /// Lowers a directly-resolved sparse-family method (no profile
    /// dispatch) onto the simulated cluster through the shared plan cache.
    fn run_sparse(
        &mut self,
        problem: MatmulProblem,
        method: MulMethod,
    ) -> Result<(MatrixMeta, JobStats), JobError> {
        let resolved = ResolvedMethod::resolve(
            method,
            &problem,
            &OptimizerConfig::from_cluster(self.cluster.config()),
        );
        let epoch = self.cluster.epoch();
        let plan = self
            .plans
            .get_or_insert(epoch, &plan_key(&problem, &resolved), || {
                Arc::new(
                    JobPlan::from_resolved(&problem, &resolved, self.cluster.config())
                        .at_epoch(epoch),
                )
            });
        let stats = sim_exec::simulate_plan(&mut self.cluster, &plan)?;
        Ok((problem.c, stats))
    }
}

impl EngineBackend for SimBackend {
    type Cluster = SimCluster;
    type Value = MatrixMeta;

    fn from_config(cfg: ClusterConfig) -> Self {
        SimBackend {
            cluster: SimCluster::new(cfg),
            plans: PlanCache::new(),
        }
    }

    fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    fn matmul(
        &mut self,
        profile: SystemProfile,
        a: &MatrixMeta,
        b: &MatrixMeta,
    ) -> Result<(MatrixMeta, JobStats), JobError> {
        let problem = MatmulProblem::new(*a, *b).map_err(|e| JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        })?;
        let resolved = profile.resolve(&problem, self.cluster.config());
        let epoch = self.cluster.epoch();
        let plan = self
            .plans
            .get_or_insert(epoch, &plan_key(&problem, &resolved), || {
                Arc::new(
                    JobPlan::from_resolved(&problem, &resolved, self.cluster.config())
                        .at_epoch(epoch),
                )
            });
        let stats = sim_exec::simulate_plan(&mut self.cluster, &plan)?;
        Ok((problem.c, stats))
    }

    fn transpose(
        &mut self,
        profile: SystemProfile,
        x: &MatrixMeta,
    ) -> Result<(MatrixMeta, JobStats), JobError> {
        ops::sim_transpose(&mut self.cluster, x, profile.reuses_partitioning())
    }

    fn elementwise(
        &mut self,
        x: &MatrixMeta,
        _op: EwOp,
        y: &MatrixMeta,
    ) -> Result<(MatrixMeta, JobStats), JobError> {
        // The sim cost model is op-independent: one arithmetic pass.
        ops::sim_elementwise(&mut self.cluster, x, y)
    }

    fn spmm(&mut self, a: &MatrixMeta, b: &MatrixMeta) -> Result<(MatrixMeta, JobStats), JobError> {
        let problem = MatmulProblem::new(*a, *b).map_err(|e| JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        })?;
        self.run_sparse(problem, MulMethod::SpmmShift)
    }

    fn sddmm(
        &mut self,
        a: &MatrixMeta,
        b: &MatrixMeta,
        mask: &MatrixMeta,
    ) -> Result<(MatrixMeta, JobStats), JobError> {
        let problem = MatmulProblem::sddmm(*a, *b, *mask).map_err(|e| JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        })?;
        self.run_sparse(problem, MulMethod::Sddmm)
    }
}

/// The laptop-scale backend: operators run with real blocks on the
/// thread-backed cluster and results are checked against references.
pub struct RealBackend {
    cluster: LocalCluster,
    plans: PlanCache<Arc<JobPlan>>,
}

impl EngineBackend for RealBackend {
    type Cluster = LocalCluster;
    type Value = BlockMatrix;

    fn from_config(cfg: ClusterConfig) -> Self {
        RealBackend {
            cluster: LocalCluster::new(cfg),
            plans: PlanCache::new(),
        }
    }

    fn cluster(&self) -> &LocalCluster {
        &self.cluster
    }

    fn matmul(
        &mut self,
        profile: SystemProfile,
        a: &BlockMatrix,
        b: &BlockMatrix,
    ) -> Result<(BlockMatrix, JobStats), JobError> {
        let problem =
            MatmulProblem::new(*a.meta(), *b.meta()).map_err(|e| JobError::TaskFailed {
                task: 0,
                message: e.to_string(),
            })?;
        let resolved = profile.resolve(&problem, self.cluster.config());
        let epoch = self.cluster.epoch();
        let plan = self
            .plans
            .get_or_insert(epoch, &plan_key(&problem, &resolved), || {
                Arc::new(
                    JobPlan::from_resolved(&problem, &resolved, self.cluster.config())
                        .at_epoch(epoch),
                )
            });
        real_exec::execute_plan(&self.cluster, a, b, &plan, RealExecOptions::default())
    }

    fn transpose(
        &mut self,
        profile: SystemProfile,
        x: &BlockMatrix,
    ) -> Result<(BlockMatrix, JobStats), JobError> {
        Ok(ops::real_transpose(
            &self.cluster,
            x,
            profile.reuses_partitioning(),
        ))
    }

    fn elementwise(
        &mut self,
        x: &BlockMatrix,
        op: EwOp,
        y: &BlockMatrix,
    ) -> Result<(BlockMatrix, JobStats), JobError> {
        ops::real_elementwise(x, op, y)
    }

    fn spmm(
        &mut self,
        a: &BlockMatrix,
        b: &BlockMatrix,
    ) -> Result<(BlockMatrix, JobStats), JobError> {
        let plan = self.sparse_plan_of(a, b, None)?;
        real_exec::execute_plan(&self.cluster, a, b, &plan, RealExecOptions::default())
    }

    fn sddmm(
        &mut self,
        a: &BlockMatrix,
        b: &BlockMatrix,
        mask: &BlockMatrix,
    ) -> Result<(BlockMatrix, JobStats), JobError> {
        let plan = self.sparse_plan_of(a, b, Some(mask))?;
        real_exec::execute_plan_masked(
            &self.cluster,
            a,
            b,
            Some(mask),
            &plan,
            RealExecOptions::default(),
        )
    }
}

impl RealBackend {
    /// Plans a sparse-family multiply (cached per epoch): `SpmmShift`
    /// without a mask, `Sddmm` with one.
    fn sparse_plan_of(
        &mut self,
        a: &BlockMatrix,
        b: &BlockMatrix,
        mask: Option<&BlockMatrix>,
    ) -> Result<Arc<JobPlan>, JobError> {
        let (problem, method) = match mask {
            Some(m) => (
                MatmulProblem::sddmm(*a.meta(), *b.meta(), *m.meta()),
                MulMethod::Sddmm,
            ),
            None => (
                MatmulProblem::new(*a.meta(), *b.meta()),
                MulMethod::SpmmShift,
            ),
        };
        let problem = problem.map_err(|e| JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        })?;
        let resolved = ResolvedMethod::resolve(
            method,
            &problem,
            &OptimizerConfig::from_cluster(self.cluster.config()),
        );
        let epoch = self.cluster.epoch();
        let plan = self
            .plans
            .get_or_insert(epoch, &plan_key(&problem, &resolved), || {
                Arc::new(
                    JobPlan::from_resolved(&problem, &resolved, self.cluster.config())
                        .at_epoch(epoch),
                )
            });
        Ok(plan)
    }
}

/// The real-backend operator surface shared by [`Session<RealBackend>`]
/// and the job service's [`TenantSession`]: algorithms written against it
/// (GNMF, power iteration) run unchanged whether they are called directly
/// by the session owner or submitted as a multi-tenant job.
///
/// [`TenantSession`]: crate::service::TenantSession
pub trait RealOps {
    /// Distributed multiply `a × b`.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    fn matmul(&mut self, a: &BlockMatrix, b: &BlockMatrix) -> Result<BlockMatrix, JobError>;

    /// Distributed transpose.
    ///
    /// # Errors
    /// Propagates cluster failure modes.
    fn transpose(&mut self, x: &BlockMatrix) -> Result<BlockMatrix, JobError>;

    /// Element-wise combination of co-partitioned matrices.
    ///
    /// # Errors
    /// Returns a task failure on shape mismatch.
    fn elementwise(
        &mut self,
        x: &BlockMatrix,
        op: EwOp,
        y: &BlockMatrix,
    ) -> Result<BlockMatrix, JobError>;

    /// Distributed sparse × dense multiply (shift schedule).
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    fn spmm(&mut self, a: &BlockMatrix, b: &BlockMatrix) -> Result<BlockMatrix, JobError>;

    /// Distributed SDDMM `mask ⊙ (a · b)` into the mask's CSR pattern.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    fn sddmm(
        &mut self,
        a: &BlockMatrix,
        b: &BlockMatrix,
        mask: &BlockMatrix,
    ) -> Result<BlockMatrix, JobError>;
}

impl RealOps for Session<RealBackend> {
    fn matmul(&mut self, a: &BlockMatrix, b: &BlockMatrix) -> Result<BlockMatrix, JobError> {
        Session::matmul(self, a, b)
    }

    fn transpose(&mut self, x: &BlockMatrix) -> Result<BlockMatrix, JobError> {
        Session::transpose(self, x)
    }

    fn elementwise(
        &mut self,
        x: &BlockMatrix,
        op: EwOp,
        y: &BlockMatrix,
    ) -> Result<BlockMatrix, JobError> {
        Session::elementwise(self, x, op, y)
    }

    fn spmm(&mut self, a: &BlockMatrix, b: &BlockMatrix) -> Result<BlockMatrix, JobError> {
        Session::spmm(self, a, b)
    }

    fn sddmm(
        &mut self,
        a: &BlockMatrix,
        b: &BlockMatrix,
        mask: &BlockMatrix,
    ) -> Result<BlockMatrix, JobError> {
        Session::sddmm(self, a, b, mask)
    }
}

/// An evaluation session over backend `B`: per-operator statistics
/// accumulate across the expression being evaluated.
pub struct Session<B: EngineBackend> {
    backend: B,
    profile: SystemProfile,
    accumulated: JobStats,
    ops_run: usize,
}

/// A paper-scale session: operators run against the simulated cluster and
/// only *descriptors* flow.
pub type SimSession = Session<SimBackend>;

/// A laptop-scale session: operators run with real blocks; values are
/// actual [`BlockMatrix`]es.
pub type RealSession = Session<RealBackend>;

impl<B: EngineBackend> Session<B> {
    /// Creates a session for `profile` on a cluster configuration.
    pub fn new(cfg: ClusterConfig, profile: SystemProfile) -> Self {
        Session {
            backend: B::from_config(cfg),
            profile,
            accumulated: JobStats::default(),
            ops_run: 0,
        }
    }

    /// The session's system profile.
    pub fn profile(&self) -> SystemProfile {
        self.profile
    }

    /// The underlying cluster (ledger access for tests).
    pub fn cluster(&self) -> &B::Cluster {
        self.backend.cluster()
    }

    /// Statistics accumulated over every operator run so far.
    pub fn stats(&self) -> &JobStats {
        &self.accumulated
    }

    /// Number of operators executed.
    pub fn ops_run(&self) -> usize {
        self.ops_run
    }

    /// Resets the accumulated statistics (e.g. between GNMF iterations).
    pub fn reset_stats(&mut self) {
        self.accumulated = JobStats::default();
        self.ops_run = 0;
    }

    /// Distributed multiply `a × b` with the profile's planner.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    pub fn matmul(&mut self, a: &B::Value, b: &B::Value) -> Result<B::Value, JobError> {
        let (out, stats) = self.backend.matmul(self.profile, a, b)?;
        self.absorb(stats);
        Ok(out)
    }

    /// Distributed transpose.
    ///
    /// # Errors
    /// Propagates cluster failure modes.
    pub fn transpose(&mut self, x: &B::Value) -> Result<B::Value, JobError> {
        let (out, stats) = self.backend.transpose(self.profile, x)?;
        self.absorb(stats);
        Ok(out)
    }

    /// Element-wise combination of co-partitioned matrices.
    ///
    /// # Errors
    /// Returns a task failure on shape mismatch.
    pub fn elementwise(
        &mut self,
        x: &B::Value,
        op: EwOp,
        y: &B::Value,
    ) -> Result<B::Value, JobError> {
        let (out, stats) = self.backend.elementwise(x, op, y)?;
        self.absorb(stats);
        Ok(out)
    }

    /// Distributed sparse × dense multiply via the shift schedule (the
    /// sparse method family plans identically under every profile).
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    pub fn spmm(&mut self, a: &B::Value, b: &B::Value) -> Result<B::Value, JobError> {
        let (out, stats) = self.backend.spmm(a, b)?;
        self.absorb(stats);
        Ok(out)
    }

    /// Distributed SDDMM `mask ⊙ (a · b)` into the mask's CSR pattern.
    ///
    /// # Errors
    /// Propagates shape errors and the cluster failure modes.
    pub fn sddmm(
        &mut self,
        a: &B::Value,
        b: &B::Value,
        mask: &B::Value,
    ) -> Result<B::Value, JobError> {
        let (out, stats) = self.backend.sddmm(a, b, mask)?;
        self.absorb(stats);
        Ok(out)
    }

    fn absorb(&mut self, stats: JobStats) {
        self.accumulated.merge(&stats);
        self.ops_run += 1;
    }
}

impl Session<RealBackend> {
    /// Arms seeded fault injection on the session's cluster: every
    /// subsequent operator runs under `spec`'s drop/corruption/crash/
    /// blackout schedule until [`Session::clear_faults`].
    ///
    /// # Panics
    /// If a fault rate is outside `[0, 1]` or a blackout window is
    /// inverted.
    pub fn inject_faults(&self, spec: distme_cluster::FaultSpec) -> Arc<distme_cluster::FaultPlan> {
        self.backend.cluster.inject_faults(spec)
    }

    /// Disarms fault injection; later operators run fault-free.
    pub fn clear_faults(&self) {
        self.backend.cluster.clear_faults();
    }

    /// Resizes the cluster to `nodes` mid-session: resident blocks are
    /// migrated onto the new grid (charged as [`distme_cluster::Phase::Rebalance`]
    /// traffic and folded into the session's accumulated stats), the
    /// membership epoch bumps, and every cached plan is invalidated so the
    /// next operator re-runs the `(P*, Q*, R*)` search against the new
    /// node count.
    ///
    /// # Errors
    /// Propagates transport failures during migration.
    pub fn scale_to(&mut self, nodes: usize) -> Result<RebalanceReport, JobError> {
        let report = self.backend.cluster.scale_to(nodes)?;
        self.accumulated.merge(&report.stats);
        Ok(report)
    }

    /// Permanently removes `node` from the cluster. Its blocks are gone;
    /// keys with replicas on surviving nodes are re-homed onto the shrunk
    /// grid (the lineage path), keys whose only copy lived on `node`
    /// surface as [`JobError::NodeDecommissioned`] — the epoch still
    /// bumps and the cluster stays usable.
    ///
    /// # Errors
    /// [`JobError::NodeDecommissioned`] when unreplicated blocks are lost;
    /// transport failures during migration.
    pub fn decommission_node(&mut self, node: usize) -> Result<RebalanceReport, JobError> {
        let report = self.backend.cluster.decommission_node(node)?;
        self.accumulated.merge(&report.stats);
        Ok(report)
    }

    /// Applies `policy` to the statistics accumulated since the last
    /// [`Session::reset_stats`]: when the observed task pressure leaves the
    /// policy's utilization band, the cluster is resized one step and the
    /// rebalance report returned. `Ok(None)` means the cluster is already
    /// inside the band.
    ///
    /// # Errors
    /// Propagates transport failures during the resize's migration.
    pub fn autoscale(
        &mut self,
        policy: &ElasticPolicy,
    ) -> Result<Option<RebalanceReport>, JobError> {
        let cfg = self.backend.cluster.config();
        let (nodes, tasks_per_node) = (cfg.nodes, cfg.tasks_per_node);
        match policy.recommend(&self.accumulated, nodes, tasks_per_node) {
            Some(target) => self.scale_to(target).map(Some),
            None => Ok(None),
        }
    }

    /// Hit/miss/invalidation counters of the session's plan cache.
    pub fn plan_cache_stats(&self) -> distme_core::PlanCacheStats {
        self.backend.plans.stats()
    }
}

impl Session<SimBackend> {
    /// Resizes the simulated cluster mid-session: the membership epoch
    /// bumps and cached plans are invalidated, exactly like the real
    /// backend (the sim holds no materialized blocks, so there is no
    /// physical migration to replay).
    pub fn scale_to(&mut self, nodes: usize) {
        self.backend.cluster.scale_to(nodes);
    }

    /// Hit/miss/invalidation counters of the session's plan cache.
    pub fn plan_cache_stats(&self) -> distme_core::PlanCacheStats {
        self.backend.plans.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::MatrixGenerator;

    #[test]
    fn sim_session_accumulates_stats() {
        let mut s = SimSession::new(ClusterConfig::paper_cluster(), SystemProfile::DistMe);
        let a = MatrixMeta::dense(20_000, 20_000);
        let b = MatrixMeta::dense(20_000, 20_000);
        let c = s.matmul(&a, &b).unwrap();
        assert_eq!((c.rows, c.cols), (20_000, 20_000));
        let after_one = s.stats().elapsed_secs;
        assert!(after_one > 0.0);
        let _ = s.matmul(&c, &b).unwrap();
        assert!(s.stats().elapsed_secs > after_one);
        assert_eq!(s.ops_run(), 2);
        s.reset_stats();
        assert_eq!(s.stats().elapsed_secs, 0.0);
    }

    #[test]
    fn sim_session_chains_transpose_and_ew() {
        let mut s = SimSession::new(ClusterConfig::paper_cluster(), SystemProfile::SystemMl);
        let x = MatrixMeta::dense(10_000, 4_000);
        let xt = s.transpose(&x).unwrap();
        assert_eq!(xt.rows, 4_000);
        let y = s.elementwise(&x, EwOp::Mul, &x).unwrap();
        assert_eq!(y.rows, 10_000);
        assert_eq!(s.ops_run(), 2);
    }

    #[test]
    fn real_session_multiplies_correctly_per_profile() {
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let reference = a.multiply(&b).unwrap();
        for profile in SystemProfile::ALL {
            let mut s = RealSession::new(ClusterConfig::laptop(), profile);
            let c = s.matmul(&a, &b).unwrap();
            assert!(
                c.max_abs_diff(&reference).unwrap() < 1e-9,
                "{} diverged",
                profile.name()
            );
        }
    }

    #[test]
    fn real_session_reuses_resident_operands() {
        // The session's cluster keeps operand placements resident across
        // ops: a chained multiply over the same factor (GNMF's pattern)
        // finds its blocks already on their home nodes.
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        s.matmul(&a, &b).unwrap();
        let reused_before = s.cluster().stores().ingest_reused();
        s.matmul(&a, &b).unwrap();
        assert!(
            s.cluster().stores().ingest_reused() > reused_before,
            "second op over the same operands should re-ingest nothing"
        );
    }

    #[test]
    fn real_session_ledger_accumulates_across_ops() {
        use distme_cluster::Phase;
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        s.matmul(&a, &b).unwrap();
        let after_one: u64 = Phase::ALL
            .iter()
            .map(|&p| s.cluster().ledger().shuffle_bytes(p))
            .sum();
        assert!(after_one > 0);
        s.matmul(&a, &b).unwrap();
        // No per-job reset: session-level totals are running sums, and an
        // identical plan charges identical bytes.
        let after_two: u64 = Phase::ALL
            .iter()
            .map(|&p| s.cluster().ledger().shuffle_bytes(p))
            .sum();
        assert_eq!(after_two, 2 * after_one);
    }

    #[test]
    fn repeated_matmuls_hit_the_plan_cache_until_a_resize() {
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let reference = a.multiply(&b).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        s.matmul(&a, &b).unwrap();
        s.matmul(&a, &b).unwrap();
        let st = s.plan_cache_stats();
        assert_eq!(
            (st.hits, st.misses),
            (1, 1),
            "identical op must reuse its plan"
        );
        // A resize bumps the epoch: every cached plan is stale.
        let report = s.scale_to(6).unwrap();
        assert_eq!((report.from_nodes, report.to_nodes), (4, 6));
        let c = s.matmul(&a, &b).unwrap();
        let st = s.plan_cache_stats();
        assert_eq!(st.misses, 2, "post-resize op must re-plan");
        assert_eq!(st.invalidations, 1);
        assert!(c.max_abs_diff(&reference).unwrap() < 1e-9);
        assert!(s.stats().rebalanced_moves > 0);
    }

    #[test]
    fn sim_session_replans_after_a_resize() {
        let mut s = SimSession::new(ClusterConfig::paper_cluster(), SystemProfile::DistMe);
        let a = MatrixMeta::dense(20_000, 20_000);
        let b = MatrixMeta::dense(20_000, 20_000);
        s.matmul(&a, &b).unwrap();
        s.matmul(&a, &b).unwrap();
        assert_eq!(s.plan_cache_stats().hits, 1);
        s.scale_to(12);
        s.matmul(&a, &b).unwrap();
        let st = s.plan_cache_stats();
        assert_eq!((st.misses, st.invalidations), (2, 1));
    }

    #[test]
    fn real_session_decommission_recovers_replicated_results() {
        // A multiply leaves its result dual-homed; decommissioning one node
        // must either recover everything from the surviving replicas or
        // fail loudly — and either way the session keeps working.
        let meta_a = MatrixMeta::dense(80, 64).with_block_size(16);
        let meta_b = MatrixMeta::dense(64, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(5).generate(&meta_a).unwrap();
        let b = MatrixGenerator::with_seed(6).generate(&meta_b).unwrap();
        let reference = a.multiply(&b).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        s.matmul(&a, &b).unwrap();
        match s.decommission_node(1) {
            Ok(report) => assert_eq!(report.to_nodes, 3),
            Err(e) => assert_eq!(e.annotation(), "N.D."),
        }
        assert_eq!(s.cluster().config().nodes, 3);
        let c = s.matmul(&a, &b).unwrap();
        assert!(c.max_abs_diff(&reference).unwrap() < 1e-9);
    }

    #[test]
    fn real_session_full_expression() {
        // (A^T)^T * A element-multiplied with A*... exercise chaining.
        let meta = MatrixMeta::dense(48, 48).with_block_size(16);
        let a = MatrixGenerator::with_seed(7).generate(&meta).unwrap();
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let at = s.transpose(&a).unwrap();
        let sym = s.matmul(&at, &a).unwrap(); // A^T A is symmetric
        let symt = s.transpose(&sym).unwrap();
        assert!(sym.max_abs_diff(&symt).unwrap() < 1e-9);
        let hadamard = s.elementwise(&sym, EwOp::Mul, &symt).unwrap();
        assert!(hadamard.get_element(0, 0) >= 0.0); // squares
    }
}
