//! Seeded, deterministic fault injection for the real executor.
//!
//! Distributed engines earn their elasticity claims under failure: Spark
//! re-executes lost tasks from lineage and re-fetches lost shuffle blocks
//! from their producers. This module injects exactly those faults —
//! dropped deliveries, bit-flipped frames, transient task crashes, and
//! whole-node blackouts — so the recovery machinery in `transport` and
//! `executor::real` can be proven correct by tests instead of trusted.
//!
//! # Determinism contract
//!
//! Every injection decision is a pure function of the [`FaultSpec`] seed
//! and the *identity* of the event (block position, producer copy, route,
//! stage counter, attempt indices) — never of wall-clock time, thread
//! interleaving, or a shared sequential RNG. Two runs with the same seed
//! and the same plan fault the same deliveries in the same way no matter
//! how the stage's workers are scheduled, which is what lets the chaos
//! suite assert bit-identical recovery. Matrix uids are deliberately
//! excluded from the hash: they come from a global counter and vary with
//! test ordering.

use crate::store::StoreKey;
use crate::transport::WireMove;
use rand::{Rng, SeedableRng, StdRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinct salts per fault kind so a delivery that is spared by the drop
/// roll is not automatically spared (or doomed) by the corruption roll.
const SALT_DROP: u64 = 0xD0;
const SALT_CORRUPT: u64 = 0xC0;
const SALT_CRASH: u64 = 0xCA;

/// A node outage spanning a window of stages (inclusive bounds on the
/// plan-wide stage counter advanced by each `run_stage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blackout {
    /// The node that is unreachable.
    pub node: usize,
    /// First stage index (0-based) of the outage.
    pub from_stage: u64,
    /// Last stage index of the outage, inclusive.
    pub until_stage: u64,
}

/// What faults to inject, and from which seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed all injection decisions derive from.
    pub seed: u64,
    /// Probability a transport delivery is dropped in flight.
    pub drop_rate: f64,
    /// Probability a transport delivery has one bit flipped in its encoded
    /// frame (caught by the codec's CRC-32 trailer).
    pub corrupt_rate: f64,
    /// Probability a task attempt crashes before producing output.
    pub crash_rate: f64,
    /// Whole-node outages by stage window.
    pub blackouts: Vec<Blackout>,
}

impl FaultSpec {
    /// A spec that injects nothing (useful as a baseline).
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            seed,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            crash_rate: 0.0,
            blackouts: Vec::new(),
        }
    }

    /// Panics on rates outside `[0, 1]` (test-harness programmer input).
    pub fn assert_valid(&self) {
        for (rate, what) in [
            (self.drop_rate, "drop_rate"),
            (self.corrupt_rate, "corrupt_rate"),
            (self.crash_rate, "crash_rate"),
        ] {
            assert!((0.0..=1.0).contains(&rate), "{what} must be in [0, 1]");
        }
        for b in &self.blackouts {
            assert!(b.from_stage <= b.until_stage, "inverted blackout window");
        }
    }
}

/// Live fault-injection state: the spec plus a stage counter and counters
/// of what was actually injected (so tests can assert the run exercised
/// recovery rather than passing vacuously).
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    stage: AtomicU64,
    dropped: AtomicU64,
    corrupted: AtomicU64,
    crashed: AtomicU64,
}

impl FaultPlan {
    /// Builds a plan from a validated spec.
    pub fn new(spec: FaultSpec) -> Self {
        spec.assert_valid();
        FaultPlan {
            spec,
            stage: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            crashed: AtomicU64::new(0),
        }
    }

    /// The spec this plan injects.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Advances the plan-wide stage counter; called once per `run_stage`
    /// so blackout windows and per-stage decision salts line up across the
    /// clean and faulted runs of a test.
    pub fn advance_stage(&self) -> u64 {
        self.stage.fetch_add(1, Ordering::Relaxed)
    }

    /// Current stage index (stages advanced so far minus one).
    pub fn current_stage(&self) -> u64 {
        self.stage.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Whether `node` is blacked out at the current stage.
    pub fn node_down(&self, node: usize) -> bool {
        let stage = self.current_stage();
        self.spec
            .blackouts
            .iter()
            .any(|b| b.node == node && (b.from_stage..=b.until_stage).contains(&stage))
    }

    /// Whether this delivery attempt of `mv` is dropped in flight. A
    /// delivery into or out of a blacked-out node is always dropped.
    pub fn drop_delivery(&self, mv: &WireMove, task_attempt: u32, delivery: u32) -> bool {
        if self.node_down(mv.from_node) || self.node_down(mv.to_node) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if self.roll(SALT_DROP, self.move_identity(mv, task_attempt, delivery))
            < self.spec.drop_rate
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Possibly flips one bit of the encoded frame for this delivery
    /// attempt; returns whether corruption was injected. The flipped bit
    /// position is itself seed-derived, so a given delivery always
    /// corrupts the same way.
    pub fn corrupt_payload(
        &self,
        mv: &WireMove,
        task_attempt: u32,
        delivery: u32,
        frame: &mut [u8],
    ) -> bool {
        if frame.is_empty() {
            return false;
        }
        let identity = self.move_identity(mv, task_attempt, delivery);
        if self.roll(SALT_CORRUPT, identity) >= self.spec.corrupt_rate {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.spec.seed ^ SALT_CORRUPT, identity));
        let bit = rng.gen_range(0u64..frame.len() as u64 * 8);
        frame[(bit / 8) as usize] ^= 1 << (bit % 8);
        self.corrupted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Whether task `task` crashes on attempt `attempt` of the current
    /// stage, or runs on a blacked-out node.
    pub fn crash_task(&self, task: usize, node: usize, attempt: u32) -> bool {
        if self.node_down(node) {
            return true;
        }
        let identity = mix(
            mix(task as u64, self.current_stage()),
            (attempt as u64) << 32 | node as u64,
        );
        if self.roll(SALT_CRASH, identity) < self.spec.crash_rate {
            self.crashed.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Deliveries dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Task attempts crashed so far.
    pub fn crashed(&self) -> u64 {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Stable identity of one delivery attempt of one move. Uses the block
    /// grid position / producer copy / route / stage / attempt indices —
    /// NOT the matrix uid, which comes from a process-global counter.
    fn move_identity(&self, mv: &WireMove, task_attempt: u32, delivery: u32) -> u64 {
        let key_bits = |k: &StoreKey| {
            mix(
                (k.id.row as u64) << 32 | k.id.col as u64,
                k.copy as u64 | 0x1000_0000_0000,
            )
        };
        let route = (mv.from_node as u64) << 32 | mv.to_node as u64;
        let attempts = (task_attempt as u64) << 32 | delivery as u64;
        mix(
            mix(key_bits(&mv.dst), route),
            mix(self.current_stage(), attempts),
        )
    }

    /// Uniform `[0, 1)` draw keyed by (seed, salt, event identity).
    fn roll(&self, salt: u64, identity: u64) -> f64 {
        StdRng::seed_from_u64(mix(self.spec.seed ^ salt, identity)).gen::<f64>()
    }
}

/// splitmix64-style mixer for combining identity words into one seed.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Phase;
    use distme_matrix::BlockId;

    fn mv(row: u32, col: u32, from: usize, to: usize) -> WireMove {
        let key = StoreKey::replica(999, BlockId::new(row, col), 1);
        WireMove {
            phase: Phase::Repartition,
            from_node: from,
            to_node: to,
            wire_bytes: 64,
            src: key,
            dst: key,
        }
    }

    fn spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop_rate: 0.3,
            corrupt_rate: 0.3,
            crash_rate: 0.3,
            blackouts: Vec::new(),
        }
    }

    #[test]
    fn decisions_are_reproducible_and_identity_keyed() {
        let a = FaultPlan::new(spec(42));
        let b = FaultPlan::new(spec(42));
        a.advance_stage();
        b.advance_stage();
        let mut hit = false;
        let mut miss = false;
        for row in 0..32 {
            let m = mv(row, 0, 0, 1);
            let d = a.drop_delivery(&m, 0, 0);
            assert_eq!(d, b.drop_delivery(&m, 0, 0), "same seed, same decision");
            hit |= d;
            miss |= !d;
        }
        assert!(hit && miss, "a 30% rate over 32 moves should mix outcomes");
    }

    #[test]
    fn decisions_ignore_matrix_uid() {
        // Two plans fault the "same" move identically even when the store
        // keys carry different (globally-counted) matrix uids.
        let plan = FaultPlan::new(spec(7));
        plan.advance_stage();
        for row in 0..16 {
            let mut a = mv(row, 2, 1, 3);
            let mut b = a;
            a.src.matrix = 10;
            a.dst.matrix = 10;
            b.src.matrix = 99;
            b.dst.matrix = 99;
            assert_eq!(plan.drop_delivery(&a, 0, 0), plan.drop_delivery(&b, 0, 0));
        }
    }

    #[test]
    fn redelivery_attempts_reroll() {
        // A dropped delivery must not be doomed forever: the delivery
        // index is part of the identity, so some retry succeeds.
        let plan = FaultPlan::new(FaultSpec {
            drop_rate: 0.5,
            ..spec(3)
        });
        plan.advance_stage();
        let m = mv(1, 1, 0, 2);
        let outcomes: Vec<bool> = (0..16).map(|d| plan.drop_delivery(&m, 0, d)).collect();
        assert!(outcomes.iter().any(|&d| d));
        assert!(outcomes.iter().any(|&d| !d));
    }

    #[test]
    fn corruption_flips_exactly_one_bit_deterministically() {
        let plan = FaultPlan::new(FaultSpec {
            corrupt_rate: 1.0,
            ..spec(11)
        });
        plan.advance_stage();
        let m = mv(0, 0, 0, 1);
        let clean = vec![0u8; 64];
        let mut once = clean.clone();
        assert!(plan.corrupt_payload(&m, 0, 0, &mut once));
        let mut twice = clean.clone();
        assert!(plan.corrupt_payload(&m, 0, 0, &mut twice));
        assert_eq!(once, twice, "same delivery corrupts the same way");
        let flipped: u32 = once
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(plan.corrupted(), 2);
    }

    #[test]
    fn blackout_windows_gate_nodes_by_stage() {
        let plan = FaultPlan::new(FaultSpec {
            blackouts: vec![Blackout {
                node: 1,
                from_stage: 1,
                until_stage: 1,
            }],
            ..FaultSpec::quiet(5)
        });
        plan.advance_stage(); // stage 0
        assert!(!plan.node_down(1));
        plan.advance_stage(); // stage 1
        assert!(plan.node_down(1));
        assert!(!plan.node_down(0));
        assert!(plan.drop_delivery(&mv(0, 0, 1, 2), 0, 0), "down node drops");
        assert!(plan.crash_task(0, 1, 0), "tasks on a down node crash");
        assert!(!plan.crash_task(0, 0, 0));
        plan.advance_stage(); // stage 2
        assert!(!plan.node_down(1));
    }

    #[test]
    fn quiet_spec_injects_nothing() {
        let plan = FaultPlan::new(FaultSpec::quiet(9));
        plan.advance_stage();
        for row in 0..64 {
            let m = mv(row, row, 0, 1);
            assert!(!plan.drop_delivery(&m, 0, 0));
            let mut frame = vec![0xAB; 32];
            assert!(!plan.corrupt_payload(&m, 0, 0, &mut frame));
            assert!(frame.iter().all(|&b| b == 0xAB));
            assert!(!plan.crash_task(row as usize, 0, 0));
        }
        assert_eq!(plan.dropped() + plan.corrupted() + plan.crashed(), 0);
    }

    #[test]
    #[should_panic(expected = "drop_rate")]
    fn out_of_range_rate_rejected() {
        FaultPlan::new(FaultSpec {
            drop_rate: 1.5,
            ..FaultSpec::quiet(0)
        });
    }
}
