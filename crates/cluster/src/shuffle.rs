//! Shuffle byte accounting.
//!
//! Both executors record every block movement here; the benchmark figures'
//! "amount of transferred data" series read these counters. Counters are
//! atomic so the real executor's worker threads can record concurrently.

use crate::stats::Phase;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe per-phase shuffle/broadcast byte counters.
#[derive(Debug, Default)]
pub struct ShuffleLedger {
    shuffle: [AtomicU64; Phase::COUNT],
    cross_node: [AtomicU64; Phase::COUNT],
    broadcast: [AtomicU64; Phase::COUNT],
}

impl ShuffleLedger {
    /// Creates a zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one block shuffled from `from_node` to `to_node` during
    /// `phase`. Same-node movements count as shuffled (Spark still
    /// serializes them through the shuffle files) but not as cross-node.
    pub fn record_shuffle(&self, phase: Phase, from_node: usize, to_node: usize, bytes: u64) {
        let i = phase.index();
        self.shuffle[i].fetch_add(bytes, Ordering::Relaxed);
        if from_node != to_node {
            self.cross_node[i].fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Records a broadcast of `bytes_per_node` to `nodes` nodes (torrent
    /// semantics: one copy lands on each node, §2.2.1's BMM). Saturates
    /// rather than overflowing for pathological byte × node products.
    pub fn record_broadcast(&self, phase: Phase, bytes_per_node: u64, nodes: usize) {
        self.broadcast[phase.index()].fetch_add(
            bytes_per_node.saturating_mul(nodes as u64),
            Ordering::Relaxed,
        );
    }

    /// Total shuffled bytes in `phase`.
    pub fn shuffle_bytes(&self, phase: Phase) -> u64 {
        self.shuffle[phase.index()].load(Ordering::Relaxed)
    }

    /// Cross-node shuffled bytes in `phase`.
    pub fn cross_node_bytes(&self, phase: Phase) -> u64 {
        self.cross_node[phase.index()].load(Ordering::Relaxed)
    }

    /// Broadcast bytes in `phase`.
    pub fn broadcast_bytes(&self, phase: Phase) -> u64 {
        self.broadcast[phase.index()].load(Ordering::Relaxed)
    }

    /// Sum over phases of shuffle + broadcast bytes.
    pub fn total_communication(&self) -> u64 {
        Phase::ALL
            .iter()
            .map(|&p| self.shuffle_bytes(p) + self.broadcast_bytes(p))
            .sum()
    }

    /// Resets every counter (between jobs).
    pub fn reset(&self) {
        for i in 0..Phase::COUNT {
            self.shuffle[i].store(0, Ordering::Relaxed);
            self.cross_node[i].store(0, Ordering::Relaxed);
            self.broadcast[i].store(0, Ordering::Relaxed);
        }
    }

    /// Captures the current counter values. Jobs take a snapshot on entry
    /// and report [`since`](Self::since) deltas, so one ledger can
    /// accumulate session-level totals across many jobs without resets.
    pub fn snapshot(&self) -> LedgerSnapshot {
        let mut s = LedgerSnapshot::default();
        for (i, &p) in Phase::ALL.iter().enumerate() {
            s.shuffle[i] = self.shuffle_bytes(p);
            s.cross_node[i] = self.cross_node_bytes(p);
            s.broadcast[i] = self.broadcast_bytes(p);
        }
        s
    }

    /// The bytes recorded since `earlier` was taken (saturating, so a
    /// snapshot from after a `reset` never underflows).
    pub fn since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        let now = self.snapshot();
        let mut d = LedgerSnapshot::default();
        for i in 0..Phase::COUNT {
            d.shuffle[i] = now.shuffle[i].saturating_sub(earlier.shuffle[i]);
            d.cross_node[i] = now.cross_node[i].saturating_sub(earlier.cross_node[i]);
            d.broadcast[i] = now.broadcast[i].saturating_sub(earlier.broadcast[i]);
        }
        d
    }
}

/// A point-in-time copy of a [`ShuffleLedger`]'s counters, also used as a
/// delta between two points in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    shuffle: [u64; Phase::COUNT],
    cross_node: [u64; Phase::COUNT],
    broadcast: [u64; Phase::COUNT],
}

impl LedgerSnapshot {
    /// Shuffled bytes in `phase` at (or between) the capture point(s).
    pub fn shuffle_bytes(&self, phase: Phase) -> u64 {
        self.shuffle[phase.index()]
    }

    /// Cross-node bytes in `phase`.
    pub fn cross_node_bytes(&self, phase: Phase) -> u64 {
        self.cross_node[phase.index()]
    }

    /// Broadcast bytes in `phase`.
    pub fn broadcast_bytes(&self, phase: Phase) -> u64 {
        self.broadcast[phase.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_phase_and_locality() {
        let l = ShuffleLedger::new();
        l.record_shuffle(Phase::Repartition, 0, 1, 100);
        l.record_shuffle(Phase::Repartition, 2, 2, 50);
        l.record_shuffle(Phase::Aggregation, 1, 0, 30);
        assert_eq!(l.shuffle_bytes(Phase::Repartition), 150);
        assert_eq!(l.cross_node_bytes(Phase::Repartition), 100);
        assert_eq!(l.shuffle_bytes(Phase::Aggregation), 30);
        assert_eq!(l.shuffle_bytes(Phase::LocalMult), 0);
    }

    #[test]
    fn broadcast_counts_node_copies() {
        let l = ShuffleLedger::new();
        l.record_broadcast(Phase::Repartition, 1000, 9);
        assert_eq!(l.broadcast_bytes(Phase::Repartition), 9000);
        assert_eq!(l.total_communication(), 9000);
    }

    #[test]
    fn reset_zeroes_everything() {
        let l = ShuffleLedger::new();
        l.record_shuffle(Phase::LocalMult, 0, 1, 7);
        l.record_broadcast(Phase::LocalMult, 7, 2);
        l.reset();
        assert_eq!(l.total_communication(), 0);
    }

    #[test]
    fn broadcast_saturates_instead_of_overflowing() {
        let l = ShuffleLedger::new();
        l.record_broadcast(Phase::Repartition, u64::MAX / 2, 9);
        assert_eq!(l.broadcast_bytes(Phase::Repartition), u64::MAX);
    }

    #[test]
    fn snapshot_deltas_isolate_one_job() {
        let l = ShuffleLedger::new();
        l.record_shuffle(Phase::Repartition, 0, 1, 100);
        l.record_broadcast(Phase::Repartition, 10, 4);
        let mark = l.snapshot();
        l.record_shuffle(Phase::Repartition, 0, 1, 25);
        l.record_shuffle(Phase::Aggregation, 1, 1, 7);
        l.record_broadcast(Phase::Repartition, 10, 2);
        let d = l.since(&mark);
        assert_eq!(d.shuffle_bytes(Phase::Repartition), 25);
        assert_eq!(d.cross_node_bytes(Phase::Repartition), 25);
        assert_eq!(d.shuffle_bytes(Phase::Aggregation), 7);
        assert_eq!(d.cross_node_bytes(Phase::Aggregation), 0);
        assert_eq!(d.broadcast_bytes(Phase::Repartition), 20);
        // Cumulative counters survive: nothing was reset.
        assert_eq!(l.shuffle_bytes(Phase::Repartition), 125);
        assert_eq!(l.broadcast_bytes(Phase::Repartition), 60);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let l = Arc::new(ShuffleLedger::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.record_shuffle(Phase::Repartition, t % 2, (t + 1) % 2, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.shuffle_bytes(Phase::Repartition), 8000);
        assert_eq!(l.cross_node_bytes(Phase::Repartition), 8000);
    }
}
