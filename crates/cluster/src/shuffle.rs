//! Shuffle byte accounting.
//!
//! Both executors record every block movement here; the benchmark figures'
//! "amount of transferred data" series read these counters. Counters are
//! atomic so the real executor's worker threads can record concurrently.

use crate::stats::{Phase, TenantId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Thread-safe per-phase shuffle/broadcast byte counters, with per-tenant
/// attribution: every record lands in the cluster-wide atomics *and* in
/// exactly one tenant's bucket ([`TenantId::ANONYMOUS`] for untagged
/// records), so per-tenant snapshots always sum to the cluster totals.
#[derive(Debug, Default)]
pub struct ShuffleLedger {
    shuffle: [AtomicU64; Phase::COUNT],
    cross_node: [AtomicU64; Phase::COUNT],
    broadcast: [AtomicU64; Phase::COUNT],
    /// Per-tenant counters. Model-byte charges are driver-side (once per
    /// planned move), so this mutex is never on a worker's hot path.
    tenants: Mutex<BTreeMap<TenantId, TenantCounters>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct TenantCounters {
    shuffle: [u64; Phase::COUNT],
    cross_node: [u64; Phase::COUNT],
    broadcast: [u64; Phase::COUNT],
}

impl ShuffleLedger {
    /// Creates a zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one block shuffled from `from_node` to `to_node` during
    /// `phase`. Same-node movements count as shuffled (Spark still
    /// serializes them through the shuffle files) but not as cross-node.
    /// Charged to [`TenantId::ANONYMOUS`].
    pub fn record_shuffle(&self, phase: Phase, from_node: usize, to_node: usize, bytes: u64) {
        self.record_shuffle_for(TenantId::ANONYMOUS, phase, from_node, to_node, bytes);
    }

    /// [`record_shuffle`](Self::record_shuffle) attributed to `tenant`.
    pub fn record_shuffle_for(
        &self,
        tenant: TenantId,
        phase: Phase,
        from_node: usize,
        to_node: usize,
        bytes: u64,
    ) {
        let i = phase.index();
        self.shuffle[i].fetch_add(bytes, Ordering::Relaxed);
        if from_node != to_node {
            self.cross_node[i].fetch_add(bytes, Ordering::Relaxed);
        }
        let mut tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let t = tenants.entry(tenant).or_default();
        t.shuffle[i] += bytes;
        if from_node != to_node {
            t.cross_node[i] += bytes;
        }
    }

    /// Records a broadcast of `bytes_per_node` to `nodes` nodes (torrent
    /// semantics: one copy lands on each node, §2.2.1's BMM). Saturates
    /// rather than overflowing for pathological byte × node products.
    /// Charged to [`TenantId::ANONYMOUS`].
    pub fn record_broadcast(&self, phase: Phase, bytes_per_node: u64, nodes: usize) {
        self.record_broadcast_for(TenantId::ANONYMOUS, phase, bytes_per_node, nodes);
    }

    /// [`record_broadcast`](Self::record_broadcast) attributed to `tenant`.
    pub fn record_broadcast_for(
        &self,
        tenant: TenantId,
        phase: Phase,
        bytes_per_node: u64,
        nodes: usize,
    ) {
        let total = bytes_per_node.saturating_mul(nodes as u64);
        self.broadcast[phase.index()].fetch_add(total, Ordering::Relaxed);
        let mut tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let t = tenants.entry(tenant).or_default();
        t.broadcast[phase.index()] = t.broadcast[phase.index()].saturating_add(total);
    }

    /// Total shuffled bytes in `phase`.
    pub fn shuffle_bytes(&self, phase: Phase) -> u64 {
        self.shuffle[phase.index()].load(Ordering::Relaxed)
    }

    /// Cross-node shuffled bytes in `phase`.
    pub fn cross_node_bytes(&self, phase: Phase) -> u64 {
        self.cross_node[phase.index()].load(Ordering::Relaxed)
    }

    /// Broadcast bytes in `phase`.
    pub fn broadcast_bytes(&self, phase: Phase) -> u64 {
        self.broadcast[phase.index()].load(Ordering::Relaxed)
    }

    /// Sum over phases of shuffle + broadcast bytes.
    pub fn total_communication(&self) -> u64 {
        Phase::ALL
            .iter()
            .map(|&p| self.shuffle_bytes(p) + self.broadcast_bytes(p))
            .sum()
    }

    /// Resets every counter (between jobs), including tenant attribution.
    pub fn reset(&self) {
        for i in 0..Phase::COUNT {
            self.shuffle[i].store(0, Ordering::Relaxed);
            self.cross_node[i].store(0, Ordering::Relaxed);
            self.broadcast[i].store(0, Ordering::Relaxed);
        }
        self.tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// Every tenant that has been charged at least once, in id order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .copied()
            .collect()
    }

    /// Captures `tenant`'s counters (all zero for an uncharged tenant).
    /// Summing every tenant's snapshot — [`TenantId::ANONYMOUS`]
    /// included — reproduces [`snapshot`](Self::snapshot) exactly: a byte
    /// is attributed to one tenant or none, never two.
    pub fn tenant_snapshot(&self, tenant: TenantId) -> LedgerSnapshot {
        let tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let t = tenants.get(&tenant).copied().unwrap_or_default();
        LedgerSnapshot {
            shuffle: t.shuffle,
            cross_node: t.cross_node,
            broadcast: t.broadcast,
        }
    }

    /// `tenant`'s bytes recorded since `earlier` (a previous
    /// [`tenant_snapshot`](Self::tenant_snapshot) of the same tenant).
    pub fn tenant_since(&self, tenant: TenantId, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        self.tenant_snapshot(tenant).minus(earlier)
    }

    /// Captures the current counter values. Jobs take a snapshot on entry
    /// and report [`since`](Self::since) deltas, so one ledger can
    /// accumulate session-level totals across many jobs without resets.
    pub fn snapshot(&self) -> LedgerSnapshot {
        let mut s = LedgerSnapshot::default();
        for (i, &p) in Phase::ALL.iter().enumerate() {
            s.shuffle[i] = self.shuffle_bytes(p);
            s.cross_node[i] = self.cross_node_bytes(p);
            s.broadcast[i] = self.broadcast_bytes(p);
        }
        s
    }

    /// The bytes recorded since `earlier` was taken (saturating, so a
    /// snapshot from after a `reset` never underflows).
    pub fn since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        self.snapshot().minus(earlier)
    }
}

/// A point-in-time copy of a [`ShuffleLedger`]'s counters, also used as a
/// delta between two points in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    shuffle: [u64; Phase::COUNT],
    cross_node: [u64; Phase::COUNT],
    broadcast: [u64; Phase::COUNT],
}

impl LedgerSnapshot {
    /// Element-wise saturating difference `self − earlier` (the delta
    /// between two captures of the same counters).
    pub fn minus(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        let mut d = LedgerSnapshot::default();
        for i in 0..Phase::COUNT {
            d.shuffle[i] = self.shuffle[i].saturating_sub(earlier.shuffle[i]);
            d.cross_node[i] = self.cross_node[i].saturating_sub(earlier.cross_node[i]);
            d.broadcast[i] = self.broadcast[i].saturating_sub(earlier.broadcast[i]);
        }
        d
    }

    /// Element-wise saturating sum (accumulating per-tenant deltas).
    pub fn plus(&self, other: &LedgerSnapshot) -> LedgerSnapshot {
        let mut s = LedgerSnapshot::default();
        for i in 0..Phase::COUNT {
            s.shuffle[i] = self.shuffle[i].saturating_add(other.shuffle[i]);
            s.cross_node[i] = self.cross_node[i].saturating_add(other.cross_node[i]);
            s.broadcast[i] = self.broadcast[i].saturating_add(other.broadcast[i]);
        }
        s
    }

    /// Shuffled bytes in `phase` at (or between) the capture point(s).
    pub fn shuffle_bytes(&self, phase: Phase) -> u64 {
        self.shuffle[phase.index()]
    }

    /// Cross-node bytes in `phase`.
    pub fn cross_node_bytes(&self, phase: Phase) -> u64 {
        self.cross_node[phase.index()]
    }

    /// Broadcast bytes in `phase`.
    pub fn broadcast_bytes(&self, phase: Phase) -> u64 {
        self.broadcast[phase.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_phase_and_locality() {
        let l = ShuffleLedger::new();
        l.record_shuffle(Phase::Repartition, 0, 1, 100);
        l.record_shuffle(Phase::Repartition, 2, 2, 50);
        l.record_shuffle(Phase::Aggregation, 1, 0, 30);
        assert_eq!(l.shuffle_bytes(Phase::Repartition), 150);
        assert_eq!(l.cross_node_bytes(Phase::Repartition), 100);
        assert_eq!(l.shuffle_bytes(Phase::Aggregation), 30);
        assert_eq!(l.shuffle_bytes(Phase::LocalMult), 0);
    }

    #[test]
    fn broadcast_counts_node_copies() {
        let l = ShuffleLedger::new();
        l.record_broadcast(Phase::Repartition, 1000, 9);
        assert_eq!(l.broadcast_bytes(Phase::Repartition), 9000);
        assert_eq!(l.total_communication(), 9000);
    }

    #[test]
    fn reset_zeroes_everything() {
        let l = ShuffleLedger::new();
        l.record_shuffle(Phase::LocalMult, 0, 1, 7);
        l.record_broadcast(Phase::LocalMult, 7, 2);
        l.reset();
        assert_eq!(l.total_communication(), 0);
    }

    #[test]
    fn broadcast_saturates_instead_of_overflowing() {
        let l = ShuffleLedger::new();
        l.record_broadcast(Phase::Repartition, u64::MAX / 2, 9);
        assert_eq!(l.broadcast_bytes(Phase::Repartition), u64::MAX);
    }

    #[test]
    fn snapshot_deltas_isolate_one_job() {
        let l = ShuffleLedger::new();
        l.record_shuffle(Phase::Repartition, 0, 1, 100);
        l.record_broadcast(Phase::Repartition, 10, 4);
        let mark = l.snapshot();
        l.record_shuffle(Phase::Repartition, 0, 1, 25);
        l.record_shuffle(Phase::Aggregation, 1, 1, 7);
        l.record_broadcast(Phase::Repartition, 10, 2);
        let d = l.since(&mark);
        assert_eq!(d.shuffle_bytes(Phase::Repartition), 25);
        assert_eq!(d.cross_node_bytes(Phase::Repartition), 25);
        assert_eq!(d.shuffle_bytes(Phase::Aggregation), 7);
        assert_eq!(d.cross_node_bytes(Phase::Aggregation), 0);
        assert_eq!(d.broadcast_bytes(Phase::Repartition), 20);
        // Cumulative counters survive: nothing was reset.
        assert_eq!(l.shuffle_bytes(Phase::Repartition), 125);
        assert_eq!(l.broadcast_bytes(Phase::Repartition), 60);
    }

    #[test]
    fn tenant_attribution_sums_to_the_cluster_totals() {
        use crate::stats::TenantId;
        let l = ShuffleLedger::new();
        l.record_shuffle_for(TenantId(1), Phase::Repartition, 0, 1, 100);
        l.record_shuffle_for(TenantId(2), Phase::Repartition, 1, 1, 40);
        l.record_shuffle(Phase::Aggregation, 0, 2, 9); // anonymous
        l.record_broadcast_for(TenantId(1), Phase::Repartition, 10, 4);
        let total = l.snapshot();
        let summed = l
            .tenants()
            .iter()
            .fold(LedgerSnapshot::default(), |acc, &t| {
                acc.plus(&l.tenant_snapshot(t))
            });
        assert_eq!(summed, total, "per-tenant snapshots must sum to totals");
        let t1 = l.tenant_snapshot(TenantId(1));
        assert_eq!(t1.shuffle_bytes(Phase::Repartition), 100);
        assert_eq!(t1.cross_node_bytes(Phase::Repartition), 100);
        assert_eq!(t1.broadcast_bytes(Phase::Repartition), 40);
        let t2 = l.tenant_snapshot(TenantId(2));
        assert_eq!(t2.shuffle_bytes(Phase::Repartition), 40);
        assert_eq!(t2.cross_node_bytes(Phase::Repartition), 0);
        assert_eq!(
            l.tenant_snapshot(TenantId::ANONYMOUS)
                .shuffle_bytes(Phase::Aggregation),
            9
        );
        // Uncharged tenants read zero; deltas subtract cleanly.
        assert_eq!(l.tenant_snapshot(TenantId(9)), LedgerSnapshot::default());
        let mark = l.tenant_snapshot(TenantId(1));
        l.record_shuffle_for(TenantId(1), Phase::Repartition, 0, 1, 5);
        assert_eq!(
            l.tenant_since(TenantId(1), &mark)
                .shuffle_bytes(Phase::Repartition),
            5
        );
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let l = Arc::new(ShuffleLedger::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.record_shuffle(Phase::Repartition, t % 2, (t + 1) % 2, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.shuffle_bytes(Phase::Repartition), 8000);
        assert_eq!(l.cross_node_bytes(Phase::Repartition), 8000);
    }
}
