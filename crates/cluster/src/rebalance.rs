//! Deterministic block rebalancing after a membership change.
//!
//! When the grid resizes, every resident block's home moves: the placement
//! hash ([`home_node`]) is a function of the node count. A
//! [`RebalancePlan`] is derived from a snapshot of resident keys and their
//! holders ([`ClusterStores::resident_keys`]) and lists, in deterministic
//! key order:
//!
//! * [`BlockMove`]s shipping each key from one surviving holder onto its
//!   homes under the **new** grid — executed through the codec-backed
//!   transport, charged to the ledger under [`Phase::Rebalance`];
//! * evictions dropping copies stranded at nodes that are no longer homes
//!   (this is what empties a leaving node's store);
//! * `lost` keys with no readable holder at all — only possible after a
//!   permanent decommission severed the sole copy.
//!
//! Every key is re-homed to **both** salted homes (`which` 0 and 1 — the
//! A-operand and B-operand spaces of the plan's routing), matching how the
//! executor places result blocks. The invariant after a rebalance: any
//! future plan, built for the new node count, finds its ingest homes
//! already resident, whichever side of a multiply the matrix lands on —
//! and every block has two copies wherever the two hashes disagree, which
//! is the replica "lineage" a later decommission recovers from.
//!
//! [`ClusterStores::resident_keys`]: crate::store::ClusterStores::resident_keys
//! [`Phase::Rebalance`]: crate::stats::Phase::Rebalance

use crate::stats::JobStats;
use crate::store::StoreKey;
use distme_matrix::BlockId;
use std::collections::{BTreeMap, BTreeSet};

/// HDFS-style "home" node of a block (`which` salts the A-operand,
/// B-operand, and pre-shuffle destination spaces apart). This is the one
/// placement hash in the system: the plan's routing in `distme-core`
/// delegates here, so rebalancing and planning can never disagree about
/// where a block lives.
pub fn home_node(id: BlockId, which: u64, nodes: usize) -> usize {
    let mut z = (((id.row as u64) << 32) | id.col as u64)
        .wrapping_add(which.wrapping_mul(0xA24BAED4963EE407))
        .wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) as usize % nodes
}

/// One planned migration: ship `key` from the store of `from` to the store
/// of `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMove {
    /// The resident key to ship (same key at source and destination).
    pub key: StoreKey,
    /// A current holder of the key.
    pub from: usize,
    /// A home of the key under the new grid.
    pub to: usize,
}

/// The deterministic migration schedule for one membership change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RebalancePlan {
    /// Node count of the new grid.
    pub new_nodes: usize,
    /// Migrations, in `(key, to)` order.
    pub moves: Vec<BlockMove>,
    /// `(node, key)` copies to drop once the moves have landed.
    pub evictions: Vec<(usize, StoreKey)>,
    /// Keys with no readable holder — unrecoverable without re-running the
    /// producing job.
    pub lost: Vec<StoreKey>,
}

impl RebalancePlan {
    /// Derives the schedule from a resident-key snapshot. Holder node ids
    /// may exceed `new_nodes` (a graceful shrink drains the leaving tail);
    /// targets are always within the new grid. Deterministic: the same
    /// snapshot and node count produce the identical plan.
    pub fn derive(snapshot: &BTreeMap<StoreKey, BTreeSet<usize>>, new_nodes: usize) -> Self {
        assert!(new_nodes > 0, "cannot rebalance onto an empty grid");
        let mut plan = RebalancePlan {
            new_nodes,
            ..Default::default()
        };
        for (key, holders) in snapshot {
            let Some(&source) = holders.iter().next() else {
                plan.lost.push(*key);
                continue;
            };
            let targets: BTreeSet<usize> = [
                home_node(key.id, 0, new_nodes),
                home_node(key.id, 1, new_nodes),
            ]
            .into_iter()
            .collect();
            for &t in &targets {
                if !holders.contains(&t) {
                    plan.moves.push(BlockMove {
                        key: *key,
                        from: source,
                        to: t,
                    });
                }
            }
            for &h in holders {
                if !targets.contains(&h) {
                    plan.evictions.push((h, *key));
                }
            }
        }
        plan
    }

    /// Whether the plan migrates or drops anything at all.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty() && self.evictions.is_empty() && self.lost.is_empty()
    }
}

/// What one executed membership change did, with the migration traffic in
/// [`JobStats`] form so sessions can absorb it into their accumulated
/// counters (`rebalanced_moves` / `rebalanced_payload_bytes`, plus a
/// [`Phase::Rebalance`](crate::stats::Phase::Rebalance) entry).
#[derive(Debug, Clone, Copy, Default)]
pub struct RebalanceReport {
    /// Epoch after the change.
    pub epoch: u64,
    /// Node count before.
    pub from_nodes: usize,
    /// Node count after.
    pub to_nodes: usize,
    /// Blocks physically migrated (implicit zeros excluded).
    pub moves: u64,
    /// Encoded payload bytes of those migrations.
    pub payload_bytes: u64,
    /// Resident blocks lost to a decommission (0 on any graceful resize).
    pub lost_blocks: usize,
    /// The migration traffic as mergeable job stats.
    pub stats: JobStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(matrix: u64, row: u32, col: u32) -> StoreKey {
        StoreKey::operand(matrix, BlockId::new(row, col))
    }

    fn snapshot(entries: &[(StoreKey, &[usize])]) -> BTreeMap<StoreKey, BTreeSet<usize>> {
        entries
            .iter()
            .map(|(k, hs)| (*k, hs.iter().copied().collect()))
            .collect()
    }

    #[test]
    fn derivation_is_deterministic() {
        let snap = snapshot(&[
            (key(1, 0, 0), &[0]),
            (key(1, 0, 1), &[3]),
            (key(2, 1, 0), &[1, 2]),
        ]);
        let a = RebalancePlan::derive(&snap, 9);
        let b = RebalancePlan::derive(&snap, 9);
        assert_eq!(a, b);
        assert!(!a.moves.is_empty() || !a.evictions.is_empty());
    }

    #[test]
    fn every_key_lands_on_both_new_homes() {
        let snap = snapshot(&[(key(7, 2, 3), &[0])]);
        let plan = RebalancePlan::derive(&snap, 5);
        let targets: BTreeSet<usize> = [
            home_node(BlockId::new(2, 3), 0, 5),
            home_node(BlockId::new(2, 3), 1, 5),
        ]
        .into_iter()
        .collect();
        let moved_to: BTreeSet<usize> = plan.moves.iter().map(|m| m.to).collect();
        let kept: BTreeSet<usize> = targets.iter().copied().filter(|t| *t == 0).collect();
        // Every target is either moved to or was already held.
        assert_eq!(
            moved_to.union(&kept).copied().collect::<BTreeSet<_>>(),
            targets
        );
        // The old copy survives only if node 0 is a new home.
        let evicted_at_0 = plan.evictions.iter().any(|(n, _)| *n == 0);
        assert_eq!(evicted_at_0, !targets.contains(&0));
    }

    #[test]
    fn shrink_drains_tail_holders() {
        // Holder 8 is outside a 4-node grid: the key must move onto the
        // surviving prefix and the tail copy must be evicted.
        let snap = snapshot(&[(key(3, 1, 1), &[8])]);
        let plan = RebalancePlan::derive(&snap, 4);
        assert!(plan.moves.iter().all(|m| m.from == 8 && m.to < 4));
        assert!(!plan.moves.is_empty());
        assert!(plan.evictions.contains(&(8, key(3, 1, 1))));
        assert!(plan.lost.is_empty());
    }

    #[test]
    fn holderless_keys_are_lost() {
        let snap = snapshot(&[(key(5, 0, 0), &[])]);
        let plan = RebalancePlan::derive(&snap, 4);
        assert_eq!(plan.lost, vec![key(5, 0, 0)]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn already_homed_keys_produce_no_traffic() {
        let id = BlockId::new(4, 2);
        let homes: BTreeSet<usize> = [home_node(id, 0, 6), home_node(id, 1, 6)]
            .into_iter()
            .collect();
        let k = StoreKey::operand(11, id);
        let snap: BTreeMap<StoreKey, BTreeSet<usize>> = [(k, homes)].into_iter().collect();
        let plan = RebalancePlan::derive(&snap, 6);
        assert!(plan.is_empty());
    }

    #[test]
    fn home_node_spreads_and_stays_in_range() {
        let mut seen = BTreeSet::new();
        for row in 0..32u32 {
            for col in 0..32u32 {
                let h = home_node(BlockId::new(row, col), 0, 9);
                assert!(h < 9);
                seen.insert(h);
            }
        }
        assert_eq!(seen.len(), 9, "1024 blocks cover all 9 nodes");
    }
}
