//! Per-phase job statistics.
//!
//! The paper breaks distributed matrix multiplication into three steps —
//! matrix repartition, local multiplication, matrix aggregation (§2.2) —
//! and reports per-step elapsed-time ratios (Fig. 7(e)) and communication
//! volumes (Figs. 6(d–f), 7(f)). [`JobStats`] carries exactly those
//! measurements, filled in by either executor.

/// Identity of the tenant a job was submitted on behalf of. Every byte a
/// job charges to the shared [`crate::ShuffleLedger`] is attributed to
/// exactly one tenant, so per-tenant deltas always sum to the cluster
/// totals. Work run outside the job service (the legacy synchronous
/// session path, rebalances, direct ledger records) is charged to
/// [`TenantId::ANONYMOUS`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The implicit tenant of untagged work (id 0).
    pub const ANONYMOUS: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// The three steps of distributed matrix multiplication, plus the
/// between-jobs block migration traffic an elastic resize generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Step 1: repartition/broadcast inputs to tasks.
    Repartition,
    /// Step 2: multiply blocks within each task.
    LocalMult,
    /// Step 3: shuffle and reduce intermediate output blocks.
    Aggregation,
    /// Block migration after a membership change (`cluster::rebalance`):
    /// resident blocks re-homed onto the new grid. Not part of any job's
    /// plan, so both executors report zero plan communication here.
    Rebalance,
}

impl Phase {
    /// Number of phases — the one source of truth for per-phase array
    /// lengths, so adding a stage kind cannot silently corrupt counters.
    pub const COUNT: usize = 4;

    /// All phases, in execution order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Repartition,
        Phase::LocalMult,
        Phase::Aggregation,
        Phase::Rebalance,
    ];

    /// Index into per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Repartition => 0,
            Phase::LocalMult => 1,
            Phase::Aggregation => 2,
            Phase::Rebalance => 3,
        }
    }

    /// Human-readable label used by the harness output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Repartition => "matrix repartition",
            Phase::LocalMult => "local multiplication",
            Phase::Aggregation => "matrix aggregation",
            Phase::Rebalance => "block rebalance",
        }
    }
}

/// Measurements of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseStats {
    /// Elapsed (virtual or wall) seconds.
    pub secs: f64,
    /// Bytes moved through the shuffle in this phase (all copies counted,
    /// matching the paper's "amount of transferred data").
    pub shuffle_bytes: u64,
    /// The subset of `shuffle_bytes` that crossed a node boundary.
    pub cross_node_bytes: u64,
    /// Bytes moved by broadcast (node-level copies).
    pub broadcast_bytes: u64,
    /// Tasks executed in this phase.
    pub tasks: usize,
}

impl PhaseStats {
    /// Merges another phase's measurements into this one (used when a query
    /// runs several jobs).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.secs += other.secs;
        self.shuffle_bytes += other.shuffle_bytes;
        self.cross_node_bytes += other.cross_node_bytes;
        self.broadcast_bytes += other.broadcast_bytes;
        self.tasks += other.tasks;
    }
}

/// Measurements of a whole job (or accumulated query).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobStats {
    /// Per-phase measurements, indexed by [`Phase::index`].
    pub phases: [PhaseStats; Phase::COUNT],
    /// End-to-end elapsed seconds (≥ sum of phase times; includes stage
    /// overheads).
    pub elapsed_secs: f64,
    /// Largest task working set observed, bytes.
    pub peak_task_mem_bytes: u64,
    /// Intermediate (shuffle) data written to disk, bytes — the E.D.C.
    /// metric.
    pub intermediate_bytes: u64,
    /// Kernel-engine utilization of the GPUs during local multiplication,
    /// `0..=1`, when GPUs were used (Fig. 7(g)).
    pub gpu_utilization: Option<f64>,
    /// Physically encoded transport payload bytes (real executor only; the
    /// simulator has no physical blocks and leaves this 0). Differs from
    /// the model-byte ledger counts: sparse blocks encode smaller than
    /// their dense estimate and implicit-zero moves carry nothing.
    pub transport_payload_bytes: u64,
    /// Task attempts re-executed after a transient failure (real executor
    /// under fault injection; 0 on a fault-free run).
    pub retries: u64,
    /// Transport deliveries repeated after a drop or checksum failure
    /// (lineage re-delivery from the producer's store).
    pub redelivered_moves: u64,
    /// Physical payload bytes of repeated deliveries and re-run task
    /// attempts. Kept apart from both the ledger's model bytes and
    /// `transport_payload_bytes` so fault-free byte accounting stays
    /// bit-identical under injected faults.
    pub retransmitted_payload_bytes: u64,
    /// Block moves executed by elastic rebalancing (membership changes),
    /// outside any job plan.
    pub rebalanced_moves: u64,
    /// Physical payload bytes of rebalance moves. Kept apart from
    /// `transport_payload_bytes` so per-job payload accounting is
    /// unaffected by resizes between jobs.
    pub rebalanced_payload_bytes: u64,
    /// Parity blocks materialized by coded replication
    /// (`cluster::coding`) — at operand/result ingest and at the re-encode
    /// after a membership change.
    pub parity_blocks_encoded: u64,
    /// Blocks rebuilt by a k-of-n parity decode instead of lineage
    /// redelivery or a typed loss — in the transport's recovery path and
    /// in `decommission_node`.
    pub reconstructed_blocks: u64,
    /// Physical frame bytes of reconstructed blocks. Kept apart from
    /// `retransmitted_payload_bytes`: a decode reads survivors locally,
    /// so these bytes are exactly the retransmissions coding avoided.
    pub reconstruction_payload_bytes: u64,
    /// Fraction of communication time hidden behind compute by the
    /// pipelined executor, `0..=1` (`None` for barrier-mode jobs, which
    /// overlap nothing by construction). Computed as
    /// `1 − stall_secs / comm_secs`.
    pub overlap_ratio: Option<f64>,
    /// k-panels whose blocks had already landed when the consuming compute
    /// loop reached them (the prefetch ran ahead — Algorithm 1's double
    /// buffering paying off).
    pub prefetch_hits: u64,
    /// k-panels the compute loop had to wait for — either pulling the
    /// straggling blocks itself through the transport's one-sided fetch
    /// path, or blocking on an in-flight prefetch.
    pub prefetch_stalls: u64,
}

impl JobStats {
    /// Phase accessor.
    pub fn phase(&self, p: Phase) -> &PhaseStats {
        &self.phases[p.index()]
    }

    /// Mutable phase accessor.
    pub fn phase_mut(&mut self, p: Phase) -> &mut PhaseStats {
        &mut self.phases[p.index()]
    }

    /// Total bytes shuffled over all phases — the paper's "communication
    /// cost (i.e., amount of transferred data in the matrix repartition and
    /// aggregation steps)".
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.shuffle_bytes).sum()
    }

    /// Total broadcast bytes.
    pub fn total_broadcast_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.broadcast_bytes).sum()
    }

    /// Communication cost: shuffle + broadcast bytes.
    pub fn communication_bytes(&self) -> u64 {
        self.total_shuffle_bytes() + self.total_broadcast_bytes()
    }

    /// Per-phase shares of the summed phase time — Fig. 7(e)'s "time ratio
    /// of three steps". Returns zeros when no time was recorded.
    pub fn time_ratios(&self) -> [f64; Phase::COUNT] {
        let total: f64 = self.phases.iter().map(|p| p.secs).sum();
        if total <= 0.0 {
            return [0.0; Phase::COUNT];
        }
        std::array::from_fn(|i| self.phases[i].secs / total)
    }

    /// Merges another job's stats (for multi-operation queries like GNMF).
    pub fn merge(&mut self, other: &JobStats) {
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.merge(b);
        }
        self.elapsed_secs += other.elapsed_secs;
        self.peak_task_mem_bytes = self.peak_task_mem_bytes.max(other.peak_task_mem_bytes);
        self.intermediate_bytes += other.intermediate_bytes;
        self.transport_payload_bytes += other.transport_payload_bytes;
        self.retries += other.retries;
        self.redelivered_moves += other.redelivered_moves;
        self.retransmitted_payload_bytes += other.retransmitted_payload_bytes;
        self.rebalanced_moves += other.rebalanced_moves;
        self.rebalanced_payload_bytes += other.rebalanced_payload_bytes;
        self.parity_blocks_encoded += other.parity_blocks_encoded;
        self.reconstructed_blocks += other.reconstructed_blocks;
        self.reconstruction_payload_bytes += other.reconstruction_payload_bytes;
        self.gpu_utilization = match (self.gpu_utilization, other.gpu_utilization) {
            (Some(a), Some(b)) => Some((a + b) / 2.0),
            (a, b) => a.or(b),
        };
        self.overlap_ratio = match (self.overlap_ratio, other.overlap_ratio) {
            (Some(a), Some(b)) => Some((a + b) / 2.0),
            (a, b) => a.or(b),
        };
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_stalls += other.prefetch_stalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobStats {
        let mut s = JobStats::default();
        s.phase_mut(Phase::Repartition).secs = 1.0;
        s.phase_mut(Phase::Repartition).shuffle_bytes = 100;
        s.phase_mut(Phase::Repartition).cross_node_bytes = 80;
        s.phase_mut(Phase::LocalMult).secs = 8.0;
        s.phase_mut(Phase::Aggregation).secs = 1.0;
        s.phase_mut(Phase::Aggregation).shuffle_bytes = 50;
        s.elapsed_secs = 10.5;
        s.peak_task_mem_bytes = 1000;
        s.intermediate_bytes = 150;
        s
    }

    #[test]
    fn totals_and_ratios() {
        let s = sample();
        assert_eq!(s.total_shuffle_bytes(), 150);
        assert_eq!(s.communication_bytes(), 150);
        let r = s.time_ratios();
        assert!((r[0] - 0.1).abs() < 1e-12);
        assert!((r[1] - 0.8).abs() < 1e-12);
        assert!((r[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        assert_eq!(JobStats::default().time_ratios(), [0.0; Phase::COUNT]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let mut b = sample();
        b.retries = 2;
        b.redelivered_moves = 3;
        b.retransmitted_payload_bytes = 40;
        a.merge(&b);
        assert_eq!(a.total_shuffle_bytes(), 300);
        assert_eq!(a.elapsed_secs, 21.0);
        assert_eq!(a.peak_task_mem_bytes, 1000);
        assert_eq!(a.intermediate_bytes, 300);
        assert_eq!(a.phase(Phase::LocalMult).secs, 16.0);
        a.merge(&b);
        assert_eq!(a.retries, 4);
        assert_eq!(a.redelivered_moves, 6);
        assert_eq!(a.retransmitted_payload_bytes, 80);
    }

    #[test]
    fn rebalance_counters_merge() {
        let mut a = JobStats::default();
        let b = JobStats {
            rebalanced_moves: 5,
            rebalanced_payload_bytes: 640,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.rebalanced_moves, 10);
        assert_eq!(a.rebalanced_payload_bytes, 1280);
    }

    #[test]
    fn coding_counters_merge() {
        let mut a = JobStats::default();
        let b = JobStats {
            parity_blocks_encoded: 3,
            reconstructed_blocks: 2,
            reconstruction_payload_bytes: 512,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.parity_blocks_encoded, 6);
        assert_eq!(a.reconstructed_blocks, 4);
        assert_eq!(a.reconstruction_payload_bytes, 1024);
    }

    #[test]
    fn rebalance_phase_is_indexed_and_labeled() {
        assert_eq!(Phase::Rebalance.index(), Phase::COUNT - 1);
        assert_eq!(Phase::Rebalance.label(), "block rebalance");
        let mut s = JobStats::default();
        s.phase_mut(Phase::Rebalance).shuffle_bytes = 7;
        assert_eq!(s.phase(Phase::Rebalance).shuffle_bytes, 7);
        assert_eq!(s.total_shuffle_bytes(), 7);
    }

    #[test]
    fn phase_indexing_is_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::LocalMult.label(), "local multiplication");
    }

    #[test]
    fn gpu_utilization_merge() {
        let mut a = JobStats {
            gpu_utilization: Some(0.8),
            ..Default::default()
        };
        let b = JobStats {
            gpu_utilization: Some(0.4),
            ..Default::default()
        };
        a.merge(&b);
        assert!((a.gpu_utilization.unwrap() - 0.6).abs() < 1e-12);
        let mut c = JobStats::default();
        c.merge(&b);
        assert_eq!(c.gpu_utilization, Some(0.4));
    }

    #[test]
    fn overlap_counters_merge() {
        let mut a = JobStats {
            overlap_ratio: Some(0.9),
            prefetch_hits: 4,
            prefetch_stalls: 1,
            ..Default::default()
        };
        let b = JobStats {
            overlap_ratio: Some(0.5),
            prefetch_hits: 6,
            prefetch_stalls: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert!((a.overlap_ratio.unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(a.prefetch_hits, 10);
        assert_eq!(a.prefetch_stalls, 4);
        let mut c = JobStats::default();
        c.merge(&b);
        assert_eq!(c.overlap_ratio, Some(0.5));
    }
}
