//! Shared multi-job task scheduler: the cluster-wide worker pool.
//!
//! Before this module, each job monopolized `run_stage`'s worker threads:
//! one `Session` = one job = the whole cluster. The scheduler turns the
//! cluster's task slots into a *lease pool* shared by every concurrently
//! running job, with two layers of control:
//!
//! 1. **Admission** ([`Scheduler::submit`]): a job declares its θt memory
//!    demand up front. The sum of admitted jobs' demands may not exceed
//!    [`crate::SchedulerConfig::admission_budget_bytes`]; a job that would
//!    overshoot *queues* (blocks) until earlier jobs release their
//!    admission — it is never rejected for memory. Only queue-depth
//!    overflow rejects, with [`JobError::QueueFull`]. A lone job whose
//!    demand exceeds the whole budget is admitted when nothing else is
//!    running: the budget bounds *concurrent* residency, and rejecting
//!    outright would make big jobs unrunnable on an idle cluster.
//!
//! 2. **Dispatch** ([`Scheduler::register_gang`] / [`Gang::next_task`]):
//!    each stage registers its task count as a *gang*; stage worker
//!    threads then pull `(slot lease, task index)` grants. Task indices
//!    within a gang are handed out strictly in order — exactly the claim
//!    cursor the old per-job loop used — so a stage's output ordering (and
//!    therefore result bytes) is independent of how many other jobs are
//!    running. Across gangs the dispatcher picks FIFO-with-priorities,
//!    optionally biased toward the tenant currently holding the fewest
//!    slots (`fair_share > 0`).
//!
//! The candidate set for a grant is restricted to gangs that have both
//! pending tasks *and* a worker actually waiting: choosing a gang nobody
//! is waiting on would stall the pool (the grant would sit unclaimed while
//! runnable gangs starve).
//!
//! Everything here is a plain `Mutex<State>` + `Condvar`; there are no
//! free-running scheduler threads, so a `Scheduler` is inert when idle and
//! deterministic under test.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::config::SchedulerConfig;
use crate::failure::JobError;
use crate::stats::TenantId;

/// Dependency-readiness bookkeeping of a *gated* gang: indices become
/// dispatchable only when [`Gang::mark_ready`] declares their dependencies
/// landed, instead of the strict in-order cursor.
#[derive(Debug, Default)]
struct ReadyState {
    /// Indices ready for dispatch but not yet granted (granted smallest
    /// first, so readiness never perturbs output ordering determinism —
    /// outputs are collected by index regardless).
    runnable: std::collections::BTreeSet<usize>,
    /// Every index ever marked ready. Marking is idempotent against this
    /// set, so a retried producer re-satisfying its dependents cannot
    /// double-grant an index.
    marked: std::collections::BTreeSet<usize>,
}

/// One stage's gang bookkeeping.
#[derive(Debug)]
struct GangState {
    tenant: TenantId,
    priority: u8,
    /// FIFO tie-breaker: registration order.
    seq: u64,
    /// Tasks granted so far. For an ungated gang this doubles as the claim
    /// cursor (indices are handed out strictly in order).
    next_task: usize,
    n_tasks: usize,
    /// Worker threads currently inside `next_task`.
    waiters: usize,
    /// `Some` for a dependency-gated gang (see [`ReadyState`]); `None`
    /// keeps the legacy strict in-order dispatch.
    ready: Option<ReadyState>,
    /// Poisoned: a terminal task failure means pending dependencies will
    /// never be satisfied; waiters must drain instead of deadlocking.
    aborted: bool,
}

impl GangState {
    fn pending(&self) -> usize {
        self.n_tasks - self.next_task
    }

    /// Whether a grant could be handed out right now (ignoring slots).
    fn dispatchable(&self) -> bool {
        if self.aborted || self.pending() == 0 {
            return false;
        }
        match &self.ready {
            None => true,
            Some(r) => !r.runnable.is_empty(),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    /// The pool's lease capacity — tracks elastic resizes via
    /// [`Scheduler::set_total_slots`].
    total_slots: usize,
    /// Slot leases currently out, cluster-wide.
    held: usize,
    /// Leases held per tenant (for fair-share dispatch and attribution).
    tenant_held: BTreeMap<TenantId, usize>,
    gangs: BTreeMap<u64, GangState>,
    next_gang_id: u64,
    next_seq: u64,
    /// θt bytes pinned by admitted jobs.
    admitted_mem: u64,
    admitted_jobs: usize,
    /// Jobs blocked in `submit` awaiting admission.
    queued_jobs: usize,
    /// Seconds each admitted job spent queued (0 for immediate admission).
    queue_waits_secs: Vec<f64>,
}

impl State {
    /// Which gang gets the next free slot. Candidates must have pending
    /// tasks and at least one waiting worker; among them, fair share picks
    /// the tenant holding the fewest slots first, then higher priority,
    /// then FIFO. With `fair_share == 0` it is pure priority-then-FIFO.
    fn choose(&self, fair_share: f64) -> Option<u64> {
        let candidates = self
            .gangs
            .iter()
            .filter(|(_, g)| g.dispatchable() && g.waiters > 0);
        if fair_share > 0.0 {
            candidates
                .min_by_key(|(_, g)| {
                    (
                        self.tenant_held.get(&g.tenant).copied().unwrap_or(0),
                        std::cmp::Reverse(g.priority),
                        g.seq,
                    )
                })
                .map(|(id, _)| *id)
        } else {
            candidates
                .min_by_key(|(_, g)| (std::cmp::Reverse(g.priority), g.seq))
                .map(|(id, _)| *id)
        }
    }
}

#[derive(Debug)]
struct Inner {
    cfg: SchedulerConfig,
    state: Mutex<State>,
    cv: Condvar,
}

/// Cheaply cloneable handle to the shared scheduler. All clones address
/// the same lease pool and admission queue.
#[derive(Debug, Clone)]
pub struct Scheduler {
    inner: Arc<Inner>,
}

/// Point-in-time view of scheduler pressure, the input to
/// [`crate::ElasticPolicy::recommend_from_load`]. Unlike the last job's
/// [`crate::JobStats`], this sees *all* concurrent jobs at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerLoad {
    /// Jobs blocked in `submit` awaiting admission.
    pub queued_jobs: usize,
    /// Jobs admitted (holding θt budget) right now.
    pub admitted_jobs: usize,
    /// Tasks registered but not yet granted, summed over live gangs.
    pub pending_tasks: usize,
    /// Slot leases currently out.
    pub held_slots: usize,
    /// Worker threads blocked waiting for a grant.
    pub waiting_workers: usize,
    /// The pool's lease capacity.
    pub total_slots: usize,
    /// θt bytes pinned by admitted jobs.
    pub admitted_mem_bytes: u64,
}

/// Queue-wait distribution over every admission so far (benchmark metric).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueueWaitStats {
    /// Admissions recorded.
    pub submissions: usize,
    /// Median seconds spent queued before admission.
    pub p50_secs: f64,
    /// 95th-percentile seconds spent queued before admission.
    pub p95_secs: f64,
}

/// Proof of admission: holds the job's θt demand against the cluster
/// budget until dropped. Carries the tenant/priority the job submitted
/// with, so downstream gang registration can't mislabel work.
#[derive(Debug)]
pub struct AdmissionTicket {
    sched: Scheduler,
    /// Tenant the job runs on behalf of.
    pub tenant: TenantId,
    /// Priority granted (validated against `priority_levels` at submit).
    pub priority: u8,
    demand_bytes: u64,
    /// Seconds this submission spent queued before admission.
    pub queue_wait_secs: f64,
}

impl Drop for AdmissionTicket {
    fn drop(&mut self) {
        let mut st = self.sched.lock();
        st.admitted_mem -= self.demand_bytes;
        st.admitted_jobs -= 1;
        self.sched.inner.cv.notify_all();
    }
}

/// One registered stage: a source of `(lease, task index)` grants for the
/// stage's worker threads. Dropping the gang retires it (its remaining
/// pending tasks vanish from the pool's accounting).
#[derive(Debug)]
pub struct Gang {
    sched: Scheduler,
    id: u64,
}

/// A granted task: the slot lease plus the claimed task index. The lease
/// returns to the pool when the grant is dropped, even if the task
/// panicked.
#[derive(Debug)]
pub struct TaskGrant {
    /// The claimed task index within the gang (handed out in order).
    pub index: usize,
    _lease: Lease,
}

#[derive(Debug)]
struct Lease {
    sched: Scheduler,
    tenant: TenantId,
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut st = self.sched.lock();
        st.held -= 1;
        let held = st
            .tenant_held
            .get_mut(&self.tenant)
            .expect("lease release for a tenant that holds no slots");
        *held -= 1;
        if *held == 0 {
            st.tenant_held.remove(&self.tenant);
        }
        self.sched.inner.cv.notify_all();
    }
}

impl Scheduler {
    /// A scheduler over `total_slots` concurrent leases (normally
    /// [`crate::ClusterConfig::total_slots`]) with the given tuning.
    pub fn new(total_slots: usize, cfg: SchedulerConfig) -> Self {
        cfg.assert_valid();
        assert!(total_slots > 0, "scheduler needs at least one slot");
        Scheduler {
            inner: Arc::new(Inner {
                cfg,
                state: Mutex::new(State {
                    total_slots,
                    ..State::default()
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// The tuning this scheduler was built with.
    pub fn config(&self) -> &SchedulerConfig {
        &self.inner.cfg
    }

    /// The pool's lease capacity.
    pub fn total_slots(&self) -> usize {
        self.lock().total_slots
    }

    /// Resizes the lease pool — called when elastic membership changes the
    /// cluster's slot count. Leases already out stay valid; a shrink just
    /// stops new grants until enough leases return.
    pub fn set_total_slots(&self, total_slots: usize) {
        assert!(total_slots > 0, "scheduler needs at least one slot");
        let mut st = self.lock();
        st.total_slots = total_slots;
        self.inner.cv.notify_all();
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicked task thread can poison the lock; the state it guards
        // is only counters, so continue rather than cascading the panic.
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Submits a job for admission, blocking until its `demand_bytes` fit
    /// under the admission budget alongside already-admitted jobs. Returns
    /// `Err(QueueFull)` when `queue_depth` jobs are already waiting and
    /// `Err(InvalidSubmission)` for a priority outside the configured
    /// range; never rejects for memory.
    pub fn submit(
        &self,
        tenant: TenantId,
        priority: u8,
        demand_bytes: u64,
    ) -> Result<AdmissionTicket, JobError> {
        let cfg = self.inner.cfg;
        if priority >= cfg.priority_levels {
            return Err(JobError::InvalidSubmission {
                reason: format!(
                    "priority {priority} outside configured range 0..{}",
                    cfg.priority_levels
                ),
            });
        }
        let start = Instant::now();
        let mut st = self.lock();
        if st.queued_jobs >= cfg.queue_depth {
            return Err(JobError::QueueFull {
                queued: st.queued_jobs,
                depth: cfg.queue_depth,
            });
        }
        st.queued_jobs += 1;
        // Block while the demand would overshoot the budget — unless the
        // cluster is otherwise empty, in which case a lone over-budget job
        // runs (the budget bounds *concurrent* residency).
        while st.admitted_mem.saturating_add(demand_bytes) > cfg.admission_budget_bytes
            && st.admitted_jobs > 0
        {
            st = self.inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.queued_jobs -= 1;
        st.admitted_jobs += 1;
        st.admitted_mem = st.admitted_mem.saturating_add(demand_bytes);
        let queue_wait_secs = start.elapsed().as_secs_f64();
        st.queue_waits_secs.push(queue_wait_secs);
        self.inner.cv.notify_all();
        drop(st);
        Ok(AdmissionTicket {
            sched: self.clone(),
            tenant,
            priority,
            demand_bytes,
            queue_wait_secs,
        })
    }

    /// Registers a stage of `n_tasks` tasks under `tenant`/`priority`.
    /// Priorities above the configured range are clamped (registration is
    /// internal; validation happened at submit).
    pub fn register_gang(&self, tenant: TenantId, priority: u8, n_tasks: usize) -> Gang {
        let mut st = self.lock();
        let id = st.next_gang_id;
        st.next_gang_id += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        st.gangs.insert(
            id,
            GangState {
                tenant,
                priority: priority.min(self.inner.cfg.priority_levels - 1),
                seq,
                next_task: 0,
                n_tasks,
                waiters: 0,
                ready: None,
                aborted: false,
            },
        );
        self.inner.cv.notify_all();
        Gang {
            sched: self.clone(),
            id,
        }
    }

    /// Registers a *dependency-gated* stage: only task indices declared
    /// ready (at registration via `initially_ready`, later via
    /// [`Gang::mark_ready`]) are dispatched, smallest ready index first.
    /// This is how the pipelined executor starts compute for early tasks
    /// while later tasks' blocks are still in flight — dispatch follows the
    /// plan's dependency-readiness view, not a stage barrier.
    pub fn register_gated_gang(
        &self,
        tenant: TenantId,
        priority: u8,
        n_tasks: usize,
        initially_ready: impl IntoIterator<Item = usize>,
    ) -> Gang {
        let gang = self.register_gang(tenant, priority, n_tasks);
        {
            let mut st = self.lock();
            let g = st.gangs.get_mut(&gang.id).expect("gang just registered");
            let mut ready = ReadyState::default();
            for idx in initially_ready {
                assert!(idx < n_tasks, "ready index {idx} outside gang of {n_tasks}");
                if ready.marked.insert(idx) {
                    ready.runnable.insert(idx);
                }
            }
            g.ready = Some(ready);
        }
        self.inner.cv.notify_all();
        gang
    }

    /// Declares task `index` of a gated gang dispatchable (its dependencies
    /// landed). Idempotent: re-marking an index (a retried producer
    /// re-satisfying dependents) is a no-op.
    fn mark_ready(&self, gang: u64, index: usize) {
        let mut st = self.lock();
        let g = st
            .gangs
            .get_mut(&gang)
            .expect("mark_ready on a retired gang");
        assert!(
            index < g.n_tasks,
            "ready index {index} outside gang of {} tasks",
            g.n_tasks
        );
        let ready = g
            .ready
            .as_mut()
            .expect("mark_ready on an ungated gang — register with register_gated_gang");
        if ready.marked.insert(index) {
            ready.runnable.insert(index);
            self.inner.cv.notify_all();
        }
    }

    /// Poisons a gang: pending grants stop and every waiter drains with
    /// `None`. Called when a terminal task failure means outstanding
    /// dependencies will never be satisfied — the waiters must not
    /// deadlock on readiness that cannot come.
    fn abort_gang(&self, gang: u64) {
        let mut st = self.lock();
        if let Some(g) = st.gangs.get_mut(&gang) {
            g.aborted = true;
        }
        self.inner.cv.notify_all();
    }

    fn next_task(&self, gang: u64) -> Option<TaskGrant> {
        let mut st = self.lock();
        st.gangs
            .get_mut(&gang)
            .expect("next_task on a retired gang")
            .waiters += 1;
        // A new waiter can change the dispatcher's choice; wake sleepers
        // so nobody waits on a stale decision.
        self.inner.cv.notify_all();
        loop {
            let g = &st.gangs[&gang];
            if g.aborted || g.pending() == 0 {
                st.gangs.get_mut(&gang).unwrap().waiters -= 1;
                self.inner.cv.notify_all();
                return None;
            }
            if st.held < st.total_slots && st.choose(self.inner.cfg.fair_share) == Some(gang) {
                let tenant = g.tenant;
                let g = st.gangs.get_mut(&gang).unwrap();
                let index = match &mut g.ready {
                    // Legacy: strict in-order cursor.
                    None => g.next_task,
                    // Gated: smallest ready ungranted index.
                    Some(r) => {
                        let idx = *r.runnable.iter().next().expect("dispatchable gated gang");
                        r.runnable.remove(&idx);
                        idx
                    }
                };
                g.next_task += 1;
                g.waiters -= 1;
                st.held += 1;
                *st.tenant_held.entry(tenant).or_insert(0) += 1;
                self.inner.cv.notify_all();
                return Some(TaskGrant {
                    index,
                    _lease: Lease {
                        sched: self.clone(),
                        tenant,
                    },
                });
            }
            st = self.inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn retire_gang(&self, gang: u64) {
        let mut st = self.lock();
        let g = st.gangs.remove(&gang);
        debug_assert!(
            g.map(|g| g.waiters).unwrap_or(0) == 0,
            "gang retired while workers still wait on it"
        );
        self.inner.cv.notify_all();
    }

    /// Live pressure across all concurrent jobs.
    pub fn load(&self) -> SchedulerLoad {
        let st = self.lock();
        SchedulerLoad {
            queued_jobs: st.queued_jobs,
            admitted_jobs: st.admitted_jobs,
            pending_tasks: st.gangs.values().map(|g| g.pending()).sum(),
            held_slots: st.held,
            waiting_workers: st.gangs.values().map(|g| g.waiters).sum(),
            total_slots: st.total_slots,
            admitted_mem_bytes: st.admitted_mem,
        }
    }

    /// Slots currently leased to `tenant`.
    pub fn held_by(&self, tenant: TenantId) -> usize {
        self.lock().tenant_held.get(&tenant).copied().unwrap_or(0)
    }

    /// Queue-wait distribution over all admissions so far.
    pub fn queue_wait_stats(&self) -> QueueWaitStats {
        let st = self.lock();
        let mut waits = st.queue_waits_secs.clone();
        drop(st);
        if waits.is_empty() {
            return QueueWaitStats::default();
        }
        waits.sort_by(|a, b| a.partial_cmp(b).expect("queue waits are finite"));
        let q = |p: f64| waits[((waits.len() - 1) as f64 * p).round() as usize];
        QueueWaitStats {
            submissions: waits.len(),
            p50_secs: q(0.50),
            p95_secs: q(0.95),
        }
    }
}

impl Gang {
    /// Blocks until this gang is granted a slot, returning the next task
    /// index (in order for an ungated gang; smallest ready index for a
    /// gated one) — or `None` once every task has been handed out (or the
    /// gang was aborted).
    pub fn next_task(&self) -> Option<TaskGrant> {
        self.sched.next_task(self.id)
    }

    /// Declares task `index` ready for dispatch (gated gangs only; see
    /// [`Scheduler::register_gated_gang`]). Idempotent.
    pub fn mark_ready(&self, index: usize) {
        self.sched.mark_ready(self.id, index);
    }

    /// Poisons the gang so every waiting worker drains with `None` instead
    /// of blocking on dependencies that will never be satisfied.
    pub fn abort(&self) {
        self.sched.abort_gang(self.id);
    }
}

impl Drop for Gang {
    fn drop(&mut self) {
        self.sched.retire_gang(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn cfg(budget: u64) -> SchedulerConfig {
        SchedulerConfig {
            queue_depth: 4,
            admission_budget_bytes: budget,
            priority_levels: 4,
            fair_share: 1.0,
        }
    }

    fn spin_until(sched: &Scheduler, pred: impl Fn(SchedulerLoad) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !pred(sched.load()) {
            assert!(Instant::now() < deadline, "scheduler never reached state");
            std::thread::yield_now();
        }
    }

    #[test]
    fn solo_gang_hands_out_indices_in_order_within_slots() {
        let sched = Scheduler::new(3, cfg(1000));
        let gang = sched.register_gang(TenantId(1), 0, 5);
        for expect in 0..5 {
            let grant = gang.next_task().unwrap();
            assert_eq!(grant.index, expect);
            assert!(sched.load().held_slots <= 3);
        }
        assert!(gang.next_task().is_none());
        drop(gang);
        assert_eq!(sched.load().pending_tasks, 0);
        assert_eq!(sched.load().held_slots, 0);
    }

    #[test]
    fn lease_count_never_exceeds_total_slots() {
        let sched = Scheduler::new(2, cfg(1000));
        let gang = sched.register_gang(TenantId(1), 0, 8);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(_grant) = gang.next_task() {
                        let held = sched.load().held_slots;
                        peak.fetch_max(held, Ordering::Relaxed);
                        assert!(held <= 2, "held {held} > 2 slots");
                    }
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn priority_wins_the_freed_slot() {
        let mut c = cfg(1000);
        c.fair_share = 0.0; // pure FIFO-with-priorities
        let sched = Scheduler::new(1, c);
        let filler = sched.register_gang(TenantId(9), 0, 1);
        let slot = filler.next_task().unwrap();

        let lo = sched.register_gang(TenantId(1), 0, 1);
        let hi = sched.register_gang(TenantId(2), 3, 1);
        let order = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let g = lo.next_task().unwrap();
                order.lock().unwrap().push(("lo", Instant::now()));
                drop(g);
            });
            scope.spawn(|| {
                let g = hi.next_task().unwrap();
                order.lock().unwrap().push(("hi", Instant::now()));
                drop(g);
            });
            spin_until(&sched, |l| l.waiting_workers == 2);
            drop(slot); // free the only slot with both gangs waiting
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order[0].0, "hi", "higher priority should win the slot");
        assert!(order[0].1 <= order[1].1);
    }

    #[test]
    fn fair_share_prefers_the_tenant_holding_fewer_slots() {
        let sched = Scheduler::new(2, cfg(1000));
        // Tenant 1 holds both slots; releasing one leaves tenant 1 still
        // holding a slot while tenant 2 holds none.
        let holder = sched.register_gang(TenantId(1), 3, 2);
        let held_a = holder.next_task().unwrap();
        let held_b = holder.next_task().unwrap();

        let rich = sched.register_gang(TenantId(1), 3, 1); // high priority
        let poor = sched.register_gang(TenantId(2), 0, 1); // low priority
        let winner = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let g = rich.next_task().unwrap();
                winner.lock().unwrap().push(("rich", Instant::now()));
                drop(g);
            });
            scope.spawn(|| {
                let g = poor.next_task().unwrap();
                winner.lock().unwrap().push(("poor", Instant::now()));
                drop(g);
            });
            spin_until(&sched, |l| l.waiting_workers == 2);
            // With both waiting, fair share must hand the freed slot to
            // tenant 2 despite tenant 1's higher priority.
            drop(held_a);
        });
        let order = winner.into_inner().unwrap();
        assert_eq!(
            order[0].0, "poor",
            "fair share should favor the slot-poor tenant"
        );
        drop(held_b);
        assert_eq!(sched.held_by(TenantId(1)), 0);
        assert_eq!(sched.held_by(TenantId(2)), 0);
    }

    #[test]
    fn admission_queues_rather_than_rejects_over_budget() {
        let sched = Scheduler::new(2, cfg(100));
        let first = sched.submit(TenantId(1), 0, 60).unwrap();
        assert!(first.queue_wait_secs >= 0.0);
        let admitted = Mutex::new(None);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // 60 + 60 > 100: must block, never error.
                let t = sched.submit(TenantId(2), 0, 60).unwrap();
                *admitted.lock().unwrap() = Some(t);
            });
            spin_until(&sched, |l| l.queued_jobs == 1);
            assert_eq!(sched.load().admitted_jobs, 1);
            assert_eq!(sched.load().admitted_mem_bytes, 60);
            drop(first); // release the budget; the queued job admits
        });
        assert_eq!(sched.load().admitted_jobs, 1);
        assert_eq!(sched.load().admitted_mem_bytes, 60);
        drop(admitted.into_inner().unwrap().expect("second job admitted"));
        assert_eq!(sched.load().admitted_jobs, 0);
        let waits = sched.queue_wait_stats();
        assert_eq!(waits.submissions, 2);
        assert!(waits.p95_secs >= waits.p50_secs);
    }

    #[test]
    fn lone_over_budget_job_is_admitted_on_an_idle_cluster() {
        let sched = Scheduler::new(2, cfg(100));
        let t = sched.submit(TenantId(1), 0, 10_000).unwrap();
        assert_eq!(sched.load().admitted_jobs, 1);
        drop(t);
        assert_eq!(sched.load().admitted_mem_bytes, 0);
    }

    #[test]
    fn full_queue_rejects_with_queue_full() {
        let mut c = cfg(100);
        c.queue_depth = 1;
        let sched = Scheduler::new(2, c);
        let _hog = sched.submit(TenantId(1), 0, 100).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Fills the depth-1 queue (blocks on memory).
                let _t = sched.submit(TenantId(2), 0, 100).unwrap();
            });
            spin_until(&sched, |l| l.queued_jobs == 1);
            let err = sched.submit(TenantId(3), 0, 1).unwrap_err();
            assert!(matches!(
                err,
                JobError::QueueFull {
                    queued: 1,
                    depth: 1
                }
            ));
            assert_eq!(err.annotation(), "Q.F.");
            drop(_hog);
        });
    }

    #[test]
    fn out_of_range_priority_is_rejected_at_submit() {
        let sched = Scheduler::new(1, cfg(100));
        let err = sched.submit(TenantId(1), 4, 1).unwrap_err();
        assert!(matches!(err, JobError::InvalidSubmission { .. }));
        assert!(err.to_string().contains("priority 4"));
    }

    #[test]
    fn empty_gang_yields_no_grants() {
        let sched = Scheduler::new(1, cfg(100));
        let gang = sched.register_gang(TenantId(1), 0, 0);
        assert!(gang.next_task().is_none());
    }

    #[test]
    fn gated_gang_dispatches_only_ready_indices() {
        let sched = Scheduler::new(2, cfg(1000));
        // Tasks 1 and 3 are ready at registration; 0 and 2 are gated.
        let gang = sched.register_gated_gang(TenantId(1), 0, 4, [1, 3]);
        let a = gang.next_task().unwrap();
        let b = gang.next_task().unwrap();
        assert_eq!((a.index, b.index), (1, 3), "smallest ready index first");
        drop((a, b));
        let granted = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while let Some(g) = gang.next_task() {
                    granted.lock().unwrap().push(g.index);
                }
            });
            spin_until(&sched, |l| l.waiting_workers == 1);
            gang.mark_ready(2);
            gang.mark_ready(2); // idempotent
            spin_until(&sched, |l| l.pending_tasks == 1);
            gang.mark_ready(0);
        });
        assert_eq!(granted.into_inner().unwrap(), vec![2, 0]);
        assert!(gang.next_task().is_none(), "gang is exhausted");
    }

    #[test]
    fn aborted_gang_drains_waiters_instead_of_deadlocking() {
        let sched = Scheduler::new(2, cfg(1000));
        let gang = sched.register_gated_gang(TenantId(1), 0, 3, [0]);
        let first = gang.next_task().unwrap();
        assert_eq!(first.index, 0);
        drop(first);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| scope.spawn(|| gang.next_task().is_none()))
                .collect();
            // Both workers block: tasks 1 and 2 were never marked ready.
            spin_until(&sched, |l| l.waiting_workers == 2);
            gang.abort();
            for h in handles {
                assert!(h.join().unwrap(), "waiter must drain with None");
            }
        });
    }

    #[test]
    fn gated_and_ungated_gangs_share_the_pool() {
        let sched = Scheduler::new(1, cfg(1000));
        let gated = sched.register_gated_gang(TenantId(1), 0, 1, []);
        let plain = sched.register_gang(TenantId(2), 0, 1);
        // The gated gang has nothing runnable; the plain gang must still
        // get the slot rather than the pool stalling on the gated one.
        let g = plain.next_task().unwrap();
        assert_eq!(g.index, 0);
        drop(g);
        gated.mark_ready(0);
        assert_eq!(gated.next_task().unwrap().index, 0);
    }

    #[test]
    fn queue_wait_stats_empty_is_zero() {
        let sched = Scheduler::new(1, cfg(100));
        assert_eq!(sched.queue_wait_stats(), QueueWaitStats::default());
    }
}
