//! Codec-backed shuffle transport between node stores.
//!
//! Every cross-store movement goes through [`Transport::execute`]: the
//! source block is encoded via `distme_matrix::codec`, the bytes "cross the
//! wire", and the decoded block is installed in the destination node's
//! store. Two byte counts coexist by design:
//!
//! * The [`ShuffleLedger`] is charged the move's **planned wire bytes**
//!   (the plan's Eq. 2–4 cost model shares), for every planned move — this
//!   is the quantity `tests/plan_parity.rs` proves bit-identical to the
//!   simulator, which consumes the same plan and has no physical blocks.
//! * [`TransportStats`] counts the **physically encoded payload bytes** of
//!   blocks that actually existed (sparse blocks encode smaller than the
//!   model's dense estimate; implicit-zero blocks encode nothing).

use crate::failure::TaskError;
use crate::shuffle::ShuffleLedger;
use crate::stats::Phase;
use crate::store::{ClusterStores, StoreKey};
use distme_matrix::codec;
use std::sync::atomic::{AtomicU64, Ordering};

/// One executable move: ship the block under `src` on `from_node` to the
/// `dst` key on `to_node`, charging `wire_bytes` to the ledger in `phase`.
#[derive(Debug, Clone, Copy)]
pub struct WireMove {
    /// Ledger phase the move is charged to.
    pub phase: Phase,
    /// Source node.
    pub from_node: usize,
    /// Destination node.
    pub to_node: usize,
    /// Planned (model) bytes — what the ledger is charged.
    pub wire_bytes: u64,
    /// Key to read on the source node.
    pub src: StoreKey,
    /// Key to install on the destination node.
    pub dst: StoreKey,
}

/// Physical transport counters (actual encoded bytes, not model bytes).
#[derive(Debug, Default)]
pub struct TransportStats {
    moves: AtomicU64,
    delivered: AtomicU64,
    payload_bytes: AtomicU64,
}

impl TransportStats {
    /// Moves executed (including moves of implicitly-zero blocks).
    pub fn moves(&self) -> u64 {
        self.moves.load(Ordering::Relaxed)
    }

    /// Moves that carried a physical block.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Total encoded payload bytes actually produced.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes.load(Ordering::Relaxed)
    }
}

/// Executes [`WireMove`]s against a set of node stores.
pub struct Transport<'a> {
    stores: &'a ClusterStores,
    ledger: &'a ShuffleLedger,
    stats: &'a TransportStats,
}

impl<'a> Transport<'a> {
    /// Binds a transport to stores, ledger, and physical counters.
    pub fn new(
        stores: &'a ClusterStores,
        ledger: &'a ShuffleLedger,
        stats: &'a TransportStats,
    ) -> Self {
        Transport {
            stores,
            ledger,
            stats,
        }
    }

    /// Executes one move. The ledger is charged the planned `wire_bytes`
    /// unconditionally (the plan — and the simulator — charge every routed
    /// move, materialized or not); the physical encode/decode round-trip
    /// happens only when the source block exists. Returns the encoded
    /// payload length (0 for an implicit zero).
    ///
    /// # Errors
    /// [`TaskError::Compute`] if the encoded bytes fail to decode.
    pub fn execute(&self, mv: &WireMove) -> Result<u64, TaskError> {
        self.ledger
            .record_shuffle(mv.phase, mv.from_node, mv.to_node, mv.wire_bytes);
        self.stats.moves.fetch_add(1, Ordering::Relaxed);
        let Some(block) = self.stores.node(mv.from_node).get(&mv.src) else {
            return Ok(0);
        };
        // Real serialized bytes flow on every move, even node-local ones
        // (Spark serializes through shuffle files regardless of locality).
        let bytes = codec::encode(&block);
        let payload = bytes.len() as u64;
        let decoded =
            codec::decode(bytes).map_err(|e| TaskError::Compute(format!("transport: {e}")))?;
        self.stores
            .node(mv.to_node)
            .install(mv.dst, std::sync::Arc::new(decoded));
        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
        self.stats
            .payload_bytes
            .fetch_add(payload, Ordering::Relaxed);
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::{Block, BlockId, DenseBlock};
    use std::sync::Arc;

    fn setup() -> (ClusterStores, ShuffleLedger, TransportStats) {
        (
            ClusterStores::new(3),
            ShuffleLedger::new(),
            TransportStats::default(),
        )
    }

    #[test]
    fn move_encodes_decodes_and_installs() {
        let (stores, ledger, stats) = setup();
        let block = Block::Dense(DenseBlock::from_fn(4, 4, |i, j| (i * 4 + j) as f64));
        let src = StoreKey::operand(1, BlockId::new(0, 0));
        let dst = StoreKey::operand(1, BlockId::new(0, 0));
        stores.node(0).install(src, Arc::new(block.clone()));
        let t = Transport::new(&stores, &ledger, &stats);
        let payload = t
            .execute(&WireMove {
                phase: Phase::Repartition,
                from_node: 0,
                to_node: 2,
                wire_bytes: 999,
                src,
                dst,
            })
            .unwrap();
        assert_eq!(payload, codec::encoded_len(&block));
        assert_eq!(&*stores.node(2).get(&dst).unwrap(), &block);
        // Ledger gets model bytes, stats get physical bytes.
        assert_eq!(ledger.shuffle_bytes(Phase::Repartition), 999);
        assert_eq!(ledger.cross_node_bytes(Phase::Repartition), 999);
        assert_eq!(stats.payload_bytes(), payload);
        assert_eq!(stats.delivered(), 1);
    }

    #[test]
    fn implicit_zero_is_charged_but_carries_nothing() {
        let (stores, ledger, stats) = setup();
        let t = Transport::new(&stores, &ledger, &stats);
        let key = StoreKey::operand(1, BlockId::new(3, 3));
        let payload = t
            .execute(&WireMove {
                phase: Phase::Aggregation,
                from_node: 1,
                to_node: 1,
                wire_bytes: 123,
                src: key,
                dst: key,
            })
            .unwrap();
        assert_eq!(payload, 0);
        // Same-node: shuffled but not cross-node.
        assert_eq!(ledger.shuffle_bytes(Phase::Aggregation), 123);
        assert_eq!(ledger.cross_node_bytes(Phase::Aggregation), 0);
        assert_eq!(stats.moves(), 1);
        assert_eq!(stats.delivered(), 0);
        assert!(!stores.node(1).contains(&key));
    }
}
