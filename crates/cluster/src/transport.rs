//! Codec-backed shuffle transport between node stores.
//!
//! Every cross-store movement goes through [`Transport::execute`]: the
//! source block is encoded via `distme_matrix::codec`, the bytes "cross the
//! wire", and the decoded block is installed in the destination node's
//! store. The ledger's *model* bytes are charged by the driver from the
//! plan's routing view (exactly once per planned move, see
//! `core::real_exec`), never here — so fault-driven redelivery can neither
//! double-charge nor under-charge the model and sim/real byte parity is
//! structural. The transport counts only *physical* traffic:
//!
//! * [`TransportStats::payload_bytes`] — the first transmission of every
//!   materialized block (identical between a faulted and fault-free run);
//! * [`TransportStats::retransmitted_bytes`] — every repeated transmission
//!   caused by a drop, a checksum failure, or a re-run task attempt.
//!
//! Recovery lives here too: a dropped or corrupt delivery is re-read from
//! the producer's store (lineage re-delivery — the block is still where
//! the plan produced it) up to the retry policy's attempt bound, before
//! the typed transient error ([`TaskError::LostBlock`] /
//! [`TaskError::CorruptBlock`]) is handed to the task-level retry loop.

use crate::chaos::FaultPlan;
use crate::config::RetryPolicy;
use crate::failure::TaskError;
use crate::stats::Phase;
use crate::store::{ClusterStores, StoreKey};
use bytes::BytesMut;
use distme_matrix::codec;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Upper bound on pooled scratch buffers: enough for every worker thread a
/// stage can run, without pinning unbounded memory after a wide stage.
const SCRATCH_POOL_CAP: usize = 64;

/// Largest allocation a returned scratch buffer may keep. A rebalance move
/// of a max-size block would otherwise park a block-sized buffer in the
/// pool forever; anything bigger than this is dropped on recycle and the
/// next take re-allocates to fit.
pub const SCRATCH_RETAIN_BYTES: usize = 4 << 20;

/// A pool of reusable serialization buffers shared by the transport's
/// callers (the stage workers): each move borrows one scratch [`BytesMut`],
/// encodes into it, decodes straight out of it, and returns it — so a
/// steady-state shuffle allocates nothing per block.
#[derive(Debug, Default)]
pub struct ScratchPool {
    bufs: Mutex<Vec<BytesMut>>,
    reuses: AtomicU64,
}

impl ScratchPool {
    /// Borrows a cleared buffer, recycling a pooled allocation when one is
    /// available.
    pub fn take(&self) -> BytesMut {
        let recycled = self.bufs.lock().expect("scratch pool lock").pop();
        match recycled {
            Some(mut buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            None => BytesMut::default(),
        }
    }

    /// Returns a buffer to the pool. Dropped once the pool is full, and
    /// dropped when its allocation exceeds [`SCRATCH_RETAIN_BYTES`] — a
    /// one-off giant move must not pin a giant buffer for the pool's
    /// lifetime.
    pub fn recycle(&self, buf: BytesMut) {
        if buf.capacity() > SCRATCH_RETAIN_BYTES {
            return;
        }
        let mut bufs = self.bufs.lock().expect("scratch pool lock");
        if bufs.len() < SCRATCH_POOL_CAP {
            bufs.push(buf);
        }
    }

    /// How many takes were served from the pool instead of allocating.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

/// The delivery-notification channel: every completed move publishes its
/// `(destination node, destination key)` here, so dependency-gated
/// consumers can ask "has block b landed where I run?" — the per-block
/// readiness signal that replaces the phase barrier. A move of an
/// implicitly-zero block publishes too (its *completion* is the event a
/// dependent task waits on, even though no bytes shipped), so waiting on a
/// sparse operand's key can never hang.
#[derive(Debug, Default)]
pub struct DeliveryBoard {
    landed: Mutex<BTreeSet<(usize, StoreKey)>>,
    cv: Condvar,
}

impl DeliveryBoard {
    /// Records that the move installing `key` on `node` has completed, and
    /// wakes every waiter.
    pub fn publish(&self, node: usize, key: StoreKey) {
        self.landed
            .lock()
            .expect("delivery board lock")
            .insert((node, key));
        self.cv.notify_all();
    }

    /// Whether the move installing `key` on `node` has completed.
    pub fn is_landed(&self, node: usize, key: &StoreKey) -> bool {
        self.landed
            .lock()
            .expect("delivery board lock")
            .contains(&(node, *key))
    }

    /// Whether every listed key has landed on `node` (a whole prefetch
    /// panel's readiness test).
    pub fn all_landed(&self, node: usize, keys: &[StoreKey]) -> bool {
        let landed = self.landed.lock().expect("delivery board lock");
        keys.iter().all(|k| landed.contains(&(node, *k)))
    }

    /// Blocks until `key` lands on `node` or `timeout` elapses; returns
    /// whether it landed.
    pub fn wait_for(&self, node: usize, key: &StoreKey, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut landed = self.landed.lock().expect("delivery board lock");
        loop {
            if landed.contains(&(node, *key)) {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(landed, deadline - now)
                .expect("delivery board lock");
            landed = guard;
        }
    }

    /// Number of distinct completed deliveries published so far.
    pub fn landed_count(&self) -> usize {
        self.landed.lock().expect("delivery board lock").len()
    }
}

/// One executable move: ship the block under `src` on `from_node` to the
/// `dst` key on `to_node`. `wire_bytes` is the plan's model estimate —
/// charged to the ledger by the driver, carried here so fault decisions
/// and diagnostics can see it.
#[derive(Debug, Clone, Copy)]
pub struct WireMove {
    /// Ledger phase the move belongs to.
    pub phase: Phase,
    /// Source node.
    pub from_node: usize,
    /// Destination node.
    pub to_node: usize,
    /// Planned (model) bytes.
    pub wire_bytes: u64,
    /// Key to read on the source node.
    pub src: StoreKey,
    /// Key to install on the destination node.
    pub dst: StoreKey,
}

/// Physical transport counters (actual encoded bytes, not model bytes).
#[derive(Debug, Default)]
pub struct TransportStats {
    moves: AtomicU64,
    delivered: AtomicU64,
    payload_bytes: AtomicU64,
    redelivered: AtomicU64,
    retransmitted_bytes: AtomicU64,
    reconstructed: AtomicU64,
    reconstruction_bytes: AtomicU64,
}

impl TransportStats {
    /// Move executions (including moves of implicitly-zero blocks and
    /// re-executions by retried tasks).
    pub fn moves(&self) -> u64 {
        self.moves.load(Ordering::Relaxed)
    }

    /// Moves that ended with a physical block installed.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Encoded payload bytes of first transmissions — identical between a
    /// faulted run and its fault-free twin.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes.load(Ordering::Relaxed)
    }

    /// Transmissions repeated after a drop, checksum failure, or re-run
    /// task attempt.
    pub fn redelivered(&self) -> u64 {
        self.redelivered.load(Ordering::Relaxed)
    }

    /// Encoded payload bytes of those repeated transmissions.
    pub fn retransmitted_bytes(&self) -> u64 {
        self.retransmitted_bytes.load(Ordering::Relaxed)
    }

    /// Deliveries recovered by a k-of-n parity decode from coded-group
    /// survivors instead of a lineage retransmission.
    pub fn reconstructed(&self) -> u64 {
        self.reconstructed.load(Ordering::Relaxed)
    }

    /// Frame bytes of those reconstructions — the retransmissions coded
    /// replication avoided.
    pub fn reconstruction_bytes(&self) -> u64 {
        self.reconstruction_bytes.load(Ordering::Relaxed)
    }
}

/// Executes [`WireMove`]s against a set of node stores.
pub struct Transport<'a> {
    stores: &'a ClusterStores,
    stats: &'a TransportStats,
    /// Optional per-job counter set: with concurrent jobs sharing the
    /// cluster-wide `stats`, a job that wants *its own* physical byte
    /// accounting registers a second `TransportStats` here; every counter
    /// update lands in both.
    job_stats: Option<&'a TransportStats>,
    scratch: &'a ScratchPool,
    /// Optional delivery-notification board: completed moves publish their
    /// landed `(node, key)` for dependency-gated consumers.
    board: Option<&'a DeliveryBoard>,
    faults: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
    replication: crate::coding::ReplicationPolicy,
}

impl<'a> Transport<'a> {
    /// Binds a transport to stores, physical counters, the scratch-buffer
    /// pool, and (optionally) a fault-injection plan with the redelivery
    /// bound to recover under.
    pub fn new(
        stores: &'a ClusterStores,
        stats: &'a TransportStats,
        scratch: &'a ScratchPool,
        faults: Option<Arc<FaultPlan>>,
        retry: RetryPolicy,
    ) -> Self {
        Transport {
            stores,
            stats,
            job_stats: None,
            scratch,
            board: None,
            faults,
            retry,
            replication: crate::coding::ReplicationPolicy::Off,
        }
    }

    /// Arms coded-replication recovery: a dropped or corrupted delivery
    /// whose source is a coded copy-0 block is first rebuilt by a k-of-n
    /// parity decode from its group's survivors, falling back to lineage
    /// redelivery only when no parity covers it or the erasure budget is
    /// exceeded.
    pub fn with_replication(mut self, replication: crate::coding::ReplicationPolicy) -> Self {
        self.replication = replication;
        self
    }

    /// Mirrors every counter update into `job` as well — the per-job view
    /// a concurrent job needs, since the shared stats mix all jobs.
    pub fn with_job_counters(mut self, job: &'a TransportStats) -> Self {
        self.job_stats = Some(job);
        self
    }

    /// Publishes every completed move to `board` — the delivery
    /// notifications the pipelined executor's readiness gating consumes.
    pub fn with_delivery_board(mut self, board: &'a DeliveryBoard) -> Self {
        self.board = Some(board);
        self
    }

    fn each_stats(&self, f: impl Fn(&TransportStats)) {
        f(self.stats);
        if let Some(job) = self.job_stats {
            f(job);
        }
    }

    /// Charges one transmission's physical bytes: the very first
    /// transmission lands in `payload_bytes` (identical between a faulted
    /// run and its fault-free twin); everything after it — whether a
    /// transport-level redelivery or a re-run task re-fetching — is
    /// recovery traffic, kept out of `payload_bytes` so the fault-free
    /// accounting stays bit-identical.
    fn charge_transmission(&self, payload: u64, first: bool) {
        if first {
            self.each_stats(|s| {
                s.payload_bytes.fetch_add(payload, Ordering::Relaxed);
            });
        } else {
            self.each_stats(|s| {
                s.redelivered.fetch_add(1, Ordering::Relaxed);
                s.retransmitted_bytes.fetch_add(payload, Ordering::Relaxed);
            });
        }
    }

    /// Recovery precedence step 1: rebuild the lost delivery by a parity
    /// decode over the source block's coded group, reading only survivor
    /// frames (the source is treated as erased — a success is a genuine
    /// k-of-n decode). On success the rebuilt block — bit-identical content
    /// to the original — is installed at the destination and the bytes are
    /// charged to the reconstruction counters, *not* the retransmission
    /// counters. `None` sends the caller down the lineage path.
    /// Blackout windows bound what the decode may touch: a dark
    /// *destination* cannot accept the rebuilt block at all (the caller
    /// falls through to lineage redelivery, which keeps failing until the
    /// window passes or retries exhaust), and a dark *source* is excluded
    /// from the survivor scan so the decode never reads frames the outage
    /// says are unreachable — a success is an honest k-of-n rebuild from
    /// reachable nodes only.
    fn try_reconstruct(&self, mv: &WireMove) -> Option<u64> {
        if self.replication.parity_count() == 0 {
            return None;
        }
        let mut exclude = None;
        if let Some(faults) = &self.faults {
            if faults.node_down(mv.to_node) {
                return None;
            }
            if faults.node_down(mv.from_node) {
                exclude = Some(mv.from_node);
            }
        }
        let (block, bytes) = crate::coding::reconstruct_block(self.stores, mv.src, exclude)?;
        self.each_stats(|s| {
            s.reconstructed.fetch_add(1, Ordering::Relaxed);
            s.reconstruction_bytes.fetch_add(bytes, Ordering::Relaxed);
        });
        self.install(mv, block);
        Some(bytes)
    }

    /// Installs a decoded block at the move's destination and publishes the
    /// delivery.
    fn install(&self, mv: &WireMove, decoded: distme_matrix::Block) {
        self.stores
            .node(mv.to_node)
            .install(mv.dst, std::sync::Arc::new(decoded));
        self.each_stats(|s| {
            s.delivered.fetch_add(1, Ordering::Relaxed);
        });
        if let Some(board) = self.board {
            board.publish(mv.to_node, mv.dst);
        }
    }

    /// Executes one move on behalf of task attempt `task_attempt`. The
    /// physical encode/wire/decode round-trip happens only when the source
    /// block exists (implicit zeros ship nothing). A delivery the fault
    /// plan drops or corrupts is re-read from the producer's store and
    /// re-sent, up to the retry policy's attempt bound. Returns the
    /// encoded payload length (0 for an implicit zero).
    ///
    /// Dense blocks take a zero-copy receive path: the frame is encoded
    /// with its payload 8-byte aligned, the wire buffer is frozen, and
    /// `decode_view` installs a block that aliases the frame's `f64`
    /// section in place — the buffer *becomes* the installed block's
    /// storage (so it is not pooled; its lifetime is the block's). Sparse
    /// frames keep the pooled encode → `decode_slice` → recycle loop, since
    /// their CSR arrays are materialized on decode either way.
    ///
    /// # Errors
    /// [`TaskError::LostBlock`] / [`TaskError::CorruptBlock`] when
    /// redelivery is exhausted; [`TaskError::Compute`] if cleanly-delivered
    /// bytes fail to decode (a codec bug, not a fault).
    pub fn execute(&self, mv: &WireMove, task_attempt: u32) -> Result<u64, TaskError> {
        self.each_stats(|s| {
            s.moves.fetch_add(1, Ordering::Relaxed);
        });
        let Some(block) = self.stores.node(mv.from_node).get(&mv.src) else {
            // Implicit zero: nothing ships, but the *move* is complete —
            // publish so a consumer gated on this key cannot wait forever.
            if let Some(board) = self.board {
                board.publish(mv.to_node, mv.dst);
            }
            return Ok(0);
        };
        // Real serialized bytes flow on every move, even node-local ones
        // (Spark serializes through shuffle files regardless of locality).
        match &*block {
            distme_matrix::Block::Dense(_) => self.deliver_dense(&block, mv, task_attempt),
            distme_matrix::Block::Sparse(_) => self.deliver_sparse(&block, mv, task_attempt),
        }
    }

    /// Dense delivery: fresh exact-size buffer per transmission, aligned
    /// encode, frozen into the installed block's backing storage.
    fn deliver_dense(
        &self,
        block: &distme_matrix::Block,
        mv: &WireMove,
        task_attempt: u32,
    ) -> Result<u64, TaskError> {
        let deliveries = self.retry.max_attempts.max(1);
        for delivery in 0..deliveries {
            let mut buf = BytesMut::with_capacity(codec::encoded_len(block) as usize + 7);
            let pad = codec::encode_aligned(block, &mut buf);
            let payload = (buf.len() - pad) as u64;
            self.charge_transmission(payload, task_attempt == 0 && delivery == 0);
            if let Some(faults) = &self.faults {
                if faults.drop_delivery(mv, task_attempt, delivery) {
                    if self.try_reconstruct(mv).is_some() {
                        return Ok(payload);
                    }
                    if delivery + 1 == deliveries {
                        return Err(TaskError::LostBlock {
                            node: mv.to_node,
                            id: mv.dst.id,
                        });
                    }
                    continue;
                }
            }
            // Corruption strikes the frame, never the pad — a flip landing
            // in alignment filler would be invisible to the checksum.
            let injected = self
                .faults
                .as_ref()
                .is_some_and(|f| f.corrupt_payload(mv, task_attempt, delivery, &mut buf[pad..]));
            let wire = buf.freeze();
            let frame = wire.slice(pad..wire.len());
            match codec::decode_view(&frame) {
                Ok(decoded) => {
                    self.install(mv, decoded);
                    return Ok(payload);
                }
                Err(_) if injected => {
                    // The CRC gate caught the injected flip: parity decode
                    // first, then re-read from the producer (lineage).
                    if self.try_reconstruct(mv).is_some() {
                        return Ok(payload);
                    }
                    if delivery + 1 == deliveries {
                        return Err(TaskError::CorruptBlock {
                            node: mv.to_node,
                            id: mv.dst.id,
                        });
                    }
                }
                Err(e) => {
                    return Err(TaskError::Compute(format!("transport: {e}")));
                }
            }
        }
        unreachable!("delivery loop returns on its final iteration")
    }

    /// Sparse delivery: the wire buffer is borrowed from the scratch pool
    /// and decoded out of in place, so steady-state sparse shuffles never
    /// allocate for the bytes.
    fn deliver_sparse(
        &self,
        block: &distme_matrix::Block,
        mv: &WireMove,
        task_attempt: u32,
    ) -> Result<u64, TaskError> {
        let mut buf = self.scratch.take();
        let deliveries = self.retry.max_attempts.max(1);
        for delivery in 0..deliveries {
            buf.clear();
            codec::encode_into(block, &mut buf);
            let payload = buf.len() as u64;
            self.charge_transmission(payload, task_attempt == 0 && delivery == 0);
            if let Some(faults) = &self.faults {
                if faults.drop_delivery(mv, task_attempt, delivery) {
                    if self.try_reconstruct(mv).is_some() {
                        self.scratch.recycle(buf);
                        return Ok(payload);
                    }
                    if delivery + 1 == deliveries {
                        self.scratch.recycle(buf);
                        return Err(TaskError::LostBlock {
                            node: mv.to_node,
                            id: mv.dst.id,
                        });
                    }
                    continue;
                }
            }
            let injected = self
                .faults
                .as_ref()
                .is_some_and(|f| f.corrupt_payload(mv, task_attempt, delivery, &mut buf));
            match codec::decode_slice(&buf) {
                Ok(decoded) => {
                    self.scratch.recycle(buf);
                    self.install(mv, decoded);
                    return Ok(payload);
                }
                Err(_) if injected => {
                    // The CRC gate caught the injected flip: parity decode
                    // first, then re-read from the producer (lineage).
                    if self.try_reconstruct(mv).is_some() {
                        self.scratch.recycle(buf);
                        return Ok(payload);
                    }
                    if delivery + 1 == deliveries {
                        self.scratch.recycle(buf);
                        return Err(TaskError::CorruptBlock {
                            node: mv.to_node,
                            id: mv.dst.id,
                        });
                    }
                }
                Err(e) => {
                    self.scratch.recycle(buf);
                    return Err(TaskError::Compute(format!("transport: {e}")));
                }
            }
        }
        unreachable!("delivery loop returns on its final iteration")
    }

    /// Pull-style one-sided fetch: a worker requests a straggling operand
    /// block itself instead of waiting on the push wave. If the block is
    /// already resident at the destination (the push delivered it first),
    /// the fetch is a no-op that moves — and charges — nothing; otherwise
    /// it is an ordinary [`Transport::execute`] read from the producer's
    /// store. Returns the encoded payload length (0 when the block was
    /// already resident or implicitly zero).
    ///
    /// # Errors
    /// Same as [`Transport::execute`].
    pub fn fetch(&self, mv: &WireMove, task_attempt: u32) -> Result<u64, TaskError> {
        if self.stores.node(mv.to_node).contains(&mv.dst) {
            if let Some(board) = self.board {
                board.publish(mv.to_node, mv.dst);
            }
            return Ok(0);
        }
        self.execute(mv, task_attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultSpec;
    use distme_matrix::{Block, BlockId, DenseBlock};
    use std::sync::Arc;

    fn setup() -> (ClusterStores, TransportStats, ScratchPool) {
        (
            ClusterStores::new(3),
            TransportStats::default(),
            ScratchPool::default(),
        )
    }

    fn clean<'a>(
        stores: &'a ClusterStores,
        stats: &'a TransportStats,
        scratch: &'a ScratchPool,
    ) -> Transport<'a> {
        Transport::new(stores, stats, scratch, None, RetryPolicy::no_retry())
    }

    #[test]
    fn move_encodes_decodes_and_installs() {
        let (stores, stats, scratch) = setup();
        let block = Block::Dense(DenseBlock::from_fn(4, 4, |i, j| (i * 4 + j) as f64));
        let src = StoreKey::operand(1, BlockId::new(0, 0));
        let dst = StoreKey::operand(1, BlockId::new(0, 0));
        stores.node(0).install(src, Arc::new(block.clone()));
        let t = clean(&stores, &stats, &scratch);
        let payload = t
            .execute(
                &WireMove {
                    phase: Phase::Repartition,
                    from_node: 0,
                    to_node: 2,
                    wire_bytes: 999,
                    src,
                    dst,
                },
                0,
            )
            .unwrap();
        assert_eq!(payload, codec::encoded_len(&block));
        assert_eq!(&*stores.node(2).get(&dst).unwrap(), &block);
        assert_eq!(stats.payload_bytes(), payload);
        assert_eq!(stats.delivered(), 1);
        assert_eq!(stats.redelivered(), 0);
        assert_eq!(stats.retransmitted_bytes(), 0);
    }

    #[test]
    fn repeat_sparse_moves_reuse_the_scratch_buffer() {
        // Sparse is the pooled path; dense buffers become block storage and
        // are deliberately never recycled (see the zero-copy test below).
        let (stores, stats, scratch) = setup();
        let block = Block::Sparse(
            distme_matrix::CsrBlock::from_triplets(8, 8, vec![(0, 1, 1.0), (7, 7, -3.0)]).unwrap(),
        );
        let key = StoreKey::operand(7, BlockId::new(0, 0));
        stores.node(0).install(key, Arc::new(block));
        let t = clean(&stores, &stats, &scratch);
        let mv = WireMove {
            phase: Phase::Repartition,
            from_node: 0,
            to_node: 1,
            wire_bytes: 10,
            src: key,
            dst: key,
        };
        t.execute(&mv, 0).unwrap();
        assert_eq!(scratch.reuses(), 0);
        t.execute(&mv, 0).unwrap();
        t.execute(&mv, 0).unwrap();
        assert_eq!(scratch.reuses(), 2, "sequential moves share one buffer");
    }

    #[test]
    fn dense_delivery_installs_a_zero_copy_view() {
        let (stores, stats, scratch) = setup();
        let block = Block::Dense(DenseBlock::from_fn(16, 16, |i, j| (i * 16 + j) as f64));
        let key = StoreKey::operand(11, BlockId::new(0, 0));
        stores.node(0).install(key, Arc::new(block.clone()));
        let t = clean(&stores, &stats, &scratch);
        let mv = WireMove {
            phase: Phase::Repartition,
            from_node: 0,
            to_node: 2,
            wire_bytes: 64,
            src: key,
            dst: key,
        };
        let payload = t.execute(&mv, 0).unwrap();
        assert_eq!(payload, codec::encoded_len(&block));
        let installed = stores.node(2).get(&key).unwrap();
        assert_eq!(&*installed, &block);
        match &*installed {
            Block::Dense(d) => assert!(
                d.is_shared(),
                "the installed block must alias the wire buffer, not copy it"
            ),
            Block::Sparse(_) => panic!("dense move installed sparse"),
        }
        // Dense buffers become block storage: nothing returns to the pool.
        t.execute(&mv, 0).unwrap();
        assert_eq!(scratch.reuses(), 0);
    }

    #[test]
    fn recycle_drops_oversized_buffers() {
        let pool = ScratchPool::default();
        let mut big = BytesMut::with_capacity(SCRATCH_RETAIN_BYTES + 1);
        big.extend_from_slice(&[1]);
        pool.recycle(big);
        pool.take();
        assert_eq!(pool.reuses(), 0, "an oversized buffer must not be pooled");

        let mut small = BytesMut::with_capacity(1024);
        small.extend_from_slice(&[1]);
        pool.recycle(small);
        let took = pool.take();
        assert_eq!(pool.reuses(), 1, "a bounded buffer is reused");
        assert!(took.is_empty(), "recycled buffers come back cleared");
    }

    #[test]
    fn implicit_zero_carries_nothing() {
        let (stores, stats, scratch) = setup();
        let t = clean(&stores, &stats, &scratch);
        let key = StoreKey::operand(1, BlockId::new(3, 3));
        let payload = t
            .execute(
                &WireMove {
                    phase: Phase::Aggregation,
                    from_node: 1,
                    to_node: 1,
                    wire_bytes: 123,
                    src: key,
                    dst: key,
                },
                0,
            )
            .unwrap();
        assert_eq!(payload, 0);
        assert_eq!(stats.moves(), 1);
        assert_eq!(stats.delivered(), 0);
        assert!(!stores.node(1).contains(&key));
    }

    #[test]
    fn completed_moves_publish_to_the_delivery_board() {
        let (stores, stats, scratch) = setup();
        let board = DeliveryBoard::default();
        let block = Block::Dense(DenseBlock::from_fn(2, 2, |i, j| (i + j) as f64));
        let real = StoreKey::operand(4, BlockId::new(0, 0));
        let zero = StoreKey::operand(4, BlockId::new(1, 1));
        stores.node(0).install(real, Arc::new(block));
        let t = clean(&stores, &stats, &scratch).with_delivery_board(&board);
        let mv = |src: StoreKey| WireMove {
            phase: Phase::Repartition,
            from_node: 0,
            to_node: 2,
            wire_bytes: 8,
            src,
            dst: src,
        };
        assert!(!board.is_landed(2, &real));
        t.execute(&mv(real), 0).unwrap();
        assert!(board.is_landed(2, &real));
        // The implicit-zero move ships nothing but still completes.
        t.execute(&mv(zero), 0).unwrap();
        assert!(board.is_landed(2, &zero));
        assert!(board.all_landed(2, &[real, zero]));
        assert!(!board.all_landed(1, &[real]));
        assert_eq!(board.landed_count(), 2);
        assert!(board.wait_for(2, &real, Duration::from_millis(1)));
        let ghost = StoreKey::operand(4, BlockId::new(9, 9));
        assert!(!board.wait_for(2, &ghost, Duration::from_millis(1)));
    }

    #[test]
    fn fetch_pulls_only_what_the_push_wave_missed() {
        let (stores, stats, scratch) = setup();
        let block = Block::Dense(DenseBlock::from_fn(4, 4, |i, j| (i * 4 + j) as f64));
        let key = StoreKey::operand(9, BlockId::new(1, 0));
        stores.node(0).install(key, Arc::new(block.clone()));
        let t = clean(&stores, &stats, &scratch);
        let mv = WireMove {
            phase: Phase::Repartition,
            from_node: 0,
            to_node: 1,
            wire_bytes: 64,
            src: key,
            dst: key,
        };
        // No push happened: the pull performs the delivery itself.
        let payload = t.fetch(&mv, 0).unwrap();
        assert_eq!(payload, codec::encoded_len(&block));
        assert_eq!(&*stores.node(1).get(&key).unwrap(), &block);
        // Push (or another consumer's pull) already landed it: the pull is
        // free and charges no second payload.
        let again = t.fetch(&mv, 0).unwrap();
        assert_eq!(again, 0);
        assert_eq!(stats.payload_bytes(), payload);
        assert_eq!(stats.delivered(), 1);
    }

    #[test]
    fn dropped_delivery_is_resent_from_the_producer() {
        let (stores, stats, scratch) = setup();
        let block = Block::Dense(DenseBlock::from_fn(4, 4, |i, j| (i * j) as f64));
        let key = StoreKey::operand(5, BlockId::new(0, 1));
        stores.node(0).install(key, Arc::new(block.clone()));
        let mv = WireMove {
            phase: Phase::Repartition,
            from_node: 0,
            to_node: 1,
            wire_bytes: 64,
            src: key,
            dst: key,
        };
        // Find a seed under which the first delivery of this move is
        // dropped (deterministic: the probe plan and the real plan make
        // identical decisions for identical seeds).
        let spec_for = |seed| FaultSpec {
            drop_rate: 0.6,
            ..FaultSpec::quiet(seed)
        };
        let seed = (0..64)
            .find(|&s| {
                let probe = FaultPlan::new(spec_for(s));
                probe.advance_stage();
                probe.drop_delivery(&mv, 0, 0) && (1..8).any(|d| !probe.drop_delivery(&mv, 0, d))
            })
            .expect("a 60% drop rate hits within 64 seeds");
        let plan = Arc::new(FaultPlan::new(spec_for(seed)));
        plan.advance_stage();
        let t = Transport::new(
            &stores,
            &stats,
            &scratch,
            Some(plan),
            RetryPolicy {
                max_attempts: 8,
                backoff_secs: 0.0,
            },
        );
        let payload = t.execute(&mv, 0).unwrap();
        assert_eq!(payload, codec::encoded_len(&block));
        assert_eq!(&*stores.node(1).get(&key).unwrap(), &block);
        assert!(stats.redelivered() > 0, "the drop forced a redelivery");
        assert_eq!(stats.payload_bytes(), payload, "first transmission only");
        assert!(stats.retransmitted_bytes() >= payload);
    }

    #[test]
    fn certain_corruption_exhausts_into_corrupt_block() {
        let (stores, stats, scratch) = setup();
        let block = Block::Dense(DenseBlock::from_fn(3, 3, |i, j| (i + 2 * j) as f64));
        let key = StoreKey::operand(6, BlockId::new(2, 0));
        stores.node(0).install(key, Arc::new(block));
        let plan = Arc::new(FaultPlan::new(FaultSpec {
            corrupt_rate: 1.0,
            ..FaultSpec::quiet(1)
        }));
        plan.advance_stage();
        let t = Transport::new(
            &stores,
            &stats,
            &scratch,
            Some(plan.clone()),
            RetryPolicy {
                max_attempts: 3,
                backoff_secs: 0.0,
            },
        );
        let mv = WireMove {
            phase: Phase::Repartition,
            from_node: 0,
            to_node: 2,
            wire_bytes: 64,
            src: key,
            dst: key,
        };
        let err = t.execute(&mv, 0).unwrap_err();
        assert!(matches!(err, TaskError::CorruptBlock { node: 2, .. }));
        assert!(err.is_transient());
        assert_eq!(plan.corrupted(), 3, "every delivery was corrupted");
        assert!(!stores.node(2).contains(&key), "no garbage was installed");
    }

    #[test]
    fn certain_drop_exhausts_into_lost_block() {
        let (stores, stats, scratch) = setup();
        let block = Block::Dense(DenseBlock::from_fn(2, 2, |i, j| (i + j) as f64));
        let key = StoreKey::operand(8, BlockId::new(0, 0));
        stores.node(1).install(key, Arc::new(block));
        let plan = Arc::new(FaultPlan::new(FaultSpec {
            drop_rate: 1.0,
            ..FaultSpec::quiet(2)
        }));
        plan.advance_stage();
        let t = Transport::new(
            &stores,
            &stats,
            &scratch,
            Some(plan),
            RetryPolicy {
                max_attempts: 2,
                backoff_secs: 0.0,
            },
        );
        let mv = WireMove {
            phase: Phase::Aggregation,
            from_node: 1,
            to_node: 0,
            wire_bytes: 32,
            src: key,
            dst: key,
        };
        let err = t.execute(&mv, 0).unwrap_err();
        assert!(matches!(err, TaskError::LostBlock { node: 0, .. }));
        assert!(!stores.node(0).contains(&key));
    }
}
