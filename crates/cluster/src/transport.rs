//! Codec-backed shuffle transport between node stores.
//!
//! Every cross-store movement goes through [`Transport::execute`]: the
//! source block is encoded via `distme_matrix::codec`, the bytes "cross the
//! wire", and the decoded block is installed in the destination node's
//! store. Two byte counts coexist by design:
//!
//! * The [`ShuffleLedger`] is charged the move's **planned wire bytes**
//!   (the plan's Eq. 2–4 cost model shares), for every planned move — this
//!   is the quantity `tests/plan_parity.rs` proves bit-identical to the
//!   simulator, which consumes the same plan and has no physical blocks.
//! * [`TransportStats`] counts the **physically encoded payload bytes** of
//!   blocks that actually existed (sparse blocks encode smaller than the
//!   model's dense estimate; implicit-zero blocks encode nothing).

use crate::failure::TaskError;
use crate::shuffle::ShuffleLedger;
use crate::stats::Phase;
use crate::store::{ClusterStores, StoreKey};
use bytes::BytesMut;
use distme_matrix::codec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Upper bound on pooled scratch buffers: enough for every worker thread a
/// stage can run, without pinning unbounded memory after a wide stage.
const SCRATCH_POOL_CAP: usize = 64;

/// A pool of reusable serialization buffers shared by the transport's
/// callers (the stage workers): each move borrows one scratch [`BytesMut`],
/// encodes into it, decodes straight out of it, and returns it — so a
/// steady-state shuffle allocates nothing per block.
#[derive(Debug, Default)]
pub struct ScratchPool {
    bufs: Mutex<Vec<BytesMut>>,
    reuses: AtomicU64,
}

impl ScratchPool {
    /// Borrows a cleared buffer, recycling a pooled allocation when one is
    /// available.
    pub fn take(&self) -> BytesMut {
        let recycled = self.bufs.lock().expect("scratch pool lock").pop();
        match recycled {
            Some(mut buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            None => BytesMut::default(),
        }
    }

    /// Returns a buffer to the pool (dropped once the pool is full).
    pub fn recycle(&self, buf: BytesMut) {
        let mut bufs = self.bufs.lock().expect("scratch pool lock");
        if bufs.len() < SCRATCH_POOL_CAP {
            bufs.push(buf);
        }
    }

    /// How many takes were served from the pool instead of allocating.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

/// One executable move: ship the block under `src` on `from_node` to the
/// `dst` key on `to_node`, charging `wire_bytes` to the ledger in `phase`.
#[derive(Debug, Clone, Copy)]
pub struct WireMove {
    /// Ledger phase the move is charged to.
    pub phase: Phase,
    /// Source node.
    pub from_node: usize,
    /// Destination node.
    pub to_node: usize,
    /// Planned (model) bytes — what the ledger is charged.
    pub wire_bytes: u64,
    /// Key to read on the source node.
    pub src: StoreKey,
    /// Key to install on the destination node.
    pub dst: StoreKey,
}

/// Physical transport counters (actual encoded bytes, not model bytes).
#[derive(Debug, Default)]
pub struct TransportStats {
    moves: AtomicU64,
    delivered: AtomicU64,
    payload_bytes: AtomicU64,
}

impl TransportStats {
    /// Moves executed (including moves of implicitly-zero blocks).
    pub fn moves(&self) -> u64 {
        self.moves.load(Ordering::Relaxed)
    }

    /// Moves that carried a physical block.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Total encoded payload bytes actually produced.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes.load(Ordering::Relaxed)
    }
}

/// Executes [`WireMove`]s against a set of node stores.
pub struct Transport<'a> {
    stores: &'a ClusterStores,
    ledger: &'a ShuffleLedger,
    stats: &'a TransportStats,
    scratch: &'a ScratchPool,
}

impl<'a> Transport<'a> {
    /// Binds a transport to stores, ledger, physical counters, and the
    /// scratch-buffer pool.
    pub fn new(
        stores: &'a ClusterStores,
        ledger: &'a ShuffleLedger,
        stats: &'a TransportStats,
        scratch: &'a ScratchPool,
    ) -> Self {
        Transport {
            stores,
            ledger,
            stats,
            scratch,
        }
    }

    /// Executes one move. The ledger is charged the planned `wire_bytes`
    /// unconditionally (the plan — and the simulator — charge every routed
    /// move, materialized or not); the physical encode/decode round-trip
    /// happens only when the source block exists. Returns the encoded
    /// payload length (0 for an implicit zero).
    ///
    /// # Errors
    /// [`TaskError::Compute`] if the encoded bytes fail to decode.
    pub fn execute(&self, mv: &WireMove) -> Result<u64, TaskError> {
        self.ledger
            .record_shuffle(mv.phase, mv.from_node, mv.to_node, mv.wire_bytes);
        self.stats.moves.fetch_add(1, Ordering::Relaxed);
        let Some(block) = self.stores.node(mv.from_node).get(&mv.src) else {
            return Ok(0);
        };
        // Real serialized bytes flow on every move, even node-local ones
        // (Spark serializes through shuffle files regardless of locality).
        // The wire buffer is borrowed from the scratch pool and decoded
        // in place, so steady-state shuffles never allocate for the bytes.
        let mut buf = self.scratch.take();
        codec::encode_into(&block, &mut buf);
        let payload = buf.len() as u64;
        let decoded =
            codec::decode_slice(&buf).map_err(|e| TaskError::Compute(format!("transport: {e}")))?;
        self.scratch.recycle(buf);
        self.stores
            .node(mv.to_node)
            .install(mv.dst, std::sync::Arc::new(decoded));
        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
        self.stats
            .payload_bytes
            .fetch_add(payload, Ordering::Relaxed);
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::{Block, BlockId, DenseBlock};
    use std::sync::Arc;

    fn setup() -> (ClusterStores, ShuffleLedger, TransportStats, ScratchPool) {
        (
            ClusterStores::new(3),
            ShuffleLedger::new(),
            TransportStats::default(),
            ScratchPool::default(),
        )
    }

    #[test]
    fn move_encodes_decodes_and_installs() {
        let (stores, ledger, stats, scratch) = setup();
        let block = Block::Dense(DenseBlock::from_fn(4, 4, |i, j| (i * 4 + j) as f64));
        let src = StoreKey::operand(1, BlockId::new(0, 0));
        let dst = StoreKey::operand(1, BlockId::new(0, 0));
        stores.node(0).install(src, Arc::new(block.clone()));
        let t = Transport::new(&stores, &ledger, &stats, &scratch);
        let payload = t
            .execute(&WireMove {
                phase: Phase::Repartition,
                from_node: 0,
                to_node: 2,
                wire_bytes: 999,
                src,
                dst,
            })
            .unwrap();
        assert_eq!(payload, codec::encoded_len(&block));
        assert_eq!(&*stores.node(2).get(&dst).unwrap(), &block);
        // Ledger gets model bytes, stats get physical bytes.
        assert_eq!(ledger.shuffle_bytes(Phase::Repartition), 999);
        assert_eq!(ledger.cross_node_bytes(Phase::Repartition), 999);
        assert_eq!(stats.payload_bytes(), payload);
        assert_eq!(stats.delivered(), 1);
    }

    #[test]
    fn repeat_moves_reuse_the_scratch_buffer() {
        let (stores, ledger, stats, scratch) = setup();
        let block = Block::Dense(DenseBlock::from_fn(8, 8, |i, j| (i + j) as f64));
        let key = StoreKey::operand(7, BlockId::new(0, 0));
        stores.node(0).install(key, Arc::new(block));
        let t = Transport::new(&stores, &ledger, &stats, &scratch);
        let mv = WireMove {
            phase: Phase::Repartition,
            from_node: 0,
            to_node: 1,
            wire_bytes: 10,
            src: key,
            dst: key,
        };
        t.execute(&mv).unwrap();
        assert_eq!(scratch.reuses(), 0);
        t.execute(&mv).unwrap();
        t.execute(&mv).unwrap();
        assert_eq!(scratch.reuses(), 2, "sequential moves share one buffer");
    }

    #[test]
    fn implicit_zero_is_charged_but_carries_nothing() {
        let (stores, ledger, stats, scratch) = setup();
        let t = Transport::new(&stores, &ledger, &stats, &scratch);
        let key = StoreKey::operand(1, BlockId::new(3, 3));
        let payload = t
            .execute(&WireMove {
                phase: Phase::Aggregation,
                from_node: 1,
                to_node: 1,
                wire_bytes: 123,
                src: key,
                dst: key,
            })
            .unwrap();
        assert_eq!(payload, 0);
        // Same-node: shuffled but not cross-node.
        assert_eq!(ledger.shuffle_bytes(Phase::Aggregation), 123);
        assert_eq!(ledger.cross_node_bytes(Phase::Aggregation), 0);
        assert_eq!(stats.moves(), 1);
        assert_eq!(stats.delivered(), 0);
        assert!(!stores.node(1).contains(&key));
    }
}
