//! Failure modes of distributed jobs.
//!
//! The paper's figures annotate three failure classes: **O.O.M.** (task
//! memory exceeds θt — how BMM and CPMM die on large matrices), **T.O.**
//! (elapsed time beyond 4 000 s — how RMM dies on Fig. 6(c)), and
//! **E.D.C.** (intermediate data exceeding the 36 TB cluster disk — how
//! SystemML/MatFast die on Figs. 7(b,c)). These are first-class errors here
//! so the benchmark harness can print the same annotations.

use std::fmt;

/// An error local to a single task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskError {
    /// The task's working set exceeded the per-task budget θt (or θg on
    /// the GPU).
    OutOfMemory {
        /// Bytes the task needed.
        needed: u64,
        /// The budget it had.
        budget: u64,
    },
    /// A matrix kernel failed (dimension mismatch, corrupt block, ...).
    Compute(String),
    /// The task tried to read a block that is not resident in its node's
    /// store — a locality violation (the plan never routed the block
    /// there), never a silent fallthrough to shared memory.
    MissingBlock {
        /// The node whose store was consulted.
        node: usize,
        /// The block the task asked for.
        id: distme_matrix::BlockId,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::OutOfMemory { needed, budget } => {
                write!(f, "O.O.M.: task needs {needed} B, budget is {budget} B")
            }
            TaskError::Compute(msg) => write!(f, "compute error: {msg}"),
            TaskError::MissingBlock { node, id } => {
                write!(
                    f,
                    "block ({}, {}) not resident on node {node}",
                    id.row, id.col
                )
            }
        }
    }
}

impl std::error::Error for TaskError {}

impl From<distme_matrix::MatrixError> for TaskError {
    fn from(e: distme_matrix::MatrixError) -> Self {
        TaskError::Compute(e.to_string())
    }
}

/// A job-level failure, matching the paper's figure annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// O.O.M. — some task exceeded its memory budget.
    OutOfMemory {
        /// Index of the first failing task.
        task: usize,
        /// Bytes it needed.
        needed: u64,
        /// Its budget.
        budget: u64,
    },
    /// T.O. — the job exceeded the configured time-out.
    Timeout {
        /// Virtual seconds elapsed when the job was cut off.
        elapsed_secs: f64,
        /// The limit.
        limit_secs: f64,
    },
    /// E.D.C. — intermediate data exceeded the cluster disk capacity.
    ExceededDiskCapacity {
        /// Bytes of intermediate data the job required.
        needed: u64,
        /// The cluster's capacity.
        capacity: u64,
    },
    /// The stage needs more tasks than the scheduler supports (§6.2:
    /// "T = I·J·K for RMM incurs some errors due to too many tasks").
    TooManyTasks {
        /// Tasks requested.
        requested: usize,
        /// Scheduler limit.
        limit: usize,
    },
    /// A task failed with a non-memory error.
    TaskFailed {
        /// Index of the failing task.
        task: usize,
        /// Its error message.
        message: String,
    },
}

impl JobError {
    /// The short annotation the paper prints on failed bars.
    pub fn annotation(&self) -> &'static str {
        match self {
            JobError::OutOfMemory { .. } => "O.O.M.",
            JobError::Timeout { .. } => "T.O.",
            JobError::ExceededDiskCapacity { .. } => "E.D.C.",
            JobError::TooManyTasks { .. } => "T.M.T.",
            JobError::TaskFailed { .. } => "FAIL",
        }
    }

    /// Promotes a task error at `task` to a job error.
    pub fn from_task(task: usize, e: TaskError) -> Self {
        match e {
            TaskError::OutOfMemory { needed, budget } => JobError::OutOfMemory {
                task,
                needed,
                budget,
            },
            TaskError::Compute(message) => JobError::TaskFailed { task, message },
            e @ TaskError::MissingBlock { .. } => JobError::TaskFailed {
                task,
                message: e.to_string(),
            },
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::OutOfMemory {
                task,
                needed,
                budget,
            } => write!(
                f,
                "O.O.M.: task {task} needs {needed} B, budget is {budget} B"
            ),
            JobError::Timeout {
                elapsed_secs,
                limit_secs,
            } => write!(f, "T.O.: {elapsed_secs:.0}s exceeds limit {limit_secs:.0}s"),
            JobError::ExceededDiskCapacity { needed, capacity } => write!(
                f,
                "E.D.C.: {needed} B of intermediate data exceeds {capacity} B of disk"
            ),
            JobError::TooManyTasks { requested, limit } => {
                write!(f, "too many tasks: {requested} > scheduler limit {limit}")
            }
            JobError::TaskFailed { task, message } => {
                write!(f, "task {task} failed: {message}")
            }
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_match_paper() {
        assert_eq!(
            JobError::OutOfMemory {
                task: 0,
                needed: 1,
                budget: 1
            }
            .annotation(),
            "O.O.M."
        );
        assert_eq!(
            JobError::Timeout {
                elapsed_secs: 5000.0,
                limit_secs: 4000.0
            }
            .annotation(),
            "T.O."
        );
        assert_eq!(
            JobError::ExceededDiskCapacity {
                needed: 1,
                capacity: 1
            }
            .annotation(),
            "E.D.C."
        );
    }

    #[test]
    fn task_error_promotes_to_job_error() {
        let e = JobError::from_task(
            7,
            TaskError::OutOfMemory {
                needed: 10,
                budget: 5,
            },
        );
        assert_eq!(
            e,
            JobError::OutOfMemory {
                task: 7,
                needed: 10,
                budget: 5
            }
        );
        let e = JobError::from_task(3, TaskError::Compute("bad".into()));
        assert!(matches!(e, JobError::TaskFailed { task: 3, .. }));
    }

    #[test]
    fn displays_are_informative() {
        let e = JobError::Timeout {
            elapsed_secs: 4500.0,
            limit_secs: 4000.0,
        };
        assert!(e.to_string().contains("4500"));
        let t = TaskError::OutOfMemory {
            needed: 9,
            budget: 4,
        };
        assert!(t.to_string().starts_with("O.O.M."));
    }

    #[test]
    fn missing_block_promotes_to_task_failed() {
        let e = TaskError::MissingBlock {
            node: 2,
            id: distme_matrix::BlockId::new(4, 1),
        };
        assert!(e.to_string().contains("not resident"));
        let j = JobError::from_task(5, e);
        match j {
            JobError::TaskFailed { task, message } => {
                assert_eq!(task, 5);
                assert!(message.contains("node 2"));
            }
            other => panic!("unexpected promotion: {other:?}"),
        }
    }

    #[test]
    fn matrix_error_converts() {
        let me = distme_matrix::MatrixError::Codec("x".into());
        let te: TaskError = me.into();
        assert!(matches!(te, TaskError::Compute(_)));
    }
}
