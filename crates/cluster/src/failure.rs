//! Failure modes of distributed jobs.
//!
//! The paper's figures annotate three failure classes: **O.O.M.** (task
//! memory exceeds θt — how BMM and CPMM die on large matrices), **T.O.**
//! (elapsed time beyond 4 000 s — how RMM dies on Fig. 6(c)), and
//! **E.D.C.** (intermediate data exceeding the 36 TB cluster disk — how
//! SystemML/MatFast die on Figs. 7(b,c)). These are first-class errors here
//! so the benchmark harness can print the same annotations.

use std::fmt;

/// An error local to a single task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskError {
    /// The task's working set exceeded the per-task budget θt (or θg on
    /// the GPU).
    OutOfMemory {
        /// Bytes the task needed.
        needed: u64,
        /// The budget it had.
        budget: u64,
    },
    /// A matrix kernel failed (dimension mismatch, corrupt block, ...).
    Compute(String),
    /// The task tried to read a block that is not resident in its node's
    /// store — a locality violation (the plan never routed the block
    /// there), never a silent fallthrough to shared memory.
    MissingBlock {
        /// The node whose store was consulted.
        node: usize,
        /// The block the task asked for.
        id: distme_matrix::BlockId,
    },
    /// A shuffled block arrived with a bad frame checksum and redelivery
    /// from the producer's store was exhausted — transient, retryable.
    CorruptBlock {
        /// Destination node that rejected the frame.
        node: usize,
        /// The block whose frame was corrupt.
        id: distme_matrix::BlockId,
    },
    /// A shuffled block was dropped in flight and redelivery from the
    /// producer's store was exhausted — transient, retryable.
    LostBlock {
        /// Destination node that never received the block.
        node: usize,
        /// The block that was lost.
        id: distme_matrix::BlockId,
    },
    /// The task's executor process crashed mid-attempt — transient,
    /// retryable (the chaos layer's injected crash).
    Crashed {
        /// Node the attempt ran on.
        node: usize,
    },
    /// The task's node is blacked out for the current stage window —
    /// transient at the job level (the node may come back).
    NodeLost {
        /// The unreachable node.
        node: usize,
    },
}

impl TaskError {
    /// Whether a retry of the same task can plausibly succeed. Determinism
    /// violations (O.O.M. — the same inputs need the same memory),
    /// compute errors, and locality violations re-fail identically, so
    /// only fault-injection classes are worth re-attempting.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TaskError::CorruptBlock { .. }
                | TaskError::LostBlock { .. }
                | TaskError::Crashed { .. }
                | TaskError::NodeLost { .. }
        )
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::OutOfMemory { needed, budget } => {
                write!(f, "O.O.M.: task needs {needed} B, budget is {budget} B")
            }
            TaskError::Compute(msg) => write!(f, "compute error: {msg}"),
            TaskError::MissingBlock { node, id } => {
                write!(
                    f,
                    "block ({}, {}) not resident on node {node}",
                    id.row, id.col
                )
            }
            TaskError::CorruptBlock { node, id } => {
                write!(
                    f,
                    "block ({}, {}) arrived corrupt on node {node} (checksum mismatch)",
                    id.row, id.col
                )
            }
            TaskError::LostBlock { node, id } => {
                write!(
                    f,
                    "block ({}, {}) lost in transit to node {node}",
                    id.row, id.col
                )
            }
            TaskError::Crashed { node } => {
                write!(f, "executor crashed on node {node}")
            }
            TaskError::NodeLost { node } => {
                write!(f, "node {node} is unreachable")
            }
        }
    }
}

impl std::error::Error for TaskError {}

impl From<distme_matrix::MatrixError> for TaskError {
    fn from(e: distme_matrix::MatrixError) -> Self {
        TaskError::Compute(e.to_string())
    }
}

/// A job-level failure, matching the paper's figure annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// O.O.M. — some task exceeded its memory budget.
    OutOfMemory {
        /// Index of the first failing task.
        task: usize,
        /// Bytes it needed.
        needed: u64,
        /// Its budget.
        budget: u64,
    },
    /// T.O. — the job exceeded the configured time-out.
    Timeout {
        /// Virtual seconds elapsed when the job was cut off.
        elapsed_secs: f64,
        /// The limit.
        limit_secs: f64,
    },
    /// E.D.C. — intermediate data exceeded the cluster disk capacity.
    ExceededDiskCapacity {
        /// Bytes of intermediate data the job required.
        needed: u64,
        /// The cluster's capacity.
        capacity: u64,
    },
    /// The stage needs more tasks than the scheduler supports (§6.2:
    /// "T = I·J·K for RMM incurs some errors due to too many tasks").
    TooManyTasks {
        /// Tasks requested.
        requested: usize,
        /// Scheduler limit.
        limit: usize,
    },
    /// A task failed with a non-memory error.
    TaskFailed {
        /// Index of the failing task.
        task: usize,
        /// Its error message.
        message: String,
    },
    /// A permanently decommissioned node held the only copy of resident
    /// blocks — no surviving replica (lineage) to reconstruct them from.
    /// The affected matrices are evicted; re-running their producing jobs
    /// re-materializes them.
    NodeDecommissioned {
        /// The decommissioned node.
        node: usize,
        /// Resident blocks whose sole copy lived there.
        lost_blocks: usize,
    },
    /// The job service's submission queue was full — the job was rejected
    /// at `submit` time, before admission. (Jobs queued for *memory* are
    /// never rejected; only queue depth overflow is.)
    QueueFull {
        /// Jobs already waiting for admission.
        queued: usize,
        /// The configured `SchedulerConfig::queue_depth`.
        depth: usize,
    },
    /// The submission itself was malformed (e.g. a priority outside the
    /// configured `priority_levels` range) and was rejected before queueing.
    InvalidSubmission {
        /// Human-readable reason.
        reason: String,
    },
}

impl JobError {
    /// The short annotation the paper prints on failed bars.
    pub fn annotation(&self) -> &'static str {
        match self {
            JobError::OutOfMemory { .. } => "O.O.M.",
            JobError::Timeout { .. } => "T.O.",
            JobError::ExceededDiskCapacity { .. } => "E.D.C.",
            JobError::TooManyTasks { .. } => "T.M.T.",
            JobError::TaskFailed { .. } => "FAIL",
            JobError::NodeDecommissioned { .. } => "N.D.",
            JobError::QueueFull { .. } => "Q.F.",
            JobError::InvalidSubmission { .. } => "INV",
        }
    }

    /// Promotes a task error at `task` to a job error.
    pub fn from_task(task: usize, e: TaskError) -> Self {
        Self::from_task_attempts(task, e, 1)
    }

    /// Promotes a task error to a job error, recording how many attempts
    /// the retry policy spent before giving up. O.O.M. keeps its dedicated
    /// annotation; everything else becomes `TaskFailed` with the attempt
    /// count in the message when recovery was actually tried.
    pub fn from_task_attempts(task: usize, e: TaskError, attempts: u32) -> Self {
        match e {
            TaskError::OutOfMemory { needed, budget } => JobError::OutOfMemory {
                task,
                needed,
                budget,
            },
            TaskError::Compute(message) if attempts <= 1 => JobError::TaskFailed { task, message },
            e => JobError::TaskFailed {
                task,
                message: if attempts > 1 {
                    format!("failed after {attempts} attempts: {e}")
                } else {
                    e.to_string()
                },
            },
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::OutOfMemory {
                task,
                needed,
                budget,
            } => write!(
                f,
                "O.O.M.: task {task} needs {needed} B, budget is {budget} B"
            ),
            JobError::Timeout {
                elapsed_secs,
                limit_secs,
            } => write!(f, "T.O.: {elapsed_secs:.0}s exceeds limit {limit_secs:.0}s"),
            JobError::ExceededDiskCapacity { needed, capacity } => write!(
                f,
                "E.D.C.: {needed} B of intermediate data exceeds {capacity} B of disk"
            ),
            JobError::TooManyTasks { requested, limit } => {
                write!(f, "too many tasks: {requested} > scheduler limit {limit}")
            }
            JobError::TaskFailed { task, message } => {
                write!(f, "task {task} failed: {message}")
            }
            JobError::NodeDecommissioned { node, lost_blocks } => write!(
                f,
                "node {node} decommissioned with {lost_blocks} unreplicated block(s) and no lineage to rebuild them"
            ),
            JobError::QueueFull { queued, depth } => write!(
                f,
                "Q.F.: submission queue full ({queued} job(s) waiting, depth {depth})"
            ),
            JobError::InvalidSubmission { reason } => {
                write!(f, "invalid submission: {reason}")
            }
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_match_paper() {
        assert_eq!(
            JobError::OutOfMemory {
                task: 0,
                needed: 1,
                budget: 1
            }
            .annotation(),
            "O.O.M."
        );
        assert_eq!(
            JobError::Timeout {
                elapsed_secs: 5000.0,
                limit_secs: 4000.0
            }
            .annotation(),
            "T.O."
        );
        assert_eq!(
            JobError::ExceededDiskCapacity {
                needed: 1,
                capacity: 1
            }
            .annotation(),
            "E.D.C."
        );
    }

    #[test]
    fn node_decommissioned_is_typed_and_informative() {
        let e = JobError::NodeDecommissioned {
            node: 3,
            lost_blocks: 2,
        };
        assert_eq!(e.annotation(), "N.D.");
        let msg = e.to_string();
        assert!(msg.contains("node 3"), "{msg}");
        assert!(msg.contains("2 unreplicated"), "{msg}");
        assert!(msg.contains("lineage"), "{msg}");
    }

    #[test]
    fn task_error_promotes_to_job_error() {
        let e = JobError::from_task(
            7,
            TaskError::OutOfMemory {
                needed: 10,
                budget: 5,
            },
        );
        assert_eq!(
            e,
            JobError::OutOfMemory {
                task: 7,
                needed: 10,
                budget: 5
            }
        );
        let e = JobError::from_task(3, TaskError::Compute("bad".into()));
        assert!(matches!(e, JobError::TaskFailed { task: 3, .. }));
    }

    #[test]
    fn displays_are_informative() {
        let e = JobError::Timeout {
            elapsed_secs: 4500.0,
            limit_secs: 4000.0,
        };
        assert!(e.to_string().contains("4500"));
        let t = TaskError::OutOfMemory {
            needed: 9,
            budget: 4,
        };
        assert!(t.to_string().starts_with("O.O.M."));
    }

    #[test]
    fn missing_block_promotes_to_task_failed() {
        let e = TaskError::MissingBlock {
            node: 2,
            id: distme_matrix::BlockId::new(4, 1),
        };
        assert!(e.to_string().contains("not resident"));
        let j = JobError::from_task(5, e);
        match j {
            JobError::TaskFailed { task, message } => {
                assert_eq!(task, 5);
                assert!(message.contains("node 2"));
            }
            other => panic!("unexpected promotion: {other:?}"),
        }
    }

    #[test]
    fn matrix_error_converts() {
        let me = distme_matrix::MatrixError::Codec("x".into());
        let te: TaskError = me.into();
        assert!(matches!(te, TaskError::Compute(_)));
    }

    #[test]
    fn transience_classification() {
        let id = distme_matrix::BlockId::new(0, 0);
        assert!(TaskError::CorruptBlock { node: 0, id }.is_transient());
        assert!(TaskError::LostBlock { node: 0, id }.is_transient());
        assert!(TaskError::Crashed { node: 1 }.is_transient());
        assert!(TaskError::NodeLost { node: 1 }.is_transient());
        assert!(!TaskError::Compute("x".into()).is_transient());
        assert!(!TaskError::MissingBlock { node: 0, id }.is_transient());
        assert!(!TaskError::OutOfMemory {
            needed: 2,
            budget: 1
        }
        .is_transient());
    }

    #[test]
    fn exhausted_retries_carry_attempt_count() {
        let e = JobError::from_task_attempts(3, TaskError::Crashed { node: 2 }, 4);
        match e {
            JobError::TaskFailed { task, message } => {
                assert_eq!(task, 3);
                assert!(message.contains("4 attempts"), "{message}");
                assert!(message.contains("crashed"), "{message}");
            }
            other => panic!("unexpected promotion: {other:?}"),
        }
        // O.O.M. keeps its annotation even after retries (it never retries
        // in practice, but the promotion must not lose the class).
        let e = JobError::from_task_attempts(
            0,
            TaskError::OutOfMemory {
                needed: 2,
                budget: 1,
            },
            2,
        );
        assert_eq!(e.annotation(), "O.O.M.");
        // Single-attempt promotion is unchanged from the pre-retry format.
        let e = JobError::from_task_attempts(1, TaskError::Compute("bad".into()), 1);
        assert_eq!(e, JobError::from_task(1, TaskError::Compute("bad".into())));
    }
}
