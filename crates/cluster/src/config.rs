//! Cluster topology and calibration.
//!
//! All absolute-time results of the simulated experiments derive from these
//! constants. They are calibrated to the paper's testbed (§6.1):
//!
//! > "one master node and nine slave nodes ... connected via 10 Gbps
//! > Ethernet. Each node is equipped with a six-core 3.5 GHz CPU, 64 GB main
//! > memory, 500 GB SSD for Spark, 4 TB HDD for HDFS, and a single NVIDIA
//! > GTX 1080 Ti GPU having 11 GB device memory. ... We set the number of
//! > tasks per node to 10 (Tc = 10), and so, set θt = 6 GB and θg = 1 GB."
//!
//! Changing any constant rescales absolute seconds but preserves orderings
//! and crossovers (tested by `tests/shape_invariance.rs`).

use crate::coding::ReplicationPolicy;
use distme_gpu::GpuConfig;

/// Per-task retry policy for the real executor's fault recovery.
///
/// A failed task attempt (transient crash, lost or corrupt shuffle block)
/// is re-executed up to `max_attempts` times total; each re-attempt first
/// waits an exponential backoff that is charged to the job's *modeled*
/// time, never slept on the wall clock — faulted test runs stay fast and
/// deterministic. Spark's equivalent knob is `spark.task.maxFailures`
/// (default 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts a task gets before the job fails (≥ 1; 1 disables
    /// retry).
    pub max_attempts: u32,
    /// Modeled backoff before attempt `n + 1`, in seconds, scaled by
    /// `2^(n-1)`: attempt 2 waits `backoff_secs`, attempt 3 twice that, ...
    pub backoff_secs: f64,
}

impl RetryPolicy {
    /// One attempt, no recovery — the pre-fault-tolerance behavior.
    pub const fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_secs: 0.0,
        }
    }

    /// Spark-like default: 4 total attempts, short modeled backoff.
    pub const fn spark_like() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_secs: 0.05,
        }
    }

    /// Total modeled backoff charged before reaching attempt index
    /// `attempt` (0-based): `backoff_secs · (2^attempt − 1)`.
    pub fn backoff_before_attempt(&self, attempt: u32) -> f64 {
        self.backoff_secs * ((1u64 << attempt.min(62)) - 1) as f64
    }

    /// Panics on nonsensical values.
    pub fn assert_valid(&self) {
        assert!(self.max_attempts >= 1, "retry needs at least one attempt");
        assert!(
            self.backoff_secs >= 0.0 && self.backoff_secs.is_finite(),
            "backoff must be finite and non-negative"
        );
    }
}

/// Tuning of the shared job scheduler (`cluster::scheduler`): how many
/// jobs may sit in the submission queue, how much memory admitted jobs may
/// collectively pin, how many priority levels submissions can use, and how
/// strongly worker-slot grants equalize across tenants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Maximum jobs queued awaiting admission. A submission beyond this
    /// depth is rejected with `JobError::QueueFull` (jobs queued for
    /// *memory* are never rejected — the depth bounds the queue itself).
    pub queue_depth: usize,
    /// Cluster memory budget for admission control, bytes: the sum of
    /// admitted jobs' declared θt demands may not exceed this. A job that
    /// would overshoot *queues* until earlier jobs release their
    /// admission — it is never rejected. (A job whose lone demand exceeds
    /// the whole budget is admitted when nothing else is running; the
    /// budget bounds *concurrent* residency.)
    pub admission_budget_bytes: u64,
    /// Number of distinct priority levels (`0` = lowest priority,
    /// `priority_levels − 1` = highest). Submissions outside the range are
    /// rejected at submit time.
    pub priority_levels: u8,
    /// Fair-share strength in `[0, 1]`. `0` schedules pure
    /// FIFO-with-priorities; any positive value makes the dispatcher
    /// prefer the tenant currently holding the fewest worker slots,
    /// falling back to priority-then-FIFO to break ties.
    pub fair_share: f64,
}

impl SchedulerConfig {
    /// Hard cap on `priority_levels` (per-level bookkeeping stays tiny).
    pub const MAX_PRIORITY_LEVELS: u8 = 16;

    /// Default scheduler for `nodes` nodes of `node_mem_bytes` each:
    /// admission budget = total cluster memory, a deep queue, four
    /// priority levels, fair share on.
    pub const fn for_cluster(nodes: usize, node_mem_bytes: u64) -> Self {
        SchedulerConfig {
            queue_depth: 64,
            admission_budget_bytes: node_mem_bytes.saturating_mul(nodes as u64),
            priority_levels: 4,
            fair_share: 1.0,
        }
    }

    /// Panics on nonsensical values; each degenerate field names the knob.
    pub fn assert_valid(&self) {
        assert!(
            self.queue_depth > 0,
            "`queue_depth` must be at least 1 (got 0): a zero-depth queue \
             would reject every submission"
        );
        assert!(
            self.admission_budget_bytes > 0,
            "`admission_budget_bytes` must be positive (got 0): a zero \
             budget would queue every job forever"
        );
        assert!(
            self.priority_levels >= 1 && self.priority_levels <= Self::MAX_PRIORITY_LEVELS,
            "`priority_levels` must be in 1..={} (got {})",
            Self::MAX_PRIORITY_LEVELS,
            self.priority_levels
        );
        assert!(
            self.fair_share >= 0.0 && self.fair_share <= 1.0 && self.fair_share.is_finite(),
            "`fair_share` must be in [0, 1] (got {})",
            self.fair_share
        );
    }
}

/// Static description of the (simulated or thread-backed) cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker nodes, `M` (paper: 9).
    pub nodes: usize,
    /// Concurrent task slots per node, `Tc` (paper: 10).
    pub tasks_per_node: usize,
    /// Per-task memory budget θt in bytes (paper: 6 GB = 64 GB/node with
    /// headroom, divided by Tc).
    pub task_mem_bytes: u64,
    /// Total node memory, bytes (paper: 64 GB). Broadcast variables are
    /// stored once per node and shared by its tasks, so BMM fails when |B|
    /// exceeds *node* memory — which is why Fig. 6(a)'s BMM survives
    /// N = 80K (|B| = 51 GB) and O.O.M.s at 90K (|B| = 65 GB).
    pub node_mem_bytes: u64,
    /// Per-node, per-direction NIC bandwidth in bytes/s
    /// (10 GbE = 1.25 GB/s).
    pub net_bytes_per_sec: f64,
    /// Local disk streaming rate in bytes/s (500 GB SATA SSD ≈ 500 MB/s) —
    /// used for HDFS reads, shuffle spills, and output writes.
    pub disk_bytes_per_sec: f64,
    /// Sustained f64 GEMM throughput of one node's CPU, FLOP/s. Six
    /// 3.5 GHz cores with AVX2 FMA sustain ~25 GFLOP/s/core in MKL;
    /// 160 GFLOP/s/node calibrates Fig. 7(a)'s DistME(C) times once the
    /// repartition/serde overheads the simulator charges are added back.
    pub node_cpu_flops_per_sec: f64,
    /// Per-task (per-slot) serialization/deserialization throughput,
    /// bytes/s — the SparkSQL codec cost DistME explicitly optimizes (§5).
    /// Ten concurrent tasks share six cores, so the per-slot rate is a
    /// fraction of the node's total codec throughput.
    pub serde_bytes_per_sec: f64,
    /// Shuffle wire-compression ratio (compressed/uncompressed), applied to
    /// network and disk *time* for shuffled and broadcast data. Spark
    /// compresses shuffle blocks with lz4 by default; the paper's synthetic
    /// matrices (uniformly-placed non-zeros with low-entropy values)
    /// compress by ~50x, which is how Fig. 6(d) reports single-digit GB for
    /// multi-hundred-GB logical replication volumes. Reported byte counts
    /// in `JobStats` stay *logical* (uncompressed).
    pub wire_compression_ratio: f64,
    /// Spark task-launch overhead, seconds per task.
    pub task_launch_secs: f64,
    /// Per-stage scheduling/driver overhead, seconds.
    pub stage_overhead_secs: f64,
    /// Serial driver-side cost of scheduling one task, seconds. Spark's
    /// single-threaded driver becomes the bottleneck for stages with
    /// hundreds of thousands of tasks — the effect behind "the setting of
    /// T = I·J·K for RMM incurs some errors due to too many tasks in
    /// Spark" (§6.2) and RMM's T.O. in Fig. 6(c).
    pub driver_secs_per_task: f64,
    /// Cluster-wide disk capacity available for intermediate (shuffle)
    /// data, bytes. Paper: "> 36 TB" triggers E.D.C.
    pub disk_capacity_bytes: u64,
    /// Job time-out, seconds. Paper: "T.O. means time out (longer than
    /// 4,000 seconds)" — Fig. 6. GNMF figures run past this, so it is
    /// per-job and can be raised.
    pub timeout_secs: f64,
    /// Scheduler limit on tasks per stage. "The setting of T = I·J·K for
    /// RMM incurs some errors due to too many tasks in Spark" (§6.2).
    pub max_tasks: usize,
    /// Per-node GPU, when the (G) variants are simulated.
    pub gpu: Option<GpuConfig>,
    /// GPUs per node (paper future work: "extend our GPU acceleration
    /// method to exploit multiple GPUs per node"). Tasks on a node are
    /// assigned to its devices round-robin.
    pub gpus_per_node: usize,
    /// Schedule each task onto the node whose slots free earliest instead
    /// of static round-robin (paper future work: "achieve a better load
    /// balancing by considering differences ... of cuboids"). Off by
    /// default to match Spark's locality-driven static placement.
    pub dynamic_scheduling: bool,
    /// Use Algorithm 1's streamed GPU schedule; `false` selects the naive
    /// copy-all-then-compute method of §4.3 (ablation).
    pub gpu_streaming: bool,
    /// Cap on the real executor's worker threads, as a multiple of the
    /// host's available parallelism. Virtual slots beyond this cap are
    /// time-sliced rather than given their own OS thread.
    pub host_worker_oversubscription: usize,
    /// Task retry/recovery policy for the real executor (the simulator
    /// never faults, so it ignores this).
    pub retry: RetryPolicy,
    /// Shared job-scheduler tuning: submission queue depth, admission
    /// memory budget, priority range, fair-share strength.
    pub scheduler: SchedulerConfig,
    /// Coded-replication policy (`cluster::coding`): off by default so
    /// placement, wire frames, and ledger bytes stay byte-identical to the
    /// pre-coding engine; `Xor`/`RsLite` materialize parity groups that
    /// recovery decodes instead of replaying lineage.
    pub replication: ReplicationPolicy,
}

impl ClusterConfig {
    /// The paper's 9-node testbed, CPU-only (the "(C)" variants).
    pub fn paper_cluster() -> Self {
        ClusterConfig {
            nodes: 9,
            tasks_per_node: 10,
            task_mem_bytes: 6_000_000_000,
            node_mem_bytes: 64_000_000_000,
            net_bytes_per_sec: 1.25e9,
            disk_bytes_per_sec: 0.5e9,
            node_cpu_flops_per_sec: 160.0e9,
            serde_bytes_per_sec: 0.3e9,
            wire_compression_ratio: 0.02,
            task_launch_secs: 0.01,
            stage_overhead_secs: 0.5,
            driver_secs_per_task: 0.006,
            disk_capacity_bytes: 36_000_000_000_000,
            timeout_secs: 4_000.0,
            max_tasks: 1_000_000,
            gpu: None,
            gpus_per_node: 1,
            dynamic_scheduling: false,
            gpu_streaming: true,
            host_worker_oversubscription: 2,
            retry: RetryPolicy::spark_like(),
            scheduler: SchedulerConfig::for_cluster(9, 64_000_000_000),
            replication: ReplicationPolicy::Off,
        }
    }

    /// The paper's testbed with one GTX 1080 Ti per node (the "(G)"
    /// variants).
    pub fn paper_cluster_gpu() -> Self {
        ClusterConfig {
            gpu: Some(GpuConfig::gtx_1080_ti()),
            ..Self::paper_cluster()
        }
    }

    /// A small thread-backed cluster for laptop-scale real execution:
    /// 4 virtual nodes × 2 slots. `task_mem_bytes` is deliberately small so
    /// tests can provoke O.O.M. on matrices that fit in RAM.
    pub fn laptop() -> Self {
        ClusterConfig {
            nodes: 4,
            tasks_per_node: 2,
            task_mem_bytes: 256 << 20,
            node_mem_bytes: 1 << 30,
            net_bytes_per_sec: 1.0e9,
            disk_bytes_per_sec: 0.5e9,
            node_cpu_flops_per_sec: 10.0e9,
            serde_bytes_per_sec: 1.0e9,
            wire_compression_ratio: 1.0,
            task_launch_secs: 0.0,
            stage_overhead_secs: 0.0,
            driver_secs_per_task: 0.0,
            disk_capacity_bytes: 8 << 30,
            timeout_secs: 3600.0,
            max_tasks: 100_000,
            gpu: None,
            gpus_per_node: 1,
            dynamic_scheduling: false,
            gpu_streaming: true,
            host_worker_oversubscription: 2,
            retry: RetryPolicy::spark_like(),
            scheduler: SchedulerConfig::for_cluster(4, 1 << 30),
            replication: ReplicationPolicy::Off,
        }
    }

    /// Total concurrent task slots in the cluster: `M · Tc`.
    pub fn total_slots(&self) -> usize {
        self.nodes * self.tasks_per_node
    }

    /// Per-slot CPU throughput: node FLOP/s divided evenly among `Tc` slots.
    pub fn slot_flops_per_sec(&self) -> f64 {
        self.node_cpu_flops_per_sec / self.tasks_per_node as f64
    }

    /// Fraction of uniformly-shuffled bytes that cross a node boundary:
    /// `(M − 1) / M` under uniform task placement.
    pub fn cross_node_fraction(&self) -> f64 {
        (self.nodes as f64 - 1.0) / self.nodes as f64
    }

    /// Overrides the timeout (builder style); GNMF runs exceed the 4 000 s
    /// matmul budget legitimately.
    pub fn with_timeout(mut self, secs: f64) -> Self {
        self.timeout_secs = secs;
        self
    }

    /// Overrides the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the coded-replication policy (builder style).
    pub fn with_replication(mut self, replication: ReplicationPolicy) -> Self {
        self.replication = replication;
        self
    }

    /// Panics on nonsensical values (configuration is programmer input).
    /// Each degenerate field gets its own message so the panic names the
    /// knob to fix.
    pub fn assert_valid(&self) {
        assert!(
            self.nodes > 0,
            "empty cluster: `nodes` must be at least 1 (got 0)"
        );
        assert!(
            self.tasks_per_node > 0,
            "empty cluster: `tasks_per_node` must be at least 1 (got 0)"
        );
        assert!(self.task_mem_bytes > 0, "zero task memory");
        assert!(
            self.node_mem_bytes >= self.task_mem_bytes,
            "node memory below task budget"
        );
        assert!(
            self.net_bytes_per_sec > 0.0
                && self.disk_bytes_per_sec > 0.0
                && self.node_cpu_flops_per_sec > 0.0
                && self.serde_bytes_per_sec > 0.0,
            "rates must be positive"
        );
        assert!(self.timeout_secs > 0.0 && self.max_tasks > 0);
        assert!(
            self.gpus_per_node > 0,
            "need at least one GPU slot per node"
        );
        assert!(
            self.host_worker_oversubscription > 0,
            "`host_worker_oversubscription` must be at least 1 (got 0): \
             a zero cap would leave the real executor with no worker threads"
        );
        assert!(
            self.wire_compression_ratio > 0.0 && self.wire_compression_ratio <= 1.0,
            "compression ratio must be in (0, 1]"
        );
        self.retry.assert_valid();
        self.scheduler.assert_valid();
        if let Some(gpu) = &self.gpu {
            gpu.assert_valid();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_section_6_1() {
        let c = ClusterConfig::paper_cluster();
        c.assert_valid();
        assert_eq!(c.nodes, 9);
        assert_eq!(c.tasks_per_node, 10);
        assert_eq!(c.total_slots(), 90);
        assert_eq!(c.task_mem_bytes, 6_000_000_000);
        assert_eq!(c.timeout_secs, 4_000.0);
        assert!(c.gpu.is_none());
        let g = ClusterConfig::paper_cluster_gpu();
        assert_eq!(g.gpu.unwrap().task_mem_bytes, 1_000_000_000);
    }

    #[test]
    fn derived_quantities() {
        let c = ClusterConfig::paper_cluster();
        assert!((c.slot_flops_per_sec() - 16.0e9).abs() < 1.0);
        assert!((c.cross_node_fraction() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn laptop_is_valid_and_small() {
        let c = ClusterConfig::laptop();
        c.assert_valid();
        assert!(c.total_slots() <= 16);
    }

    #[test]
    #[should_panic(expected = "`nodes` must be at least 1")]
    fn zero_nodes_rejected() {
        let mut c = ClusterConfig::laptop();
        c.nodes = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "`tasks_per_node` must be at least 1")]
    fn zero_tasks_per_node_rejected() {
        let mut c = ClusterConfig::laptop();
        c.tasks_per_node = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "`host_worker_oversubscription` must be at least 1")]
    fn zero_oversubscription_rejected() {
        let mut c = ClusterConfig::laptop();
        c.host_worker_oversubscription = 0;
        c.assert_valid();
    }

    #[test]
    fn retry_backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_attempts: 4,
            backoff_secs: 0.1,
        };
        r.assert_valid();
        assert_eq!(r.backoff_before_attempt(0), 0.0);
        assert!((r.backoff_before_attempt(1) - 0.1).abs() < 1e-12);
        assert!((r.backoff_before_attempt(2) - 0.3).abs() < 1e-12);
        assert!((r.backoff_before_attempt(3) - 0.7).abs() < 1e-12);
        assert_eq!(RetryPolicy::no_retry().max_attempts, 1);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let mut c = ClusterConfig::laptop();
        c.retry.max_attempts = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "`queue_depth` must be at least 1")]
    fn zero_queue_depth_rejected() {
        let mut c = ClusterConfig::laptop();
        c.scheduler.queue_depth = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "`admission_budget_bytes` must be positive")]
    fn zero_admission_budget_rejected() {
        let mut c = ClusterConfig::laptop();
        c.scheduler.admission_budget_bytes = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "`priority_levels` must be in 1..=16")]
    fn zero_priority_levels_rejected() {
        let mut c = ClusterConfig::laptop();
        c.scheduler.priority_levels = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "`priority_levels` must be in 1..=16 (got 17)")]
    fn oversized_priority_levels_rejected() {
        let mut c = ClusterConfig::laptop();
        c.scheduler.priority_levels = 17;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "`fair_share` must be in [0, 1]")]
    fn out_of_range_fair_share_rejected() {
        let mut c = ClusterConfig::laptop();
        c.scheduler.fair_share = 1.5;
        c.assert_valid();
    }

    #[test]
    fn replication_defaults_off_and_overrides_via_builder() {
        assert_eq!(ClusterConfig::laptop().replication, ReplicationPolicy::Off);
        assert_eq!(
            ClusterConfig::paper_cluster().replication,
            ReplicationPolicy::Off
        );
        let c = ClusterConfig::laptop().with_replication(ReplicationPolicy::Xor);
        assert_eq!(c.replication, ReplicationPolicy::Xor);
        c.assert_valid();
        assert_eq!(ReplicationPolicy::Off.parity_count(), 0);
        assert_eq!(ReplicationPolicy::Xor.parity_count(), 1);
        assert_eq!(ReplicationPolicy::RsLite.parity_count(), 2);
    }

    #[test]
    fn default_scheduler_budget_covers_the_cluster() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(
            c.scheduler.admission_budget_bytes,
            c.node_mem_bytes * c.nodes as u64
        );
        assert_eq!(c.scheduler.priority_levels, 4);
        assert!(c.scheduler.fair_share > 0.0);
    }
}
