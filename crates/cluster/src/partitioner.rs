//! Block-partitioning schemes (§2.1, Fig. 1).
//!
//! A scheme maps a block's grid coordinates to a partition index; partitions
//! map to task slots round-robin. Row/Column partitioning are what DMac and
//! MatFast use for operand alignment; Hash is SystemML's default; Grid is
//! the building block of (P,Q,R)-cuboid partitioning.

use distme_matrix::BlockId;

/// A block-partitioning scheme over an `I × J`-block matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// All blocks with the same block-row index land in one partition.
    Row,
    /// All blocks with the same block-column index land in one partition.
    Column,
    /// Blocks spread by hash over `partitions` buckets.
    Hash {
        /// Number of hash buckets.
        partitions: u32,
    },
    /// `α × β` grid partitioning: the grid cell containing the block is the
    /// partition (Fig. 1(d)).
    Grid {
        /// Number of partitions along the block-row axis (α).
        rows: u32,
        /// Number of partitions along the block-column axis (β).
        cols: u32,
    },
}

impl PartitionScheme {
    /// Partition index of `block` within a matrix of `grid_rows × grid_cols`
    /// blocks.
    pub fn partition_of(&self, block: BlockId, grid_rows: u32, grid_cols: u32) -> u32 {
        debug_assert!(block.row < grid_rows && block.col < grid_cols);
        match *self {
            PartitionScheme::Row => block.row,
            PartitionScheme::Column => block.col,
            PartitionScheme::Hash { partitions } => {
                hash_u64(((block.row as u64) << 32) | block.col as u64) % partitions.max(1)
            }
            PartitionScheme::Grid { rows, cols } => {
                let pr = cell_of(block.row, grid_rows, rows);
                let pc = cell_of(block.col, grid_cols, cols);
                pr * cols + pc
            }
        }
    }

    /// Number of partitions the scheme produces for an `I × J` block grid.
    pub fn num_partitions(&self, grid_rows: u32, grid_cols: u32) -> u32 {
        match *self {
            PartitionScheme::Row => grid_rows,
            PartitionScheme::Column => grid_cols,
            PartitionScheme::Hash { partitions } => partitions.max(1),
            PartitionScheme::Grid { rows, cols } => rows * cols,
        }
    }
}

/// Which of `parts` contiguous cells index `i` (of `n` total) falls into —
/// cells are `ceil(n/parts)` wide, matching the paper's `⌈I/P⌉` cuboid
/// extents.
pub fn cell_of(i: u32, n: u32, parts: u32) -> u32 {
    debug_assert!(parts > 0 && i < n);
    let width = n.div_ceil(parts);
    i / width
}

/// SplitMix64 finalizer — a well-mixed stateless integer hash.
fn hash_u64(x: u64) -> u32 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_column_schemes_follow_fig1() {
        // Fig. 1: 4x4 blocks into 4 tasks.
        for i in 0..4 {
            for j in 0..4 {
                let id = BlockId::new(i, j);
                assert_eq!(PartitionScheme::Row.partition_of(id, 4, 4), i);
                assert_eq!(PartitionScheme::Column.partition_of(id, 4, 4), j);
            }
        }
        assert_eq!(PartitionScheme::Row.num_partitions(4, 4), 4);
        assert_eq!(PartitionScheme::Column.num_partitions(4, 4), 4);
    }

    #[test]
    fn grid_scheme_follows_fig1d() {
        // 2x2 grid over 4x4 blocks: quadrants.
        let g = PartitionScheme::Grid { rows: 2, cols: 2 };
        assert_eq!(g.partition_of(BlockId::new(0, 0), 4, 4), 0);
        assert_eq!(g.partition_of(BlockId::new(0, 3), 4, 4), 1);
        assert_eq!(g.partition_of(BlockId::new(3, 0), 4, 4), 2);
        assert_eq!(g.partition_of(BlockId::new(3, 3), 4, 4), 3);
        assert_eq!(g.num_partitions(4, 4), 4);
    }

    #[test]
    fn grid_scheme_ragged_cells() {
        // 7 block-rows into 3 parts: widths ceil(7/3)=3 => cells 0..3 are
        // rows {0,1,2},{3,4,5},{6}.
        let g = PartitionScheme::Grid { rows: 3, cols: 1 };
        assert_eq!(g.partition_of(BlockId::new(2, 0), 7, 1), 0);
        assert_eq!(g.partition_of(BlockId::new(3, 0), 7, 1), 1);
        assert_eq!(g.partition_of(BlockId::new(6, 0), 7, 1), 2);
    }

    #[test]
    fn hash_scheme_spreads_blocks_roughly_evenly() {
        let h = PartitionScheme::Hash { partitions: 8 };
        let mut counts = [0usize; 8];
        for i in 0..32 {
            for j in 0..32 {
                counts[h.partition_of(BlockId::new(i, j), 32, 32) as usize] += 1;
            }
        }
        // 1024 blocks over 8 buckets: mean 128, allow generous skew.
        assert!(counts.iter().all(|&c| c > 64 && c < 192), "{counts:?}");
    }

    #[test]
    fn hash_is_deterministic() {
        let h = PartitionScheme::Hash { partitions: 13 };
        let a = h.partition_of(BlockId::new(5, 9), 16, 16);
        let b = h.partition_of(BlockId::new(5, 9), 16, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn cell_of_covers_all_indices() {
        for n in 1..40u32 {
            for parts in 1..=n {
                for i in 0..n {
                    let c = cell_of(i, n, parts);
                    assert!(c < parts, "cell {c} out of {parts} for i={i}, n={n}");
                }
                // First and last indices map to first and last used cells.
                assert_eq!(cell_of(0, n, parts), 0);
            }
        }
    }
}
