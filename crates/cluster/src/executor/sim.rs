//! Virtual-time execution at paper scale.
//!
//! [`SimCluster`] replays a job's stage structure against resource models:
//! per-node NIC ingress ([`FifoServer`]), per-node disk, per-node task
//! slots ([`SlotPool`]), per-node simulated GPUs, and a cluster-wide disk
//! gauge for intermediate data. Nothing is materialized — tasks are
//! described by byte/FLOP summaries — so 100 000 × 100 000 matrices
//! simulate in milliseconds while producing the elapsed times,
//! communication volumes, and failure modes of Figs. 6–8 and Table 5.

use crate::config::ClusterConfig;
use crate::failure::JobError;
use crate::scheduler::Scheduler;
use crate::stats::TenantId;
use distme_gpu::{work, GpuDevice, GpuWork};
use distme_sim::{FifoServer, Gauge, SimTime, SlotPool};

/// What a task computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeWork {
    /// No local computation (pure data movement, e.g. the repartition map).
    None,
    /// CPU kernel work of `flops` floating-point operations, served at the
    /// slot's share of the node CPU.
    Cpu {
        /// FLOPs to execute.
        flops: f64,
    },
    /// GPU work, executed with Algorithm 1's streamed schedule on the
    /// node's shared device.
    Gpu(GpuWork),
}

/// Byte/FLOP summary of one simulated task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTask {
    /// Bytes this task fetches from the shuffle (a `(M−1)/M` fraction
    /// crosses the network; the rest reads from local disk).
    pub shuffle_in_bytes: u64,
    /// Bytes read from local storage (HDFS input splits).
    pub local_read_bytes: u64,
    /// The task's computation.
    pub compute: ComputeWork,
    /// Bytes this task writes into the shuffle for the next stage.
    pub shuffle_out_bytes: u64,
    /// Bytes written to local storage (final HDFS output).
    pub local_write_bytes: u64,
    /// Peak working set, checked against θt.
    pub mem_bytes: u64,
}

impl SimTask {
    /// A task that only moves data.
    pub fn data_only(shuffle_in: u64, shuffle_out: u64, mem: u64) -> Self {
        SimTask {
            shuffle_in_bytes: shuffle_in,
            local_read_bytes: 0,
            compute: ComputeWork::None,
            shuffle_out_bytes: shuffle_out,
            local_write_bytes: 0,
            mem_bytes: mem,
        }
    }
}

/// Measurements of one simulated stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageOutcome {
    /// Virtual seconds from stage submission to last task completion.
    pub secs: f64,
    /// Total bytes read from the shuffle.
    pub shuffle_read_bytes: u64,
    /// The subset that crossed the network.
    pub cross_node_bytes: u64,
    /// Total bytes written into the shuffle.
    pub shuffle_write_bytes: u64,
    /// Broadcast bytes (one copy per node).
    pub broadcast_bytes: u64,
    /// Tasks executed.
    pub tasks: usize,
    /// Largest task working set.
    pub peak_task_mem_bytes: u64,
    /// GPU kernel-engine busy seconds accumulated during the stage.
    pub gpu_busy_secs: f64,
    /// GPU kernel-engine utilization over the stage window, if GPU work ran.
    pub gpu_utilization: Option<f64>,
}

/// The simulated cluster.
#[derive(Debug, Clone)]
pub struct SimCluster {
    cfg: ClusterConfig,
    /// Per-node NIC ingress servers.
    rx: Vec<FifoServer>,
    /// Per-node disk read channels (HDFS reads, local shuffle fetches).
    /// Reads and writes get separate channels: modern SSDs sustain
    /// concurrent read/write streams, and a shared FIFO would let one
    /// task's late write block another task's early read (a simulation
    /// artifact, not a real contention effect).
    disk: Vec<FifoServer>,
    /// Per-node disk write channels (shuffle spills, output writes).
    disk_w: Vec<FifoServer>,
    /// Per-node task slot pools.
    slots: Vec<SlotPool>,
    /// Per-node GPUs (empty when the config has none), laid out
    /// `node * gpus_per_node + device`.
    gpus: Vec<GpuDevice>,
    /// Per-node round-robin cursor over that node's devices.
    gpu_rr: Vec<usize>,
    /// Cluster-wide intermediate-data gauge (E.D.C. detection).
    intermediates: Gauge,
    clock: SimTime,
    job_epoch: SimTime,
    /// Membership epoch: bumps on every [`scale_to`](Self::scale_to) so
    /// plans built for an old grid are identifiably stale, mirroring the
    /// real executor.
    epoch: u64,
    /// The shared task scheduler: the simulator claims task indices
    /// through the same gang/lease machinery as the real executor, so
    /// per-tenant slot accounting and live load are visible here too.
    scheduler: Scheduler,
}

impl SimCluster {
    /// Builds a simulated cluster from a validated configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        cfg.assert_valid();
        let gpus = match cfg.gpu {
            Some(g) => (0..cfg.nodes * cfg.gpus_per_node)
                .map(|_| GpuDevice::new(g))
                .collect(),
            None => Vec::new(),
        };
        SimCluster {
            rx: (0..cfg.nodes)
                .map(|_| FifoServer::new(cfg.net_bytes_per_sec))
                .collect(),
            disk: (0..cfg.nodes)
                .map(|_| FifoServer::new(cfg.disk_bytes_per_sec))
                .collect(),
            disk_w: (0..cfg.nodes)
                .map(|_| FifoServer::new(cfg.disk_bytes_per_sec))
                .collect(),
            slots: (0..cfg.nodes)
                .map(|_| SlotPool::new(cfg.tasks_per_node))
                .collect(),
            gpus,
            gpu_rr: vec![0; cfg.nodes],
            intermediates: Gauge::new(cfg.disk_capacity_bytes),
            clock: SimTime::ZERO,
            job_epoch: SimTime::ZERO,
            epoch: 0,
            scheduler: Scheduler::new(cfg.total_slots(), cfg.scheduler),
            cfg,
        }
    }

    /// The shared task scheduler handle (same pool semantics as
    /// [`super::real::LocalCluster::scheduler`]).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The membership epoch (0 until the first resize).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Resizes the simulated grid to `n` nodes: per-node resource models
    /// are rebuilt for the new node count (the simulator holds no physical
    /// blocks, so there is nothing to migrate), the virtual clock carries
    /// over, and the epoch bumps. A no-op at the current size.
    pub fn scale_to(&mut self, n: usize) {
        assert!(n > 0, "cannot scale to an empty cluster");
        if n == self.cfg.nodes {
            return;
        }
        let cfg = ClusterConfig {
            nodes: n,
            ..self.cfg
        };
        let clock = self.clock;
        let job_epoch = self.job_epoch;
        let epoch = self.epoch + 1;
        let scheduler = self.scheduler.clone();
        scheduler.set_total_slots(cfg.total_slots());
        *self = SimCluster::new(cfg);
        self.clock = clock;
        self.job_epoch = job_epoch;
        self.epoch = epoch;
        // Keep the pre-resize handle: service-side clones stay connected.
        self.scheduler = scheduler;
    }

    /// Virtual seconds since the current job started.
    pub fn job_elapsed_secs(&self) -> f64 {
        self.clock.since(self.job_epoch)
    }

    /// Current intermediate-data footprint (bytes on disk).
    pub fn intermediate_bytes(&self) -> u64 {
        self.intermediates.in_use()
    }

    /// Peak intermediate-data footprint since the job started.
    pub fn peak_intermediate_bytes(&self) -> u64 {
        self.intermediates.peak()
    }

    /// Marks the start of a new job: resets the job clock epoch and frees
    /// intermediate shuffle data of the previous job.
    pub fn start_job(&mut self) {
        self.job_epoch = self.clock;
        let held = self.intermediates.in_use();
        self.intermediates.free(held);
    }

    /// Runs one stage of `tasks`, with an optional `broadcast_bytes` object
    /// distributed to every node first (BMM's torrent broadcast of B).
    ///
    /// # Errors
    /// * [`JobError::TooManyTasks`] past the scheduler limit;
    /// * [`JobError::OutOfMemory`] when any task's working set exceeds θt
    ///   (checked up-front — Spark fails such tasks as soon as they
    ///   materialize their cuboid);
    /// * [`JobError::ExceededDiskCapacity`] when accumulated intermediate
    ///   data would exceed the cluster disk;
    /// * [`JobError::Timeout`] when the job exceeds its time budget;
    /// * [`JobError::TaskFailed`] for GPU work on a GPU-less cluster.
    pub fn run_stage(
        &mut self,
        tasks: &[SimTask],
        broadcast_bytes: u64,
    ) -> Result<StageOutcome, JobError> {
        self.run_stage_as(TenantId::ANONYMOUS, 0, tasks, broadcast_bytes)
    }

    /// [`Self::run_stage`] with an explicit tenant/priority, claiming task
    /// indices through the shared scheduler's gang machinery exactly like
    /// the real executor (the simulator is single-threaded, so every claim
    /// grants immediately — but tenant slot accounting and live load are
    /// observable while the stage runs).
    pub fn run_stage_as(
        &mut self,
        tenant: TenantId,
        priority: u8,
        tasks: &[SimTask],
        broadcast_bytes: u64,
    ) -> Result<StageOutcome, JobError> {
        if tasks.len() > self.cfg.max_tasks {
            return Err(JobError::TooManyTasks {
                requested: tasks.len(),
                limit: self.cfg.max_tasks,
            });
        }
        for (i, t) in tasks.iter().enumerate() {
            if t.mem_bytes > self.cfg.task_mem_bytes {
                return Err(JobError::OutOfMemory {
                    task: i,
                    needed: t.mem_bytes,
                    budget: self.cfg.task_mem_bytes,
                });
            }
            if matches!(t.compute, ComputeWork::Gpu(_)) && self.gpus.is_empty() {
                return Err(JobError::TaskFailed {
                    task: i,
                    message: "GPU work scheduled on a GPU-less cluster".into(),
                });
            }
        }
        if broadcast_bytes > self.cfg.node_mem_bytes {
            // Broadcast variables live once per node; a broadcast larger
            // than node memory kills the executors (BMM's O.O.M. mode).
            return Err(JobError::OutOfMemory {
                task: 0,
                needed: broadcast_bytes,
                budget: self.cfg.node_mem_bytes,
            });
        }
        let stage_writes: u64 = tasks.iter().map(|t| t.shuffle_out_bytes).sum();
        if self.intermediates.alloc(stage_writes).is_err() {
            return Err(JobError::ExceededDiskCapacity {
                needed: self.intermediates.in_use() + stage_writes,
                capacity: self.intermediates.capacity(),
            });
        }

        let submitted = self.clock;
        let stage_start = submitted
            + self.cfg.stage_overhead_secs
            + self.cfg.driver_secs_per_task * tasks.len() as f64;
        let nodes = self.cfg.nodes;
        let cross = self.cfg.cross_node_fraction();
        let wire = self.cfg.wire_compression_ratio;
        let gpu_busy_before: f64 = self.gpus.iter().map(GpuDevice::kernel_busy_secs).sum();

        // Broadcast: every node pulls one copy through its NIC first.
        let mut node_ready = vec![stage_start; nodes];
        if broadcast_bytes > 0 {
            for (n, ready) in node_ready.iter_mut().enumerate() {
                let (_, done) = self.rx[n].request(stage_start, broadcast_bytes as f64 * wire);
                *ready = done;
            }
        }

        let mut outcome = StageOutcome {
            tasks: tasks.len(),
            broadcast_bytes: broadcast_bytes * if broadcast_bytes > 0 { nodes as u64 } else { 0 },
            ..Default::default()
        };
        let mut stage_end = stage_start;
        let mut any_gpu = false;

        let gang = self.scheduler.register_gang(tenant, priority, tasks.len());
        while let Some(grant) = gang.next_task() {
            let i = grant.index;
            let t = &tasks[i];
            // Placement: static round-robin (Spark locality default), or —
            // with dynamic scheduling — the node whose slots free earliest.
            let node = if self.cfg.dynamic_scheduling {
                (0..nodes)
                    .min_by(|&a, &b| {
                        let fa = self.slots[a].earliest_free().max(node_ready[a]);
                        let fb = self.slots[b].earliest_free().max(node_ready[b]);
                        fa.as_secs()
                            .partial_cmp(&fb.as_secs())
                            .expect("times are finite")
                    })
                    .expect("at least one node")
            } else {
                i % nodes
            };
            let slot_start = self.slots[node].acquire_at(node_ready[node]);
            let t0 = slot_start + self.cfg.task_launch_secs;

            // Shuffle fetch: remote share over the NIC, local share from
            // disk — both move *compressed* bytes.
            let remote = (t.shuffle_in_bytes as f64 * cross).round();
            let local = t.shuffle_in_bytes as f64 - remote;
            let (_, t1) = self.rx[node].request(t0, remote * wire);
            let (_, t2) = self.disk[node].request(t1, (local + t.local_read_bytes as f64) * wire);

            // Deserialization of everything read, at *logical* volume —
            // including the broadcast variable, which each task
            // deserializes from the node's torrent store.
            let deser = (t.shuffle_in_bytes + t.local_read_bytes + broadcast_bytes) as f64
                / self.cfg.serde_bytes_per_sec;
            let t3 = t2 + deser;

            // Compute.
            let t4 = match t.compute {
                ComputeWork::None => t3,
                ComputeWork::Cpu { flops } => t3 + flops / self.cfg.slot_flops_per_sec(),
                ComputeWork::Gpu(w) => {
                    any_gpu = true;
                    let per = self.cfg.gpus_per_node;
                    let device = node * per + self.gpu_rr[node];
                    self.gpu_rr[node] = (self.gpu_rr[node] + 1) % per;
                    if self.cfg.gpu_streaming {
                        work::execute_streamed(&mut self.gpus[device], t3, &w).end
                    } else {
                        work::execute_naive(&mut self.gpus[device], t3, &w).end
                    }
                }
            };

            // Serialize + write shuffle/HDFS output (compressed on disk).
            let out_bytes = t.shuffle_out_bytes + t.local_write_bytes;
            let ser = out_bytes as f64 / self.cfg.serde_bytes_per_sec;
            let (_, t5) = self.disk_w[node].request(t4 + ser, out_bytes as f64 * wire);

            self.slots[node].release(t5);
            stage_end = stage_end.max(t5);

            outcome.shuffle_read_bytes += t.shuffle_in_bytes;
            outcome.cross_node_bytes += remote as u64;
            outcome.shuffle_write_bytes += t.shuffle_out_bytes;
            outcome.peak_task_mem_bytes = outcome.peak_task_mem_bytes.max(t.mem_bytes);
        }

        self.clock = stage_end;
        outcome.secs = stage_end.since(submitted);

        if any_gpu {
            let busy: f64 = self
                .gpus
                .iter()
                .map(GpuDevice::kernel_busy_secs)
                .sum::<f64>()
                - gpu_busy_before;
            outcome.gpu_busy_secs = busy;
            let window = stage_end.since(stage_start);
            let active_gpus = tasks.len().min(nodes * self.cfg.gpus_per_node) as f64;
            if window > 0.0 {
                outcome.gpu_utilization = Some((busy / (window * active_gpus)).min(1.0));
            }
        }

        if self.job_elapsed_secs() > self.cfg.timeout_secs {
            return Err(JobError::Timeout {
                elapsed_secs: self.job_elapsed_secs(),
                limit_secs: self.cfg.timeout_secs,
            });
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            nodes: 2,
            tasks_per_node: 2,
            task_mem_bytes: 1000,
            node_mem_bytes: 100_000,
            net_bytes_per_sec: 100.0,
            disk_bytes_per_sec: 100.0,
            node_cpu_flops_per_sec: 200.0,
            serde_bytes_per_sec: 1000.0,
            wire_compression_ratio: 1.0,
            task_launch_secs: 0.0,
            stage_overhead_secs: 0.0,
            driver_secs_per_task: 0.0,
            disk_capacity_bytes: 10_000,
            timeout_secs: 1_000.0,
            max_tasks: 100,
            gpu: None,
            gpus_per_node: 1,
            dynamic_scheduling: false,
            gpu_streaming: true,
            host_worker_oversubscription: 2,
            retry: crate::config::RetryPolicy::no_retry(),
            scheduler: crate::config::SchedulerConfig::for_cluster(2, 100_000),
            replication: crate::coding::ReplicationPolicy::Off,
        }
    }

    #[test]
    fn single_cpu_task_timeline() {
        let mut c = SimCluster::new(small_cfg());
        c.start_job();
        let t = SimTask {
            shuffle_in_bytes: 200,
            local_read_bytes: 0,
            compute: ComputeWork::Cpu { flops: 100.0 },
            shuffle_out_bytes: 100,
            local_write_bytes: 0,
            mem_bytes: 500,
        };
        let out = c.run_stage(&[t], 0).unwrap();
        // remote = 200 * 1/2 = 100 B over NIC at 100 B/s = 1 s; local 100 B
        // from disk = 1 s; deser 200/1000 = 0.2 s; compute 100 flops at
        // 200/2 = 100 flop/s per slot = 1 s; ser 100/1000 = 0.1 s; write
        // 100 B at 100 B/s = 1 s. Total 4.3 s.
        assert!((out.secs - 4.3).abs() < 1e-9, "got {}", out.secs);
        assert_eq!(out.cross_node_bytes, 100);
        assert_eq!(out.shuffle_read_bytes, 200);
        assert_eq!(out.shuffle_write_bytes, 100);
    }

    #[test]
    fn tasks_queue_on_slots() {
        let mut c = SimCluster::new(small_cfg());
        c.start_job();
        let t = SimTask {
            shuffle_in_bytes: 0,
            local_read_bytes: 0,
            compute: ComputeWork::Cpu { flops: 100.0 }, // 1 s each
            shuffle_out_bytes: 0,
            local_write_bytes: 0,
            mem_bytes: 0,
        };
        // 8 identical 1-second tasks over 2 nodes x 2 slots => 2 waves.
        let out = c.run_stage(&vec![t; 8], 0).unwrap();
        assert!((out.secs - 2.0).abs() < 1e-9, "got {}", out.secs);
    }

    #[test]
    fn oom_detected_before_running() {
        let mut c = SimCluster::new(small_cfg());
        c.start_job();
        let t = SimTask::data_only(0, 0, 2000);
        let err = c.run_stage(&[t], 0).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn edc_accumulates_across_stages() {
        let mut c = SimCluster::new(small_cfg());
        c.start_job();
        let t = SimTask::data_only(0, 4000, 0);
        c.run_stage(&[t], 0).unwrap();
        c.run_stage(&[t], 0).unwrap();
        assert_eq!(c.intermediate_bytes(), 8000);
        let err = c.run_stage(&[t], 0).unwrap_err();
        assert_eq!(err.annotation(), "E.D.C.");
        // A new job frees intermediates.
        c.start_job();
        assert_eq!(c.intermediate_bytes(), 0);
        c.run_stage(&[t], 0).unwrap();
    }

    #[test]
    fn timeout_fires() {
        let mut cfg = small_cfg();
        cfg.timeout_secs = 3.0;
        let mut c = SimCluster::new(cfg);
        c.start_job();
        let t = SimTask {
            shuffle_in_bytes: 0,
            local_read_bytes: 0,
            compute: ComputeWork::Cpu { flops: 1000.0 }, // 10 s
            shuffle_out_bytes: 0,
            local_write_bytes: 0,
            mem_bytes: 0,
        };
        let err = c.run_stage(&[t], 0).unwrap_err();
        assert_eq!(err.annotation(), "T.O.");
    }

    #[test]
    fn too_many_tasks_rejected() {
        let mut cfg = small_cfg();
        cfg.max_tasks = 3;
        let mut c = SimCluster::new(cfg);
        let t = SimTask::data_only(0, 0, 0);
        assert_eq!(
            c.run_stage(&vec![t; 4], 0).unwrap_err().annotation(),
            "T.M.T."
        );
    }

    #[test]
    fn broadcast_delays_first_tasks_and_counts_bytes() {
        let mut c = SimCluster::new(small_cfg());
        c.start_job();
        let t = SimTask::data_only(0, 0, 0);
        let out = c.run_stage(&[t, t], 500).unwrap();
        // Broadcast 500 B at 100 B/s = 5 s on each node's NIC, plus each
        // task deserializing the broadcast: 500 B at 1000 B/s = 0.5 s.
        assert!((out.secs - 5.5).abs() < 1e-9, "got {}", out.secs);
        assert_eq!(out.broadcast_bytes, 1000); // 2 nodes x 500 B
    }

    #[test]
    fn gpu_work_requires_gpu() {
        let mut c = SimCluster::new(small_cfg());
        let t = SimTask {
            compute: ComputeWork::Gpu(GpuWork::default()),
            ..SimTask::data_only(0, 0, 0)
        };
        assert!(matches!(
            c.run_stage(&[t], 0),
            Err(JobError::TaskFailed { .. })
        ));
    }

    #[test]
    fn gpu_stage_reports_utilization() {
        let mut cfg = small_cfg();
        cfg.gpu = Some(distme_gpu::GpuConfig::tiny(1 << 20));
        let mut c = SimCluster::new(cfg);
        c.start_job();
        let w = GpuWork {
            h2d_bytes: 1000,
            d2h_bytes: 100,
            dense_flops: 1.0e6,
            sparse_flops: 0.0,
            kernel_calls: 4,
            streams: 2,
        };
        let t = SimTask {
            compute: ComputeWork::Gpu(w),
            ..SimTask::data_only(0, 0, 0)
        };
        let out = c.run_stage(&[t, t], 0).unwrap();
        let u = out.gpu_utilization.expect("gpu ran");
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        assert!(out.gpu_busy_secs > 0.0);
    }

    #[test]
    fn multiple_gpus_per_node_share_the_stage_load() {
        let mut cfg = small_cfg();
        cfg.gpu = Some(distme_gpu::GpuConfig::tiny(1 << 20));
        let w = GpuWork {
            h2d_bytes: 0,
            d2h_bytes: 0,
            dense_flops: 1.0e9, // 1 s on the tiny device
            sparse_flops: 0.0,
            kernel_calls: 1,
            streams: 1,
        };
        let t = SimTask {
            compute: ComputeWork::Gpu(w),
            ..SimTask::data_only(0, 0, 0)
        };
        let run = |gpus: usize| {
            let mut c = cfg;
            c.gpus_per_node = gpus;
            let mut sim = SimCluster::new(c);
            sim.start_job();
            // 4 GPU tasks per node (8 total over 2 nodes).
            sim.run_stage(&vec![t; 8], 0).unwrap().secs
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two < one,
            "two devices per node must beat one: {two} vs {one}"
        );
    }

    #[test]
    fn dynamic_scheduling_balances_skewed_tasks() {
        // One long task plus many short ones: round-robin puts later short
        // tasks behind the long one's node; dynamic placement avoids it.
        let mut tasks = vec![SimTask {
            compute: ComputeWork::Cpu { flops: 2000.0 }, // 20 s
            ..SimTask::data_only(0, 0, 0)
        }];
        tasks.extend(vec![
            SimTask {
                compute: ComputeWork::Cpu { flops: 100.0 }, // 1 s
                ..SimTask::data_only(0, 0, 0)
            };
            12
        ]);
        let run = |dynamic: bool| {
            let mut cfg = small_cfg();
            cfg.dynamic_scheduling = dynamic;
            let mut sim = SimCluster::new(cfg);
            sim.start_job();
            sim.run_stage(&tasks, 0).unwrap().secs
        };
        let rr = run(false);
        let dy = run(true);
        assert!(dy <= rr, "dynamic {dy} must not lose to round-robin {rr}");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut c = SimCluster::new(small_cfg());
            c.start_job();
            let t = SimTask {
                shuffle_in_bytes: 123,
                local_read_bytes: 7,
                compute: ComputeWork::Cpu { flops: 55.0 },
                shuffle_out_bytes: 99,
                local_write_bytes: 3,
                mem_bytes: 10,
            };
            c.run_stage(&vec![t; 13], 77).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scale_to_rebuilds_the_grid_and_bumps_the_epoch() {
        let mut c = SimCluster::new(small_cfg());
        c.start_job();
        let t = SimTask {
            compute: ComputeWork::Cpu { flops: 100.0 },
            ..SimTask::data_only(0, 0, 0)
        };
        c.run_stage(&[t], 0).unwrap();
        let elapsed = c.job_elapsed_secs();
        c.scale_to(5);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.config().nodes, 5);
        assert!(
            (c.job_elapsed_secs() - elapsed).abs() < 1e-12,
            "the virtual clock carries over a resize"
        );
        c.scale_to(5);
        assert_eq!(c.epoch(), 1, "resizing to the current size is a no-op");
    }

    #[test]
    fn sequential_stages_advance_the_clock() {
        let mut c = SimCluster::new(small_cfg());
        c.start_job();
        let t = SimTask {
            compute: ComputeWork::Cpu { flops: 100.0 },
            ..SimTask::data_only(0, 0, 0)
        };
        c.run_stage(&[t], 0).unwrap();
        let after_one = c.job_elapsed_secs();
        c.run_stage(&[t], 0).unwrap();
        assert!((c.job_elapsed_secs() - 2.0 * after_one).abs() < 1e-9);
    }
}
