//! Thread-backed execution with real blocks and real bytes.
//!
//! [`LocalCluster`] emulates a Spark cluster inside one process: `M`
//! virtual nodes × `Tc` slots, tasks assigned round-robin, per-task memory
//! budgets, per-node block stores, and a codec-backed [`Transport`] whose
//! [`ShuffleLedger`] counts every block movement between (virtual) node
//! boundaries. This is the correctness path: the distributed methods in
//! `distme-core` must produce bit-identical results to the single-node
//! reference through this executor, with locality enforced — a task reads
//! only blocks resident in its own node's store.

use crate::chaos::{FaultPlan, FaultSpec};
use crate::config::ClusterConfig;
use crate::failure::{JobError, TaskError};
use crate::membership::{Membership, MembershipEvent};
use crate::rebalance::{RebalancePlan, RebalanceReport};
use crate::scheduler::{Gang, Scheduler};
use crate::shuffle::ShuffleLedger;
use crate::stats::{JobStats, Phase, TenantId};
use crate::store::{ClusterStores, StoreKey};
use crate::transport::{ScratchPool, Transport, TransportStats, WireMove};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-task execution context handed to stage closures.
pub struct TaskCtx {
    /// Task index within the stage.
    pub task: usize,
    /// Virtual node the task runs on.
    pub node: usize,
    /// 0-based attempt index of this execution (0 on a fault-free run;
    /// bumps each time the retry loop re-runs the task).
    pub attempt: u32,
    mem_budget: u64,
    mem_used: Cell<u64>,
    mem_peak: Cell<u64>,
}

impl TaskCtx {
    /// Charges `bytes` against the task's memory budget θt.
    ///
    /// # Errors
    /// Returns [`TaskError::OutOfMemory`] when the running total would
    /// exceed the budget — the O.O.M. that kills BMM/CPMM on large inputs.
    pub fn alloc(&self, bytes: u64) -> Result<(), TaskError> {
        let new = self.mem_used.get().saturating_add(bytes);
        if new > self.mem_budget {
            return Err(TaskError::OutOfMemory {
                needed: new,
                budget: self.mem_budget,
            });
        }
        self.mem_used.set(new);
        self.mem_peak.set(self.mem_peak.get().max(new));
        Ok(())
    }

    /// Releases previously charged bytes.
    pub fn free(&self, bytes: u64) {
        self.mem_used.set(self.mem_used.get().saturating_sub(bytes));
    }

    /// Memory budget θt.
    pub fn budget(&self) -> u64 {
        self.mem_budget
    }

    /// Peak memory the task has charged so far.
    pub fn peak(&self) -> u64 {
        self.mem_peak.get()
    }
}

/// Handle a gated stage's task closure uses to declare *other* tasks of
/// the same stage ready for dispatch — the mechanism by which a producer
/// task (a local multiply installing its C copies) unlocks its consumers
/// (the aggregation task reducing them) inside one fused stage. Marking is
/// idempotent, so a retried producer re-satisfying its dependents is safe.
pub struct StageGate<'a> {
    gang: &'a Gang,
}

impl StageGate<'_> {
    /// Declares task `index` of this stage dispatchable.
    pub fn mark_ready(&self, index: usize) {
        self.gang.mark_ready(index);
    }
}

/// Result of one stage on the real executor.
#[derive(Debug)]
pub struct StageRun<O> {
    /// Per-task outputs, in task order.
    pub outputs: Vec<O>,
    /// Largest task working set observed (bytes).
    pub peak_task_mem_bytes: u64,
    /// Wall-clock seconds of the stage.
    pub wall_secs: f64,
    /// Task attempts re-run after a transient failure.
    pub retries: u64,
    /// Modeled retry backoff accumulated by this stage, seconds — charged
    /// to the job's time model, never slept on the wall clock.
    pub backoff_secs: f64,
}

/// An in-process "cluster" of `M` virtual nodes with real worker threads.
pub struct LocalCluster {
    cfg: ClusterConfig,
    ledger: Arc<ShuffleLedger>,
    stores: ClusterStores,
    transport_stats: TransportStats,
    scratch: ScratchPool,
    faults: Mutex<Option<Arc<FaultPlan>>>,
    membership: Membership,
    scheduler: Scheduler,
}

impl LocalCluster {
    /// Creates a cluster from a validated configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        cfg.assert_valid();
        LocalCluster {
            cfg,
            ledger: Arc::new(ShuffleLedger::new()),
            stores: ClusterStores::new(cfg.nodes),
            transport_stats: TransportStats::default(),
            scratch: ScratchPool::default(),
            faults: Mutex::new(None),
            membership: Membership::new(cfg.nodes),
            scheduler: Scheduler::new(cfg.total_slots(), cfg.scheduler),
        }
    }

    /// The shared task scheduler — the cluster-wide lease pool every
    /// concurrent job's stages draw worker slots from. Clone the handle to
    /// submit jobs for admission or observe live load.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Arms deterministic fault injection for subsequent jobs; returns the
    /// live plan so tests can read its injected-fault counters.
    pub fn inject_faults(&self, spec: FaultSpec) -> Arc<FaultPlan> {
        let plan = Arc::new(FaultPlan::new(spec));
        *self.faults.lock().expect("fault plan lock") = Some(plan.clone());
        plan
    }

    /// Disarms fault injection.
    pub fn clear_faults(&self) {
        *self.faults.lock().expect("fault plan lock") = None;
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().expect("fault plan lock").clone()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The shared byte ledger.
    pub fn ledger(&self) -> &ShuffleLedger {
        &self.ledger
    }

    /// The per-node block stores.
    pub fn stores(&self) -> &ClusterStores {
        &self.stores
    }

    /// Physical transport counters (actually-encoded payload bytes).
    pub fn transport_stats(&self) -> &TransportStats {
        &self.transport_stats
    }

    /// The reusable serialization-buffer pool.
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.scratch
    }

    /// A transport bound to this cluster's stores, physical counters,
    /// scratch pool, and (when armed) fault plan. Model bytes are charged
    /// by the driver, not here.
    pub fn transport(&self) -> Transport<'_> {
        Transport::new(
            &self.stores,
            &self.transport_stats,
            &self.scratch,
            self.fault_plan(),
            self.cfg.retry,
        )
        .with_replication(self.cfg.replication)
    }

    /// Materializes parity for `matrix` under the active
    /// [`ReplicationPolicy`](crate::coding::ReplicationPolicy): copy-0
    /// blocks are grouped by canonical home and each group's parity is
    /// installed on a node holding none of its members (see
    /// [`crate::coding`]). Idempotent; a no-op when replication is off.
    /// Returns the number of parity blocks installed.
    pub fn encode_parity(&self, matrix: u64) -> u64 {
        crate::coding::encode_matrix_parity(
            &self.stores,
            matrix,
            self.cfg.nodes,
            self.cfg.replication,
        )
    }

    /// Virtual node a stage-task index runs on (round-robin, matching
    /// Spark's even executor spread).
    pub fn node_of_task(&self, task: usize) -> usize {
        task % self.cfg.nodes
    }

    /// The cluster's membership epoch: bumps on every commission or
    /// decommission. A plan built at an older epoch is stale — its routing
    /// assumed a grid that no longer exists.
    pub fn epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// The membership state (epoch, node count, change log).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Gracefully resizes the cluster to `n` nodes. A grow commissions
    /// empty nodes; a shrink drains the leaving tail's blocks onto the
    /// survivors before their stores are dropped — either way, every
    /// resident block is re-homed onto the new grid through the
    /// codec-backed transport (ledger [`Phase::Rebalance`], counted in the
    /// report's `rebalanced_*` stats) and the epoch bumps, invalidating
    /// every plan built for the old grid. `scale_to(current)` is a no-op
    /// and does not bump the epoch.
    ///
    /// # Errors
    /// A transport failure during migration (codec bug — migration runs
    /// fault-free and all sources are readable).
    pub fn scale_to(&mut self, n: usize) -> Result<RebalanceReport, JobError> {
        assert!(n > 0, "cannot scale to an empty cluster");
        let from_nodes = self.cfg.nodes;
        if n == from_nodes {
            return Ok(RebalanceReport {
                epoch: self.membership.epoch(),
                from_nodes,
                to_nodes: n,
                ..Default::default()
            });
        }
        if n > from_nodes {
            self.stores.grow_to(n);
        }
        // Parity groups are a function of the node count, so resize
        // invalidates every parity block: drop them before deriving the
        // plan (data rebalances normally) and re-encode under the new grid
        // afterwards. Re-encoding installs directly — no transport, no
        // ledger traffic — so the elastic ledger deltas stay data-only.
        let coded = crate::coding::matrices_with_parity(&self.stores);
        crate::coding::evict_all_parity(&self.stores);
        let snapshot = self.stores.resident_keys();
        let plan = RebalancePlan::derive(&snapshot, n);
        debug_assert!(plan.lost.is_empty(), "graceful resize cannot lose blocks");
        let traffic = self.run_rebalance(&plan)?;
        if n < from_nodes {
            self.stores.truncate_to(n);
        }
        self.cfg.nodes = n;
        self.scheduler.set_total_slots(self.cfg.total_slots());
        let epoch = self.membership.record(MembershipEvent::ScaleTo {
            from: from_nodes,
            to: n,
        });
        let mut report = Self::rebalance_report(epoch, from_nodes, n, traffic, 0);
        for uid in &coded {
            report.stats.parity_blocks_encoded += self.encode_parity(*uid);
        }
        Ok(report)
    }

    /// Permanently decommissions `node`: its store is lost, not drained.
    /// Recovery runs in precedence order. Blocks with a replica on a
    /// surviving node (the lineage the executor leaves by homing every
    /// result block at both placement hashes) are re-homed from those
    /// copies. Sole-copy blocks are next reconstructed by parity decode
    /// from their coding group's survivors when a
    /// [`ReplicationPolicy`](crate::coding::ReplicationPolicy) is active —
    /// no lineage recompute, counted in the report's
    /// `reconstructed_blocks` / `reconstruction_payload_bytes`. The
    /// surviving nodes renumber down to stay contiguous, parity is
    /// re-encoded for the shrunk grid, and the epoch bumps.
    ///
    /// # Errors
    /// [`JobError::NodeDecommissioned`] when a sole-copy block exceeds its
    /// group's erasure budget (or no policy is active) — the affected
    /// matrices are evicted everywhere (re-running their producing jobs
    /// re-materializes them) and the surviving blocks are still
    /// rebalanced, so the cluster stays usable.
    pub fn decommission_node(&mut self, node: usize) -> Result<RebalanceReport, JobError> {
        assert!(
            node < self.cfg.nodes,
            "no node {node} in a {}-node cluster",
            self.cfg.nodes
        );
        assert!(self.cfg.nodes > 1, "cannot decommission the last node");
        let from_nodes = self.cfg.nodes;
        let new_nodes = from_nodes - 1;
        let coded = crate::coding::matrices_with_parity(&self.stores);

        // Partition the resident data keys by whether a surviving replica
        // exists, remapping holder ids through the renumbering (old id j
        // becomes j-1 for j > node). Parity keys are derived state: losing
        // one is not a loss, and the survivors are re-encoded for the new
        // grid below, so they stay out of both sides of the partition.
        let mut lost_keys: Vec<StoreKey> = Vec::new();
        let mut survivors: BTreeMap<StoreKey, BTreeSet<usize>> = BTreeMap::new();
        for (key, holders) in self.stores.resident_keys() {
            if key.is_parity() {
                continue;
            }
            let remapped: BTreeSet<usize> = holders
                .into_iter()
                .filter(|&h| h != node)
                .map(|h| if h > node { h - 1 } else { h })
                .collect();
            if remapped.is_empty() {
                lost_keys.push(key);
            } else {
                survivors.insert(key, remapped);
            }
        }

        // Parity decode, while the dying node is still addressable (its
        // store is excluded from every read — reconstruction must succeed
        // from group survivors alone). Rebuilt blocks are installed on a
        // surviving node and rejoin the survivor set; recoveries install
        // as they land, so an RS-lite group with two members on `node`
        // decodes the first from P+Q and the second from the now-resident
        // first. Whatever remains lost exceeded its group's budget.
        let (mut reconstructed, mut reconstruction_bytes) = (0u64, 0u64);
        if self.cfg.replication.parity_count() > 0 {
            lost_keys.retain(|key| {
                match crate::coding::reconstruct_block(&self.stores, *key, Some(node)) {
                    Some((block, bytes)) => {
                        let host = (node + 1) % from_nodes;
                        self.stores.ingest(host, *key, Arc::new(block));
                        let remapped = if host > node { host - 1 } else { host };
                        survivors.insert(*key, BTreeSet::from([remapped]));
                        reconstructed += 1;
                        reconstruction_bytes += bytes;
                        false
                    }
                    None => true,
                }
            });
        }
        self.stores.remove_node(node);
        crate::coding::evict_all_parity(&self.stores);

        // A matrix with an unrecoverable block is unusable as a resident
        // placement: evict it everywhere so the next job re-ingests (or
        // re-produces) it instead of tripping over a hole.
        let lost_uids: BTreeSet<u64> = lost_keys.iter().map(|k| k.matrix).collect();
        for uid in &lost_uids {
            self.stores.evict_matrix(*uid);
        }
        survivors.retain(|k, _| !lost_uids.contains(&k.matrix));

        let plan = RebalancePlan::derive(&survivors, new_nodes);
        let traffic = self.run_rebalance(&plan)?;
        self.cfg.nodes = new_nodes;
        self.scheduler.set_total_slots(self.cfg.total_slots());
        let epoch = self
            .membership
            .record(MembershipEvent::Decommission { node });
        // Re-encode parity for the shrunk grid — even on the error path,
        // so surviving coded matrices keep their protection. Evicted
        // matrices have no resident blocks and encode to nothing.
        let mut parity_encoded = 0u64;
        for uid in &coded {
            parity_encoded += self.encode_parity(*uid);
        }
        if lost_keys.is_empty() {
            let mut report = Self::rebalance_report(epoch, from_nodes, new_nodes, traffic, 0);
            report.stats.reconstructed_blocks = reconstructed;
            report.stats.reconstruction_payload_bytes = reconstruction_bytes;
            report.stats.parity_blocks_encoded = parity_encoded;
            Ok(report)
        } else {
            Err(JobError::NodeDecommissioned {
                node,
                lost_blocks: lost_keys.len(),
            })
        }
    }

    /// Executes a rebalance plan's moves through the transport and applies
    /// its evictions. Migration traffic is charged to the ledger under
    /// [`Phase::Rebalance`] but kept out of the cluster's per-job
    /// [`TransportStats`] (payload accounting of jobs must not shift when
    /// a resize happens between them) and runs fault-free — it is not a
    /// job stage, so the fault plan's stage-keyed decisions do not apply.
    /// Returns `(moves, payload_bytes, cross_node_payload_bytes)`.
    fn run_rebalance(&self, plan: &RebalancePlan) -> Result<(u64, u64, u64), JobError> {
        let migration_stats = TransportStats::default();
        let transport = Transport::new(
            &self.stores,
            &migration_stats,
            &self.scratch,
            None,
            self.cfg.retry,
        );
        let (mut moves, mut payload, mut cross) = (0u64, 0u64, 0u64);
        for m in &plan.moves {
            let wire = WireMove {
                phase: Phase::Rebalance,
                from_node: m.from,
                to_node: m.to,
                wire_bytes: 0,
                src: m.key,
                dst: m.key,
            };
            let bytes = transport
                .execute(&wire, 0)
                .map_err(|e| JobError::from_task(0, e))?;
            if bytes > 0 {
                moves += 1;
                payload += bytes;
                if m.from != m.to {
                    cross += bytes;
                }
                self.ledger
                    .record_shuffle(Phase::Rebalance, m.from, m.to, bytes);
            }
        }
        for (node, key) in &plan.evictions {
            self.stores.node(*node).remove(key);
        }
        Ok((moves, payload, cross))
    }

    fn rebalance_report(
        epoch: u64,
        from_nodes: usize,
        to_nodes: usize,
        (moves, payload, cross): (u64, u64, u64),
        lost_blocks: usize,
    ) -> RebalanceReport {
        let mut stats = JobStats {
            rebalanced_moves: moves,
            rebalanced_payload_bytes: payload,
            ..Default::default()
        };
        let phase = stats.phase_mut(Phase::Rebalance);
        phase.shuffle_bytes = payload;
        phase.cross_node_bytes = cross;
        phase.tasks = moves as usize;
        RebalanceReport {
            epoch,
            from_nodes,
            to_nodes,
            moves,
            payload_bytes: payload,
            lost_blocks,
            stats,
        }
    }

    /// Records a broadcast of one `bytes`-sized object to every node.
    pub fn broadcast(&self, phase: Phase, bytes: u64) {
        self.ledger.record_broadcast(phase, bytes, self.cfg.nodes);
    }

    /// Runs one stage: `f` is applied to every input on a worker pool of at
    /// most `M · Tc` threads (capped by host parallelism times the
    /// configured oversubscription). Task memory is enforced through
    /// [`TaskCtx::alloc`]. Workers claim task indices off a lock-free
    /// atomic cursor over the input vector and buffer outputs locally,
    /// merging once at exit; outputs are returned in task order regardless
    /// of which worker ran what.
    ///
    /// A task that fails with a *transient* error (injected crash, lost or
    /// corrupt shuffle block — see [`TaskError::is_transient`]) is re-run
    /// in place with a cloned input, up to `ClusterConfig::retry` attempts;
    /// each re-run charges exponential backoff to the stage's *modeled*
    /// time (`StageRun::backoff_secs`), never the wall clock. Inputs must
    /// be `Clone` for exactly this re-run path (stage inputs are routing
    /// metadata — moves and block ids — not matrix payloads).
    ///
    /// # Errors
    /// * [`JobError::TooManyTasks`] when `inputs.len()` exceeds the
    ///   scheduler limit;
    /// * the first task failure, promoted via
    ///   [`JobError::from_task_attempts`] (lowest task index wins,
    ///   deterministically; the message carries the attempt count when
    ///   retries were exhausted).
    pub fn run_stage<I, O, F>(&self, inputs: Vec<I>, f: F) -> Result<StageRun<O>, JobError>
    where
        I: Send + Clone,
        O: Send,
        F: Fn(&TaskCtx, I) -> Result<O, TaskError> + Sync,
    {
        self.run_stage_as(TenantId::ANONYMOUS, 0, inputs, f)
    }

    /// [`Self::run_stage`] with an explicit tenant/priority: the stage's
    /// tasks are registered as a gang under `tenant` and drawn from the
    /// shared scheduler at `priority`. This is the path the job service
    /// uses; `run_stage` itself is the anonymous compat wrapper.
    pub fn run_stage_as<I, O, F>(
        &self,
        tenant: TenantId,
        priority: u8,
        inputs: Vec<I>,
        f: F,
    ) -> Result<StageRun<O>, JobError>
    where
        I: Send + Clone,
        O: Send,
        F: Fn(&TaskCtx, I) -> Result<O, TaskError> + Sync,
    {
        self.run_stage_inner(tenant, priority, inputs, None, |ctx, item, _gate| {
            f(ctx, item)
        })
    }

    /// Dependency-gated variant of [`Self::run_stage_as`]: only task
    /// indices in `initially_ready` are dispatchable at the start; a task
    /// closure unlocks further indices through the [`StageGate`] it is
    /// handed, once it has installed the blocks they depend on. This is
    /// the primitive the pipelined executor fuses
    /// repartition/compute/aggregate into one streamed stage with —
    /// aggregation tasks dispatch the moment their producers finish, while
    /// unrelated multiplies are still running. Outputs are still collected
    /// in task order, so readiness-driven dispatch cannot perturb result
    /// determinism. A terminal task failure aborts the gang (waiters on
    /// never-satisfied dependencies drain instead of deadlocking) and is
    /// reported exactly like an ungated stage failure.
    pub fn run_stage_gated<I, O, F>(
        &self,
        tenant: TenantId,
        priority: u8,
        inputs: Vec<I>,
        initially_ready: Vec<usize>,
        f: F,
    ) -> Result<StageRun<O>, JobError>
    where
        I: Send + Clone,
        O: Send,
        F: Fn(&TaskCtx, I, &StageGate<'_>) -> Result<O, TaskError> + Sync,
    {
        self.run_stage_inner(tenant, priority, inputs, Some(initially_ready), f)
    }

    fn run_stage_inner<I, O, F>(
        &self,
        tenant: TenantId,
        priority: u8,
        inputs: Vec<I>,
        gating: Option<Vec<usize>>,
        f: F,
    ) -> Result<StageRun<O>, JobError>
    where
        I: Send + Clone,
        O: Send,
        F: Fn(&TaskCtx, I, &StageGate<'_>) -> Result<O, TaskError> + Sync,
    {
        let n = inputs.len();
        if n > self.cfg.max_tasks {
            return Err(JobError::TooManyTasks {
                requested: n,
                limit: self.cfg.max_tasks,
            });
        }
        let started = Instant::now();
        // Stage counters (blackout windows, per-stage fault salts) advance
        // exactly once per stage, whether or not any task faults.
        let fault_plan = self.fault_plan();
        if let Some(plan) = &fault_plan {
            plan.advance_stage();
        }
        let max_attempts = self.cfg.retry.max_attempts.max(1);
        let host_par = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let workers = self
            .cfg
            .total_slots()
            .min(n.max(1))
            .min(host_par * self.cfg.host_worker_oversubscription);

        // The claim queue is the shared scheduler: the stage registers its
        // task count as a gang, and each worker pulls `(lease, index)`
        // grants. Indices arrive in order — the same claim-cursor
        // semantics the old per-job loop had — while the lease pool bounds
        // how many tasks run at once *across every concurrent job*. The
        // per-slot mutex below is only ever taken once per task and never
        // contended, because a grant hands out each index exactly once.
        let gated = gating.is_some();
        let gang = match gating {
            None => self.scheduler.register_gang(tenant, priority, n),
            Some(ready) => self
                .scheduler
                .register_gated_gang(tenant, priority, n, ready),
        };
        let gate = StageGate { gang: &gang };
        let slots: Vec<Mutex<Option<I>>> =
            inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        type TaskReport<O> = (usize, u32, Result<O, TaskError>);
        let done: Mutex<Vec<TaskReport<O>>> = Mutex::new(Vec::with_capacity(n));
        let peak = AtomicU64::new(0);
        let retries = AtomicU64::new(0);
        let backoff_micros = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<TaskReport<O>> = Vec::new();
                    while let Some(grant) = gang.next_task() {
                        let idx = grant.index;
                        let mut item = slots[idx]
                            .lock()
                            .expect("no worker panics while taking its slot")
                            .take();
                        debug_assert!(item.is_some(), "each index is claimed exactly once");
                        let mut attempt: u32 = 0;
                        let (attempts, out) = loop {
                            let ctx = TaskCtx {
                                task: idx,
                                node: self.node_of_task(idx),
                                attempt,
                                mem_budget: self.cfg.task_mem_bytes,
                                mem_used: Cell::new(0),
                                mem_peak: Cell::new(0),
                            };
                            let res = match &fault_plan {
                                Some(p) if p.node_down(ctx.node) => {
                                    Err(TaskError::NodeLost { node: ctx.node })
                                }
                                _ => {
                                    // The final permitted attempt moves the
                                    // input; earlier ones clone it so a
                                    // retry has something to re-run.
                                    let input = if attempt + 1 < max_attempts {
                                        item.clone().expect("item retained for retries")
                                    } else {
                                        item.take().expect("item retained for retries")
                                    };
                                    // Injected crashes strike at task
                                    // completion: the attempt's shuffle reads
                                    // already hit the transport (so first-
                                    // transmission payload accounting stays
                                    // bit-identical to a fault-free run) but
                                    // its result dies with the executor.
                                    match (&fault_plan, f(&ctx, input, &gate)) {
                                        (Some(p), Ok(_))
                                            if p.crash_task(idx, ctx.node, attempt) =>
                                        {
                                            Err(TaskError::Crashed { node: ctx.node })
                                        }
                                        (_, out) => out,
                                    }
                                }
                            };
                            peak.fetch_max(ctx.peak(), Ordering::Relaxed);
                            match res {
                                Err(e) if e.is_transient() && attempt + 1 < max_attempts => {
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    let wait = self.cfg.retry.backoff_secs
                                        * (1u64 << attempt.min(62)) as f64;
                                    backoff_micros
                                        .fetch_add((wait * 1e6) as u64, Ordering::Relaxed);
                                    attempt += 1;
                                }
                                res => break (attempt + 1, res),
                            }
                        };
                        if gated && out.is_err() {
                            // Readiness this task would have signalled
                            // never comes: poison the gang so workers
                            // blocked on gated indices drain instead of
                            // deadlocking.
                            gang.abort();
                        }
                        local.push((idx, attempts, out));
                        drop(grant); // lease returns to the pool per task
                    }
                    done.lock()
                        .expect("no worker panics while holding the merge lock")
                        .extend(local);
                });
            }
        });

        let mut collected = done.into_inner().expect("no worker panicked");
        collected.sort_unstable_by_key(|(idx, _, _)| *idx);
        // An aborted gated gang leaves its ungranted tasks unreported —
        // the error below covers them; a clean stage reports all `n`.
        let mut outputs = Vec::with_capacity(n);
        for (idx, attempts, out) in collected {
            match out {
                Ok(o) => outputs.push(o),
                Err(e) => return Err(JobError::from_task_attempts(idx, e, attempts)),
            }
        }
        debug_assert_eq!(
            outputs.len(),
            n,
            "every task reports exactly once on a clean stage"
        );
        Ok(StageRun {
            outputs,
            peak_task_mem_bytes: peak.load(Ordering::Relaxed),
            wall_secs: started.elapsed().as_secs_f64(),
            retries: retries.load(Ordering::Relaxed),
            backoff_secs: backoff_micros.load(Ordering::Relaxed) as f64 / 1e6,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> LocalCluster {
        LocalCluster::new(ClusterConfig::laptop())
    }

    #[test]
    fn stage_runs_all_tasks_in_order() {
        let c = cluster();
        let run = c
            .run_stage((0..100).collect(), |ctx, x: i32| {
                assert_eq!(ctx.task as i32, x);
                Ok(x * 2)
            })
            .unwrap();
        assert_eq!(run.outputs, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn output_order_is_deterministic_under_skewed_task_durations() {
        // Early tasks run longest, so with multiple workers later tasks
        // finish first; the atomic-cursor queue must still return outputs
        // in task order.
        let c = cluster();
        let run = c
            .run_stage((0..32).collect(), |_, x: u64| {
                std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
                Ok(x)
            })
            .unwrap();
        assert_eq!(run.outputs, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn node_assignment_is_round_robin() {
        let c = cluster();
        assert_eq!(c.node_of_task(0), 0);
        assert_eq!(c.node_of_task(1), 1);
        assert_eq!(c.node_of_task(4), 0);
    }

    #[test]
    fn memory_budget_is_enforced() {
        let c = cluster();
        let budget = c.config().task_mem_bytes;
        let err = c
            .run_stage(vec![()], |ctx, ()| {
                ctx.alloc(budget)?;
                ctx.alloc(1)?; // over budget
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, JobError::OutOfMemory { task: 0, .. }));
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn free_restores_headroom_and_peak_persists() {
        let c = cluster();
        let run = c
            .run_stage(vec![()], |ctx, ()| {
                ctx.alloc(100)?;
                ctx.free(100);
                ctx.alloc(ctx.budget())?; // fits again
                Ok(())
            })
            .unwrap();
        assert_eq!(run.peak_task_mem_bytes, c.config().task_mem_bytes);
    }

    #[test]
    fn alloc_tracks_peak_across_frees() {
        let c = cluster();
        let run = c
            .run_stage(vec![()], |ctx, ()| {
                ctx.alloc(300)?;
                assert_eq!(ctx.peak(), 300);
                ctx.free(200);
                ctx.alloc(50)?; // used = 150, below the earlier peak
                assert_eq!(ctx.peak(), 300);
                ctx.alloc(400)?; // used = 550, new peak
                assert_eq!(ctx.peak(), 550);
                Ok(())
            })
            .unwrap();
        assert_eq!(run.peak_task_mem_bytes, 550);
    }

    #[test]
    fn alloc_saturates_near_u64_max() {
        let mut cfg = ClusterConfig::laptop();
        cfg.task_mem_bytes = u64::MAX;
        cfg.node_mem_bytes = u64::MAX;
        let c = LocalCluster::new(cfg);
        let run = c
            .run_stage(vec![()], |ctx, ()| {
                ctx.alloc(u64::MAX - 10)?;
                // Saturates to u64::MAX instead of wrapping to a tiny
                // total that would sail under the budget.
                ctx.alloc(u64::MAX)?;
                assert_eq!(ctx.peak(), u64::MAX);
                Ok(())
            })
            .unwrap();
        assert_eq!(run.peak_task_mem_bytes, u64::MAX);
    }

    #[test]
    fn failed_alloc_leaves_mem_used_unchanged() {
        let c = cluster();
        let budget = c.config().task_mem_bytes;
        c.run_stage(vec![()], |ctx, ()| {
            ctx.alloc(budget - 10)?;
            assert!(ctx.alloc(11).is_err());
            // The failed charge must not count: exactly 10 bytes of
            // headroom remain and the peak never saw the rejected total.
            ctx.alloc(10)?;
            assert_eq!(ctx.peak(), budget);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn lowest_failing_task_wins() {
        let c = cluster();
        let err = c
            .run_stage((0..50).collect(), |_, x: i32| {
                if x >= 10 {
                    Err(TaskError::Compute(format!("boom {x}")))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert!(matches!(err, JobError::TaskFailed { task: 10, .. }));
    }

    #[test]
    fn too_many_tasks_rejected() {
        let mut cfg = ClusterConfig::laptop();
        cfg.max_tasks = 5;
        let c = LocalCluster::new(cfg);
        let err = c.run_stage(vec![(); 6], |_, ()| Ok(())).unwrap_err();
        assert_eq!(err.annotation(), "T.M.T.");
    }

    #[test]
    fn worker_cap_honours_oversubscription_config() {
        use std::collections::HashSet;
        let mut cfg = ClusterConfig::laptop();
        cfg.host_worker_oversubscription = 1;
        let c = LocalCluster::new(cfg);
        let ids = Mutex::new(HashSet::new());
        c.run_stage(vec![(); 64], |_, ()| {
            ids.lock().unwrap().insert(std::thread::current().id());
            Ok(())
        })
        .unwrap();
        let host_par = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        assert!(ids.into_inner().unwrap().len() <= host_par.min(c.config().total_slots()));
    }

    #[test]
    fn broadcast_records_node_copies() {
        let c = cluster();
        c.broadcast(Phase::Repartition, 500);
        assert_eq!(c.ledger().broadcast_bytes(Phase::Repartition), 2000); // 4 nodes
    }

    #[test]
    fn empty_stage_is_fine() {
        let c = cluster();
        let run = c.run_stage(Vec::<()>::new(), |_, ()| Ok(0u8)).unwrap();
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        use crate::config::RetryPolicy;
        let cfg = ClusterConfig::laptop().with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_secs: 0.25,
        });
        let c = LocalCluster::new(cfg);
        let run = c
            .run_stage((0..8).collect(), |ctx, x: u32| {
                // Every task's first attempt loses a block; the retry
                // succeeds.
                if ctx.attempt == 0 {
                    Err(TaskError::Crashed { node: ctx.node })
                } else {
                    Ok(x * 10)
                }
            })
            .unwrap();
        assert_eq!(run.outputs, (0..8).map(|x| x * 10).collect::<Vec<_>>());
        assert_eq!(run.retries, 8);
        // 8 first-attempt failures × backoff_secs · 2^0 of modeled wait.
        assert!((run.backoff_secs - 8.0 * 0.25).abs() < 1e-6);
    }

    #[test]
    fn non_transient_failures_are_not_retried() {
        use crate::config::RetryPolicy;
        let cfg = ClusterConfig::laptop().with_retry(RetryPolicy {
            max_attempts: 5,
            backoff_secs: 0.0,
        });
        let c = LocalCluster::new(cfg);
        let attempts_seen = AtomicU64::new(0);
        let err = c
            .run_stage(vec![()], |_, ()| -> Result<(), TaskError> {
                attempts_seen.fetch_add(1, Ordering::Relaxed);
                Err(TaskError::Compute("deterministic bug".into()))
            })
            .unwrap_err();
        assert_eq!(attempts_seen.load(Ordering::Relaxed), 1);
        assert!(matches!(err, JobError::TaskFailed { task: 0, .. }));
        // Single attempt: no attempt count in the message.
        assert!(!err.to_string().contains("attempts"), "{err}");
    }

    #[test]
    fn exhausted_retries_report_the_attempt_count() {
        use crate::config::RetryPolicy;
        let cfg = ClusterConfig::laptop().with_retry(RetryPolicy {
            max_attempts: 4,
            backoff_secs: 0.0,
        });
        let c = LocalCluster::new(cfg);
        let err = c
            .run_stage(vec![()], |ctx, ()| -> Result<(), TaskError> {
                Err(TaskError::Crashed { node: ctx.node })
            })
            .unwrap_err();
        match &err {
            JobError::TaskFailed { task: 0, message } => {
                assert!(message.contains("4 attempts"), "{message}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn injected_crashes_recover_bit_identically() {
        use crate::chaos::FaultSpec;
        use crate::config::RetryPolicy;
        let cfg = ClusterConfig::laptop().with_retry(RetryPolicy {
            max_attempts: 6,
            backoff_secs: 0.0,
        });
        let c = LocalCluster::new(cfg);
        let plan = c.inject_faults(FaultSpec {
            crash_rate: 0.2,
            ..FaultSpec::quiet(17)
        });
        let run = c
            .run_stage((0..64).collect(), |_, x: u64| Ok(x * x))
            .unwrap();
        assert_eq!(run.outputs, (0..64).map(|x| x * x).collect::<Vec<_>>());
        assert!(plan.crashed() > 0, "a 20% crash rate over 64 tasks fires");
        assert_eq!(run.retries, plan.crashed());
        c.clear_faults();
        assert!(c.fault_plan().is_none());
    }

    #[test]
    fn gated_stage_streams_consumers_behind_their_producers() {
        // Tasks 0..4 are producers (ready at once); task 4 is a consumer
        // gated on all four. The consumer must observe every producer's
        // write — dispatch readiness is the only synchronization.
        let c = cluster();
        let produced = Mutex::new(Vec::new());
        let remaining = AtomicU64::new(4);
        let run = c
            .run_stage_gated(
                TenantId::ANONYMOUS,
                0,
                (0..5).collect(),
                (0..4).collect(),
                |ctx, x: usize, gate| {
                    assert_eq!(ctx.task, x);
                    if x < 4 {
                        produced.lock().unwrap().push(x);
                        if remaining.fetch_sub(1, Ordering::Relaxed) == 1 {
                            gate.mark_ready(4);
                        }
                        Ok(x * 10)
                    } else {
                        let seen = produced.lock().unwrap().len();
                        assert_eq!(seen, 4, "consumer ran before its producers");
                        Ok(seen)
                    }
                },
            )
            .unwrap();
        assert_eq!(run.outputs, vec![0, 10, 20, 30, 4]);
    }

    #[test]
    fn gated_stage_failure_drains_instead_of_deadlocking() {
        // Task 1 stays gated forever because its producer (task 0) fails
        // terminally; the stage must return the error, not hang.
        let c = cluster();
        let err = c
            .run_stage_gated(
                TenantId::ANONYMOUS,
                0,
                vec![0usize, 1],
                vec![0],
                |_, x, gate| {
                    if x == 0 {
                        Err(TaskError::Compute("producer bug".into()))
                    } else {
                        gate.mark_ready(1); // unreachable
                        Ok(x)
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(err, JobError::TaskFailed { task: 0, .. }));
    }

    #[test]
    fn gated_stage_retries_remark_readiness_idempotently() {
        use crate::config::RetryPolicy;
        let cfg = ClusterConfig::laptop().with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_secs: 0.0,
        });
        let c = LocalCluster::new(cfg);
        // The producer marks its consumer ready, then crashes; the retry
        // marks again. The consumer must still run exactly once.
        let consumer_runs = AtomicU64::new(0);
        let run = c
            .run_stage_gated(
                TenantId::ANONYMOUS,
                0,
                vec![0usize, 1],
                vec![0],
                |ctx, x, gate| {
                    if x == 0 {
                        gate.mark_ready(1);
                        if ctx.attempt == 0 {
                            return Err(TaskError::Crashed { node: ctx.node });
                        }
                        Ok(100)
                    } else {
                        consumer_runs.fetch_add(1, Ordering::Relaxed);
                        Ok(200)
                    }
                },
            )
            .unwrap();
        assert_eq!(run.outputs, vec![100, 200]);
        assert_eq!(consumer_runs.load(Ordering::Relaxed), 1);
        assert_eq!(run.retries, 1);
    }

    #[test]
    fn scale_to_rehomes_resident_blocks_and_bumps_the_epoch() {
        use crate::rebalance::home_node;
        use distme_matrix::{Block, BlockId, DenseBlock};
        let mut c = cluster(); // 4 nodes
        let uid = 77;
        let ids = [BlockId::new(0, 0), BlockId::new(1, 2), BlockId::new(3, 1)];
        for id in ids {
            let key = StoreKey::operand(uid, id);
            let blk = Arc::new(Block::Dense(DenseBlock::from_fn(4, 4, |i, j| {
                (i + j + id.row as usize) as f64
            })));
            c.stores().ingest(home_node(id, 0, 4), key, blk);
        }
        assert_eq!(c.epoch(), 0);
        let report = c.scale_to(9).unwrap();
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.config().nodes, 9);
        assert_eq!(c.stores().num_nodes(), 9);
        assert_eq!((report.from_nodes, report.to_nodes), (4, 9));
        assert!(report.moves > 0);
        assert_eq!(report.stats.rebalanced_moves, report.moves);
        assert_eq!(report.stats.rebalanced_payload_bytes, report.payload_bytes);
        // Migration traffic is ledger'd under its own phase and stays out
        // of the per-job transport counters.
        assert_eq!(
            c.ledger().shuffle_bytes(Phase::Rebalance),
            report.payload_bytes
        );
        assert_eq!(c.transport_stats().payload_bytes(), 0);
        // Every block now sits at both of its homes under the 9-node grid
        // and nowhere else.
        for id in ids {
            let key = StoreKey::operand(uid, id);
            let homes: std::collections::BTreeSet<usize> =
                [home_node(id, 0, 9), home_node(id, 1, 9)]
                    .into_iter()
                    .collect();
            for n in 0..9 {
                assert_eq!(
                    c.stores().node(n).contains(&key),
                    homes.contains(&n),
                    "block {id:?} on node {n}"
                );
            }
        }
    }

    #[test]
    fn scale_to_current_size_is_a_no_op() {
        let mut c = cluster();
        let report = c.scale_to(4).unwrap();
        assert_eq!(c.epoch(), 0);
        assert_eq!(report.moves, 0);
        assert!(c.membership().log().is_empty());
    }

    #[test]
    fn shrink_drains_the_leaving_tail() {
        use crate::rebalance::home_node;
        use distme_matrix::{Block, BlockId, DenseBlock};
        let mut c = LocalCluster::new(ClusterConfig {
            nodes: 9,
            ..ClusterConfig::laptop()
        });
        let uid = 5;
        // Park a block on a tail node that will not survive the shrink.
        let id = BlockId::new(2, 2);
        let key = StoreKey::operand(uid, id);
        let blk = Arc::new(Block::Dense(DenseBlock::from_fn(3, 3, |i, j| {
            (i * j) as f64
        })));
        c.stores().ingest(8, key, blk);
        let report = c.scale_to(4).unwrap();
        assert_eq!(c.stores().num_nodes(), 4);
        assert!(report.moves > 0);
        let homes: std::collections::BTreeSet<usize> = [home_node(id, 0, 4), home_node(id, 1, 4)]
            .into_iter()
            .collect();
        for n in 0..4 {
            assert_eq!(c.stores().node(n).contains(&key), homes.contains(&n));
        }
    }

    #[test]
    fn decommission_recovers_from_replicas_or_reports_the_loss() {
        use distme_matrix::{Block, BlockId, DenseBlock};
        let blk = || {
            Arc::new(Block::Dense(DenseBlock::from_fn(2, 2, |i, j| {
                (i + 2 * j) as f64
            })))
        };
        // Replicated block: survives the loss of one holder.
        let mut c = cluster();
        let replicated = StoreKey::operand(1, BlockId::new(0, 0));
        c.stores().ingest(1, replicated, blk());
        c.stores().ingest(3, replicated, blk());
        let report = c.decommission_node(1).unwrap();
        assert_eq!(c.config().nodes, 3);
        assert_eq!(c.epoch(), 1);
        assert_eq!(report.lost_blocks, 0);
        let resident = c.stores().resident_keys();
        assert!(resident.contains_key(&replicated), "lineage copy re-homed");

        // Sole-copy block: the loss is typed and the matrix is evicted.
        let mut c = cluster();
        let sole = StoreKey::operand(2, BlockId::new(1, 1));
        c.stores().ingest(2, sole, blk());
        let err = c.decommission_node(2).unwrap_err();
        assert_eq!(
            err,
            JobError::NodeDecommissioned {
                node: 2,
                lost_blocks: 1
            }
        );
        assert_eq!(err.annotation(), "N.D.");
        // The epoch still bumps (the node is gone either way) and the
        // cluster stays usable at 3 nodes with the lost matrix evicted.
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.config().nodes, 3);
        assert!(c.stores().resident_keys().is_empty());
    }

    #[test]
    fn blacked_out_node_fails_the_job_cleanly() {
        use crate::chaos::{Blackout, FaultSpec};
        let c = cluster();
        c.inject_faults(FaultSpec {
            blackouts: vec![Blackout {
                node: 0,
                from_stage: 0,
                until_stage: 10,
            }],
            ..FaultSpec::quiet(0)
        });
        // Task 0 lands on node 0 (round-robin) and the node stays dark for
        // the whole retry budget: the job must fail with a typed error,
        // never hang or panic.
        let err = c
            .run_stage((0..8).collect(), |_, x: u32| Ok(x))
            .unwrap_err();
        match &err {
            JobError::TaskFailed { task: 0, message } => {
                assert!(message.contains("unreachable"), "{message}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
