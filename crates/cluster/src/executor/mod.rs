//! Stage executors.
//!
//! A distributed job is a sequence of *stages* (Spark's unit of scheduling
//! between shuffles). Both executors consume the same stage structure:
//!
//! * [`real`] — threads + serialized blocks; validates correctness and
//!   measures real communication at laptop scale;
//! * [`sim`] — virtual time + resource models; reproduces the paper-scale
//!   experiments, including failure modes.

pub mod real;
pub mod sim;
