//! # distme-cluster — distributed data-parallel substrate
//!
//! DistME is built on Apache Spark: RDDs of `(BlockId, Block)` records,
//! shuffle-based repartitioning, torrent broadcast, `Tc` concurrent task
//! slots per node, and per-task memory budgets θt (§5, §6.1). No Spark
//! cluster exists in this environment, so this crate *is* the substitute
//! substrate — the pieces of a distributed data-parallel framework that the
//! paper's method interacts with:
//!
//! * [`ClusterConfig`] — cluster topology and the calibration constants of
//!   the paper's testbed (9 slaves, 10 tasks/node, 10 GbE, θt = 6 GB,
//!   one GTX 1080 Ti per node);
//! * [`PartitionScheme`] — the Row / Column / Hash / Grid block-partitioning
//!   schemes of §2.1 (Fig. 1);
//! * two executors sharing one task model:
//!   * [`executor::real::LocalCluster`] runs stages on real threads with
//!     real serialized blocks, counting every byte that crosses a (virtual)
//!     node boundary — the correctness path and the source of measured
//!     communication volumes at laptop scale;
//!   * [`executor::sim::SimCluster`] replays the same stage structure in
//!     virtual time against NIC / disk / CPU / GPU resource models — the
//!     paper-scale path, including the O.O.M. / T.O. / E.D.C. failure modes
//!     annotated in Figs. 6–8;
//! * [`ShuffleLedger`] — byte accounting shared by both executors;
//! * [`JobStats`] — per-phase elapsed/communication breakdowns backing
//!   Figs. 6(d–f), 7(e–f) and Table 5.

//! * [`chaos::FaultPlan`] — seeded, deterministic fault injection (dropped
//!   and corrupted deliveries, task crashes, node blackouts) driving the
//!   retry/redelivery recovery machinery in [`transport`] and
//!   [`executor::real`];
//! * [`membership`] + [`rebalance`] — the *elastic* half of the title:
//!   epoch-tracked node commissioning/decommissioning with deterministic
//!   block re-homing onto the resized grid ([`Phase::Rebalance`] traffic),
//!   lineage recovery from surviving replicas, and a utilization-band
//!   autoscaler ([`ElasticPolicy`]);
//! * [`coding`] — coded replication ([`ReplicationPolicy`]): XOR /
//!   Reed–Solomon-lite parity groups materialized at placement time so
//!   recovery reconstructs a lost block from any k-of-n group survivors
//!   instead of requiring the producer copy (recovery precedence: parity
//!   decode → lineage → typed failure).

pub mod backend;
pub mod chaos;
pub mod coding;
pub mod config;
pub mod executor;
pub mod failure;
pub mod membership;
pub mod partitioner;
pub mod rebalance;
pub mod scheduler;
pub mod shuffle;
pub mod stats;
pub mod store;
pub mod transport;

pub use backend::ExecutionBackend;
pub use chaos::{Blackout, FaultPlan, FaultSpec};
pub use coding::{CodingError, ParityMember, ParityPayload, ReplicationPolicy};
pub use config::{ClusterConfig, RetryPolicy, SchedulerConfig};
pub use executor::real::{LocalCluster, StageGate, TaskCtx};
pub use executor::sim::{ComputeWork, SimCluster, SimTask, StageOutcome};
pub use failure::{JobError, TaskError};
pub use membership::{ElasticPolicy, Membership, MembershipEvent};
pub use partitioner::PartitionScheme;
pub use rebalance::{BlockMove, RebalancePlan, RebalanceReport};
pub use scheduler::{AdmissionTicket, Gang, QueueWaitStats, Scheduler, SchedulerLoad, TaskGrant};
pub use shuffle::{LedgerSnapshot, ShuffleLedger};
pub use stats::{JobStats, Phase, PhaseStats, TenantId};
pub use store::{
    BlockSource, BlockView, ClusterStores, NodeStore, PinGuard, StoreKey, StoreKind,
    RESIDENCY_WINDOW_JOBS,
};
pub use transport::{DeliveryBoard, ScratchPool, Transport, TransportStats, WireMove};
