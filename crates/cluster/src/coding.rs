//! Coded replication: k-of-n block recovery without lineage recompute.
//!
//! Placement already dual-homes every block, but a block whose two salted
//! homes coincide has a single physical copy — lose that node and PR 5's
//! decommission surfaces a typed [`NodeDecommissioned`] failure, and PR 4's
//! blackout recovery must replay the full lineage. This module treats loss
//! as a *planning input* instead (Kiani et al.'s coded cuboid
//! partitioning): the copy-0 blocks of each matrix are bucketed by their
//! canonical home and grouped so every group's members live on **distinct**
//! canonical homes, then each group gets one XOR parity stripe
//! ([`ReplicationPolicy::Xor`], erasure budget 1) or a RAID-6-style P+Q
//! pair over GF(256) ([`ReplicationPolicy::RsLite`], budget 2),
//! materialized on a node that is none of the members' homes. A single
//! node loss therefore erases at most one member per group, and any
//! k-of-n survivors reconstruct the missing block bit-identically from
//! the parity — no producer copy, no lineage recompute.
//!
//! Parity is computed over the **canonical wire frames**
//! (`codec::encode_into` bytes, CRC and all) zero-padded to the group's
//! longest frame, so a decoded stripe is decodable by `codec::decode_slice`
//! into a block whose content is bit-identical to the original. The parity
//! stripe itself travels inside an ordinary dense block (a length-prefixed
//! byte payload stored as f64 bit patterns), stored under
//! [`StoreKind::Parity`] keys that arithmetic and `BlockView` never see.
//!
//! Recovery precedence everywhere: parity decode → lineage → typed
//! failure. Beyond-budget erasures return [`CodingError`], never wrong
//! bytes.
//!
//! [`NodeDecommissioned`]: crate::failure::JobError::NodeDecommissioned
//! [`StoreKind::Parity`]: crate::store::StoreKind

use crate::rebalance::home_node;
use crate::store::{ClusterStores, StoreKey};
use bytes::BytesMut;
use distme_matrix::{codec, Block, BlockId, DenseBlock};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// How much derived redundancy placement materializes per coded group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationPolicy {
    /// No parity: placement and recovery behave exactly as before coding
    /// existed (the default — every pre-coding byte-identity suite runs
    /// under this).
    #[default]
    Off,
    /// One XOR parity block per group: any single erased member decodes
    /// from the survivors. Storage overhead ≈ 1/group_size.
    Xor,
    /// Reed–Solomon-lite (RAID-6 P+Q over GF(256)): any two erased members
    /// decode. Storage overhead ≈ 2/group_size.
    RsLite,
}

impl ReplicationPolicy {
    /// Parity blocks per group — also the erasure budget (`m` of the
    /// `k + m` code).
    pub fn parity_count(self) -> usize {
        match self {
            ReplicationPolicy::Off => 0,
            ReplicationPolicy::Xor => 1,
            ReplicationPolicy::RsLite => 2,
        }
    }

    /// Human-readable knob name (config validation messages).
    pub fn name(self) -> &'static str {
        match self {
            ReplicationPolicy::Off => "off",
            ReplicationPolicy::Xor => "xor",
            ReplicationPolicy::RsLite => "rs-lite",
        }
    }
}

/// Typed decode failure: more group members erased than the available
/// parity can reconstruct. The caller falls back to lineage (or surfaces a
/// typed job error) — a failed decode never yields wrong bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodingError {
    /// Erased data members in the group.
    pub lost: usize,
    /// Erasures the surviving parity could have absorbed.
    pub budget: usize,
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "erasure budget exceeded: {} member(s) lost, surviving parity decodes at most {}",
            self.lost, self.budget
        )
    }
}

impl std::error::Error for CodingError {}

/// Upper bound on coded-group size: bounds both the decode fan-in and the
/// blast radius of a beyond-budget loss.
pub const MAX_GROUP: usize = 8;

// ---------------------------------------------------------------------------
// GF(256) arithmetic (polynomial 0x11d), built at compile time.
// ---------------------------------------------------------------------------

const fn gf_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
        i += 1;
    }
    // Mirror the cycle so `exp[log a + log b]` and `exp[255 + log a - log b]`
    // never need a modulo.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const GF: ([u8; 512], [u8; 256]) = gf_tables();
const GF_EXP: [u8; 512] = GF.0;
const GF_LOG: [u8; 256] = GF.1;

fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        GF_EXP[GF_LOG[a as usize] as usize + GF_LOG[b as usize] as usize]
    }
}

fn gf_div(a: u8, b: u8) -> u8 {
    debug_assert!(b != 0, "GF(256) division by zero");
    if a == 0 {
        0
    } else {
        GF_EXP[255 + GF_LOG[a as usize] as usize - GF_LOG[b as usize] as usize]
    }
}

/// The RS generator coefficient of member `i`: `g^i` with `g = 2`.
fn gen_coef(i: usize) -> u8 {
    GF_EXP[i]
}

fn xor_into(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// `dst ^= coef · src` over GF(256), via a per-coefficient product table
/// (one 256-byte build amortized over the whole stripe).
fn mul_xor_into(dst: &mut [u8], src: &[u8], coef: u8) {
    match coef {
        0 => {}
        1 => xor_into(dst, src),
        _ => {
            let mut table = [0u8; 256];
            for (b, t) in table.iter_mut().enumerate() {
                *t = gf_mul(coef, b as u8);
            }
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= table[*s as usize];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stripe-level encode / decode.
// ---------------------------------------------------------------------------

/// Encodes the parity stripes for one group. `stripes[i]` is member `i`'s
/// frame zero-padded to the common stripe length; returns `parity_count`
/// stripes (P = ⊕dᵢ, then Q = ⊕ gⁱ·dᵢ).
pub fn encode_stripes(stripes: &[Vec<u8>], parity_count: usize, stripe_len: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(parity_count);
    for p in 0..parity_count {
        let mut parity = vec![0u8; stripe_len];
        for (i, d) in stripes.iter().enumerate() {
            debug_assert_eq!(d.len(), stripe_len);
            match p {
                0 => xor_into(&mut parity, d),
                _ => mul_xor_into(&mut parity, d, gen_coef(i)),
            }
        }
        out.push(parity);
    }
    out
}

/// Reconstructs the erased members of one group in place. `data[i]` is
/// `Some` for survivors and `None` for erasures; `parity[p]` likewise for
/// the parity stripes (`parity[0]` = P, `parity[1]` = Q). On success every
/// `data[i]` is `Some` and bit-identical to what was encoded.
///
/// # Errors
/// [`CodingError`] when more members are erased than the surviving parity
/// can decode — `data` is left untouched, never filled with wrong bytes.
pub fn decode_group(
    data: &mut [Option<Vec<u8>>],
    parity: &[Option<&[u8]>],
    stripe_len: usize,
) -> Result<(), CodingError> {
    let missing: Vec<usize> = data
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_none())
        .map(|(i, _)| i)
        .collect();
    let p = parity.first().copied().flatten();
    let q = parity.get(1).copied().flatten();
    let budget = usize::from(p.is_some()) + usize::from(q.is_some());
    if missing.len() > budget {
        return Err(CodingError {
            lost: missing.len(),
            budget,
        });
    }
    match missing.as_slice() {
        [] => Ok(()),
        [j] => {
            let j = *j;
            let rebuilt = if let Some(p) = p {
                // d_j = P ⊕ ⊕_{i≠j} d_i
                let mut acc = p.to_vec();
                for d in data.iter().flatten() {
                    xor_into(&mut acc, d);
                }
                acc
            } else {
                // d_j = (Q ⊕ ⊕_{i≠j} gⁱ·d_i) / gʲ
                let q = q.expect("budget covers the erasure");
                let mut acc = q.to_vec();
                for (i, d) in data.iter().enumerate() {
                    if let Some(d) = d {
                        mul_xor_into(&mut acc, d, gen_coef(i));
                    }
                }
                let inv = gf_div(1, gen_coef(j));
                let mut rebuilt = vec![0u8; stripe_len];
                mul_xor_into(&mut rebuilt, &acc, inv);
                rebuilt
            };
            data[j] = Some(rebuilt);
            Ok(())
        }
        [a, b] => {
            // RAID-6 two-erasure decode: with x = d_a ⊕ d_b and
            // y = gᵃ·d_a ⊕ gᵇ·d_b,
            //   d_b = (y ⊕ gᵃ·x) / (gᵃ ⊕ gᵇ),   d_a = x ⊕ d_b.
            let (a, b) = (*a, *b);
            let (p, q) = (
                p.expect("budget 2 requires P"),
                q.expect("budget 2 requires Q"),
            );
            let mut x = p.to_vec();
            let mut y = q.to_vec();
            for (i, d) in data.iter().enumerate() {
                if let Some(d) = d {
                    xor_into(&mut x, d);
                    mul_xor_into(&mut y, d, gen_coef(i));
                }
            }
            let (ga, gb) = (gen_coef(a), gen_coef(b));
            mul_xor_into(&mut y, &x, ga); // y ⊕= gᵃ·x
            let inv = gf_div(1, ga ^ gb);
            let mut db = vec![0u8; stripe_len];
            mul_xor_into(&mut db, &y, inv);
            xor_into(&mut x, &db);
            data[a] = Some(x);
            data[b] = Some(db);
            Ok(())
        }
        _ => unreachable!("missing.len() <= budget <= 2"),
    }
}

// ---------------------------------------------------------------------------
// Group assignment and parity placement.
// ---------------------------------------------------------------------------

/// Largest group the grid supports: every member needs a distinct canonical
/// home and the parity block(s) need homes of their own.
pub fn group_size_cap(nodes: usize, policy: ReplicationPolicy) -> usize {
    nodes.saturating_sub(policy.parity_count()).min(MAX_GROUP)
}

/// Deterministic group assignment for a matrix's copy-0 keys: bucket by
/// canonical home (`home_node(id, 0, nodes)`), then take one block per
/// bucket per round (node order) and chunk each round to the grid's cap —
/// so members of a group always sit on **distinct** canonical homes, and a
/// single node loss erases at most one sole-copy member per group.
pub fn assign_groups(
    keys: &[StoreKey],
    nodes: usize,
    policy: ReplicationPolicy,
) -> Vec<Vec<StoreKey>> {
    let cap = group_size_cap(nodes, policy);
    if cap == 0 {
        return Vec::new();
    }
    let mut buckets: BTreeMap<usize, Vec<StoreKey>> = BTreeMap::new();
    for k in keys {
        if k.copy == 0 && !k.is_parity() {
            buckets
                .entry(home_node(k.id, 0, nodes))
                .or_default()
                .push(*k);
        }
    }
    let mut groups = Vec::new();
    let mut round = 0usize;
    loop {
        let members: Vec<StoreKey> = buckets
            .values()
            .filter_map(|b| b.get(round).copied())
            .collect();
        if members.is_empty() {
            break;
        }
        for chunk in members.chunks(cap) {
            groups.push(chunk.to_vec());
        }
        round += 1;
    }
    groups
}

/// Deterministic parity placement: probe the placement hash at salts ≥ 3
/// (0–2 are the data spaces) until a node that is neither a member's
/// canonical home nor already holding this group's other parity turns up.
/// The group-size cap guarantees such a node exists.
pub fn parity_home(leader: BlockId, avoid: &BTreeSet<usize>, nodes: usize) -> usize {
    for salt in 3..3 + 4 * nodes as u64 {
        let cand = home_node(leader, salt, nodes);
        if !avoid.contains(&cand) {
            return cand;
        }
    }
    (0..nodes)
        .find(|n| !avoid.contains(n))
        .expect("group-size cap leaves a free node for parity")
}

// ---------------------------------------------------------------------------
// Parity payload: a self-describing byte envelope inside a dense block.
// ---------------------------------------------------------------------------

const PARITY_MAGIC: u32 = 0x4350_4152; // "CPAR"
const PARITY_VERSION: u8 = 1;

/// One group member as recorded in a parity block's header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityMember {
    /// Grid position of the member.
    pub id: BlockId,
    /// Producer copy (always 0 today — only copy-0 keys are coded).
    pub copy: u32,
    /// The member's exact canonical frame length (its stripe is
    /// zero-padded beyond this).
    pub frame_len: u64,
}

/// Decoded header + stripe of one parity block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityPayload {
    /// Which scheme encoded this group.
    pub policy: ReplicationPolicy,
    /// Index of this stripe (0 = P, 1 = Q).
    pub parity_index: u8,
    /// The group's members, in member-index order.
    pub members: Vec<ParityMember>,
    /// The parity stripe (group's longest frame, zero-padded).
    pub stripe: Vec<u8>,
}

/// Serializes a parity payload into an ordinary dense block: a length
/// prefix plus the raw bytes as f64 bit patterns (bit-exact through any
/// store or codec hop, untouched by arithmetic — parity keys are never
/// operands).
pub fn pack_parity(payload: &ParityPayload) -> Block {
    let mut bytes = Vec::with_capacity(32 + 20 * payload.members.len() + payload.stripe.len());
    bytes.extend_from_slice(&PARITY_MAGIC.to_le_bytes());
    bytes.push(PARITY_VERSION);
    bytes.push(match payload.policy {
        ReplicationPolicy::Off => 0,
        ReplicationPolicy::Xor => 1,
        ReplicationPolicy::RsLite => 2,
    });
    bytes.push(payload.parity_index);
    bytes.push(u8::try_from(payload.members.len()).expect("group fits MAX_GROUP"));
    bytes.extend_from_slice(&(payload.stripe.len() as u64).to_le_bytes());
    for m in &payload.members {
        bytes.extend_from_slice(&m.id.row.to_le_bytes());
        bytes.extend_from_slice(&m.id.col.to_le_bytes());
        bytes.extend_from_slice(&m.copy.to_le_bytes());
        bytes.extend_from_slice(&m.frame_len.to_le_bytes());
    }
    bytes.extend_from_slice(&payload.stripe);

    let mut words = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    words.push(f64::from_bits(bytes.len() as u64));
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(f64::from_bits(u64::from_le_bytes(w)));
    }
    let cols = words.len();
    Block::Dense(DenseBlock::from_vec(1, cols, words).expect("length matches"))
}

/// Parses a block produced by [`pack_parity`]. `None` if the block is not a
/// parity envelope (wrong shape, magic, or version).
pub fn unpack_parity(block: &Block) -> Option<ParityPayload> {
    let Block::Dense(d) = block else { return None };
    let data = d.data();
    let len = data.first()?.to_bits() as usize;
    let mut bytes = Vec::with_capacity((data.len() - 1) * 8);
    for w in &data[1..] {
        bytes.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    if len > bytes.len() {
        return None;
    }
    bytes.truncate(len);

    let mut r = Reader(&bytes);
    if r.u32()? != PARITY_MAGIC || r.u8()? != PARITY_VERSION {
        return None;
    }
    let policy = match r.u8()? {
        1 => ReplicationPolicy::Xor,
        2 => ReplicationPolicy::RsLite,
        _ => return None,
    };
    let parity_index = r.u8()?;
    let count = r.u8()? as usize;
    let stripe_len = r.u64()? as usize;
    let mut members = Vec::with_capacity(count);
    for _ in 0..count {
        members.push(ParityMember {
            id: BlockId::new(r.u32()?, r.u32()?),
            copy: r.u32()?,
            frame_len: r.u64()?,
        });
    }
    let stripe = r.take(stripe_len)?.to_vec();
    Some(ParityPayload {
        policy,
        parity_index,
        members,
        stripe,
    })
}

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

// ---------------------------------------------------------------------------
// Store-level encode and reconstruct.
// ---------------------------------------------------------------------------

/// A block's canonical wire frame — the bytes parity is computed over.
fn frame_bytes(block: &Block) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(codec::encoded_len(block) as usize);
    codec::encode_into(block, &mut buf);
    buf.to_vec()
}

fn padded(frame: Vec<u8>, stripe_len: usize) -> Vec<u8> {
    let mut f = frame;
    f.resize(stripe_len, 0);
    f
}

/// Materializes parity for every copy-0 block of `matrix` currently
/// resident, grouped deterministically over the `nodes`-node grid. A no-op
/// (returns 0) when the policy is off, the grid is too small to place
/// parity off-member, or the matrix already has parity resident. Returns
/// the number of parity blocks installed.
pub fn encode_matrix_parity(
    stores: &ClusterStores,
    matrix: u64,
    nodes: usize,
    policy: ReplicationPolicy,
) -> u64 {
    let m = policy.parity_count();
    if m == 0 || group_size_cap(nodes, policy) == 0 {
        return 0;
    }
    let snapshot = stores.resident_keys();
    let mut keys = Vec::new();
    for (k, holders) in &snapshot {
        if k.matrix != matrix {
            continue;
        }
        if k.is_parity() {
            return 0; // already coded — encoding is idempotent per matrix
        }
        if k.copy == 0 && !holders.is_empty() {
            keys.push((*k, *holders.first().expect("non-empty holder set")));
        }
    }
    let groups = assign_groups(
        &keys.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        nodes,
        policy,
    );
    let holder_of: BTreeMap<StoreKey, usize> = keys.into_iter().collect();

    let mut installed = 0u64;
    for group in groups {
        let mut stripes = Vec::with_capacity(group.len());
        let mut members = Vec::with_capacity(group.len());
        let mut stripe_len = 0usize;
        let mut frames = Vec::with_capacity(group.len());
        for k in &group {
            let holder = holder_of[k];
            let Some(blk) = stores.node(holder).get(k) else {
                return installed; // concurrent eviction: abandon quietly
            };
            let frame = frame_bytes(&blk);
            stripe_len = stripe_len.max(frame.len());
            members.push(ParityMember {
                id: k.id,
                copy: k.copy,
                frame_len: frame.len() as u64,
            });
            frames.push(frame);
        }
        for frame in frames {
            stripes.push(padded(frame, stripe_len));
        }
        let parity_stripes = encode_stripes(&stripes, m, stripe_len);

        let leader = group[0].id;
        let mut avoid: BTreeSet<usize> = group.iter().map(|k| home_node(k.id, 0, nodes)).collect();
        for (p, stripe) in parity_stripes.into_iter().enumerate() {
            let home = parity_home(leader, &avoid, nodes);
            avoid.insert(home);
            let payload = ParityPayload {
                policy,
                parity_index: p as u8,
                members: members.clone(),
                stripe,
            };
            stores.ingest(
                home,
                StoreKey::parity(matrix, leader, p as u32),
                Arc::new(pack_parity(&payload)),
            );
            installed += 1;
        }
    }
    installed
}

/// Attempts a k-of-n reconstruction of `target` (a copy-0 data key) from
/// its coded group's survivors, reading only stores other than `exclude`
/// and treating `target` itself as erased (so a success is a genuine
/// decode, never a trivial copy). Returns the rebuilt block — content
/// bit-identical to the original — and its frame length in bytes, or
/// `None` when no parity covers the key or the erasure budget is exceeded.
pub fn reconstruct_block(
    stores: &ClusterStores,
    target: StoreKey,
    exclude: Option<usize>,
) -> Option<(Block, u64)> {
    if target.is_parity() || target.copy != 0 {
        return None;
    }
    // Find the group: scan resident parity envelopes of the same matrix.
    let mut group: Option<(StoreKey, ParityPayload)> = None;
    let mut envelopes: BTreeMap<StoreKey, ParityPayload> = BTreeMap::new();
    for n in 0..stores.num_nodes() {
        if Some(n) == exclude {
            continue;
        }
        for key in stores.node(n).keys() {
            if key.matrix != target.matrix || !key.is_parity() || envelopes.contains_key(&key) {
                continue;
            }
            let blk = stores.node(n).get(&key)?;
            let payload = unpack_parity(&blk)?;
            if payload
                .members
                .iter()
                .any(|m| m.id == target.id && m.copy == target.copy)
            {
                if group.is_none() {
                    group = Some((key, payload.clone()));
                }
                envelopes.insert(key, payload);
            }
        }
    }
    let (leader_key, payload) = group?;
    let stripe_len = payload.stripe.len();

    // Gather survivor member stripes (the target stays erased).
    let mut target_idx = None;
    let mut data: Vec<Option<Vec<u8>>> = Vec::with_capacity(payload.members.len());
    for (i, m) in payload.members.iter().enumerate() {
        if m.id == target.id && m.copy == target.copy {
            target_idx = Some(i);
            data.push(None);
            continue;
        }
        let key = StoreKey::replica(target.matrix, m.id, m.copy);
        let blk = (0..stores.num_nodes())
            .filter(|&n| Some(n) != exclude)
            .find_map(|n| stores.node(n).get(&key));
        data.push(blk.map(|b| padded(frame_bytes(&b), stripe_len)));
    }
    let target_idx = target_idx?;

    // Collect the group's parity stripes that survived.
    let parity_count = payload.policy.parity_count();
    let mut parity_stripes: Vec<Option<Vec<u8>>> = vec![None; parity_count];
    for (key, env) in &envelopes {
        debug_assert_eq!(key.id, leader_key.id);
        if (env.parity_index as usize) < parity_count {
            parity_stripes[env.parity_index as usize] = Some(env.stripe.clone());
        }
    }
    let parity_refs: Vec<Option<&[u8]>> = parity_stripes.iter().map(|p| p.as_deref()).collect();

    decode_group(&mut data, &parity_refs, stripe_len).ok()?;

    let frame_len = payload.members[target_idx].frame_len as usize;
    let stripe = data[target_idx].take().expect("decode filled the erasure");
    let block = codec::decode_slice(&stripe[..frame_len]).ok()?;
    Some((block, frame_len as u64))
}

/// Matrix uids that currently have parity resident — the set to re-encode
/// after a membership change invalidates group assignment.
pub fn matrices_with_parity(stores: &ClusterStores) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    for n in 0..stores.num_nodes() {
        for key in stores.node(n).keys() {
            if key.is_parity() {
                out.insert(key.matrix);
            }
        }
    }
    out
}

/// Drops every parity key from every store. Group assignment and parity
/// placement are functions of the node count, so a membership change
/// invalidates all parity; callers rebalance the data normally and then
/// re-encode via [`encode_matrix_parity`].
pub fn evict_all_parity(stores: &ClusterStores) {
    for n in 0..stores.num_nodes() {
        let store = stores.node(n);
        for key in store.keys() {
            if key.is_parity() {
                store.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::CsrBlock;
    use proptest::prelude::*;

    fn dense(seed: u64, r: usize, c: usize) -> Block {
        let mut state = seed | 1;
        Block::Dense(DenseBlock::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 2000) as f64 / 100.0 - 10.0
        }))
    }

    fn sparse(seed: u64, r: usize, c: usize, every: usize) -> Block {
        let mut state = seed | 1;
        let mut trips = Vec::new();
        for i in 0..r {
            for j in 0..c {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                if ((state >> 33) as usize).is_multiple_of(every) {
                    trips.push((i, j, ((state >> 40) % 19) as f64 - 9.0));
                }
            }
        }
        Block::Sparse(CsrBlock::from_triplets(r, c, trips).expect("valid triplets"))
    }

    fn mixed_blocks(seed: u64, n: usize) -> Vec<Block> {
        (0..n)
            .map(|i| {
                let s = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let (r, c) = (1 + (s % 13) as usize, 1 + ((s >> 8) % 13) as usize);
                // Bit 1, not bit 0: the `| 1` above pins bit 0, which would
                // make this branch unreachable and the mix all-sparse.
                if s & 2 == 0 {
                    dense(s, r, c)
                } else {
                    sparse(s, r, c, 1 + (s >> 16) as usize % 6)
                }
            })
            .collect()
    }

    fn roundtrip(blocks: &[Block], policy: ReplicationPolicy, erased: &[usize]) {
        let frames: Vec<Vec<u8>> = blocks.iter().map(frame_bytes).collect();
        let stripe_len = frames.iter().map(Vec::len).max().unwrap();
        let stripes: Vec<Vec<u8>> = frames
            .iter()
            .map(|f| padded(f.clone(), stripe_len))
            .collect();
        let parity = encode_stripes(&stripes, policy.parity_count(), stripe_len);
        let mut data: Vec<Option<Vec<u8>>> = stripes
            .iter()
            .enumerate()
            .map(|(i, s)| (!erased.contains(&i)).then(|| s.clone()))
            .collect();
        let parity_refs: Vec<Option<&[u8]>> = parity.iter().map(|p| Some(p.as_slice())).collect();
        decode_group(&mut data, &parity_refs, stripe_len).expect("within budget");
        for (i, frame) in frames.iter().enumerate() {
            let got = data[i].as_ref().unwrap();
            assert_eq!(&got[..frame.len()], &frame[..], "member {i} bytes differ");
            let decoded = codec::decode_slice(&got[..frame.len()]).expect("valid frame");
            assert_eq!(&decoded, &blocks[i], "member {i} block differs");
        }
    }

    #[test]
    fn xor_round_trips_a_single_erasure() {
        let blocks = mixed_blocks(7, 5);
        for erased in 0..blocks.len() {
            roundtrip(&blocks, ReplicationPolicy::Xor, &[erased]);
        }
    }

    #[test]
    fn rs_lite_round_trips_any_double_erasure() {
        let blocks = mixed_blocks(21, 6);
        for a in 0..blocks.len() {
            for b in a + 1..blocks.len() {
                roundtrip(&blocks, ReplicationPolicy::RsLite, &[a, b]);
            }
        }
    }

    #[test]
    fn beyond_budget_is_a_typed_error_and_leaves_data_untouched() {
        let blocks = mixed_blocks(3, 4);
        let frames: Vec<Vec<u8>> = blocks.iter().map(frame_bytes).collect();
        let stripe_len = frames.iter().map(Vec::len).max().unwrap();
        let stripes: Vec<Vec<u8>> = frames
            .iter()
            .map(|f| padded(f.clone(), stripe_len))
            .collect();
        let parity = encode_stripes(&stripes, 1, stripe_len);
        let mut data: Vec<Option<Vec<u8>>> = vec![
            None,
            None,
            Some(stripes[2].clone()),
            Some(stripes[3].clone()),
        ];
        let err = decode_group(&mut data, &[Some(parity[0].as_slice())], stripe_len).unwrap_err();
        assert_eq!(err, CodingError { lost: 2, budget: 1 });
        assert!(data[0].is_none() && data[1].is_none(), "no wrong bytes");
    }

    #[test]
    fn q_only_decode_recovers_when_p_is_also_lost() {
        // RS-lite with P erased alongside one data member: Q alone decodes.
        let blocks = mixed_blocks(11, 4);
        let frames: Vec<Vec<u8>> = blocks.iter().map(frame_bytes).collect();
        let stripe_len = frames.iter().map(Vec::len).max().unwrap();
        let stripes: Vec<Vec<u8>> = frames
            .iter()
            .map(|f| padded(f.clone(), stripe_len))
            .collect();
        let parity = encode_stripes(&stripes, 2, stripe_len);
        let mut data: Vec<Option<Vec<u8>>> = stripes.iter().cloned().map(Some).collect();
        data[2] = None;
        decode_group(&mut data, &[None, Some(parity[1].as_slice())], stripe_len)
            .expect("Q decodes one erasure");
        assert_eq!(data[2].as_ref().unwrap(), &stripes[2]);
    }

    #[test]
    fn parity_envelope_round_trips() {
        let payload = ParityPayload {
            policy: ReplicationPolicy::RsLite,
            parity_index: 1,
            members: vec![
                ParityMember {
                    id: BlockId::new(3, 1),
                    copy: 0,
                    frame_len: 117,
                },
                ParityMember {
                    id: BlockId::new(0, 7),
                    copy: 0,
                    frame_len: 45,
                },
            ],
            stripe: (0..117u32).map(|b| (b * 7 + 3) as u8).collect(),
        };
        let block = pack_parity(&payload);
        assert_eq!(unpack_parity(&block).as_ref(), Some(&payload));
        // Ordinary matrix blocks are not parity envelopes.
        assert!(unpack_parity(&dense(5, 4, 4)).is_none());
    }

    #[test]
    fn groups_have_distinct_canonical_homes_and_off_member_parity() {
        let nodes = 4;
        let keys: Vec<StoreKey> = (0..6)
            .flat_map(|r| (0..5).map(move |c| StoreKey::operand(9, BlockId::new(r, c))))
            .collect();
        let groups = assign_groups(&keys, nodes, ReplicationPolicy::Xor);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, keys.len(), "every key is coded exactly once");
        for g in &groups {
            assert!(g.len() <= group_size_cap(nodes, ReplicationPolicy::Xor));
            let homes: BTreeSet<usize> = g.iter().map(|k| home_node(k.id, 0, nodes)).collect();
            assert_eq!(homes.len(), g.len(), "member homes must be distinct");
            let p = parity_home(g[0].id, &homes, nodes);
            assert!(!homes.contains(&p), "parity must live off-member");
        }
    }

    #[test]
    fn encode_then_reconstruct_through_the_stores() {
        let nodes = 4;
        let stores = ClusterStores::new(nodes);
        let matrix = 77u64;
        let blocks = mixed_blocks(13, 8);
        let mut keys = Vec::new();
        for (i, blk) in blocks.iter().enumerate() {
            let id = BlockId::new(i as u32 / 3, i as u32 % 3);
            let key = StoreKey::operand(matrix, id);
            stores.ingest(home_node(id, 0, nodes), key, Arc::new(blk.clone()));
            keys.push((key, blk.clone()));
        }
        let installed = encode_matrix_parity(&stores, matrix, nodes, ReplicationPolicy::Xor);
        assert!(installed > 0);
        // Idempotent: a second encode is a no-op.
        assert_eq!(
            encode_matrix_parity(&stores, matrix, nodes, ReplicationPolicy::Xor),
            0
        );
        for (key, original) in &keys {
            let (rebuilt, bytes) =
                reconstruct_block(&stores, *key, None).expect("single erasure decodes");
            assert_eq!(&rebuilt, original, "reconstruction must be bit-identical");
            assert!(bytes > 0);
        }
        assert_eq!(
            matrices_with_parity(&stores)
                .into_iter()
                .collect::<Vec<_>>(),
            vec![matrix]
        );
        evict_all_parity(&stores);
        assert!(matrices_with_parity(&stores).is_empty());
        assert!(
            reconstruct_block(&stores, keys[0].0, None).is_none(),
            "no parity, no decode"
        );
    }

    #[test]
    fn reconstruction_respects_an_excluded_node() {
        // All survivors readable except what the dead node held: decoding
        // must never read the excluded store — co-locate two members'
        // physical copies there and the decode goes over budget.
        let nodes = 4;
        let stores = ClusterStores::new(nodes);
        let matrix = 5u64;
        // Two blocks with distinct canonical homes, both physically on
        // node 0 only.
        let mut picked = Vec::new();
        'outer: for r in 0..8u32 {
            for c in 0..8u32 {
                let id = BlockId::new(r, c);
                if picked
                    .iter()
                    .all(|p: &BlockId| home_node(*p, 0, nodes) != home_node(id, 0, nodes))
                {
                    picked.push(id);
                    if picked.len() == 2 {
                        break 'outer;
                    }
                }
            }
        }
        for (i, id) in picked.iter().enumerate() {
            stores.ingest(
                0,
                StoreKey::operand(matrix, *id),
                Arc::new(dense(i as u64 + 1, 3, 3)),
            );
        }
        assert!(encode_matrix_parity(&stores, matrix, nodes, ReplicationPolicy::Xor) > 0);
        let target = StoreKey::operand(matrix, picked[0]);
        // Without exclusion the sibling is readable: decode succeeds.
        assert!(reconstruct_block(&stores, target, None).is_some());
        // Excluding node 0 erases both members: over budget, typed refusal.
        assert!(reconstruct_block(&stores, target, Some(0)).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// The satellite contract: random group sizes × erasure patterns
        /// within budget decode bit-identically for dense and CSR members;
        /// beyond-budget erasures are a typed error, never wrong bytes.
        #[test]
        fn any_within_budget_erasure_decodes_bit_identically(
            seed in any::<u64>(),
            size in 1usize..MAX_GROUP + 1,
            rs in any::<bool>(),
            first_pick in any::<u64>(),
            second_pick in any::<u64>(),
        ) {
            let policy = if rs { ReplicationPolicy::RsLite } else { ReplicationPolicy::Xor };
            let blocks = mixed_blocks(seed, size);
            let mut erased = vec![first_pick as usize % size];
            if policy == ReplicationPolicy::RsLite && size > 1 {
                let second = second_pick as usize % size;
                if !erased.contains(&second) {
                    erased.push(second);
                }
            }
            roundtrip(&blocks, policy, &erased);
        }

        #[test]
        fn any_beyond_budget_erasure_is_refused(
            seed in any::<u64>(),
            size in 2usize..MAX_GROUP + 1,
        ) {
            // Erase one more member than the XOR budget covers.
            let blocks = mixed_blocks(seed, size);
            let frames: Vec<Vec<u8>> = blocks.iter().map(frame_bytes).collect();
            let stripe_len = frames.iter().map(Vec::len).max().unwrap();
            let stripes: Vec<Vec<u8>> = frames
                .iter()
                .map(|f| padded(f.clone(), stripe_len))
                .collect();
            let parity = encode_stripes(&stripes, 1, stripe_len);
            let mut data: Vec<Option<Vec<u8>>> = stripes.iter().cloned().map(Some).collect();
            data[0] = None;
            data[1] = None;
            let err = decode_group(&mut data, &[Some(parity[0].as_slice())], stripe_len);
            prop_assert_eq!(err, Err(CodingError { lost: 2, budget: 1 }));
            prop_assert!(data[0].is_none() && data[1].is_none());
        }
    }
}
