//! Per-node block stores: the executor's physical address spaces.
//!
//! Each virtual node owns a [`NodeStore`] keyed by `(matrix uid, block id,
//! copy)`. A task may read **only** from its own node's store — a miss on a
//! block the plan materialized elsewhere is a hard
//! [`TaskError::MissingBlock`], never a fallthrough to shared driver
//! memory. Blocks are `Arc`-shared so a broadcast installs one physical
//! copy per node and residency caching across jobs costs no element
//! duplication.

use crate::failure::TaskError;
use distme_matrix::{Block, BlockId, BlockMatrix};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Jobs a matrix's placement survives in the stores without being touched
/// before [`ClusterStores::evict_stale`] reclaims it.
pub const RESIDENCY_WINDOW_JOBS: u64 = 64;

/// What a store entry holds: matrix content, or derived parity over a
/// coded group of content blocks (see `crate::coding`). Parity entries are
/// never operands — `BlockView` resolves only `Data` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum StoreKind {
    /// A matrix block: operand, result, or partial product.
    #[default]
    Data,
    /// An erasure-coding parity block over a group of `Data` blocks.
    Parity,
}

/// Store key: which content version, which grid position, which producer
/// copy. `copy` distinguishes partial products that share a `(row, col)`
/// destination before aggregation (the plan's aggregation routing tags each
/// partial with its producing mult task); ingested operand blocks use 0.
/// The `kind` field sits last so the derived ordering stays
/// matrix → id → copy for the `Data` keys every pre-coding caller iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StoreKey {
    /// Matrix content version (see `distme_matrix::fresh_matrix_uid`).
    pub matrix: u64,
    /// Grid position (for parity: the group leader's position).
    pub id: BlockId,
    /// Producer copy index (0 for operands and final results; for parity:
    /// the parity index within the group, 0 = XOR/P, 1 = RS/Q).
    pub copy: u32,
    /// Content block or derived parity.
    pub kind: StoreKind,
}

impl StoreKey {
    /// Key for an operand or result block (copy 0).
    pub fn operand(matrix: u64, id: BlockId) -> Self {
        StoreKey {
            matrix,
            id,
            copy: 0,
            kind: StoreKind::Data,
        }
    }

    /// Key for a partial product produced by mult task `copy`.
    pub fn replica(matrix: u64, id: BlockId, copy: u32) -> Self {
        StoreKey {
            matrix,
            id,
            copy,
            kind: StoreKind::Data,
        }
    }

    /// Key for parity block `copy` of the coded group led by `id`.
    pub fn parity(matrix: u64, id: BlockId, copy: u32) -> Self {
        StoreKey {
            matrix,
            id,
            copy,
            kind: StoreKind::Parity,
        }
    }

    /// Whether this key names derived parity rather than matrix content.
    pub fn is_parity(&self) -> bool {
        self.kind == StoreKind::Parity
    }
}

/// One virtual node's keyed block store.
#[derive(Debug)]
pub struct NodeStore {
    node: usize,
    blocks: Mutex<BTreeMap<StoreKey, Arc<Block>>>,
}

impl NodeStore {
    fn new(node: usize) -> Self {
        NodeStore {
            node,
            blocks: Mutex::new(BTreeMap::new()),
        }
    }

    /// The node this store belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Fetches a shared handle to a resident block.
    pub fn get(&self, key: &StoreKey) -> Option<Arc<Block>> {
        self.blocks.lock().unwrap().get(key).cloned()
    }

    /// Installs a block, keeping an existing entry on collision (a key
    /// names one content version, so a collision is the same bytes arriving
    /// twice — e.g. two tasks routing the same operand block). Returns
    /// whether the block was newly installed.
    pub fn install(&self, key: StoreKey, block: Arc<Block>) -> bool {
        use std::collections::btree_map::Entry;
        match self.blocks.lock().unwrap().entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(block);
                true
            }
        }
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: &StoreKey) -> bool {
        self.blocks.lock().unwrap().contains_key(key)
    }

    /// Removes `key`, returning whether it was resident.
    pub fn remove(&self, key: &StoreKey) -> bool {
        self.blocks.lock().unwrap().remove(key).is_some()
    }

    /// All resident keys, in key order.
    pub fn keys(&self) -> Vec<StoreKey> {
        self.blocks.lock().unwrap().keys().copied().collect()
    }

    /// Drops every resident block (a decommissioned node's store).
    pub fn clear(&self) {
        self.blocks.lock().unwrap().clear();
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.lock().unwrap().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-memory bytes of all resident blocks.
    pub fn resident_bytes(&self) -> u64 {
        self.blocks
            .lock()
            .unwrap()
            .values()
            .map(|b| b.mem_bytes())
            .sum()
    }

    /// Drops every block belonging to `matrix`.
    pub fn evict_matrix(&self, matrix: u64) {
        self.blocks
            .lock()
            .unwrap()
            .retain(|k, _| k.matrix != matrix);
    }
}

/// All nodes' stores plus residency bookkeeping for cross-job reuse.
#[derive(Debug)]
pub struct ClusterStores {
    nodes: Vec<NodeStore>,
    /// Monotonic job counter; drives the staleness window.
    jobs: AtomicU64,
    /// matrix uid → job counter when last used.
    last_used: Mutex<BTreeMap<u64, u64>>,
    /// Refcounted pins: a matrix with a positive pin count is never
    /// reclaimed by [`evict_stale`](Self::evict_stale), no matter how many
    /// concurrent job completions advance the job counter while it is in
    /// flight.
    pins: Mutex<BTreeMap<u64, u64>>,
    installed: AtomicU64,
    reused: AtomicU64,
}

impl ClusterStores {
    /// Creates empty stores for `nodes` virtual nodes.
    pub fn new(nodes: usize) -> Self {
        ClusterStores {
            nodes: (0..nodes).map(NodeStore::new).collect(),
            jobs: AtomicU64::new(0),
            last_used: Mutex::new(BTreeMap::new()),
            pins: Mutex::new(BTreeMap::new()),
            installed: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// Number of node stores.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The store of node `n`.
    pub fn node(&self, n: usize) -> &NodeStore {
        &self.nodes[n]
    }

    /// Advances the job counter (call once per job).
    pub fn begin_job(&self) -> u64 {
        self.jobs.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Marks `matrix` as used by the current job, protecting its placement
    /// from [`evict_stale`](Self::evict_stale).
    pub fn touch(&self, matrix: u64) {
        let now = self.jobs.load(Ordering::Relaxed);
        self.last_used.lock().unwrap().insert(matrix, now);
    }

    /// Ingests one operand block to `node`, reusing an already-resident
    /// placement when the same content version was ingested before
    /// (sessions keep factor matrices resident across chained multiplies).
    pub fn ingest(&self, node: usize, key: StoreKey, block: Arc<Block>) {
        if self.nodes[node].install(key, block) {
            self.installed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reused.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Blocks newly installed by `ingest` so far.
    pub fn ingest_installed(&self) -> u64 {
        self.installed.load(Ordering::Relaxed)
    }

    /// Ingest calls satisfied by an already-resident placement.
    pub fn ingest_reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Drops `matrix` from every node and from the residency index.
    pub fn evict_matrix(&self, matrix: u64) {
        for n in &self.nodes {
            n.evict_matrix(matrix);
        }
        self.last_used.lock().unwrap().remove(&matrix);
    }

    /// Pins `matrix` against [`evict_stale`](Self::evict_stale) until the
    /// guard drops. Jobs pin their operands and intermediates for their
    /// whole run: with many concurrent jobs completing, the job counter
    /// can advance a full residency window while one job is still
    /// executing, and an in-flight operand must never be reclaimed under
    /// it. Pins nest (refcounted).
    pub fn pin(&self, matrix: u64) -> PinGuard<'_> {
        *self.pins.lock().unwrap().entry(matrix).or_insert(0) += 1;
        PinGuard {
            stores: self,
            matrix,
        }
    }

    fn unpin(&self, matrix: u64) {
        let mut pins = self.pins.lock().unwrap();
        let n = pins.get_mut(&matrix).expect("unpin of an unpinned matrix");
        *n -= 1;
        if *n == 0 {
            pins.remove(&matrix);
        }
    }

    /// Whether `matrix` is currently pinned by any in-flight job.
    pub fn is_pinned(&self, matrix: u64) -> bool {
        self.pins.lock().unwrap().contains_key(&matrix)
    }

    /// Evicts every matrix not touched within the last `window` jobs,
    /// except matrices pinned by in-flight jobs.
    pub fn evict_stale(&self, window: u64) {
        let now = self.jobs.load(Ordering::Relaxed);
        let pins = self.pins.lock().unwrap();
        let stale: Vec<u64> = self
            .last_used
            .lock()
            .unwrap()
            .iter()
            .filter(|(uid, &used)| now.saturating_sub(used) > window && !pins.contains_key(uid))
            .map(|(&uid, _)| uid)
            .collect();
        drop(pins);
        for uid in stale {
            self.evict_matrix(uid);
        }
    }

    /// Total resident bytes across all nodes.
    pub fn resident_bytes(&self) -> u64 {
        self.nodes.iter().map(NodeStore::resident_bytes).sum()
    }

    /// Snapshot of every resident key and the set of nodes holding a copy
    /// of it — the input to `rebalance::RebalancePlan::derive`. Determinism
    /// comes from the `BTreeMap`/`BTreeSet` ordering.
    pub fn resident_keys(&self) -> BTreeMap<StoreKey, BTreeSet<usize>> {
        let mut out: BTreeMap<StoreKey, BTreeSet<usize>> = BTreeMap::new();
        for store in &self.nodes {
            for key in store.keys() {
                out.entry(key).or_default().insert(store.node());
            }
        }
        out
    }

    /// Appends empty stores until there are `nodes` node stores
    /// (commissioning new nodes; existing placements are untouched).
    pub fn grow_to(&mut self, nodes: usize) {
        while self.nodes.len() < nodes {
            let n = self.nodes.len();
            self.nodes.push(NodeStore::new(n));
        }
    }

    /// Drops the tail stores beyond `nodes` (graceful shrink: callers drain
    /// resident blocks onto the surviving prefix first).
    pub fn truncate_to(&mut self, nodes: usize) {
        self.nodes.truncate(nodes.max(1));
    }

    /// Removes node `k`'s store entirely — contents and all, a permanent
    /// decommission — and renumbers the higher nodes down by one so node
    /// ids stay contiguous.
    pub fn remove_node(&mut self, k: usize) {
        assert!(k < self.nodes.len(), "no node {k} to remove");
        assert!(self.nodes.len() > 1, "cannot remove the last node");
        self.nodes.remove(k);
        for (i, store) in self.nodes.iter_mut().enumerate() {
            store.node = i;
        }
    }
}

/// RAII pin on one matrix's residency (see [`ClusterStores::pin`]).
#[derive(Debug)]
pub struct PinGuard<'a> {
    stores: &'a ClusterStores,
    matrix: u64,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.stores.unpin(self.matrix);
    }
}

/// Something a mult task can resolve input blocks from. Implementations
/// return `Ok(None)` for an implicitly-zero block and an error for a
/// locality violation.
pub trait BlockSource {
    /// Resolves the block at grid position `(row, col)`.
    ///
    /// # Errors
    /// [`TaskError::MissingBlock`] when the block is materialized somewhere
    /// but not resident where this source looks.
    fn block(&self, row: u32, col: u32) -> Result<Option<Arc<Block>>, TaskError>;
}

/// The locality-enforcing view a task gets of one operand: reads hit only
/// `store` (its own node). A block listed in `materialized` but absent from
/// the store is a routing bug surfaced as [`TaskError::MissingBlock`]; a
/// block absent from both is an implicit zero.
pub struct BlockView<'a> {
    store: &'a NodeStore,
    matrix: u64,
    materialized: &'a BTreeSet<BlockId>,
}

impl<'a> BlockView<'a> {
    /// Builds a view of content version `matrix` over `store`.
    pub fn new(store: &'a NodeStore, matrix: u64, materialized: &'a BTreeSet<BlockId>) -> Self {
        BlockView {
            store,
            matrix,
            materialized,
        }
    }
}

impl BlockSource for BlockView<'_> {
    fn block(&self, row: u32, col: u32) -> Result<Option<Arc<Block>>, TaskError> {
        let id = BlockId::new(row, col);
        if let Some(b) = self.store.get(&StoreKey::operand(self.matrix, id)) {
            return Ok(Some(b));
        }
        if self.materialized.contains(&id) {
            return Err(TaskError::MissingBlock {
                node: self.store.node(),
                id,
            });
        }
        Ok(None)
    }
}

/// Driver-local resolution (used by single-node call paths such as the GPU
/// streaming example and its tests, where locality is not at stake).
impl BlockSource for BlockMatrix {
    fn block(&self, row: u32, col: u32) -> Result<Option<Arc<Block>>, TaskError> {
        Ok(self.get_shared(row, col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::DenseBlock;

    fn blk(v: f64) -> Arc<Block> {
        Arc::new(Block::Dense(DenseBlock::from_fn(2, 2, |_, _| v)))
    }

    #[test]
    fn install_keeps_first_copy() {
        let s = NodeStore::new(0);
        let k = StoreKey::operand(7, BlockId::new(0, 0));
        assert!(s.install(k, blk(1.0)));
        assert!(!s.install(k, blk(2.0)));
        let got = s.get(&k).unwrap();
        assert_eq!(got.to_dense().data()[0], 1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keys_order_by_matrix_then_id_then_copy() {
        let a = StoreKey::replica(1, BlockId::new(5, 5), 9);
        let b = StoreKey::operand(2, BlockId::new(0, 0));
        assert!(a < b);
        let c = StoreKey::replica(1, BlockId::new(5, 5), 10);
        assert!(a < c);
    }

    #[test]
    fn parity_keys_order_after_the_data_key_with_the_same_copy() {
        let d = StoreKey::operand(1, BlockId::new(0, 0));
        let p = StoreKey::parity(1, BlockId::new(0, 0), 0);
        assert!(d < p);
        assert!(p.is_parity());
        assert!(!d.is_parity());
    }

    #[test]
    fn evict_matrix_is_scoped() {
        let s = ClusterStores::new(2);
        s.ingest(0, StoreKey::operand(1, BlockId::new(0, 0)), blk(1.0));
        s.ingest(1, StoreKey::operand(2, BlockId::new(0, 0)), blk(2.0));
        s.evict_matrix(1);
        assert_eq!(s.node(0).len(), 0);
        assert_eq!(s.node(1).len(), 1);
    }

    #[test]
    fn ingest_counts_reuse() {
        let s = ClusterStores::new(1);
        let k = StoreKey::operand(3, BlockId::new(1, 1));
        s.ingest(0, k, blk(1.0));
        s.ingest(0, k, blk(1.0));
        assert_eq!(s.ingest_installed(), 1);
        assert_eq!(s.ingest_reused(), 1);
    }

    #[test]
    fn stale_matrices_are_evicted_touched_ones_survive() {
        let s = ClusterStores::new(1);
        s.ingest(0, StoreKey::operand(10, BlockId::new(0, 0)), blk(1.0));
        s.ingest(0, StoreKey::operand(11, BlockId::new(0, 0)), blk(2.0));
        s.begin_job();
        s.touch(10);
        s.touch(11);
        for _ in 0..3 {
            s.begin_job();
            s.touch(10);
        }
        s.evict_stale(2);
        assert!(s
            .node(0)
            .contains(&StoreKey::operand(10, BlockId::new(0, 0))));
        assert!(!s
            .node(0)
            .contains(&StoreKey::operand(11, BlockId::new(0, 0))));
    }

    #[test]
    fn pinned_matrices_survive_a_whole_residency_window_of_other_jobs() {
        let s = ClusterStores::new(1);
        let k = StoreKey::operand(10, BlockId::new(0, 0));
        s.ingest(0, k, blk(1.0));
        s.begin_job();
        s.touch(10);
        let pin = s.pin(10);
        let nested = s.pin(10);
        // A full residency window of concurrent job completions passes
        // while the matrix's own job is still in flight.
        for _ in 0..=RESIDENCY_WINDOW_JOBS {
            s.begin_job();
            s.evict_stale(RESIDENCY_WINDOW_JOBS);
        }
        assert!(s.node(0).contains(&k), "pinned operand evicted mid-job");
        drop(nested);
        assert!(s.is_pinned(10), "pins must nest");
        drop(pin);
        assert!(!s.is_pinned(10));
        s.evict_stale(RESIDENCY_WINDOW_JOBS);
        assert!(!s.node(0).contains(&k), "unpinned stale matrix survives");
    }

    #[test]
    fn resident_keys_report_every_holder() {
        let s = ClusterStores::new(3);
        let k = StoreKey::operand(9, BlockId::new(0, 1));
        s.ingest(0, k, blk(1.0));
        s.ingest(2, k, blk(1.0));
        s.ingest(1, StoreKey::operand(9, BlockId::new(1, 1)), blk(2.0));
        let snap = s.resident_keys();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap[&k].iter().copied().collect::<Vec<_>>(),
            vec![0, 2],
            "both holders reported, in node order"
        );
    }

    #[test]
    fn grow_appends_empty_stores_and_truncate_drops_the_tail() {
        let mut s = ClusterStores::new(2);
        s.ingest(1, StoreKey::operand(4, BlockId::new(0, 0)), blk(1.0));
        s.grow_to(5);
        assert_eq!(s.num_nodes(), 5);
        assert_eq!(s.node(4).node(), 4);
        assert!(s.node(4).is_empty());
        assert_eq!(s.node(1).len(), 1, "existing placements survive a grow");
        s.truncate_to(2);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.node(1).len(), 1);
    }

    #[test]
    fn remove_node_renumbers_survivors() {
        let mut s = ClusterStores::new(3);
        let k = StoreKey::operand(8, BlockId::new(0, 0));
        s.ingest(2, k, blk(3.0));
        s.remove_node(1);
        assert_eq!(s.num_nodes(), 2);
        // The old node 2 is now node 1 and kept its blocks.
        assert_eq!(s.node(1).node(), 1);
        assert!(s.node(1).contains(&k));
    }

    #[test]
    fn remove_and_clear_drop_blocks() {
        let s = NodeStore::new(0);
        let k = StoreKey::operand(5, BlockId::new(0, 0));
        s.install(k, blk(1.0));
        assert!(s.remove(&k));
        assert!(!s.remove(&k));
        s.install(k, blk(1.0));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn shared_view_blocks_live_and_die_with_the_store() {
        // The transport installs dense blocks that alias their wire buffer
        // (`DenseBlock::is_shared()`); the store must treat them like any
        // other block — readable, counted, and freed on removal (dropping
        // the last Arc releases the wire buffer itself).
        use bytes::BytesMut;
        use distme_matrix::codec;

        let owned = Block::Dense(DenseBlock::from_fn(4, 4, |i, j| (i * 4 + j) as f64));
        let mut buf = BytesMut::default();
        let pad = codec::encode_aligned(&owned, &mut buf);
        let wire = buf.freeze();
        let shared = codec::decode_view(&wire.slice(pad..wire.len())).unwrap();
        match &shared {
            Block::Dense(d) => assert!(d.is_shared()),
            Block::Sparse(_) => panic!("dense frame decoded as sparse"),
        }

        let s = NodeStore::new(0);
        let k = StoreKey::operand(9, BlockId::new(0, 0));
        s.install(k, Arc::new(shared));
        let got = s.get(&k).unwrap();
        assert_eq!(&*got, &owned);
        assert!(s.resident_bytes() > 0);
        drop(got);
        assert!(s.remove(&k));
        assert!(s.is_empty());
    }

    #[test]
    fn view_distinguishes_zero_from_missing() {
        let store = NodeStore::new(3);
        let uid = 42;
        store.install(StoreKey::operand(uid, BlockId::new(0, 0)), blk(1.0));
        let materialized: BTreeSet<BlockId> = [BlockId::new(0, 0), BlockId::new(1, 0)]
            .into_iter()
            .collect();
        let view = BlockView::new(&store, uid, &materialized);
        // Resident → Some.
        assert!(view.block(0, 0).unwrap().is_some());
        // Materialized elsewhere but not here → locality violation.
        match view.block(1, 0) {
            Err(TaskError::MissingBlock { node: 3, id }) => {
                assert_eq!(id, BlockId::new(1, 0));
            }
            other => panic!("expected MissingBlock, got {other:?}"),
        }
        // Not materialized anywhere → implicit zero.
        assert!(view.block(2, 0).unwrap().is_none());
    }
}
