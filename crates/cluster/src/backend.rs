//! The backend abstraction shared by both executors.
//!
//! A backend is "a place a physical plan can run": the simulated cluster
//! (paper scale, virtual time) or the thread-backed local cluster (laptop
//! scale, real blocks). Everything either executor needs from the
//! substrate — topology, slot counts, memory budgets — flows through the
//! one [`ClusterConfig`] this trait exposes, which is what lets plan
//! construction happen once, backend-agnostically.

use crate::config::ClusterConfig;
use crate::executor::real::LocalCluster;
use crate::executor::sim::SimCluster;

/// A cluster a physical plan can be lowered onto.
pub trait ExecutionBackend {
    /// Short backend name for logs and harness output.
    const NAME: &'static str;

    /// Builds the backend from a cluster configuration.
    fn from_config(config: ClusterConfig) -> Self;

    /// The configuration the backend runs with (the same one plans must be
    /// built against).
    fn config(&self) -> &ClusterConfig;
}

impl ExecutionBackend for SimCluster {
    const NAME: &'static str = "sim";

    fn from_config(config: ClusterConfig) -> Self {
        SimCluster::new(config)
    }

    fn config(&self) -> &ClusterConfig {
        SimCluster::config(self)
    }
}

impl ExecutionBackend for LocalCluster {
    const NAME: &'static str = "real";

    fn from_config(config: ClusterConfig) -> Self {
        LocalCluster::new(config)
    }

    fn config(&self) -> &ClusterConfig {
        LocalCluster::config(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_roundtrip<B: ExecutionBackend>(cfg: ClusterConfig) {
        let backend = B::from_config(cfg);
        assert_eq!(backend.config().nodes, cfg.nodes);
        assert_eq!(backend.config().task_mem_bytes, cfg.task_mem_bytes);
    }

    #[test]
    fn both_backends_expose_their_config() {
        config_roundtrip::<SimCluster>(ClusterConfig::paper_cluster());
        config_roundtrip::<LocalCluster>(ClusterConfig::laptop());
        assert_eq!(<SimCluster as ExecutionBackend>::NAME, "sim");
        assert_eq!(<LocalCluster as ExecutionBackend>::NAME, "real");
    }
}
