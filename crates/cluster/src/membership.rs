//! Cluster membership: the epoch model behind elastic scaling.
//!
//! The paper's engine is *elastic*: the node grid is not fixed for the
//! lifetime of a session. [`Membership`] tracks the current node count and
//! a monotonically increasing **epoch** that bumps on every change —
//! commissioning nodes, graceful decommissioning (blocks drained first),
//! or permanent loss of a node. The epoch is the invalidation token for
//! everything derived from the grid size: cached [`JobPlan`]s (the
//! optimizer's `(P*,Q*,R*)` search is re-run against the new node count),
//! block homes, and task→node round-robin assignments.
//!
//! [`ElasticPolicy`] is the small autoscaler on top: given the previous
//! job's [`JobStats`], it recommends a new node count when local-mult
//! parallelism over- or under-shoots the configured utilization band.
//!
//! [`JobPlan`]: ../../distme_core/plan/struct.JobPlan.html

use crate::stats::{JobStats, Phase};

/// One membership change, recorded in the [`Membership`] log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// Graceful resize: grow by commissioning empty nodes, or shrink with
    /// the leaving nodes' blocks drained onto the survivors first.
    ScaleTo {
        /// Node count before the change.
        from: usize,
        /// Node count after the change.
        to: usize,
    },
    /// Permanent loss of one node: its store is gone; blocks survive only
    /// where a replica exists on another node (lineage).
    Decommission {
        /// The node that was lost (pre-renumbering id).
        node: usize,
    },
}

/// The cluster's membership state: node count, epoch, and change log.
#[derive(Debug, Clone)]
pub struct Membership {
    epoch: u64,
    nodes: usize,
    log: Vec<(u64, MembershipEvent)>,
}

impl Membership {
    /// Initial membership at epoch 0 with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Membership {
            epoch: 0,
            nodes,
            log: Vec::new(),
        }
    }

    /// The current epoch (0 until the first membership change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Records a membership change: bumps the epoch, updates the node
    /// count, and appends to the log. Returns the new epoch.
    pub fn record(&mut self, event: MembershipEvent) -> u64 {
        self.nodes = match event {
            MembershipEvent::ScaleTo { to, .. } => to,
            MembershipEvent::Decommission { .. } => self.nodes - 1,
        };
        assert!(self.nodes > 0, "membership change emptied the cluster");
        self.epoch += 1;
        self.log.push((self.epoch, event));
        self.epoch
    }

    /// Every change so far, as `(epoch, event)` pairs in epoch order.
    pub fn log(&self) -> &[(u64, MembershipEvent)] {
        &self.log
    }
}

/// Utilization-threshold autoscaler driven by [`JobStats`]: the measured
/// signal is local-mult tasks per slot (how many waves of the compute
/// phase the grid ran). Above `scale_up_tasks_per_slot`, the job was
/// parallelism-starved — recommend growing; below
/// `scale_down_tasks_per_slot`, the grid idled — recommend shrinking.
#[derive(Debug, Clone, Copy)]
pub struct ElasticPolicy {
    /// Never shrink below this node count.
    pub min_nodes: usize,
    /// Never grow beyond this node count.
    pub max_nodes: usize,
    /// Grow when local-mult tasks per slot exceed this.
    pub scale_up_tasks_per_slot: f64,
    /// Shrink when local-mult tasks per slot fall below this.
    pub scale_down_tasks_per_slot: f64,
    /// Nodes added or removed per recommendation.
    pub step: usize,
}

impl ElasticPolicy {
    /// A policy that grows on more than one task wave per slot and shrinks
    /// below a quarter wave, one node at a time.
    pub fn default_band(min_nodes: usize, max_nodes: usize) -> Self {
        ElasticPolicy {
            min_nodes,
            max_nodes,
            scale_up_tasks_per_slot: 1.0,
            scale_down_tasks_per_slot: 0.25,
            step: 1,
        }
    }

    /// Recommends a new node count from the previous job's stats, or
    /// `None` when utilization sits inside the band (or the bound is
    /// already reached).
    pub fn recommend(
        &self,
        stats: &JobStats,
        nodes: usize,
        tasks_per_node: usize,
    ) -> Option<usize> {
        let slots = (nodes * tasks_per_node).max(1) as f64;
        let waves = stats.phase(Phase::LocalMult).tasks as f64 / slots;
        let target = if waves > self.scale_up_tasks_per_slot {
            (nodes + self.step).min(self.max_nodes)
        } else if waves < self.scale_down_tasks_per_slot {
            nodes.saturating_sub(self.step).max(self.min_nodes.max(1))
        } else {
            nodes
        };
        (target != nodes).then_some(target)
    }

    /// Recommends a new node count from the scheduler's *live* load — the
    /// multi-tenant replacement for [`Self::recommend`]. The last job's
    /// stats only see one tenant's work: two tenants each running half a
    /// wave look idle per job while the shared pool is saturated. The
    /// pressure signal here is every runnable task across all concurrent
    /// jobs — granted leases plus still-pending gang tasks — per slot, so
    /// bursty multi-tenant load triggers the grow a single-job view would
    /// miss. Queued-for-admission jobs pin the recommendation at (at
    /// least) the current size: memory pressure is relieved by jobs
    /// finishing, not by shrinking the grid under them.
    pub fn recommend_from_load(
        &self,
        load: &crate::scheduler::SchedulerLoad,
        nodes: usize,
        tasks_per_node: usize,
    ) -> Option<usize> {
        let slots = (nodes * tasks_per_node).max(1) as f64;
        let runnable = load.held_slots + load.pending_tasks;
        let pressure = runnable as f64 / slots;
        let target = if pressure > self.scale_up_tasks_per_slot {
            (nodes + self.step).min(self.max_nodes)
        } else if pressure < self.scale_down_tasks_per_slot && load.queued_jobs == 0 {
            nodes.saturating_sub(self.step).max(self.min_nodes.max(1))
        } else {
            nodes
        };
        (target != nodes).then_some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_bump_on_every_change() {
        let mut m = Membership::new(4);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.nodes(), 4);
        assert_eq!(m.record(MembershipEvent::ScaleTo { from: 4, to: 9 }), 1);
        assert_eq!(m.nodes(), 9);
        assert_eq!(m.record(MembershipEvent::Decommission { node: 2 }), 2);
        assert_eq!(m.nodes(), 8);
        assert_eq!(m.log().len(), 2);
        assert_eq!(m.log()[0].0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_membership_rejected() {
        Membership::new(0);
    }

    fn stats_with_mult_tasks(tasks: usize) -> JobStats {
        let mut s = JobStats::default();
        s.phase_mut(Phase::LocalMult).tasks = tasks;
        s
    }

    #[test]
    fn policy_grows_when_starved_and_shrinks_when_idle() {
        let p = ElasticPolicy::default_band(2, 9);
        // 4 nodes × 2 slots = 8 slots. 24 tasks = 3 waves → grow.
        assert_eq!(p.recommend(&stats_with_mult_tasks(24), 4, 2), Some(5));
        // 1 task over 8 slots → shrink.
        assert_eq!(p.recommend(&stats_with_mult_tasks(1), 4, 2), Some(3));
        // 6 tasks = 0.75 waves → inside the band.
        assert_eq!(p.recommend(&stats_with_mult_tasks(6), 4, 2), None);
    }

    #[test]
    fn policy_respects_bounds() {
        let p = ElasticPolicy::default_band(3, 4);
        assert_eq!(p.recommend(&stats_with_mult_tasks(100), 4, 2), None);
        assert_eq!(p.recommend(&stats_with_mult_tasks(0), 3, 2), None);
        assert_eq!(p.recommend(&stats_with_mult_tasks(100), 3, 2), Some(4));
    }

    fn load(held: usize, pending: usize, queued: usize) -> crate::scheduler::SchedulerLoad {
        crate::scheduler::SchedulerLoad {
            queued_jobs: queued,
            admitted_jobs: if held + pending > 0 { 2 } else { 0 },
            pending_tasks: pending,
            held_slots: held,
            waiting_workers: 0,
            total_slots: 8,
            admitted_mem_bytes: 0,
        }
    }

    #[test]
    fn bursty_two_tenant_load_grows_where_single_job_stats_would_not() {
        let p = ElasticPolicy::default_band(2, 9);
        // Two tenants each ran 6 local-mult tasks on 4×2 slots: per job
        // that is 0.75 waves — inside the band, no resize.
        assert_eq!(p.recommend(&stats_with_mult_tasks(6), 4, 2), None);
        // But live, the shared pool sees both at once: 8 slots held and 4
        // more tasks pending = 1.5 waves → grow. This is the signal the
        // old single-job view structurally cannot observe.
        assert_eq!(p.recommend_from_load(&load(8, 4, 0), 4, 2), Some(5));
    }

    #[test]
    fn load_policy_shrinks_only_when_idle_and_nothing_is_queued() {
        let p = ElasticPolicy::default_band(2, 9);
        // 1 runnable task on 8 slots → shrink.
        assert_eq!(p.recommend_from_load(&load(1, 0, 0), 4, 2), Some(3));
        // Same utilization but a job is queued for admission: hold size.
        assert_eq!(p.recommend_from_load(&load(1, 0, 1), 4, 2), None);
        // In-band load → no change.
        assert_eq!(p.recommend_from_load(&load(4, 0, 0), 4, 2), None);
    }

    #[test]
    fn load_policy_respects_bounds() {
        let p = ElasticPolicy::default_band(3, 4);
        assert_eq!(p.recommend_from_load(&load(16, 16, 0), 4, 2), None);
        assert_eq!(p.recommend_from_load(&load(0, 0, 0), 3, 2), None);
        assert_eq!(p.recommend_from_load(&load(16, 16, 0), 3, 2), Some(4));
    }
}
