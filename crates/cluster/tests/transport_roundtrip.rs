//! Property tests for the physical shuffle path: any block the matrix
//! substrate can represent must survive a codec-backed transport hop
//! bit-identically, and locality violations must fail loudly.

use distme_cluster::{
    BlockSource, BlockView, ClusterStores, Phase, RetryPolicy, ScratchPool, StoreKey, TaskError,
    Transport, TransportStats, WireMove,
};
use distme_matrix::{Block, BlockId, CscBlock, CsrBlock, DenseBlock};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Strategy: an arbitrary dense block up to 24 x 24.
fn dense_block() -> impl Strategy<Value = Block> {
    (1usize..24, 1usize..24, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut state = seed | 1;
        Block::Dense(DenseBlock::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 2000) as f64 / 100.0 - 10.0
        }))
    })
}

/// Strategy: an arbitrary CSR block up to 24 x 24; `every` ≥ rows·cols
/// often leaves it completely empty.
fn sparse_block() -> impl Strategy<Value = Block> {
    (1usize..24, 1usize..24, any::<u64>(), 1usize..800).prop_map(|(r, c, seed, every)| {
        let mut state = seed | 1;
        let mut trips = Vec::new();
        for i in 0..r {
            for j in 0..c {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                if ((state >> 33) as usize).is_multiple_of(every) {
                    trips.push((i, j, ((state >> 40) % 19) as f64 - 9.0));
                }
            }
        }
        Block::Sparse(CsrBlock::from_triplets(r, c, trips).expect("valid triplets"))
    })
}

/// Strategy: a sparse block that has lived as column-major CSC — the
/// third on-disk layout the substrate supports — converted back to the
/// wire representation.
fn csc_built_block() -> impl Strategy<Value = Block> {
    sparse_block().prop_map(|b| {
        let Block::Sparse(csr) = b else {
            unreachable!()
        };
        Block::Sparse(CscBlock::from_csr(&csr).to_csr())
    })
}

fn any_block() -> impl Strategy<Value = Block> {
    prop_oneof![dense_block(), sparse_block(), csc_built_block()]
}

/// One cross-node hop through the real transport, returning the delivered
/// replica.
fn ship(block: &Block) -> Arc<Block> {
    let stores = ClusterStores::new(2);
    let stats = TransportStats::default();
    let scratch = ScratchPool::default();
    let transport = Transport::new(&stores, &stats, &scratch, None, RetryPolicy::no_retry());
    let key = StoreKey::operand(7, BlockId::new(0, 0));
    stores.node(0).install(key, Arc::new(block.clone()));
    let mv = WireMove {
        phase: Phase::Repartition,
        from_node: 0,
        to_node: 1,
        wire_bytes: 1234,
        src: key,
        dst: key,
    };
    let payload = transport.execute(&mv, 0).expect("transportable");
    assert!(payload > 0, "a materialized block always has payload");
    stores.node(1).get(&key).expect("delivered")
}

proptest! {
    #[test]
    fn any_block_survives_a_transport_hop_bit_identically(block in any_block()) {
        prop_assert_eq!(&*ship(&block), &block);
    }

    #[test]
    fn empty_blocks_survive_too(dims in (1usize..24, 1usize..24)) {
        let (r, c) = dims;
        let empty = Block::Sparse(CsrBlock::from_triplets(r, c, Vec::new()).expect("empty"));
        prop_assert_eq!(empty.nnz(), 0);
        prop_assert_eq!(&*ship(&empty), &empty);
    }
}

#[test]
fn reading_an_unreceived_block_is_a_missing_block_error() {
    let stores = ClusterStores::new(2);
    let matrix = 42u64;
    let id = BlockId::new(3, 1);
    let materialized: BTreeSet<BlockId> = [id].into_iter().collect();
    // The block exists in the job's index but was never routed to node 1.
    let view = BlockView::new(stores.node(1), matrix, &materialized);
    match view.block(3, 1) {
        Err(TaskError::MissingBlock { node: 1, id: got }) => assert_eq!(got, id),
        other => panic!("expected MissingBlock, got {other:?}"),
    }
    // A block absent from the index is an implicit zero, not an error.
    assert!(view.block(0, 0).expect("implicit zero").is_none());
}

#[test]
fn unmaterialized_moves_carry_no_payload() {
    let stores = ClusterStores::new(2);
    let stats = TransportStats::default();
    let scratch = ScratchPool::default();
    let transport = Transport::new(&stores, &stats, &scratch, None, RetryPolicy::no_retry());
    let key = StoreKey::operand(7, BlockId::new(0, 0));
    let mv = WireMove {
        phase: Phase::Aggregation,
        from_node: 0,
        to_node: 1,
        wire_bytes: 555,
        src: key,
        dst: key,
    };
    // The source block was never produced (implicit zero): the move is a
    // success that ships nothing. Model bytes for the planned move are the
    // driver's job — the transport only counts physical payload.
    assert_eq!(transport.execute(&mv, 0).expect("not a failure"), 0);
    assert_eq!(stats.payload_bytes(), 0);
    assert_eq!(stats.moves(), 1);
    assert!(stores.node(1).get(&key).is_none());
}
