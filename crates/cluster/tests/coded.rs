//! Coded replication acceptance: chaos + elastic, combined.
//!
//! The scenario the subsystem exists for: a GNMF run with transport
//! faults active loses a node that holds *sole-copy* blocks mid-run.
//! With a [`ReplicationPolicy`] armed, the decommission reconstructs the
//! lost blocks from their coding groups' survivors — no lineage
//! recompute, no re-ingest — and the run completes with factors
//! bit-identical to the fault-free run. With coding off, the identical
//! scenario must keep failing with the typed
//! [`JobError::NodeDecommissioned`] of the elastic suite: recovery is
//! bought with parity bytes, never silently faked.
//!
//! Driven by `make coded-smoke` (part of `make ci`).

use std::collections::BTreeSet;
use std::sync::Arc;

use distme_cluster::rebalance::home_node;
use distme_cluster::{
    ClusterConfig, FaultSpec, JobError, LocalCluster, ReplicationPolicy, StoreKey,
};
use distme_engine::gnmf::{run_real, run_real_with, GnmfConfig};
use distme_engine::{RealSession, SystemProfile};
use distme_matrix::{Block, BlockId, BlockMatrix, DenseBlock, MatrixGenerator, MatrixMeta};

/// A grid where every GNMF matmul falls under the optimizer's voxel
/// exception, making the summation order — and therefore the result
/// bits — independent of the node count. Same constants as the elastic
/// suite in `distme-engine`.
fn elastic_cfg(nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        tasks_per_node: 10,
        ..ClusterConfig::laptop()
    }
}

fn small_v() -> BlockMatrix {
    let meta = MatrixMeta::sparse(64, 48, 0.3).with_block_size(16);
    MatrixGenerator::with_seed(3)
        .value_range(1.0, 5.0)
        .generate(&meta)
        .unwrap()
}

/// Exact bit pattern of a factor: block ids plus every f64's bits.
fn factor_bits(m: &BlockMatrix) -> Vec<u64> {
    let mut out = Vec::new();
    for (id, blk) in m.blocks() {
        out.push(u64::from(id.row));
        out.push(u64::from(id.col));
        out.extend(blk.to_dense().data().iter().map(|x| x.to_bits()));
    }
    out
}

fn gnmf_cfg() -> GnmfConfig {
    GnmfConfig {
        factor_dim: 16,
        iterations: 6,
    }
}

fn faults() -> FaultSpec {
    FaultSpec {
        seed: 14,
        drop_rate: 0.05,
        corrupt_rate: 0.03,
        crash_rate: 0.0,
        blackouts: Vec::new(),
    }
}

/// A node currently holding at least one single-copy data block — the
/// node whose loss is unrecoverable without parity.
fn node_with_a_sole_copy(s: &RealSession) -> Option<usize> {
    s.cluster()
        .stores()
        .resident_keys()
        .into_iter()
        .find(|(key, holders)| !key.is_parity() && key.copy == 0 && holders.len() == 1)
        .map(|(_, holders)| *holders.iter().next().unwrap())
}

/// The tentpole: mid-GNMF loss of a node holding unreplicated blocks,
/// with drop/corruption faults active the whole time. XOR parity turns
/// the run into a success with bit-identical factors; the recovery
/// machinery (parity decode at decommission, parity decode *and* lineage
/// redelivery on the wire) is demonstrably exercised.
#[test]
fn coded_gnmf_survives_losing_a_sole_copy_node_bit_identically() {
    let v = small_v();
    let cfg = gnmf_cfg();
    let mut clean = RealSession::new(elastic_cfg(4), SystemProfile::DistMe);
    let baseline = run_real(&mut clean, &v, &cfg, 42).expect("fault-free GNMF");

    let mut coded = RealSession::new(
        elastic_cfg(4).with_replication(ReplicationPolicy::Xor),
        SystemProfile::DistMe,
    );
    coded.inject_faults(faults());
    let mut recovery = None;
    let res = run_real_with(&mut coded, &v, &cfg, 42, |s, iter| {
        if iter == 2 {
            let node = node_with_a_sole_copy(s).expect("some block must be a sole copy");
            recovery = Some(s.decommission_node(node)?);
        }
        Ok(())
    })
    .expect("coded run must survive the decommission");

    let report = recovery.expect("the decommission hook must run");
    assert_eq!(report.from_nodes, 4);
    assert_eq!(report.to_nodes, 3);
    assert_eq!(report.lost_blocks, 0, "parity decode must cover every loss");
    assert!(
        report.stats.reconstructed_blocks > 0,
        "the dying node held a sole copy: recovery must be a decode, not a no-op"
    );
    assert!(report.stats.reconstruction_payload_bytes > 0);
    assert!(
        report.stats.parity_blocks_encoded > 0,
        "parity must be re-encoded for the shrunk grid"
    );

    // Session totals: parity was materialized during jobs, dropped
    // deliveries of coded blocks were decoded from survivors, and the
    // lineage path still handled what parity does not cover
    // (intermediate copies) — both recovery tiers ran.
    assert!(coded.stats().parity_blocks_encoded > 0);
    assert!(coded.stats().reconstructed_blocks > 0);
    assert!(
        coded.stats().redelivered_moves > 0,
        "lineage fallback must still be exercised and counted"
    );

    assert_eq!(factor_bits(&res.w), factor_bits(&baseline.w));
    assert_eq!(factor_bits(&res.h), factor_bits(&baseline.h));
    let bits = |o: &[f64]| o.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&res.objective), bits(&baseline.objective));
}

/// The control: the identical scenario with coding off must keep the
/// typed elastic-suite failure — no silent recovery, no wrong bytes.
#[test]
fn uncoded_gnmf_still_fails_the_same_scenario_with_a_typed_error() {
    let v = small_v();
    let cfg = gnmf_cfg();
    let mut s = RealSession::new(elastic_cfg(4), SystemProfile::DistMe);
    s.inject_faults(faults());
    let err = run_real_with(&mut s, &v, &cfg, 42, |s, iter| {
        if iter == 2 {
            let node = node_with_a_sole_copy(s).expect("some block must be a sole copy");
            s.decommission_node(node)?;
        }
        Ok(())
    })
    .expect_err("losing a sole copy without parity must fail");
    assert_eq!(err.annotation(), "N.D.");
    assert!(matches!(
        err,
        JobError::NodeDecommissioned { lost_blocks, .. } if lost_blocks > 0
    ));
    assert_eq!(s.stats().reconstructed_blocks, 0);
    assert_eq!(s.stats().parity_blocks_encoded, 0);
}

fn probe_block(seed: u64) -> Block {
    let mut state = seed | 1;
    Block::Dense(DenseBlock::from_fn(3, 3, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % 2000) as f64 / 100.0 - 10.0
    }))
}

/// Losing more blocks than one group's erasure budget covers must
/// surface the typed error even with parity armed — never wrong bytes,
/// never a silent partial recovery. Co-locating sole copies of blocks
/// with *distinct canonical homes* on one node puts several members of
/// the same XOR group behind a single failure.
#[test]
fn losses_beyond_the_erasure_budget_keep_the_typed_error() {
    let mut cluster = LocalCluster::new(elastic_cfg(4).with_replication(ReplicationPolicy::Xor));
    let stores = cluster.stores();
    let matrix = 0xC0DE;
    let doomed = 1usize;
    let mut canonical_homes = BTreeSet::new();
    for i in 0..6u32 {
        let id = BlockId::new(i, 0);
        canonical_homes.insert(home_node(id, 0, 4));
        stores.ingest(
            doomed,
            StoreKey::operand(matrix, id),
            Arc::new(probe_block(u64::from(i) + 1)),
        );
    }
    assert!(
        canonical_homes.len() >= 2,
        "the probe ids must span at least two canonical homes, so some \
         group loses two members at once"
    );
    assert!(cluster.encode_parity(matrix) > 0);

    let err = cluster
        .decommission_node(doomed)
        .expect_err("a whole co-located group exceeds the XOR budget");
    assert!(matches!(
        err,
        JobError::NodeDecommissioned { node, lost_blocks } if node == doomed && lost_blocks > 0
    ));
    // The damaged matrix is evicted everywhere — no hole left behind.
    assert!(cluster
        .stores()
        .resident_keys()
        .keys()
        .all(|k| k.matrix != matrix));
}
