//! Elastic membership at the cluster layer: ledger snapshot deltas that
//! span a membership change, and the membership log across a session of
//! resizes.
//!
//! The invariant under test for the snapshots: a rebalance's migration
//! bytes land in a spanning [`LedgerSnapshot::since`] delta **exactly
//! once**, under [`Phase::Rebalance`] and no other phase — never smeared
//! into job phases, never double-counted by later deltas.

use distme_cluster::rebalance::home_node;
use distme_cluster::{ClusterConfig, LocalCluster, MembershipEvent, Phase, StoreKey};
use distme_matrix::{Block, BlockId, DenseBlock};
use std::sync::Arc;

fn block(seed: usize) -> Arc<Block> {
    Arc::new(Block::Dense(DenseBlock::from_fn(4, 4, |i, j| {
        (seed + i * 4 + j) as f64
    })))
}

/// A 4-node cluster with a few operand blocks resident at their homes.
fn seeded_cluster() -> LocalCluster {
    let c = LocalCluster::new(ClusterConfig::laptop());
    let uid = 7;
    for id in [BlockId::new(0, 0), BlockId::new(1, 2), BlockId::new(3, 1)] {
        let key = StoreKey::operand(uid, id);
        c.stores()
            .ingest(home_node(id, 0, 4), key, block(id.row as usize));
        c.stores()
            .ingest(home_node(id, 1, 4), key, block(id.row as usize));
    }
    c
}

#[test]
fn snapshot_deltas_span_a_membership_change_exactly_once() {
    let mut c = seeded_cluster();
    // Pre-existing job traffic: must stay out of the spanning delta.
    c.ledger().record_shuffle(Phase::Repartition, 0, 1, 100);
    let mark = c.ledger().snapshot();

    let report = c.scale_to(9).expect("grow");
    assert!(
        report.payload_bytes > 0,
        "a grow on a seeded store migrates"
    );

    let delta = c.ledger().since(&mark);
    assert_eq!(
        delta.shuffle_bytes(Phase::Rebalance),
        report.payload_bytes,
        "the spanning delta must carry the migration bytes"
    );
    assert_eq!(
        delta.cross_node_bytes(Phase::Rebalance),
        report.stats.phase(Phase::Rebalance).cross_node_bytes
    );
    for phase in [Phase::Repartition, Phase::LocalMult, Phase::Aggregation] {
        assert_eq!(
            delta.shuffle_bytes(phase),
            0,
            "migration must not smear into {}",
            phase.label()
        );
    }

    // A delta taken after the resize reports the bytes zero more times.
    let after = c.ledger().snapshot();
    assert_eq!(c.ledger().since(&after).shuffle_bytes(Phase::Rebalance), 0);

    // Cumulative counters: prior traffic untouched, rebalance accumulated.
    assert_eq!(c.ledger().shuffle_bytes(Phase::Repartition), 100);
    assert_eq!(
        c.ledger().shuffle_bytes(Phase::Rebalance),
        report.payload_bytes
    );

    // A second resize stacks on top cumulatively, and a snapshot taken
    // between the two sees only the second migration.
    let between = c.ledger().snapshot();
    let shrink = c.scale_to(4).expect("shrink");
    assert_eq!(
        c.ledger().since(&between).shuffle_bytes(Phase::Rebalance),
        shrink.payload_bytes
    );
    assert_eq!(
        c.ledger().shuffle_bytes(Phase::Rebalance),
        report.payload_bytes + shrink.payload_bytes
    );
}

#[test]
fn membership_log_records_the_whole_session() {
    let mut c = seeded_cluster();
    c.scale_to(9).expect("grow");

    // Decommission a node that holds nothing: nothing can get lost, but
    // the grid still shrinks and the event still logs.
    let resident = c.stores().resident_keys();
    let victim = (0..9)
        .find(|n| resident.values().all(|holders| !holders.contains(n)))
        .expect("three dual-homed blocks cannot cover nine nodes");
    c.decommission_node(victim)
        .expect("empty node decommissions cleanly");

    assert_eq!(c.epoch(), 2);
    assert_eq!(c.config().nodes, 8);
    assert_eq!(c.membership().nodes(), 8);
    let log = c.membership().log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0], (1, MembershipEvent::ScaleTo { from: 4, to: 9 }));
    assert_eq!(log[1], (2, MembershipEvent::Decommission { node: victim }));

    // Every resident key still sits at its homes on the shrunk grid.
    for (key, holders) in c.stores().resident_keys() {
        let homes: std::collections::BTreeSet<usize> =
            [home_node(key.id, 0, 8), home_node(key.id, 1, 8)]
                .into_iter()
                .collect();
        assert_eq!(holders, homes, "{key:?} not at its 8-grid homes");
    }
}
