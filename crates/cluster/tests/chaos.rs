//! Chaos suite: the recovery invariant under seeded fault injection.
//!
//! Every run below executes a real distributed multiply while the
//! transport drops deliveries, flips payload bits (caught by the codec's
//! frame checksum), crashes tasks, and blacks out whole nodes. The
//! invariant is absolute: a faulted job either completes **bit-identical**
//! to its fault-free twin, or fails with a clean typed [`JobError`] —
//! never a panic, never a hang, never a silently wrong result.
//!
//! Faults are deterministic functions of `(seed, event identity)`, so any
//! failing case replays exactly from its printed seed.

use distme_cluster::{
    Blackout, ClusterConfig, FaultSpec, JobError, JobStats, LocalCluster, Phase, ReplicationPolicy,
};
use distme_core::real_exec::{self, RealExecOptions};
use distme_core::MulMethod;
use distme_matrix::{BlockMatrix, MatrixGenerator, MatrixMeta};
use proptest::prelude::*;

const BS: u64 = 16;

fn operands(ib: u64, kb: u64, jb: u64) -> (BlockMatrix, BlockMatrix) {
    let am = MatrixMeta::dense(ib * BS, kb * BS).with_block_size(BS);
    let bm = MatrixMeta::dense(kb * BS, jb * BS).with_block_size(BS);
    let a = MatrixGenerator::with_seed(31).generate(&am).unwrap();
    let b = MatrixGenerator::with_seed(32).generate(&bm).unwrap();
    (a, b)
}

/// One multiply on a fresh cluster, optionally under a fault schedule.
fn run(
    a: &BlockMatrix,
    b: &BlockMatrix,
    method: MulMethod,
    spec: Option<FaultSpec>,
) -> Result<(BlockMatrix, JobStats, LocalCluster), JobError> {
    let cluster = LocalCluster::new(ClusterConfig::laptop());
    if let Some(spec) = spec {
        cluster.inject_faults(spec);
    }
    let (c, stats) = real_exec::multiply(&cluster, a, b, method)?;
    Ok((c, stats, cluster))
}

fn methods() -> [MulMethod; 4] {
    [
        MulMethod::Bmm,
        MulMethod::Cpmm,
        MulMethod::Rmm,
        MulMethod::CuboidAuto,
    ]
}

/// The acceptance run: a fixed seed with dropped deliveries, corrupted
/// frames, and task crashes all active at once must recover to the exact
/// fault-free bytes — with the recovery machinery demonstrably exercised.
#[test]
fn fixed_seed_drop_corruption_and_crashes_recover_bit_identically() {
    let (a, b) = operands(5, 4, 3);
    let spec = FaultSpec {
        seed: 14,
        drop_rate: 0.05,
        corrupt_rate: 0.03,
        crash_rate: 0.05,
        blackouts: Vec::new(),
    };
    let (clean, clean_stats, clean_cluster) =
        run(&a, &b, MulMethod::Cpmm, None).expect("fault-free CPMM");
    let (faulted, stats, cluster) =
        run(&a, &b, MulMethod::Cpmm, Some(spec.clone())).expect("faulted CPMM recovers");
    let plan = cluster.fault_plan().expect("plan stays armed");

    // Recovery actually happened — this is not a vacuous pass.
    assert!(plan.dropped() > 0, "seed must drop at least one delivery");
    assert!(plan.corrupted() > 0, "seed must corrupt at least one frame");
    assert!(plan.crashed() > 0, "seed must crash at least one task");
    assert!(stats.retries > 0, "crashed tasks must be re-run");
    assert!(stats.redelivered_moves > 0, "lost frames must be re-sent");
    assert!(stats.retransmitted_payload_bytes > 0);

    // ...and left no trace in the result or the model bytes.
    assert_eq!(
        faulted.max_abs_diff(&clean).unwrap(),
        0.0,
        "recovered result must be bit-identical"
    );
    for phase in Phase::ALL {
        assert_eq!(
            cluster.ledger().shuffle_bytes(phase),
            clean_cluster.ledger().shuffle_bytes(phase),
            "model bytes diverged in {}",
            phase.label()
        );
    }
    assert_eq!(
        stats.transport_payload_bytes, clean_stats.transport_payload_bytes,
        "first-transmission payload must match the fault-free run"
    );
    assert_eq!(clean_stats.retries, 0);
    assert_eq!(clean_stats.retransmitted_payload_bytes, 0);
}

/// The same acceptance run through the pipelined executor: drops and
/// corrupted frames must recover mid-stream — inside the fused
/// dependency-gated stage, while panels prefetch and consumers wait on the
/// delivery board — to the exact bytes of the fault-free *pipelined* twin.
/// Physical payload bytes are not compared here: the streaming pull path
/// skips blocks that already landed via another route, so payload (unlike
/// the result and the ledger) is timing-dependent under pipelining.
#[test]
fn pipelined_streaming_recovers_drops_and_corruption_bit_identically() {
    let (a, b) = operands(5, 4, 3);
    let opts = RealExecOptions {
        pipelined: true,
        ..Default::default()
    };
    let spec = FaultSpec {
        seed: 14,
        drop_rate: 0.05,
        corrupt_rate: 0.03,
        crash_rate: 0.05,
        blackouts: Vec::new(),
    };
    let clean_cluster = LocalCluster::new(ClusterConfig::laptop());
    let (clean, clean_stats) =
        real_exec::multiply_with(&clean_cluster, &a, &b, MulMethod::Cpmm, opts)
            .expect("fault-free pipelined CPMM");
    let cluster = LocalCluster::new(ClusterConfig::laptop());
    cluster.inject_faults(spec);
    let (faulted, stats) = real_exec::multiply_with(&cluster, &a, &b, MulMethod::Cpmm, opts)
        .expect("faulted pipelined CPMM recovers");
    let plan = cluster.fault_plan().expect("plan stays armed");

    assert!(plan.dropped() > 0, "seed must drop at least one delivery");
    assert!(plan.corrupted() > 0, "seed must corrupt at least one frame");
    assert!(stats.retries + stats.redelivered_moves > 0, "recovery ran");
    assert_eq!(clean_stats.retries, 0);
    assert_eq!(clean_stats.retransmitted_payload_bytes, 0);

    assert_eq!(
        faulted.max_abs_diff(&clean).unwrap(),
        0.0,
        "recovered streamed result must be bit-identical"
    );
    for phase in Phase::ALL {
        assert_eq!(
            cluster.ledger().shuffle_bytes(phase),
            clean_cluster.ledger().shuffle_bytes(phase),
            "model bytes diverged in {}",
            phase.label()
        );
        assert_eq!(
            cluster.ledger().cross_node_bytes(phase),
            clean_cluster.ledger().cross_node_bytes(phase),
            "cross-node model bytes diverged in {}",
            phase.label()
        );
    }
    assert!(
        stats.overlap_ratio.is_some(),
        "streamed run reports overlap"
    );
}

/// A node blacked out for the whole job is not recoverable by retries:
/// the job must fail with a clean typed error naming the outage, not hang
/// or panic.
#[test]
fn whole_job_blackout_fails_cleanly() {
    let (a, b) = operands(3, 2, 2);
    let spec = FaultSpec {
        blackouts: vec![Blackout {
            node: 0,
            from_stage: 0,
            until_stage: u64::MAX,
        }],
        ..FaultSpec::quiet(1)
    };
    let Err(err) = run(&a, &b, MulMethod::Cpmm, Some(spec)) else {
        panic!("a job through a dead node cannot succeed");
    };
    let msg = err.to_string();
    assert!(msg.contains("unreachable"), "got: {msg}");
}

/// A blackout window over the shuffle stages, with XOR parity armed:
/// deliveries sourced from the dark node are rebuilt by a parity decode
/// over the *reachable* survivors (the dark node's frames are excluded
/// from the scan), so the job completes bit-identically without lineage
/// ever reaching the dead store. The dark node hosts operand blocks but
/// no tasks here — the row-sharded SpMM schedule has fewer tasks than
/// nodes — which is exactly the loss parity covers and retries cannot.
#[test]
fn blackout_window_losses_decode_from_parity_before_lineage() {
    let am = MatrixMeta::sparse(3 * BS, 2 * BS, 0.08).with_block_size(BS);
    let bm = MatrixMeta::dense(2 * BS, 2 * BS).with_block_size(BS);
    let a = MatrixGenerator::with_seed(31).generate(&am).unwrap();
    let b = MatrixGenerator::with_seed(32).generate(&bm).unwrap();
    let spec = FaultSpec {
        blackouts: vec![Blackout {
            node: 3,
            from_stage: 0,
            until_stage: 1,
        }],
        ..FaultSpec::quiet(7)
    };

    let clean_cluster = LocalCluster::new(ClusterConfig::laptop());
    let (clean, _) =
        real_exec::multiply(&clean_cluster, &a, &b, MulMethod::SpmmShift).expect("fault-free SpMM");

    let coded = LocalCluster::new(ClusterConfig::laptop().with_replication(ReplicationPolicy::Xor));
    coded.inject_faults(spec.clone());
    let (c, stats) = real_exec::multiply(&coded, &a, &b, MulMethod::SpmmShift)
        .expect("coded run must ride out the blackout");
    assert!(
        stats.reconstructed_blocks > 0,
        "losses inside the window must be parity decodes"
    );
    assert!(stats.reconstruction_payload_bytes > 0);
    assert_eq!(
        stats.redelivered_moves, 0,
        "lineage must never touch the dark store"
    );
    assert_eq!(
        c.max_abs_diff(&clean).unwrap(),
        0.0,
        "decoded result must be bit-identical"
    );

    // The control: the identical window without parity is unrecoverable —
    // lineage redelivery keeps hitting the dark node until retries
    // exhaust, and the typed error names the lost block.
    let uncoded = LocalCluster::new(ClusterConfig::laptop());
    uncoded.inject_faults(spec);
    let err = real_exec::multiply(&uncoded, &a, &b, MulMethod::SpmmShift)
        .expect_err("no parity, no recovery");
    assert!(matches!(err, JobError::TaskFailed { .. }), "got: {err}");
}

/// Certain corruption defeats every redelivery; the exhausted retry
/// budget must surface the attempt count in the error.
#[test]
fn certain_corruption_exhausts_retries_with_attempt_count() {
    let (a, b) = operands(3, 2, 2);
    let spec = FaultSpec {
        corrupt_rate: 1.0,
        ..FaultSpec::quiet(2)
    };
    let Err(err) = run(&a, &b, MulMethod::Cpmm, Some(spec)) else {
        panic!("certain corruption cannot succeed");
    };
    let attempts = ClusterConfig::laptop().retry.max_attempts;
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("failed after {attempts} attempts")),
        "got: {msg}"
    );
    assert!(msg.contains("corrupt"), "got: {msg}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The sweep: random seeds and fault rates over every method and a
    /// few shapes. Whatever the schedule does, the outcome is either the
    /// exact fault-free bytes or a clean typed error.
    #[test]
    fn any_fault_schedule_is_bit_identical_or_a_clean_error(
        seed in any::<u64>(),
        drop_rate in 0.0f64..0.25,
        corrupt_rate in 0.0f64..0.15,
        crash_rate in 0.0f64..0.25,
        method_idx in 0usize..4,
        shape_idx in 0usize..2,
    ) {
        let (ib, kb, jb) = [(3, 2, 2), (2, 4, 1)][shape_idx];
        let (a, b) = operands(ib, kb, jb);
        let method = methods()[method_idx];
        let (clean, clean_stats, _) =
            run(&a, &b, method, None).expect("fault-free runs never fail");
        let spec = FaultSpec {
            seed,
            drop_rate,
            corrupt_rate,
            crash_rate,
            blackouts: Vec::new(),
        };
        match run(&a, &b, method, Some(spec)) {
            Ok((c, stats, _)) => {
                prop_assert_eq!(c.max_abs_diff(&clean).unwrap(), 0.0);
                prop_assert_eq!(
                    stats.transport_payload_bytes,
                    clean_stats.transport_payload_bytes
                );
            }
            // Exhausted retries are an acceptable outcome at high rates —
            // but only as a typed failure, which `run` returning `Err`
            // already proves (a panic or hang would not reach here).
            Err(JobError::TaskFailed { .. }) => {}
            Err(other) => panic!("unexpected failure mode: {other}"),
        }
    }

    /// Blackouts that cover only a window of stages: jobs whose stages
    /// all miss the window recover; the invariant holds either way.
    #[test]
    fn windowed_blackouts_hold_the_invariant(
        seed in any::<u64>(),
        from_stage in 0u64..4,
        len in 0u64..3,
        method_idx in 0usize..4,
    ) {
        let (a, b) = operands(3, 2, 2);
        let method = methods()[method_idx];
        let (clean, _, _) = run(&a, &b, method, None).expect("fault-free runs never fail");
        let spec = FaultSpec {
            blackouts: vec![Blackout {
                node: 1,
                from_stage,
                until_stage: from_stage + len,
            }],
            ..FaultSpec::quiet(seed)
        };
        match run(&a, &b, method, Some(spec)) {
            Ok((c, _, _)) => prop_assert_eq!(c.max_abs_diff(&clean).unwrap(), 0.0),
            Err(JobError::TaskFailed { .. }) => {}
            Err(other) => panic!("unexpected failure mode: {other}"),
        }
    }
}
