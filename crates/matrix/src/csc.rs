//! Compressed Sparse Column (CSC) blocks.
//!
//! §2.1 names CSC alongside CSR as the sparse block formats distributed
//! matrix systems use. CSC is the column-major dual of CSR: it is the
//! natural layout for the *right* operand of a product (its columns are
//! contiguous) and for column-wise access patterns like per-item
//! aggregates over a ratings matrix.

use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;

/// A sparse block in CSC format.
///
/// Invariants mirror [`CsrBlock`]'s with rows and columns swapped:
/// `col_ptr.len() == cols + 1`, non-decreasing, row indices strictly
/// increasing within a column and `< rows`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscBlock {
    rows: usize,
    cols: usize,
    col_ptr: Vec<u32>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscBlock {
    /// An empty (all-zero) CSC block.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CscBlock {
            rows,
            cols,
            col_ptr: vec![0; cols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSC block from `(row, col, value)` triplets (unordered;
    /// duplicates summed; zeros dropped).
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidSparseStructure`] for out-of-range
    /// coordinates.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        // Reuse the validated CSR construction on the transpose.
        let swapped = triplets.into_iter().map(|(r, c, v)| (c, r, v));
        let csr_of_t = CsrBlock::from_triplets(cols, rows, swapped)?;
        Ok(Self::from_csr_of_transpose(csr_of_t))
    }

    /// Converts a CSR block to CSC (same logical matrix).
    pub fn from_csr(csr: &CsrBlock) -> Self {
        Self::from_csr_of_transpose(csr.transpose())
    }

    /// Converts to CSR (same logical matrix).
    pub fn to_csr(&self) -> CsrBlock {
        // Our (col_ptr, row_idx, values) are exactly the CSR arrays of the
        // transposed matrix; transposing that recovers the original.
        let csr_of_t = CsrBlock::from_raw_parts(
            self.cols,
            self.rows,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            self.values.clone(),
        )
        .expect("CSC invariants imply CSR invariants of the transpose");
        csr_of_t.transpose()
    }

    /// Interprets a CSR block's arrays as the CSC of its transpose —
    /// zero-cost dual view.
    fn from_csr_of_transpose(csr_of_t: CsrBlock) -> Self {
        let rows = csr_of_t.cols();
        let cols = csr_of_t.rows();
        CscBlock {
            rows,
            cols,
            col_ptr: csr_of_t.row_ptr().to_vec(),
            row_idx: csr_of_t.col_idx().to_vec(),
            values: csr_of_t.values().to_vec(),
        }
    }

    /// Converts to dense.
    pub fn to_dense(&self) -> DenseBlock {
        let mut d = DenseBlock::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            let (s, e) = (self.col_ptr[j] as usize, self.col_ptr[j + 1] as usize);
            for k in s..e {
                d.set(self.row_idx[k] as usize, j, self.values[k]);
            }
        }
        d
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column-pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[u32] {
        &self.col_ptr
    }

    /// Row indices, column-major within columns.
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// Non-zero values, parallel to [`Self::row_idx`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(row, col, value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.cols).flat_map(move |j| {
            let (s, e) = (self.col_ptr[j] as usize, self.col_ptr[j + 1] as usize);
            (s..e).map(move |k| (self.row_idx[k] as usize, j, self.values[k]))
        })
    }

    /// Per-column non-zero counts — the access pattern CSC exists for.
    pub fn col_nnz(&self) -> Vec<usize> {
        self.col_ptr
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Sums each column (e.g. total rating mass per item).
    pub fn col_sums(&self) -> Vec<f64> {
        (0..self.cols)
            .map(|j| {
                let (s, e) = (self.col_ptr[j] as usize, self.col_ptr[j + 1] as usize);
                self.values[s..e].iter().sum()
            })
            .collect()
    }

    /// Validates the CSC invariants.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidSparseStructure`] on the first
    /// violation.
    pub fn validate(&self) -> Result<()> {
        CsrBlock::from_raw_parts(
            self.cols,
            self.rows,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            self.values.clone(),
        )
        .map(|_| ())
        .map_err(|e| match e {
            MatrixError::InvalidSparseStructure(msg) => {
                MatrixError::InvalidSparseStructure(format!("(as CSC) {msg}"))
            }
            other => other,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscBlock {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CscBlock::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_layout() {
        let b = sample();
        b.validate().unwrap();
        assert_eq!(b.nnz(), 4);
        assert_eq!(b.col_ptr(), &[0, 2, 3, 4]);
        assert_eq!(b.row_idx(), &[0, 2, 2, 0]);
        assert_eq!(b.values(), &[1.0, 3.0, 4.0, 2.0]);
    }

    #[test]
    fn csr_roundtrip_preserves_matrix() {
        let csc = sample();
        let csr = csc.to_csr();
        assert_eq!(csr.to_dense(), csc.to_dense());
        let back = CscBlock::from_csr(&csr);
        assert_eq!(back, csc);
    }

    #[test]
    fn dense_agreement() {
        let d = sample().to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(2, 1), 4.0);
        assert_eq!(d.get(1, 1), 0.0);
    }

    #[test]
    fn iter_is_column_major() {
        let got: Vec<_> = sample().iter().collect();
        assert_eq!(
            got,
            vec![(0, 0, 1.0), (2, 0, 3.0), (2, 1, 4.0), (0, 2, 2.0)]
        );
    }

    #[test]
    fn column_aggregates() {
        let b = sample();
        assert_eq!(b.col_nnz(), vec![2, 1, 1]);
        assert_eq!(b.col_sums(), vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn duplicates_merge_and_zeros_drop() {
        let b = CscBlock::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]).unwrap();
        assert_eq!(b.nnz(), 1);
        assert_eq!(b.values(), &[3.0]);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(CscBlock::from_triplets(2, 2, vec![(5, 0, 1.0)]).is_err());
    }

    #[test]
    fn empty_is_valid() {
        let b = CscBlock::empty(3, 4);
        b.validate().unwrap();
        assert_eq!(b.col_nnz(), vec![0; 4]);
    }
}
