//! Single-node blocked matrix: the correctness reference for every
//! distributed method, and the local representation examples operate on.

use crate::block::{Block, BlockId};
use crate::dense::DenseBlock;
use crate::elementwise::{ew, EwOp};
use crate::error::{MatrixError, Result};
use crate::kernels;
use crate::meta::MatrixMeta;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique matrix identity.
///
/// A uid names one *content version* of a block set (RDD-lineage style):
/// clones and moves keep it, mutation mints a new one. Placement caches
/// (the cluster's per-node block stores) key residency by uid, so a stale
/// cache entry can never alias changed content.
pub fn fresh_matrix_uid() -> u64 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

/// A matrix stored as a grid of blocks on a single node.
///
/// Missing blocks are implicitly zero (common for very sparse matrices).
/// Blocks are held behind [`Arc`] so distributed executors can pin the same
/// physical block on several virtual nodes (broadcast, residency caches)
/// without copying element data.
#[derive(Debug, Clone)]
pub struct BlockMatrix {
    meta: MatrixMeta,
    uid: u64,
    blocks: BTreeMap<BlockId, Arc<Block>>,
}

/// Equality is by shape and content; the uid (an identity/version token)
/// deliberately does not participate.
impl PartialEq for BlockMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.meta == other.meta && self.blocks == other.blocks
    }
}

impl BlockMatrix {
    /// Creates an empty (all-zero) matrix with the given shape descriptor.
    pub fn new(meta: MatrixMeta) -> Self {
        BlockMatrix {
            meta,
            uid: fresh_matrix_uid(),
            blocks: BTreeMap::new(),
        }
    }

    /// Shape descriptor.
    pub fn meta(&self) -> &MatrixMeta {
        &self.meta
    }

    /// This content version's identity (see [`fresh_matrix_uid`]). Stable
    /// across clones and moves; every [`put`](Self::put) mints a new one.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    fn check_slot(&self, bi: u32, bj: u32, block: &Block) -> Result<()> {
        if bi >= self.meta.block_rows() || bj >= self.meta.block_cols() {
            return Err(MatrixError::BlockOutOfBounds {
                id: (bi, bj),
                grid: (self.meta.block_rows(), self.meta.block_cols()),
            });
        }
        let (r, c) = self.meta.block_dims(bi, bj);
        if block.rows() as u64 != r || block.cols() as u64 != c {
            return Err(MatrixError::DimensionMismatch {
                op: "put_block",
                lhs: (block.rows() as u64, block.cols() as u64),
                rhs: (r, c),
            });
        }
        Ok(())
    }

    /// Inserts/replaces the block at `(bi, bj)`.
    ///
    /// # Errors
    /// Returns [`MatrixError::BlockOutOfBounds`] for coordinates outside the
    /// grid, and [`MatrixError::DimensionMismatch`] if the block's shape
    /// differs from what the grid slot requires.
    pub fn put(&mut self, bi: u32, bj: u32, block: Block) -> Result<()> {
        self.put_shared(bi, bj, Arc::new(block))
    }

    /// [`put`](Self::put) for an already-shared block (no element copy).
    ///
    /// # Errors
    /// Same as [`put`](Self::put).
    pub fn put_shared(&mut self, bi: u32, bj: u32, block: Arc<Block>) -> Result<()> {
        self.check_slot(bi, bj, &block)?;
        self.blocks.insert(BlockId::new(bi, bj), block);
        self.uid = fresh_matrix_uid();
        Ok(())
    }

    /// Returns the block at `(bi, bj)` if materialized.
    pub fn get(&self, bi: u32, bj: u32) -> Option<&Block> {
        self.blocks.get(&BlockId::new(bi, bj)).map(|b| &**b)
    }

    /// Returns a shared handle to the block at `(bi, bj)` if materialized.
    pub fn get_shared(&self, bi: u32, bj: u32) -> Option<Arc<Block>> {
        self.blocks.get(&BlockId::new(bi, bj)).map(Arc::clone)
    }

    /// Iterates over materialized blocks in (row, col) order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().map(|(id, b)| (*id, &**b))
    }

    /// Iterates over shared handles to the materialized blocks.
    pub fn blocks_shared(&self) -> impl Iterator<Item = (BlockId, Arc<Block>)> + '_ {
        self.blocks.iter().map(|(id, b)| (*id, Arc::clone(b)))
    }

    /// Consumes the matrix, yielding its blocks (cloning only blocks still
    /// shared elsewhere).
    pub fn into_blocks(self) -> impl Iterator<Item = (BlockId, Block)> {
        self.blocks
            .into_iter()
            .map(|(id, b)| (id, Arc::try_unwrap(b).unwrap_or_else(|a| (*a).clone())))
    }

    /// Number of materialized blocks.
    pub fn num_materialized(&self) -> usize {
        self.blocks.len()
    }

    /// Total non-zeros over materialized blocks.
    pub fn nnz(&self) -> u64 {
        self.blocks.values().map(|b| b.nnz() as u64).sum()
    }

    /// Total in-memory bytes over materialized blocks.
    pub fn mem_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.mem_bytes()).sum()
    }

    /// Element accessor (slow; tests and small examples only).
    pub fn get_element(&self, i: u64, j: u64) -> f64 {
        let bs = self.meta.block_size;
        let (bi, bj) = ((i / bs) as u32, (j / bs) as u32);
        match self.get(bi, bj) {
            Some(b) => b.get((i % bs) as usize, (j % bs) as usize),
            None => 0.0,
        }
    }

    /// Single-node reference matrix multiplication: `self × rhs`, computing
    /// each output block by Eq. (1): `C[i,j] = Σ_k A[i,k] · B[k,j]`.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when inner dimensions or
    /// block sizes differ.
    pub fn multiply(&self, rhs: &BlockMatrix) -> Result<BlockMatrix> {
        if self.meta.cols != rhs.meta.rows || self.meta.block_size != rhs.meta.block_size {
            return Err(MatrixError::DimensionMismatch {
                op: "matrix_multiply",
                lhs: (self.meta.rows, self.meta.cols),
                rhs: (rhs.meta.rows, rhs.meta.cols),
            });
        }
        let out_meta = self.meta.multiply_meta(&rhs.meta);
        let mut out = BlockMatrix::new(out_meta);
        let kdim = self.meta.block_cols();
        for bi in 0..self.meta.block_rows() {
            for bj in 0..rhs.meta.block_cols() {
                let (orows, ocols) = out_meta.block_dims(bi, bj);
                let mut acc = DenseBlock::zeros(orows as usize, ocols as usize);
                let mut any = false;
                for bk in 0..kdim {
                    let (Some(a), Some(b)) = (self.get(bi, bk), rhs.get(bk, bj)) else {
                        continue;
                    };
                    kernels::multiply_accumulate(&mut acc, a, b)?;
                    any = true;
                }
                if any {
                    out.put(bi, bj, Block::Dense(acc).normalize())?;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise combination with another matrix of identical shape.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when shapes differ.
    pub fn elementwise(&self, op: EwOp, rhs: &BlockMatrix) -> Result<BlockMatrix> {
        if self.meta.rows != rhs.meta.rows
            || self.meta.cols != rhs.meta.cols
            || self.meta.block_size != rhs.meta.block_size
        {
            return Err(MatrixError::DimensionMismatch {
                op: "elementwise",
                lhs: (self.meta.rows, self.meta.cols),
                rhs: (rhs.meta.rows, rhs.meta.cols),
            });
        }
        let mut out = BlockMatrix::new(self.meta);
        for bi in 0..self.meta.block_rows() {
            for bj in 0..self.meta.block_cols() {
                let (r, c) = self.meta.block_dims(bi, bj);
                let zero = || Block::Dense(DenseBlock::zeros(r as usize, c as usize));
                let result = match (self.get(bi, bj), rhs.get(bi, bj)) {
                    (None, None) => continue,
                    (Some(a), Some(b)) => ew(op, a, b)?,
                    (Some(a), None) => ew(op, a, &zero())?,
                    (None, Some(b)) => ew(op, &zero(), b)?,
                };
                if result.nnz() > 0 {
                    out.put(bi, bj, result)?;
                }
            }
        }
        Ok(out)
    }

    /// Transposed matrix (blocks transposed and re-gridded).
    pub fn transpose(&self) -> BlockMatrix {
        let mut out = BlockMatrix::new(self.meta.transposed());
        for (id, b) in self.blocks() {
            out.put(id.col, id.row, b.transpose())
                .expect("transpose grid positions are always valid");
        }
        out
    }

    /// Maximum absolute element difference; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &BlockMatrix) -> Option<f64> {
        if self.meta.rows != other.meta.rows || self.meta.cols != other.meta.cols {
            return None;
        }
        let mut worst = 0.0f64;
        for bi in 0..self.meta.block_rows() {
            for bj in 0..self.meta.block_cols() {
                let (r, c) = self.meta.block_dims(bi, bj);
                let d = match (self.get(bi, bj), other.get(bi, bj)) {
                    (None, None) => 0.0,
                    (Some(a), Some(b)) => a.max_abs_diff(b)?,
                    (Some(x), None) | (None, Some(x)) => {
                        x.max_abs_diff(&Block::Dense(DenseBlock::zeros(r as usize, c as usize)))?
                    }
                };
                worst = worst.max(d);
            }
        }
        Some(worst)
    }

    /// Frobenius norm over materialized blocks.
    pub fn frobenius_norm(&self) -> f64 {
        self.blocks
            .values()
            .map(|b| {
                let d = b.to_dense();
                d.data().iter().map(|v| v * v).sum::<f64>()
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::MatrixGenerator;

    fn gen(rows: u64, cols: u64, bs: u64, sparsity: f64, seed: u64) -> BlockMatrix {
        let meta = MatrixMeta::sparse(rows, cols, sparsity).with_block_size(bs);
        MatrixGenerator::with_seed(seed).generate(&meta).unwrap()
    }

    /// Element-level naive reference.
    fn naive_multiply(a: &BlockMatrix, b: &BlockMatrix) -> Vec<Vec<f64>> {
        let (m, k, n) = (a.meta().rows, a.meta().cols, b.meta().cols);
        let mut c = vec![vec![0.0; n as usize]; m as usize];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.get_element(i, kk) * b.get_element(kk, j);
                }
                c[i as usize][j as usize] = acc;
            }
        }
        c
    }

    #[test]
    fn multiply_matches_element_reference() {
        let a = gen(50, 70, 20, 1.0, 1);
        let b = gen(70, 30, 20, 1.0, 2);
        let c = a.multiply(&b).unwrap();
        let expect = naive_multiply(&a, &b);
        for i in 0..50 {
            for j in 0..30 {
                assert!(
                    (c.get_element(i, j) - expect[i as usize][j as usize]).abs() < 1e-9,
                    "mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn multiply_sparse_inputs() {
        let a = gen(40, 60, 16, 0.05, 3);
        let b = gen(60, 24, 16, 0.05, 4);
        let c = a.multiply(&b).unwrap();
        let expect = naive_multiply(&a, &b);
        for i in 0..40 {
            for j in 0..24 {
                assert!((c.get_element(i, j) - expect[i as usize][j as usize]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multiply_dim_mismatch() {
        let a = gen(10, 10, 5, 1.0, 1);
        let b = gen(11, 10, 5, 1.0, 2);
        assert!(a.multiply(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip_and_property() {
        let a = gen(30, 50, 16, 0.3, 9);
        let t = a.transpose();
        assert_eq!(t.meta().rows, 50);
        for i in 0..30 {
            for j in 0..50 {
                assert_eq!(a.get_element(i, j), t.get_element(j, i));
            }
        }
        assert!(a.max_abs_diff(&t.transpose()).unwrap() < 1e-15);
    }

    #[test]
    fn transpose_of_product_property() {
        // (A·B)^T == B^T · A^T
        let a = gen(24, 36, 12, 1.0, 5);
        let b = gen(36, 18, 12, 1.0, 6);
        let lhs = a.multiply(&b).unwrap().transpose();
        let rhs = b.transpose().multiply(&a.transpose()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }

    #[test]
    fn elementwise_add_sub_roundtrip() {
        let a = gen(25, 25, 10, 0.5, 7);
        let b = gen(25, 25, 10, 0.5, 8);
        let sum = a.elementwise(EwOp::Add, &b).unwrap();
        let back = sum.elementwise(EwOp::Sub, &b).unwrap();
        assert!(a.max_abs_diff(&back).unwrap() < 1e-12);
    }

    #[test]
    fn elementwise_with_missing_blocks() {
        let meta = MatrixMeta::dense(20, 20).with_block_size(10);
        let mut a = BlockMatrix::new(meta);
        a.put(0, 0, Block::Dense(DenseBlock::from_fn(10, 10, |_, _| 2.0)))
            .unwrap();
        let mut b = BlockMatrix::new(meta);
        b.put(1, 1, Block::Dense(DenseBlock::from_fn(10, 10, |_, _| 3.0)))
            .unwrap();
        let sum = a.elementwise(EwOp::Add, &b).unwrap();
        assert_eq!(sum.get_element(0, 0), 2.0);
        assert_eq!(sum.get_element(15, 15), 3.0);
        assert_eq!(sum.get_element(5, 15), 0.0);
    }

    #[test]
    fn put_validates_bounds_and_shape() {
        let meta = MatrixMeta::dense(20, 20).with_block_size(10);
        let mut m = BlockMatrix::new(meta);
        assert!(m
            .put(5, 0, Block::Dense(DenseBlock::zeros(10, 10)))
            .is_err());
        assert!(m.put(0, 0, Block::Dense(DenseBlock::zeros(3, 10))).is_err());
        assert!(m.put(0, 0, Block::Dense(DenseBlock::zeros(10, 10))).is_ok());
    }

    #[test]
    fn missing_blocks_read_as_zero() {
        let meta = MatrixMeta::dense(20, 20).with_block_size(10);
        let m = BlockMatrix::new(meta);
        assert_eq!(m.get_element(7, 13), 0.0);
        assert_eq!(m.nnz(), 0);
    }
}
