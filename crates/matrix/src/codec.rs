//! Compact binary block codec.
//!
//! DistME "exploits the data serialization and deserialization of SparkSQL to
//! reduce the amount of shuffled data" (§5). Our shuffle service serializes
//! blocks through this codec so that every communication-cost figure in the
//! benchmarks is measured on real bytes, not estimates.
//!
//! Wire format (little-endian):
//! ```text
//! dense : [0x01][rows: u32][cols: u32][data: rows*cols f64]
//! sparse: [0x02][rows: u32][cols: u32][nnz: u32]
//!         [row_ptr: (rows+1) u32][col_idx: nnz u32][values: nnz f64]
//! ```

use crate::block::Block;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TAG_DENSE: u8 = 0x01;
const TAG_SPARSE: u8 = 0x02;

/// Serializes a block.
pub fn encode(block: &Block) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(block) as usize);
    match block {
        Block::Dense(d) => {
            buf.put_u8(TAG_DENSE);
            buf.put_u32_le(d.rows() as u32);
            buf.put_u32_le(d.cols() as u32);
            for &v in d.data() {
                buf.put_f64_le(v);
            }
        }
        Block::Sparse(s) => {
            buf.put_u8(TAG_SPARSE);
            buf.put_u32_le(s.rows() as u32);
            buf.put_u32_le(s.cols() as u32);
            buf.put_u32_le(s.nnz() as u32);
            for &p in s.row_ptr() {
                buf.put_u32_le(p);
            }
            for &c in s.col_idx() {
                buf.put_u32_le(c);
            }
            for &v in s.values() {
                buf.put_f64_le(v);
            }
        }
    }
    buf.freeze()
}

/// Exact serialized size in bytes without encoding.
pub fn encoded_len(block: &Block) -> u64 {
    match block {
        Block::Dense(d) => 1 + 4 + 4 + 8 * d.len() as u64,
        Block::Sparse(s) => {
            1 + 4 + 4 + 4 + 4 * (s.rows() as u64 + 1) + 4 * s.nnz() as u64 + 8 * s.nnz() as u64
        }
    }
}

/// Deserializes a block.
///
/// # Errors
/// Returns [`MatrixError::Codec`] on truncated or malformed input, and
/// [`MatrixError::InvalidSparseStructure`] if a decoded CSR violates its
/// invariants.
pub fn decode(mut buf: Bytes) -> Result<Block> {
    fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
        if buf.remaining() < n {
            return Err(MatrixError::Codec(format!(
                "truncated input reading {what}: need {n} bytes, have {}",
                buf.remaining()
            )));
        }
        Ok(())
    }

    need(&buf, 1, "tag")?;
    let tag = buf.get_u8();
    match tag {
        TAG_DENSE => {
            need(&buf, 8, "dense header")?;
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| MatrixError::Codec("dense dims overflow".into()))?;
            need(&buf, 8 * n, "dense payload")?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(buf.get_f64_le());
            }
            Ok(Block::Dense(DenseBlock::from_vec(rows, cols, data)?))
        }
        TAG_SPARSE => {
            need(&buf, 12, "sparse header")?;
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            let nnz = buf.get_u32_le() as usize;
            need(&buf, 4 * (rows + 1) + 12 * nnz, "sparse payload")?;
            let mut row_ptr = Vec::with_capacity(rows + 1);
            for _ in 0..=rows {
                row_ptr.push(buf.get_u32_le());
            }
            let mut col_idx = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                col_idx.push(buf.get_u32_le());
            }
            let mut values = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                values.push(buf.get_f64_le());
            }
            Ok(Block::Sparse(CsrBlock::from_raw_parts(
                rows, cols, row_ptr, col_idx, values,
            )?))
        }
        other => Err(MatrixError::Codec(format!(
            "unknown block tag 0x{other:02x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_block() -> Block {
        Block::Dense(DenseBlock::from_fn(5, 7, |i, j| (i * 7 + j) as f64 * 0.5))
    }

    fn sparse_block() -> Block {
        Block::Sparse(
            CsrBlock::from_triplets(6, 4, vec![(0, 1, 1.5), (3, 0, -2.0), (5, 3, 9.0)]).unwrap(),
        )
    }

    #[test]
    fn dense_roundtrip() {
        let b = dense_block();
        let bytes = encode(&b);
        assert_eq!(bytes.len() as u64, encoded_len(&b));
        let back = decode(bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn sparse_roundtrip() {
        let b = sparse_block();
        let bytes = encode(&b);
        assert_eq!(bytes.len() as u64, encoded_len(&b));
        let back = decode(bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn empty_blocks_roundtrip() {
        for b in [
            Block::Dense(DenseBlock::zeros(0, 0)),
            Block::Sparse(CsrBlock::empty(3, 3)),
        ] {
            let back = decode(encode(&b)).unwrap();
            assert_eq!(b, back);
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode(&dense_block());
        for cut in [0usize, 1, 5, 9, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let bytes = Bytes::from_static(&[0x7f, 0, 0, 0, 0]);
        assert!(matches!(decode(bytes), Err(MatrixError::Codec(_))));
    }

    #[test]
    fn corrupt_sparse_structure_is_rejected() {
        // Encode a valid sparse block then corrupt a row pointer.
        let bytes = encode(&sparse_block());
        let mut raw = bytes.to_vec();
        // row_ptr starts at offset 13; write a huge value into the first ptr.
        raw[13] = 0xff;
        raw[14] = 0xff;
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn sparse_encoding_is_smaller_for_sparse_data() {
        let s = sparse_block();
        let d = Block::Dense(s.to_dense());
        assert!(encoded_len(&s) < encoded_len(&d));
    }
}
