//! Compact binary block codec.
//!
//! DistME "exploits the data serialization and deserialization of SparkSQL to
//! reduce the amount of shuffled data" (§5). Our shuffle service serializes
//! blocks through this codec so that every communication-cost figure in the
//! benchmarks is measured on real bytes, not estimates.
//!
//! Wire format v2 (little-endian):
//! ```text
//! frame : [version: u8 = 0x02][body][crc32: u32 over version + body]
//! dense : body = [0x01][rows: u32][cols: u32][data: rows*cols f64]
//! sparse: body = [0x02][rows: u32][cols: u32][nnz: u32]
//!                [row_ptr: (rows+1) u32][col_idx: nnz u32][values: nnz f64]
//! ```
//!
//! Version 2 added the leading version byte and the trailing CRC-32 (IEEE)
//! frame checksum so the transport can tell a corrupted delivery from a
//! decodable one: [`decode_slice`] verifies the checksum **before** parsing
//! a single header field, which means a bit-flipped length can never drive
//! an allocation or a misparse — corruption is always a clean
//! [`MatrixError::Codec`] error. Version-1 frames (no checksum) are
//! rejected, not guessed at.
//!
//! On little-endian targets the `f64`/`u32` payload sections move as whole
//! slices (one `memcpy` each way) rather than element-at-a-time puts/gets;
//! big-endian targets fall back to the per-element loop. The produced bytes
//! are identical either way, so `tests/plan_parity.rs` and every ledger
//! charge are unaffected.

use crate::block::Block;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Current wire-format version (leading frame byte).
pub const WIRE_VERSION: u8 = 0x02;

const TAG_DENSE: u8 = 0x01;
const TAG_SPARSE: u8 = 0x02;

/// Version byte + trailing CRC-32: bytes a frame carries beyond its body.
const FRAME_OVERHEAD: u64 = 5;

/// Eight CRC tables for slicing-by-8: `TABLES[0]` is the classic
/// byte-at-a-time table; `TABLES[j][i]` extends it so that eight input
/// bytes fold into the running CRC with eight independent lookups per
/// iteration instead of eight serially dependent ones.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

const CRC_TABLES: [[u32; 256]; 8] = crc32_tables();

/// The reference byte-at-a-time update, kept for short inputs and tails
/// (and as the oracle the slicing path is tested against).
fn crc32_bytewise(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Slicing-by-8 update: folds eight bytes per iteration through the eight
/// precomputed tables, breaking the per-byte serial dependency chain.
fn crc32_slice8(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    crc32_bytewise(crc, chunks.remainder())
}

/// PCLMULQDQ-folded CRC-32 over the same reflected IEEE polynomial: four
/// 128-bit lanes of carry-less multiplication fold 64 input bytes per
/// iteration, then Barrett reduction collapses the folded remainder to the
/// 32-bit CRC. Constants and fold order follow Intel's "Fast CRC
/// Computation for Generic Polynomials Using PCLMULQDQ" (the same schedule
/// zlib and the Linux kernel ship). Identical output to the table paths at
/// every length, so wire format v2 is unchanged byte for byte.
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use std::arch::x86_64::*;

    // Folding constants for the reflected polynomial 0xEDB88320:
    // x^(4·128+32), x^(4·128-32), x^(128+32), x^(128-32), x^64 mod P, and
    // the Barrett pair (P', μ).
    const K1: i64 = 0x01_5444_2bd4;
    const K2: i64 = 0x01_c6e4_1596;
    const K3: i64 = 0x01_7519_97d0;
    const K4: i64 = 0x00_ccaa_009e;
    const K5: i64 = 0x01_63cd_6124;
    const POLY: i64 = 0x01_db71_0641;
    const MU: i64 = 0x01_f701_1641;

    /// Whether this CPU can run the folded kernel.
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Folds as many whole 16-byte lanes of `bytes` as possible into `crc`,
    /// returning the updated running CRC and the number of bytes consumed
    /// (a multiple of 16; the caller finishes the tail with a table path).
    ///
    /// # Safety
    /// Requires `pclmulqdq` and `sse4.1` (checked via [`available`]) and
    /// `bytes.len() >= 64`.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub unsafe fn fold(crc: u32, bytes: &[u8]) -> (u32, usize) {
        debug_assert!(bytes.len() >= 64);
        let mut p = bytes.as_ptr();
        let mut len = bytes.len();

        let k1k2 = _mm_set_epi64x(K2, K1);
        let mut x1 = _mm_loadu_si128(p.cast());
        let mut x2 = _mm_loadu_si128(p.add(16).cast());
        let mut x3 = _mm_loadu_si128(p.add(32).cast());
        let mut x4 = _mm_loadu_si128(p.add(48).cast());
        x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(crc as i32));
        p = p.add(64);
        len -= 64;

        // Four independent lanes, 64 bytes per step.
        while len >= 64 {
            let f = |x: __m128i, next: __m128i| {
                _mm_xor_si128(
                    _mm_xor_si128(
                        _mm_clmulepi64_si128(x, k1k2, 0x00),
                        _mm_clmulepi64_si128(x, k1k2, 0x11),
                    ),
                    next,
                )
            };
            x1 = f(x1, _mm_loadu_si128(p.cast()));
            x2 = f(x2, _mm_loadu_si128(p.add(16).cast()));
            x3 = f(x3, _mm_loadu_si128(p.add(32).cast()));
            x4 = f(x4, _mm_loadu_si128(p.add(48).cast()));
            p = p.add(64);
            len -= 64;
        }

        // Fold the four lanes into one, then any remaining 16-byte lanes.
        let k3k4 = _mm_set_epi64x(K4, K3);
        let fold1 = |a: __m128i, b: __m128i| {
            _mm_xor_si128(
                _mm_xor_si128(
                    _mm_clmulepi64_si128(a, k3k4, 0x00),
                    _mm_clmulepi64_si128(a, k3k4, 0x11),
                ),
                b,
            )
        };
        let mut x = fold1(x1, x2);
        x = fold1(x, x3);
        x = fold1(x, x4);
        while len >= 16 {
            x = fold1(x, _mm_loadu_si128(p.cast()));
            p = p.add(16);
            len -= 16;
        }

        // Reduce 128 → 64 bits, then Barrett-reduce to the 32-bit CRC.
        let mask32 = _mm_setr_epi32(!0, 0, !0, 0);
        let t = _mm_clmulepi64_si128(x, k3k4, 0x10);
        x = _mm_xor_si128(_mm_srli_si128(x, 8), t);
        let k5v = _mm_set_epi64x(0, K5);
        let t2 = _mm_srli_si128(x, 4);
        x = _mm_and_si128(x, mask32);
        x = _mm_clmulepi64_si128(x, k5v, 0x00);
        x = _mm_xor_si128(x, t2);

        let polymu = _mm_set_epi64x(MU, POLY);
        let mut t3 = _mm_and_si128(x, mask32);
        t3 = _mm_clmulepi64_si128(t3, polymu, 0x10);
        t3 = _mm_and_si128(t3, mask32);
        t3 = _mm_clmulepi64_si128(t3, polymu, 0x00);
        x = _mm_xor_si128(x, t3);

        (_mm_extract_epi32(x, 1) as u32, bytes.len() - len)
    }
}

/// One CRC implementation tier. The dispatcher picks the fastest available
/// at runtime (the same `is_x86_feature_detected!` + `#[target_feature]`
/// idiom as the GEMM kernels); all tiers compute the identical polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrcTier {
    /// Reference byte-at-a-time table loop.
    Bytewise,
    /// Slicing-by-8 table loop (8 bytes per step).
    Slice8,
    /// PCLMULQDQ 4-lane folding (64 bytes per step, x86-64 only).
    Pclmul,
}

impl CrcTier {
    /// Every tier, slowest first.
    pub const ALL: [CrcTier; 3] = [CrcTier::Bytewise, CrcTier::Slice8, CrcTier::Pclmul];

    /// Whether this tier can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            CrcTier::Bytewise | CrcTier::Slice8 => true,
            #[cfg(target_arch = "x86_64")]
            CrcTier::Pclmul => pclmul::available(),
            #[cfg(not(target_arch = "x86_64"))]
            CrcTier::Pclmul => false,
        }
    }

    /// Stable lowercase name (bench/diagnostic labels).
    pub fn name(self) -> &'static str {
        match self {
            CrcTier::Bytewise => "bytewise",
            CrcTier::Slice8 => "slice8",
            CrcTier::Pclmul => "pclmul",
        }
    }
}

/// The tier large frames use on this machine (small inputs still take a
/// table path below the fold threshold regardless of the active tier).
pub fn active_crc_tier() -> CrcTier {
    if CrcTier::Pclmul.available() {
        CrcTier::Pclmul
    } else {
        CrcTier::Slice8
    }
}

/// Streaming CRC state update (no init/final inversion): dispatches to the
/// fastest available tier by input length. The fused frame encoder feeds
/// each section it writes through this, so a frame is checksummed as it is
/// produced rather than by a second full-frame scan.
fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if bytes.len() >= 64 && pclmul::available() {
        // SAFETY: feature support checked on this CPU; length >= 64.
        let (crc, consumed) = unsafe { pclmul::fold(crc, bytes) };
        return crc32_update_tables(crc, &bytes[consumed..]);
    }
    crc32_update_tables(crc, bytes)
}

/// Table-path state update (slicing-by-8 with a bytewise tail).
fn crc32_update_tables(crc: u32, bytes: &[u8]) -> u32 {
    if bytes.len() >= 16 {
        crc32_slice8(crc, bytes)
    } else {
        crc32_bytewise(crc, bytes)
    }
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes` — the frame checksum. Detects
/// every single-bit error, which is exactly the corruption class the chaos
/// layer injects. Every tier computes the identical polynomial, so wire
/// format v2 is unchanged byte for byte regardless of CPU.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// CRC-32 of `bytes` computed with a specific tier (tests and the bench
/// prove the tiers identical and attribute throughput per tier). Returns
/// `None` when the tier is unavailable on this CPU.
pub fn crc32_with_tier(tier: CrcTier, bytes: &[u8]) -> Option<u32> {
    if !tier.available() {
        return None;
    }
    let crc = match tier {
        CrcTier::Bytewise => crc32_bytewise(0xFFFF_FFFF, bytes),
        CrcTier::Slice8 => {
            if bytes.len() >= 16 {
                crc32_slice8(0xFFFF_FFFF, bytes)
            } else {
                crc32_bytewise(0xFFFF_FFFF, bytes)
            }
        }
        #[cfg(target_arch = "x86_64")]
        CrcTier::Pclmul => {
            if bytes.len() >= 64 {
                // SAFETY: availability checked above; length >= 64.
                let (crc, consumed) = unsafe { pclmul::fold(0xFFFF_FFFF, bytes) };
                crc32_update_tables(crc, &bytes[consumed..])
            } else {
                crc32_update_tables(0xFFFF_FFFF, bytes)
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        CrcTier::Pclmul => unreachable!("gated by available()"),
    };
    Some(!crc)
}

/// Byte offset of the `f64` payload inside a dense frame: version byte,
/// dense tag, and the two `u32` dimension fields. [`encode_aligned`] pads
/// the buffer so the payload at this offset lands on an 8-byte boundary,
/// which is what lets [`decode_view`] alias it as `&[f64]` without a copy.
pub const DENSE_PAYLOAD_OFFSET: usize = 10;

/// Fused frame writer: appends sections to the buffer and folds each one
/// into the running CRC while its bytes are still cache-hot, so sealing a
/// frame costs one pass over the data instead of a write pass plus a
/// second full-frame checksum scan.
struct FrameWriter<'a> {
    buf: &'a mut BytesMut,
    crc: u32,
}

impl<'a> FrameWriter<'a> {
    fn begin(buf: &'a mut BytesMut) -> Self {
        FrameWriter {
            buf,
            crc: 0xFFFF_FFFF,
        }
    }

    /// Appends one section via `write`, then checksums exactly the bytes it
    /// appended (endian-proof: the CRC sees the wire bytes, not the source
    /// values).
    fn section(&mut self, write: impl FnOnce(&mut BytesMut)) {
        let start = self.buf.len();
        write(self.buf);
        self.crc = crc32_update(self.crc, &self.buf[start..]);
    }

    /// Appends the CRC-32 trailer, completing the frame.
    fn seal(self) {
        let checksum = !self.crc;
        self.buf.put_u32_le(checksum);
    }
}

/// Serializes a block into a fresh buffer.
pub fn encode(block: &Block) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(block) as usize);
    encode_into(block, &mut buf);
    buf.freeze()
}

/// Serializes a block, appending to a caller-owned buffer (the transport
/// reuses one scratch buffer across moves instead of allocating per block).
/// Checksumming is fused into the write: each section is folded into the
/// running CRC as it lands in the buffer, so no second full-frame scan.
pub fn encode_into(block: &Block, buf: &mut BytesMut) {
    buf.reserve(encoded_len(block) as usize);
    let mut w = FrameWriter::begin(buf);
    match block {
        Block::Dense(d) => {
            w.section(|b| {
                b.put_u8(WIRE_VERSION);
                b.put_u8(TAG_DENSE);
                b.put_u32_le(d.rows() as u32);
                b.put_u32_le(d.cols() as u32);
            });
            w.section(|b| put_f64_slice(b, d.data()));
        }
        Block::Sparse(s) => {
            w.section(|b| {
                b.put_u8(WIRE_VERSION);
                b.put_u8(TAG_SPARSE);
                b.put_u32_le(s.rows() as u32);
                b.put_u32_le(s.cols() as u32);
                b.put_u32_le(s.nnz() as u32);
            });
            w.section(|b| put_u32_slice(b, s.row_ptr()));
            w.section(|b| put_u32_slice(b, s.col_idx()));
            w.section(|b| put_f64_slice(b, s.values()));
        }
    }
    w.seal();
}

/// Serializes a block with the dense payload 8-byte aligned, returning the
/// number of zero pad bytes written *before* the frame. The frame itself
/// (`&buf[pad..]`) is byte-identical to [`encode_into`]'s output; the pad
/// only shifts where it starts so that the `f64` section at
/// [`DENSE_PAYLOAD_OFFSET`] lands on an 8-byte boundary and [`decode_view`]
/// can alias it in place. Sparse blocks never pad (their payload is decoded
/// by copy either way).
///
/// The full padded size is reserved up front, so the buffer's base address
/// — which the pad is computed from — cannot move mid-encode.
pub fn encode_aligned(block: &Block, buf: &mut BytesMut) -> usize {
    buf.reserve(encoded_len(block) as usize + 7);
    let pad = match block {
        Block::Dense(_) => {
            let payload_addr = buf.as_ref().as_ptr() as usize + buf.len() + DENSE_PAYLOAD_OFFSET;
            payload_addr.wrapping_neg() & 7
        }
        Block::Sparse(_) => 0,
    };
    for _ in 0..pad {
        buf.put_u8(0);
    }
    encode_into(block, buf);
    pad
}

/// Exact serialized size in bytes without encoding.
pub fn encoded_len(block: &Block) -> u64 {
    FRAME_OVERHEAD
        + match block {
            Block::Dense(d) => 1 + 4 + 4 + 8 * d.len() as u64,
            Block::Sparse(s) => {
                1 + 4 + 4 + 4 + 4 * (s.rows() as u64 + 1) + 4 * s.nnz() as u64 + 8 * s.nnz() as u64
            }
        }
}

#[cfg(target_endian = "little")]
fn put_f64_slice(buf: &mut BytesMut, vals: &[f64]) {
    // SAFETY: on a little-endian target the in-memory representation of an
    // `f64` slice is exactly its wire encoding; `f64` has no padding and
    // every bit pattern is a valid byte sequence.
    let bytes = unsafe {
        std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), std::mem::size_of_val(vals))
    };
    buf.put_slice(bytes);
}

#[cfg(not(target_endian = "little"))]
fn put_f64_slice(buf: &mut BytesMut, vals: &[f64]) {
    for &v in vals {
        buf.put_f64_le(v);
    }
}

#[cfg(target_endian = "little")]
fn put_u32_slice(buf: &mut BytesMut, vals: &[u32]) {
    // SAFETY: same little-endian reinterpretation as `put_f64_slice`.
    let bytes = unsafe {
        std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), std::mem::size_of_val(vals))
    };
    buf.put_slice(bytes);
}

#[cfg(not(target_endian = "little"))]
fn put_u32_slice(buf: &mut BytesMut, vals: &[u32]) {
    for &v in vals {
        buf.put_u32_le(v);
    }
}

#[cfg(target_endian = "little")]
fn get_f64_vec(buf: &mut &[u8], n: usize) -> Vec<f64> {
    let (head, rest) = buf.split_at(n * 8);
    let mut out = Vec::<f64>::with_capacity(n);
    // SAFETY: `head` holds exactly `n * 8` bytes (the caller seized them
    // after the payload precheck); every byte pattern is a valid `f64`, and
    // the copy fills the whole capacity before `set_len` exposes it —
    // skipping the `vec![0.0; n]` zeroing pass the copy would overwrite.
    unsafe {
        std::ptr::copy_nonoverlapping(head.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 8);
        out.set_len(n);
    }
    *buf = rest;
    out
}

#[cfg(not(target_endian = "little"))]
fn get_f64_vec(buf: &mut &[u8], n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f64_le());
    }
    out
}

#[cfg(target_endian = "little")]
fn get_u32_vec(buf: &mut &[u8], n: usize) -> Vec<u32> {
    let (head, rest) = buf.split_at(n * 4);
    let mut out = Vec::<u32>::with_capacity(n);
    // SAFETY: same uninitialized-fill bulk copy as `get_f64_vec`.
    unsafe {
        std::ptr::copy_nonoverlapping(head.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 4);
        out.set_len(n);
    }
    *buf = rest;
    out
}

#[cfg(not(target_endian = "little"))]
fn get_u32_vec(buf: &mut &[u8], n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_u32_le());
    }
    out
}

/// Deserializes a block from shared bytes.
///
/// # Errors
/// Returns [`MatrixError::Codec`] on truncated or malformed input, and
/// [`MatrixError::InvalidSparseStructure`] if a decoded CSR violates its
/// invariants.
pub fn decode(buf: Bytes) -> Result<Block> {
    decode_slice(buf.as_ref())
}

/// All size prechecks run in u64: the header fields are
/// attacker-controlled u32s, and expressions like `4 * (rows + 1) +
/// 12 * nnz` overflow usize on 32-bit targets.
fn need(buf: &[u8], n: u64, what: &str) -> Result<()> {
    if (buf.len() as u64) < n {
        return Err(MatrixError::Codec(format!(
            "truncated input reading {what}: need {n} bytes, have {}",
            buf.len()
        )));
    }
    Ok(())
}

/// Verifies the frame checksum and version byte, returning the body (tag
/// onward). The checksum is verified over the whole frame before a single
/// header field is parsed, so a flipped length byte can never drive an
/// allocation — corruption of any kind is a clean error here.
fn checked_body(buf: &[u8]) -> Result<&[u8]> {
    need(buf, FRAME_OVERHEAD + 1, "frame")?;
    let (body, trailer) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte crc trailer"));
    let computed = crc32(body);
    if stored != computed {
        return Err(MatrixError::Codec(format!(
            "frame checksum mismatch: stored 0x{stored:08x}, computed 0x{computed:08x}"
        )));
    }
    let version = body[0];
    if version != WIRE_VERSION {
        return Err(MatrixError::Codec(format!(
            "unsupported wire version 0x{version:02x} (expected 0x{WIRE_VERSION:02x})"
        )));
    }
    Ok(&body[1..])
}

/// Deserializes a block straight from a byte slice (no `Bytes` wrapper —
/// the transport decodes out of its reusable scratch buffer).
///
/// # Errors
/// See [`decode`].
pub fn decode_slice(buf: &[u8]) -> Result<Block> {
    parse_body(checked_body(buf)?)
}

/// Deserializes a checksum-verified body (the bytes after the version
/// byte), materializing every payload section into owned storage.
fn parse_body(mut buf: &[u8]) -> Result<Block> {
    need(buf, 1, "tag")?;
    let tag = buf.get_u8();
    match tag {
        TAG_DENSE => {
            need(buf, 8, "dense header")?;
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| MatrixError::Codec("dense dims overflow".into()))?;
            let payload = (n as u64)
                .checked_mul(8)
                .ok_or_else(|| MatrixError::Codec("dense payload overflow".into()))?;
            need(buf, payload, "dense payload")?;
            let data = get_f64_vec(&mut buf, n);
            Ok(Block::Dense(DenseBlock::from_vec(rows, cols, data)?))
        }
        TAG_SPARSE => {
            need(buf, 12, "sparse header")?;
            let rows = buf.get_u32_le();
            let cols = buf.get_u32_le();
            let nnz = buf.get_u32_le();
            let payload = 4u64
                .checked_mul(rows as u64 + 1)
                .and_then(|rp| rp.checked_add(12u64.checked_mul(nnz as u64)?))
                .ok_or_else(|| MatrixError::Codec("sparse payload overflow".into()))?;
            need(buf, payload, "sparse payload")?;
            let (rows, cols, nnz) = (rows as usize, cols as usize, nnz as usize);
            let row_ptr = get_u32_vec(&mut buf, rows + 1);
            let col_idx = get_u32_vec(&mut buf, nnz);
            let values = get_f64_vec(&mut buf, nnz);
            Ok(Block::Sparse(CsrBlock::from_raw_parts(
                rows, cols, row_ptr, col_idx, values,
            )?))
        }
        other => Err(MatrixError::Codec(format!(
            "unknown block tag 0x{other:02x}"
        ))),
    }
}

/// Deserializes a block as a zero-copy view into `frame` where possible.
///
/// For a dense frame whose `f64` payload sits on an 8-byte boundary (which
/// [`encode_aligned`] arranges), the returned block aliases the frame's
/// payload bytes through the `Bytes` refcount instead of copying them out —
/// the wire buffer *becomes* the block's storage and stays alive exactly as
/// long as the block does. Falls back to [`decode_slice`]'s materializing
/// path for sparse frames, empty blocks, misaligned payloads, and
/// big-endian targets; the decoded value is identical either way.
///
/// # Errors
/// See [`decode`]. The checksum is verified before any view is taken.
pub fn decode_view(frame: &Bytes) -> Result<Block> {
    let body = checked_body(frame.as_ref())?;
    #[cfg(target_endian = "little")]
    if body.first() == Some(&TAG_DENSE) && body.len() >= 9 {
        let rows = u32::from_le_bytes(body[1..5].try_into().expect("rows")) as usize;
        let cols = u32::from_le_bytes(body[5..9].try_into().expect("cols")) as usize;
        if let Some(n) = rows.checked_mul(cols) {
            let payload = (n as u64).checked_mul(8);
            if n > 0 && payload == Some(body.len() as u64 - 9) {
                let view = frame.slice(DENSE_PAYLOAD_OFFSET..DENSE_PAYLOAD_OFFSET + n * 8);
                // Misalignment is the only way this errors (length and
                // endianness are checked above) — materialize instead.
                if let Ok(d) = DenseBlock::from_shared_bytes(rows, cols, view) {
                    return Ok(Block::Dense(d));
                }
            }
        }
    }
    parse_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_block() -> Block {
        Block::Dense(DenseBlock::from_fn(5, 7, |i, j| (i * 7 + j) as f64 * 0.5))
    }

    fn sparse_block() -> Block {
        Block::Sparse(
            CsrBlock::from_triplets(6, 4, vec![(0, 1, 1.5), (3, 0, -2.0), (5, 3, 9.0)]).unwrap(),
        )
    }

    /// Wraps a raw body in a valid v2 frame (version byte + CRC trailer) so
    /// negative tests exercise the *parser*, not the checksum gate.
    fn frame(body: &[u8]) -> Vec<u8> {
        let mut raw = vec![WIRE_VERSION];
        raw.extend_from_slice(body);
        let checksum = crc32(&raw);
        raw.extend_from_slice(&checksum.to_le_bytes());
        raw
    }

    /// Recomputes the CRC trailer of a frame mutated in place.
    fn reseal(raw: &mut [u8]) {
        let body_len = raw.len() - 4;
        let checksum = crc32(&raw[..body_len]);
        raw[body_len..].copy_from_slice(&checksum.to_le_bytes());
    }

    /// Seed-style per-element encoding: the bulk fast path must be
    /// byte-identical to it (the parity suite depends on this).
    fn encode_elementwise(block: &Block) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(encoded_len(block) as usize);
        match block {
            Block::Dense(d) => {
                buf.put_u8(TAG_DENSE);
                buf.put_u32_le(d.rows() as u32);
                buf.put_u32_le(d.cols() as u32);
                for &v in d.data() {
                    buf.put_f64_le(v);
                }
            }
            Block::Sparse(s) => {
                buf.put_u8(TAG_SPARSE);
                buf.put_u32_le(s.rows() as u32);
                buf.put_u32_le(s.cols() as u32);
                buf.put_u32_le(s.nnz() as u32);
                for &p in s.row_ptr() {
                    buf.put_u32_le(p);
                }
                for &c in s.col_idx() {
                    buf.put_u32_le(c);
                }
                for &v in s.values() {
                    buf.put_f64_le(v);
                }
            }
        }
        frame(&buf)
    }

    #[test]
    fn dense_roundtrip() {
        let b = dense_block();
        let bytes = encode(&b);
        assert_eq!(bytes.len() as u64, encoded_len(&b));
        let back = decode(bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn sparse_roundtrip() {
        let b = sparse_block();
        let bytes = encode(&b);
        assert_eq!(bytes.len() as u64, encoded_len(&b));
        let back = decode(bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn bulk_encoding_matches_elementwise_bytes() {
        for b in [dense_block(), sparse_block()] {
            assert_eq!(encode(&b).to_vec(), encode_elementwise(&b));
        }
    }

    #[test]
    fn encode_into_appends_and_reuses_buffer() {
        let b = dense_block();
        let mut buf = BytesMut::with_capacity(16);
        encode_into(&b, &mut buf);
        let first = buf.to_vec();
        buf.clear();
        encode_into(&b, &mut buf);
        assert_eq!(buf.as_ref(), &first[..]);
        assert_eq!(decode_slice(&buf).unwrap(), b);
    }

    #[test]
    fn empty_blocks_roundtrip() {
        for b in [
            Block::Dense(DenseBlock::zeros(0, 0)),
            Block::Sparse(CsrBlock::empty(3, 3)),
        ] {
            let back = decode(encode(&b)).unwrap();
            assert_eq!(b, back);
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode(&dense_block());
        for cut in [0usize, 1, 5, 9, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let raw = frame(&[0x7f, 0, 0, 0, 0]);
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(MatrixError::Codec(_))
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        // A well-checksummed frame from a hypothetical other version must
        // not be parsed as v2.
        let mut raw = encode(&dense_block()).to_vec();
        raw[0] = 0x01;
        reseal(&mut raw);
        let err = decode_slice(&raw).unwrap_err();
        assert!(err.to_string().contains("wire version"), "{err}");
    }

    #[test]
    fn corrupt_sparse_structure_is_rejected() {
        // Encode a valid sparse block then corrupt a row pointer, resealing
        // the checksum so the structural validation is what rejects it.
        let bytes = encode(&sparse_block());
        let mut raw = bytes.to_vec();
        // row_ptr starts at offset 14 (version byte + 13-byte sparse
        // header); write a huge value into the first ptr.
        raw[14] = 0xff;
        raw[15] = 0xff;
        reseal(&mut raw);
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn huge_sparse_header_is_rejected_not_overflowed() {
        // rows = nnz = u32::MAX: the old usize precheck `4 * (rows + 1) +
        // 12 * nnz` wraps on 32-bit targets and under-asks; the u64 check
        // must reject the 12-byte payload no matter the word size.
        let mut body = vec![TAG_SPARSE];
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // rows
        body.extend_from_slice(&4u32.to_le_bytes()); // cols
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // nnz
        body.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            decode(Bytes::from(frame(&body))),
            Err(MatrixError::Codec(_))
        ));
    }

    #[test]
    fn huge_dense_header_is_rejected() {
        let mut body = vec![TAG_DENSE];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            decode(Bytes::from(frame(&body))),
            Err(MatrixError::Codec(_))
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The chaos layer corrupts frames by flipping one bit; CRC-32
        // detects all single-bit errors, so every position in the frame —
        // header, payload, version byte, or the checksum itself — must
        // yield a clean decode error, never a panic or accepted garbage.
        // The guarantee must hold on *every* dispatch tier: a SIMD CRC that
        // missed a flip the scalar one catches would make corruption
        // detection machine-dependent.
        let tiers: Vec<CrcTier> = CrcTier::ALL.into_iter().filter(|t| t.available()).collect();
        for block in [dense_block(), sparse_block()] {
            let clean = encode(&block).to_vec();
            for byte in 0..clean.len() {
                for bit in 0..8 {
                    let mut raw = clean.clone();
                    raw[byte] ^= 1 << bit;
                    let err = decode_slice(&raw);
                    assert!(err.is_err(), "flip at byte {byte} bit {bit} was accepted");
                    let (body, trailer) = raw.split_at(raw.len() - 4);
                    let stored = u32::from_le_bytes(trailer.try_into().unwrap());
                    for &tier in &tiers {
                        assert_ne!(
                            crc32_with_tier(tier, body).unwrap(),
                            stored,
                            "{} tier missed flip at byte {byte} bit {bit}",
                            tier.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn decode_view_of_aligned_frame_is_zero_copy() {
        let b = dense_block();
        let mut buf = BytesMut::with_capacity(16);
        let pad = encode_aligned(&b, &mut buf);
        // The frame after the pad is byte-identical to a plain encode.
        assert_eq!(&buf[pad..], encode(&b).as_ref());
        let wire = buf.freeze();
        let frame = wire.slice(pad..wire.len());
        let payload_ptr = frame.as_ref()[DENSE_PAYLOAD_OFFSET..].as_ptr();
        assert_eq!(payload_ptr as usize % 8, 0, "pad must align the payload");
        let back = decode_view(&frame).unwrap();
        assert_eq!(back, b);
        match &back {
            Block::Dense(d) => {
                assert!(d.is_shared(), "aligned dense decode must alias the frame");
                assert_eq!(
                    d.data().as_ptr().cast::<u8>(),
                    payload_ptr,
                    "view must point into the wire buffer"
                );
            }
            Block::Sparse(_) => panic!("dense frame decoded as sparse"),
        }
    }

    #[test]
    fn decode_view_falls_back_to_a_copy_when_misaligned() {
        let b = dense_block();
        let plain = encode(&b).to_vec();
        // Re-host the frame at every offset 0..8: whatever the payload
        // alignment lands on, the decode must succeed and agree.
        for shift in 0..8usize {
            let mut host = vec![0u8; shift];
            host.extend_from_slice(&plain);
            let wire = Bytes::from(host);
            let frame = wire.slice(shift..wire.len());
            let back = decode_view(&frame).unwrap();
            assert_eq!(back, b, "shift {shift}");
            let aligned =
                (frame.as_ref()[DENSE_PAYLOAD_OFFSET..].as_ptr() as usize).is_multiple_of(8);
            match &back {
                Block::Dense(d) => assert_eq!(d.is_shared(), aligned, "shift {shift}"),
                Block::Sparse(_) => panic!("dense frame decoded as sparse"),
            }
        }
    }

    #[test]
    fn decode_view_materializes_sparse_and_empty_frames() {
        for b in [
            sparse_block(),
            Block::Dense(DenseBlock::zeros(0, 0)),
            Block::Sparse(CsrBlock::empty(3, 3)),
        ] {
            let mut buf = BytesMut::with_capacity(16);
            let pad = encode_aligned(&b, &mut buf);
            if matches!(b, Block::Sparse(_)) {
                assert_eq!(pad, 0, "sparse frames never pad");
            }
            let wire = buf.freeze();
            let frame = wire.slice(pad..wire.len());
            let back = decode_view(&frame).unwrap();
            assert_eq!(back, b);
            if let Block::Dense(d) = &back {
                assert!(!d.is_shared(), "empty dense must not alias");
            }
        }
    }

    #[test]
    fn decode_view_rejects_corruption() {
        let mut buf = BytesMut::with_capacity(16);
        let pad = encode_aligned(&dense_block(), &mut buf);
        buf[pad + DENSE_PAYLOAD_OFFSET + 3] ^= 0x40;
        let wire = buf.freeze();
        let frame = wire.slice(pad..wire.len());
        let err = decode_view(&frame).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn checksum_gate_runs_before_header_parse() {
        // A bit-flipped dense `rows` field that would ask for ~2^35 payload
        // bytes must be caught by the checksum, not the payload precheck
        // (and certainly must not allocate).
        let mut raw = encode(&dense_block()).to_vec();
        raw[3] ^= 0x80; // high byte of `rows`
        let err = decode_slice(&raw).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn every_tier_matches_the_bytewise_reference_at_every_length() {
        // Each fast path must be a pure drop-in: same polynomial, same
        // checksum for every input length across every dispatch threshold
        // (slice8's 8-byte steps, pclmul's 64-byte entry and 16-byte lanes,
        // and every 1..=15-byte tail in between).
        let mut state = 0x1234_5678_9abc_def0u64;
        let data: Vec<u8> = (0..257)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        for len in 0..=data.len() {
            let reference = !crc32_bytewise(0xFFFF_FFFF, &data[..len]);
            for tier in CrcTier::ALL {
                match crc32_with_tier(tier, &data[..len]) {
                    Some(crc) => {
                        assert_eq!(crc, reference, "{} at len {len}", tier.name())
                    }
                    None => assert!(!tier.available()),
                }
            }
            assert_eq!(crc32(&data[..len]), reference, "dispatch at len {len}");
        }
        // Known-answer check pinning the polynomial itself.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn a_tier_is_always_active_and_named() {
        let active = active_crc_tier();
        assert!(active.available());
        assert!(!active.name().is_empty());
        // Table tiers exist everywhere; pclmul only where detected.
        assert!(CrcTier::Bytewise.available());
        assert!(CrcTier::Slice8.available());
        assert_eq!(
            crc32_with_tier(CrcTier::Pclmul, b"xyz").is_some(),
            CrcTier::Pclmul.available()
        );
    }

    #[test]
    fn sparse_encoding_is_smaller_for_sparse_data() {
        let s = sparse_block();
        let d = Block::Dense(s.to_dense());
        assert!(encoded_len(&s) < encoded_len(&d));
    }
}
