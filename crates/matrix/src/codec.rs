//! Compact binary block codec.
//!
//! DistME "exploits the data serialization and deserialization of SparkSQL to
//! reduce the amount of shuffled data" (§5). Our shuffle service serializes
//! blocks through this codec so that every communication-cost figure in the
//! benchmarks is measured on real bytes, not estimates.
//!
//! Wire format (little-endian):
//! ```text
//! dense : [0x01][rows: u32][cols: u32][data: rows*cols f64]
//! sparse: [0x02][rows: u32][cols: u32][nnz: u32]
//!         [row_ptr: (rows+1) u32][col_idx: nnz u32][values: nnz f64]
//! ```
//!
//! On little-endian targets the `f64`/`u32` payload sections move as whole
//! slices (one `memcpy` each way) rather than element-at-a-time puts/gets;
//! big-endian targets fall back to the per-element loop. The produced bytes
//! are identical either way, so `tests/plan_parity.rs` and every ledger
//! charge are unaffected.

use crate::block::Block;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TAG_DENSE: u8 = 0x01;
const TAG_SPARSE: u8 = 0x02;

/// Serializes a block into a fresh buffer.
pub fn encode(block: &Block) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(block) as usize);
    encode_into(block, &mut buf);
    buf.freeze()
}

/// Serializes a block, appending to a caller-owned buffer (the transport
/// reuses one scratch buffer across moves instead of allocating per block).
pub fn encode_into(block: &Block, buf: &mut BytesMut) {
    buf.reserve(encoded_len(block) as usize);
    match block {
        Block::Dense(d) => {
            buf.put_u8(TAG_DENSE);
            buf.put_u32_le(d.rows() as u32);
            buf.put_u32_le(d.cols() as u32);
            put_f64_slice(buf, d.data());
        }
        Block::Sparse(s) => {
            buf.put_u8(TAG_SPARSE);
            buf.put_u32_le(s.rows() as u32);
            buf.put_u32_le(s.cols() as u32);
            buf.put_u32_le(s.nnz() as u32);
            put_u32_slice(buf, s.row_ptr());
            put_u32_slice(buf, s.col_idx());
            put_f64_slice(buf, s.values());
        }
    }
}

/// Exact serialized size in bytes without encoding.
pub fn encoded_len(block: &Block) -> u64 {
    match block {
        Block::Dense(d) => 1 + 4 + 4 + 8 * d.len() as u64,
        Block::Sparse(s) => {
            1 + 4 + 4 + 4 + 4 * (s.rows() as u64 + 1) + 4 * s.nnz() as u64 + 8 * s.nnz() as u64
        }
    }
}

#[cfg(target_endian = "little")]
fn put_f64_slice(buf: &mut BytesMut, vals: &[f64]) {
    // SAFETY: on a little-endian target the in-memory representation of an
    // `f64` slice is exactly its wire encoding; `f64` has no padding and
    // every bit pattern is a valid byte sequence.
    let bytes = unsafe {
        std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), std::mem::size_of_val(vals))
    };
    buf.put_slice(bytes);
}

#[cfg(not(target_endian = "little"))]
fn put_f64_slice(buf: &mut BytesMut, vals: &[f64]) {
    for &v in vals {
        buf.put_f64_le(v);
    }
}

#[cfg(target_endian = "little")]
fn put_u32_slice(buf: &mut BytesMut, vals: &[u32]) {
    // SAFETY: same little-endian reinterpretation as `put_f64_slice`.
    let bytes = unsafe {
        std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), std::mem::size_of_val(vals))
    };
    buf.put_slice(bytes);
}

#[cfg(not(target_endian = "little"))]
fn put_u32_slice(buf: &mut BytesMut, vals: &[u32]) {
    for &v in vals {
        buf.put_u32_le(v);
    }
}

#[cfg(target_endian = "little")]
fn get_f64_vec(buf: &mut &[u8], n: usize) -> Vec<f64> {
    let (head, rest) = buf.split_at(n * 8);
    let mut out = Vec::<f64>::with_capacity(n);
    // SAFETY: `head` holds exactly `n * 8` bytes (the caller seized them
    // after the payload precheck); every byte pattern is a valid `f64`, and
    // the copy fills the whole capacity before `set_len` exposes it —
    // skipping the `vec![0.0; n]` zeroing pass the copy would overwrite.
    unsafe {
        std::ptr::copy_nonoverlapping(head.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 8);
        out.set_len(n);
    }
    *buf = rest;
    out
}

#[cfg(not(target_endian = "little"))]
fn get_f64_vec(buf: &mut &[u8], n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f64_le());
    }
    out
}

#[cfg(target_endian = "little")]
fn get_u32_vec(buf: &mut &[u8], n: usize) -> Vec<u32> {
    let (head, rest) = buf.split_at(n * 4);
    let mut out = Vec::<u32>::with_capacity(n);
    // SAFETY: same uninitialized-fill bulk copy as `get_f64_vec`.
    unsafe {
        std::ptr::copy_nonoverlapping(head.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 4);
        out.set_len(n);
    }
    *buf = rest;
    out
}

#[cfg(not(target_endian = "little"))]
fn get_u32_vec(buf: &mut &[u8], n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_u32_le());
    }
    out
}

/// Deserializes a block from shared bytes.
///
/// # Errors
/// Returns [`MatrixError::Codec`] on truncated or malformed input, and
/// [`MatrixError::InvalidSparseStructure`] if a decoded CSR violates its
/// invariants.
pub fn decode(buf: Bytes) -> Result<Block> {
    decode_slice(buf.as_ref())
}

/// Deserializes a block straight from a byte slice (no `Bytes` wrapper —
/// the transport decodes out of its reusable scratch buffer).
///
/// # Errors
/// See [`decode`].
pub fn decode_slice(mut buf: &[u8]) -> Result<Block> {
    // All size prechecks run in u64: the header fields are
    // attacker-controlled u32s, and expressions like `4 * (rows + 1) +
    // 12 * nnz` overflow usize on 32-bit targets.
    fn need(buf: &[u8], n: u64, what: &str) -> Result<()> {
        if (buf.len() as u64) < n {
            return Err(MatrixError::Codec(format!(
                "truncated input reading {what}: need {n} bytes, have {}",
                buf.len()
            )));
        }
        Ok(())
    }

    need(buf, 1, "tag")?;
    let tag = buf.get_u8();
    match tag {
        TAG_DENSE => {
            need(buf, 8, "dense header")?;
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| MatrixError::Codec("dense dims overflow".into()))?;
            let payload = (n as u64)
                .checked_mul(8)
                .ok_or_else(|| MatrixError::Codec("dense payload overflow".into()))?;
            need(buf, payload, "dense payload")?;
            let data = get_f64_vec(&mut buf, n);
            Ok(Block::Dense(DenseBlock::from_vec(rows, cols, data)?))
        }
        TAG_SPARSE => {
            need(buf, 12, "sparse header")?;
            let rows = buf.get_u32_le();
            let cols = buf.get_u32_le();
            let nnz = buf.get_u32_le();
            let payload = 4u64
                .checked_mul(rows as u64 + 1)
                .and_then(|rp| rp.checked_add(12u64.checked_mul(nnz as u64)?))
                .ok_or_else(|| MatrixError::Codec("sparse payload overflow".into()))?;
            need(buf, payload, "sparse payload")?;
            let (rows, cols, nnz) = (rows as usize, cols as usize, nnz as usize);
            let row_ptr = get_u32_vec(&mut buf, rows + 1);
            let col_idx = get_u32_vec(&mut buf, nnz);
            let values = get_f64_vec(&mut buf, nnz);
            Ok(Block::Sparse(CsrBlock::from_raw_parts(
                rows, cols, row_ptr, col_idx, values,
            )?))
        }
        other => Err(MatrixError::Codec(format!(
            "unknown block tag 0x{other:02x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_block() -> Block {
        Block::Dense(DenseBlock::from_fn(5, 7, |i, j| (i * 7 + j) as f64 * 0.5))
    }

    fn sparse_block() -> Block {
        Block::Sparse(
            CsrBlock::from_triplets(6, 4, vec![(0, 1, 1.5), (3, 0, -2.0), (5, 3, 9.0)]).unwrap(),
        )
    }

    /// Seed-style per-element encoding: the bulk fast path must be
    /// byte-identical to it (the parity suite depends on this).
    fn encode_elementwise(block: &Block) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(encoded_len(block) as usize);
        match block {
            Block::Dense(d) => {
                buf.put_u8(TAG_DENSE);
                buf.put_u32_le(d.rows() as u32);
                buf.put_u32_le(d.cols() as u32);
                for &v in d.data() {
                    buf.put_f64_le(v);
                }
            }
            Block::Sparse(s) => {
                buf.put_u8(TAG_SPARSE);
                buf.put_u32_le(s.rows() as u32);
                buf.put_u32_le(s.cols() as u32);
                buf.put_u32_le(s.nnz() as u32);
                for &p in s.row_ptr() {
                    buf.put_u32_le(p);
                }
                for &c in s.col_idx() {
                    buf.put_u32_le(c);
                }
                for &v in s.values() {
                    buf.put_f64_le(v);
                }
            }
        }
        buf.freeze().to_vec()
    }

    #[test]
    fn dense_roundtrip() {
        let b = dense_block();
        let bytes = encode(&b);
        assert_eq!(bytes.len() as u64, encoded_len(&b));
        let back = decode(bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn sparse_roundtrip() {
        let b = sparse_block();
        let bytes = encode(&b);
        assert_eq!(bytes.len() as u64, encoded_len(&b));
        let back = decode(bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn bulk_encoding_matches_elementwise_bytes() {
        for b in [dense_block(), sparse_block()] {
            assert_eq!(encode(&b).to_vec(), encode_elementwise(&b));
        }
    }

    #[test]
    fn encode_into_appends_and_reuses_buffer() {
        let b = dense_block();
        let mut buf = BytesMut::with_capacity(16);
        encode_into(&b, &mut buf);
        let first = buf.to_vec();
        buf.clear();
        encode_into(&b, &mut buf);
        assert_eq!(buf.as_ref(), &first[..]);
        assert_eq!(decode_slice(&buf).unwrap(), b);
    }

    #[test]
    fn empty_blocks_roundtrip() {
        for b in [
            Block::Dense(DenseBlock::zeros(0, 0)),
            Block::Sparse(CsrBlock::empty(3, 3)),
        ] {
            let back = decode(encode(&b)).unwrap();
            assert_eq!(b, back);
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode(&dense_block());
        for cut in [0usize, 1, 5, 9, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let bytes = Bytes::from_static(&[0x7f, 0, 0, 0, 0]);
        assert!(matches!(decode(bytes), Err(MatrixError::Codec(_))));
    }

    #[test]
    fn corrupt_sparse_structure_is_rejected() {
        // Encode a valid sparse block then corrupt a row pointer.
        let bytes = encode(&sparse_block());
        let mut raw = bytes.to_vec();
        // row_ptr starts at offset 13; write a huge value into the first ptr.
        raw[13] = 0xff;
        raw[14] = 0xff;
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn huge_sparse_header_is_rejected_not_overflowed() {
        // rows = nnz = u32::MAX: the old usize precheck `4 * (rows + 1) +
        // 12 * nnz` wraps on 32-bit targets and under-asks; the u64 check
        // must reject the 12-byte payload no matter the word size.
        let mut raw = vec![TAG_SPARSE];
        raw.extend_from_slice(&u32::MAX.to_le_bytes()); // rows
        raw.extend_from_slice(&4u32.to_le_bytes()); // cols
        raw.extend_from_slice(&u32::MAX.to_le_bytes()); // nnz
        raw.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(MatrixError::Codec(_))
        ));
    }

    #[test]
    fn huge_dense_header_is_rejected() {
        let mut raw = vec![TAG_DENSE];
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(MatrixError::Codec(_))
        ));
    }

    #[test]
    fn sparse_encoding_is_smaller_for_sparse_data() {
        let s = sparse_block();
        let d = Block::Dense(s.to_dense());
        assert!(encoded_len(&s) < encoded_len(&d));
    }
}
