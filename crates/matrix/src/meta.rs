//! Virtual matrix descriptors.
//!
//! The paper's experiments run on matrices up to 5 000 000 × 10 000 doubles —
//! far beyond what can be materialized here. [`MatrixMeta`] describes such a
//! matrix symbolically (shape, block size, sparsity) so the planner and the
//! discrete-event simulator can compute block counts, per-block byte sizes,
//! memory footprints, and communication volumes without allocating data.

use crate::{CSR_NNZ_BYTES, DEFAULT_BLOCK_SIZE, ELEM_BYTES};

/// Shape/size descriptor of a (possibly virtual) blocked matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixMeta {
    /// Total rows (elements).
    pub rows: u64,
    /// Total columns (elements).
    pub cols: u64,
    /// Block side length (blocks are `block_size × block_size`, except at the
    /// right/bottom edges).
    pub block_size: u64,
    /// Fraction of non-zero elements in `[0, 1]`; `1.0` means fully dense.
    /// The paper calls this "sparsity" with 1.0 = fully dense (§6.1).
    pub sparsity: f64,
}

impl MatrixMeta {
    /// Dense matrix descriptor with the paper's default 1000 × 1000 blocks.
    pub fn dense(rows: u64, cols: u64) -> Self {
        MatrixMeta {
            rows,
            cols,
            block_size: DEFAULT_BLOCK_SIZE,
            sparsity: 1.0,
        }
    }

    /// Sparse matrix descriptor with the paper's default block size.
    pub fn sparse(rows: u64, cols: u64, sparsity: f64) -> Self {
        MatrixMeta {
            rows,
            cols,
            block_size: DEFAULT_BLOCK_SIZE,
            sparsity,
        }
    }

    /// Overrides the block size (builder style).
    pub fn with_block_size(mut self, block_size: u64) -> Self {
        self.block_size = block_size;
        self
    }

    /// Number of block rows: `I` (or `K`) in the paper's notation.
    pub fn block_rows(&self) -> u32 {
        self.rows.div_ceil(self.block_size) as u32
    }

    /// Number of block columns.
    pub fn block_cols(&self) -> u32 {
        self.cols.div_ceil(self.block_size) as u32
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> u64 {
        self.block_rows() as u64 * self.block_cols() as u64
    }

    /// Total number of elements, `|A|` in the paper.
    pub fn elements(&self) -> u64 {
        self.rows * self.cols
    }

    /// Estimated number of non-zeros.
    pub fn nnz_estimate(&self) -> u64 {
        (self.elements() as f64 * self.sparsity).round() as u64
    }

    /// True when the matrix should be stored densely (density at or above
    /// the SystemML-style 0.4 crossover).
    pub fn is_dense_storage(&self) -> bool {
        self.sparsity >= crate::block::DENSE_THRESHOLD
    }

    /// Element dimensions of the block at grid position `(bi, bj)` —
    /// edge blocks may be smaller.
    pub fn block_dims(&self, bi: u32, bj: u32) -> (u64, u64) {
        let r = (self.rows - bi as u64 * self.block_size).min(self.block_size);
        let c = (self.cols - bj as u64 * self.block_size).min(self.block_size);
        (r, c)
    }

    /// Estimated serialized/in-memory bytes of one *full* block in this
    /// matrix's natural storage format.
    pub fn block_bytes(&self) -> u64 {
        let cells = self.block_size * self.block_size;
        if self.is_dense_storage() {
            cells * ELEM_BYTES
        } else {
            ((cells as f64 * self.sparsity) as u64) * CSR_NNZ_BYTES + (self.block_size + 1) * 4
        }
    }

    /// Estimated total bytes of the whole matrix in its natural storage
    /// format. This is the `|A|` of the paper's cost formulas expressed in
    /// bytes rather than element counts.
    pub fn total_bytes(&self) -> u64 {
        if self.is_dense_storage() {
            self.elements() * ELEM_BYTES
        } else {
            self.nnz_estimate() * CSR_NNZ_BYTES + self.rows.saturating_add(1) * 4
        }
    }

    /// Descriptor of the transposed matrix.
    pub fn transposed(&self) -> MatrixMeta {
        MatrixMeta {
            rows: self.cols,
            cols: self.rows,
            ..*self
        }
    }

    /// Descriptor of the product `self × rhs`, using the worst-case density
    /// estimate the paper adopts for intermediate results (§2.2.2): the
    /// output is sized as fully dense unless both inputs are extremely
    /// sparse, in which case the union bound `1 - (1 - sa·sb)^K` applies.
    pub fn multiply_meta(&self, rhs: &MatrixMeta) -> MatrixMeta {
        let k = self.cols as f64;
        let p_nonzero = 1.0 - (1.0 - self.sparsity * rhs.sparsity).powf(k);
        MatrixMeta {
            rows: self.rows,
            cols: rhs.cols,
            block_size: self.block_size,
            sparsity: p_nonzero.clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_grid_counts() {
        let m = MatrixMeta::dense(70_000, 70_000);
        assert_eq!(m.block_rows(), 70);
        assert_eq!(m.block_cols(), 70);
        assert_eq!(m.num_blocks(), 4900);
    }

    #[test]
    fn ragged_edges() {
        let m = MatrixMeta::dense(2500, 1001);
        assert_eq!(m.block_rows(), 3);
        assert_eq!(m.block_cols(), 2);
        assert_eq!(m.block_dims(2, 1), (500, 1));
        assert_eq!(m.block_dims(0, 0), (1000, 1000));
    }

    #[test]
    fn paper_scale_sizes() {
        // 100K x 100K dense f64 = 80 GB.
        let m = MatrixMeta::dense(100_000, 100_000);
        assert_eq!(m.total_bytes(), 80_000_000_000);
        assert_eq!(m.block_bytes(), 8_000_000);
    }

    #[test]
    fn sparse_storage_estimates() {
        let m = MatrixMeta::sparse(1_000_000, 1_000, 0.001);
        assert!(!m.is_dense_storage());
        assert_eq!(m.nnz_estimate(), 1_000_000);
        // 12 bytes per nnz + row pointer overhead.
        assert!(m.total_bytes() >= 12_000_000);
        assert!(m.total_bytes() < 20_000_000);
    }

    #[test]
    fn dense_threshold_boundary() {
        assert!(MatrixMeta::sparse(10, 10, 0.4).is_dense_storage());
        assert!(!MatrixMeta::sparse(10, 10, 0.39).is_dense_storage());
    }

    #[test]
    fn multiply_meta_worst_case_densifies() {
        // Even a 1e-3-sparse times dense product over K = 1M is ~dense.
        let a = MatrixMeta::sparse(500_000, 1_000_000, 0.0001);
        let b = MatrixMeta::dense(1_000_000, 1_000);
        let c = a.multiply_meta(&b);
        assert_eq!(c.rows, 500_000);
        assert_eq!(c.cols, 1_000);
        assert!(c.sparsity > 0.99);
    }

    #[test]
    fn multiply_meta_keeps_tiny_products_sparse() {
        let a = MatrixMeta::sparse(1000, 1000, 1e-6).with_block_size(100);
        let b = MatrixMeta::sparse(1000, 1000, 1e-6).with_block_size(100);
        let c = a.multiply_meta(&b);
        assert!(c.sparsity < 0.01);
        assert_eq!(c.block_size, 100);
    }

    #[test]
    fn transposed_swaps_dims() {
        let m = MatrixMeta::dense(10, 20).transposed();
        assert_eq!((m.rows, m.cols), (20, 10));
    }
}
