//! Sparse × sparse multiplication (SpGEMM) via Gustavson's row-wise
//! algorithm with a dense accumulator workspace.

use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;

/// `C = A_csr · B_csr`, returning a CSR block.
///
/// Gustavson's algorithm: for each row `i` of `A`, scatter-accumulate the
/// scaled rows of `B` into a dense workspace, then gather the touched
/// columns in sorted order. Complexity `O(flops + rows + cols)`, workspace
/// `O(cols)` reused across rows.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when `a.cols() != b.rows()`.
pub fn csr_csr(a: &CsrBlock, b: &CsrBlock) -> Result<CsrBlock> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spgemm",
            lhs: (a.rows() as u64, a.cols() as u64),
            rhs: (b.rows() as u64, b.cols() as u64),
        });
    }
    let m = a.rows();
    let n = b.cols();

    let mut workspace = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::with_capacity(n.min(1024));

    let mut row_ptr = Vec::with_capacity(m + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    row_ptr.push(0u32);

    let (ap, ac, av) = (a.row_ptr(), a.col_idx(), a.values());
    let (bp, bc, bv) = (b.row_ptr(), b.col_idx(), b.values());

    for i in 0..m {
        let (s, e) = (ap[i] as usize, ap[i + 1] as usize);
        for idx in s..e {
            let k = ac[idx] as usize;
            let aik = av[idx];
            let (bs, be) = (bp[k] as usize, bp[k + 1] as usize);
            for bidx in bs..be {
                let j = bc[bidx] as usize;
                if workspace[j] == 0.0 && !touched.contains(&(j as u32)) {
                    touched.push(j as u32);
                }
                workspace[j] += aik * bv[bidx];
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let v = workspace[j as usize];
            if v != 0.0 {
                col_idx.push(j);
                values.push(v);
            }
            workspace[j as usize] = 0.0;
        }
        touched.clear();
        row_ptr.push(col_idx.len() as u32);
    }

    CsrBlock::from_raw_parts(m, n, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseBlock;
    use crate::kernels::gemm::gemm;

    fn sparse(rows: usize, cols: usize, every: usize, seed: u64) -> CsrBlock {
        let mut trips = Vec::new();
        let mut state = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                if ((state >> 33) as usize).is_multiple_of(every) {
                    trips.push((i, j, 1.0 + ((state >> 40) % 9) as f64));
                }
            }
        }
        CsrBlock::from_triplets(rows, cols, trips).unwrap()
    }

    #[test]
    fn matches_dense_reference() {
        let a = sparse(19, 23, 4, 3);
        let b = sparse(23, 15, 3, 8);
        let c = csr_csr(&a, &b).unwrap();
        c.validate().unwrap();
        let mut expect = DenseBlock::zeros(19, 15);
        gemm(1.0, &a.to_dense(), &b.to_dense(), 0.0, &mut expect).unwrap();
        assert!(c.to_dense().max_abs_diff(&expect).unwrap() < 1e-10);
    }

    #[test]
    fn empty_times_anything_is_empty() {
        let a = CsrBlock::empty(4, 5);
        let b = sparse(5, 6, 2, 1);
        let c = csr_csr(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!((c.rows(), c.cols()), (4, 6));
    }

    #[test]
    fn anything_times_empty_is_empty() {
        let a = sparse(5, 6, 2, 1);
        let b = CsrBlock::empty(6, 4);
        let c = csr_csr(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!((c.rows(), c.cols()), (5, 4));
    }

    #[test]
    fn cancellation_produces_no_stored_zero() {
        // A row [1, 1] times B columns that cancel: [x; -x].
        let a = CsrBlock::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let b = CsrBlock::from_triplets(2, 1, vec![(0, 0, 2.5), (1, 0, -2.5)]).unwrap();
        let c = csr_csr(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
        c.validate().unwrap();
    }

    #[test]
    fn dim_mismatch_rejected() {
        let a = CsrBlock::empty(4, 5);
        let b = CsrBlock::empty(6, 3);
        assert!(csr_csr(&a, &b).is_err());
    }

    #[test]
    fn identity_spgemm() {
        let a = sparse(10, 10, 3, 5);
        let id = CsrBlock::from_dense(&DenseBlock::identity(10));
        let c = csr_csr(&a, &id).unwrap();
        assert_eq!(c, a);
    }
}
