//! Sampled dense–dense multiplication and transpose-aware SpMM — the two
//! sparse primitives behind ALS and GNN workloads (Bharadwaj et al.,
//! "Distributed-Memory Sparse Kernels for Machine Learning").
//!
//! [`sddmm`] computes `C = mask ⊙ (A · B)`: only the entries present in the
//! CSR mask's sparsity pattern are evaluated, so the cost is `O(nnz(mask) ·
//! k)` instead of a full GEMM. [`csr_t_dense`] computes `C = Aᵀ_csr · B`
//! without materializing the transpose — the access pattern ALS's
//! normal-equations products (`Vᵀ W`, written as `csr_t_dense(V, W)`) need
//! when `V` is sharded by rows.

use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;

/// `C = mask ⊙ (A_dense · B_dense)` into the mask's CSR pattern.
///
/// Only the mask's *pattern* participates: every stored entry `(i, j)` —
/// explicit zeros included — is sampled, its stored value ignored. The
/// result carries the mask's exact `row_ptr`/`col_idx` arrays, so the
/// pattern survives even where a dot product lands on `0.0`.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when `a.cols() != b.rows()`
/// or the mask's shape is not `a.rows() × b.cols()`.
pub fn sddmm(a: &DenseBlock, b: &DenseBlock, mask: &CsrBlock) -> Result<CsrBlock> {
    let mut values = vec![0.0; mask.nnz()];
    sddmm_acc(a, b, mask, &mut values)?;
    CsrBlock::from_raw_parts(
        mask.rows(),
        mask.cols(),
        mask.row_ptr().to_vec(),
        mask.col_idx().to_vec(),
        values,
    )
}

/// `values[p] += dot(A[i, :], B[:, j])` for each mask entry `p = (i, j)` —
/// the accumulate form a distributed task uses to fold a chain of k-blocks
/// into one sampled output (`values` holds one slot per mask entry, in the
/// mask's CSR order).
///
/// Each partial dot product accumulates over `k` ascending, so a fixed
/// k-block order makes the blocked sum bit-deterministic.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] on any shape disagreement,
/// including `values.len() != mask.nnz()`.
pub fn sddmm_acc(
    a: &DenseBlock,
    b: &DenseBlock,
    mask: &CsrBlock,
    values: &mut [f64],
) -> Result<()> {
    if a.cols() != b.rows()
        || mask.rows() != a.rows()
        || mask.cols() != b.cols()
        || values.len() != mask.nnz()
    {
        return Err(MatrixError::DimensionMismatch {
            op: "sddmm",
            lhs: (a.rows() as u64, a.cols() as u64),
            rhs: (mask.rows() as u64, mask.cols() as u64),
        });
    }
    let kdim = a.cols();
    let n = b.cols();
    let av = a.data();
    let bv = b.data();
    let row_ptr = mask.row_ptr();
    let col_idx = mask.col_idx();
    for i in 0..mask.rows() {
        let arow = &av[i * kdim..(i + 1) * kdim];
        let (s, e) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        for idx in s..e {
            let j = col_idx[idx] as usize;
            let mut acc = 0.0;
            for (k, &aik) in arow.iter().enumerate() {
                acc += aik * bv[k * n + j];
            }
            values[idx] += acc;
        }
    }
    Ok(())
}

/// `C = Aᵀ_csr · B_dense`, returning a dense block, without materializing
/// the transpose.
///
/// Scatter formulation: for each non-zero `A[i, k]`, axpy row `i` of `B`
/// into row `k` of `C` — the mirror image of [`csr_dense`]'s gather, with
/// the same per-row determinism (rows of `A` ascending, entries within a
/// row ascending).
///
/// [`csr_dense`]: crate::kernels::spmm::csr_dense
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when `a.rows() != b.rows()`.
pub fn csr_t_dense(a: &CsrBlock, b: &DenseBlock) -> Result<DenseBlock> {
    let mut c = DenseBlock::zeros(a.cols(), b.cols());
    csr_t_dense_acc(a, b, &mut c)?;
    Ok(c)
}

/// `C += Aᵀ_csr · B_dense` with a caller-provided accumulator.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch.
pub fn csr_t_dense_acc(a: &CsrBlock, b: &DenseBlock, c: &mut DenseBlock) -> Result<()> {
    if a.rows() != b.rows() || c.rows() != a.cols() || c.cols() != b.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "csr_t_dense",
            lhs: (a.cols() as u64, a.rows() as u64),
            rhs: (b.rows() as u64, b.cols() as u64),
        });
    }
    let n = b.cols();
    let bv = b.data();
    let cv = c.data_mut();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for i in 0..a.rows() {
        let brow = &bv[i * n..(i + 1) * n];
        let (s, e) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        for idx in s..e {
            let k = col_idx[idx] as usize;
            let v = values[idx];
            let crow = &mut cv[k * n..(k + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += v * *bj;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gemm::gemm;
    use proptest::prelude::*;

    fn pseudo_random_mask(rows: usize, cols: usize, every: usize, seed: u64) -> CsrBlock {
        let mut trips = Vec::new();
        let mut state = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if ((state >> 33) as usize).is_multiple_of(every) {
                    trips.push((i, j, 1.0));
                }
            }
        }
        CsrBlock::from_triplets(rows, cols, trips).unwrap()
    }

    fn pseudo_random_dense(rows: usize, cols: usize, seed: u64) -> DenseBlock {
        let mut state = seed | 1;
        DenseBlock::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 35) % 100) as f64 / 50.0 - 1.0
        })
    }

    fn reference(a: &DenseBlock, b: &DenseBlock) -> DenseBlock {
        let mut c = DenseBlock::zeros(a.rows(), b.cols());
        gemm(1.0, a, b, 0.0, &mut c).unwrap();
        c
    }

    /// Bit-exact dense SDDMM reference: same k-ascending dot order.
    fn naive_sddmm(a: &DenseBlock, b: &DenseBlock, mask: &CsrBlock) -> Vec<(usize, usize, f64)> {
        mask.iter()
            .map(|(i, j, _)| {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                (i, j, acc)
            })
            .collect()
    }

    #[test]
    fn sddmm_matches_masked_gemm() {
        let a = pseudo_random_dense(19, 13, 3);
        let b = pseudo_random_dense(13, 23, 5);
        let mask = pseudo_random_mask(19, 23, 4, 7);
        let c = sddmm(&a, &b, &mask).unwrap();
        let full = reference(&a, &b);
        assert_eq!(c.nnz(), mask.nnz());
        for (i, j, v) in c.iter() {
            assert!((v - full.get(i, j)).abs() < 1e-10, "({i}, {j})");
        }
    }

    #[test]
    fn sddmm_ignores_mask_values_and_keeps_explicit_zeros() {
        // A mask entry whose dot product is zero must survive as an
        // explicit zero — the pattern is the contract.
        let a = DenseBlock::zeros(4, 3);
        let b = pseudo_random_dense(3, 4, 9);
        let mask = pseudo_random_mask(4, 4, 2, 11);
        let c = sddmm(&a, &b, &mask).unwrap();
        assert_eq!(c.nnz(), mask.nnz());
        assert!(c.values().iter().all(|&v| v == 0.0));
        assert_eq!(c.row_ptr(), mask.row_ptr());
        assert_eq!(c.col_idx(), mask.col_idx());
    }

    #[test]
    fn sddmm_acc_folds_k_blocks() {
        // Splitting A/B along k and accumulating must equal a single pass
        // when each partial keeps its own k-ascending order.
        let a = pseudo_random_dense(9, 12, 13);
        let b = pseudo_random_dense(12, 7, 15);
        let mask = pseudo_random_mask(9, 7, 3, 17);
        let whole = sddmm(&a, &b, &mask).unwrap();
        let split = 5;
        let a_lo = DenseBlock::from_fn(9, split, |i, k| a.get(i, k));
        let a_hi = DenseBlock::from_fn(9, 12 - split, |i, k| a.get(i, k + split));
        let b_lo = DenseBlock::from_fn(split, 7, |k, j| b.get(k, j));
        let b_hi = DenseBlock::from_fn(12 - split, 7, |k, j| b.get(k + split, j));
        let mut values = vec![0.0; mask.nnz()];
        sddmm_acc(&a_lo, &b_lo, &mask, &mut values).unwrap();
        sddmm_acc(&a_hi, &b_hi, &mask, &mut values).unwrap();
        for (p, (_, _, v)) in whole.iter().enumerate() {
            assert!((values[p] - v).abs() < 1e-12);
        }
    }

    #[test]
    fn csr_t_dense_matches_transposed_gemm() {
        let a = pseudo_random_mask(14, 9, 3, 19);
        let b = pseudo_random_dense(14, 6, 21);
        let c = csr_t_dense(&a, &b).unwrap();
        let expect = reference(&a.to_dense().transpose(), &b);
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-10);
    }

    #[test]
    fn empty_mask_and_empty_rows() {
        let a = pseudo_random_dense(6, 4, 1);
        let b = pseudo_random_dense(4, 5, 2);
        let empty = CsrBlock::empty(6, 5);
        let c = sddmm(&a, &b, &empty).unwrap();
        assert_eq!(c.nnz(), 0);
        let t = csr_t_dense(&CsrBlock::empty(6, 3), &a).unwrap();
        assert_eq!(t.nnz(), 0);
        assert_eq!((t.rows(), t.cols()), (3, 4));
    }

    #[test]
    fn dim_mismatches_rejected() {
        let a = pseudo_random_dense(5, 4, 1);
        let b = pseudo_random_dense(4, 6, 2);
        assert!(sddmm(&a, &b, &CsrBlock::empty(5, 7)).is_err());
        assert!(sddmm(&a, &b, &CsrBlock::empty(4, 6)).is_err());
        assert!(sddmm(&b, &a, &CsrBlock::empty(4, 4)).is_err());
        assert!(csr_t_dense(&CsrBlock::empty(5, 3), &b).is_err());
        let mut short = vec![0.0; 1];
        assert!(sddmm_acc(&a, &b, &CsrBlock::empty(5, 6), &mut short).is_err());
    }

    /// Bernoulli CSR pattern at `density`; `density == 0.0` yields an
    /// all-zero mask, and low densities produce empty rows routinely.
    fn bernoulli_mask(rows: usize, cols: usize, density: f64, seed: u64) -> CsrBlock {
        let mut state = seed | 1;
        let mut trips = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let draw = (state >> 11) as f64 / (1u64 << 53) as f64;
                if draw < density {
                    let v = ((state >> 40) as f64 % 17.0) - 8.0;
                    trips.push((i, j, v));
                }
            }
        }
        CsrBlock::from_triplets(rows, cols, trips).unwrap()
    }

    proptest! {
        /// SDDMM bit-matches the dense reference over random CSR masks ×
        /// shapes, including all-zero masks and empty rows (both sides
        /// accumulate k ascending, so equality is exact, not approximate).
        #[test]
        fn sddmm_bit_matches_dense_reference(
            (m, k, n) in (1usize..12, 1usize..12, 1usize..12),
            seed in any::<u64>(),
            density in prop_oneof![Just(0.0), Just(0.15), Just(0.5)],
        ) {
            let a = pseudo_random_dense(m, k, seed ^ 1);
            let b = pseudo_random_dense(k, n, seed ^ 2);
            let mask = bernoulli_mask(m, n, density, seed ^ 3);
            let c = sddmm(&a, &b, &mask).unwrap();
            let expect = naive_sddmm(&a, &b, &mask);
            let got: Vec<(usize, usize, f64)> = c.iter().collect();
            prop_assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(expect.iter()) {
                prop_assert_eq!(g.0, e.0);
                prop_assert_eq!(g.1, e.1);
                prop_assert_eq!(g.2.to_bits(), e.2.to_bits(), "value at ({}, {})", g.0, g.1);
            }
        }

        /// Transpose-aware SpMM bit-matches an element-wise scatter in the
        /// same order (identical accumulation order by construction).
        #[test]
        fn csr_t_dense_bit_matches_dense_reference(
            (m, k, n) in (1usize..12, 1usize..12, 1usize..12),
            seed in any::<u64>(),
            density in prop_oneof![Just(0.0), Just(0.2), Just(0.6)],
        ) {
            let a = bernoulli_mask(m, k, density, seed ^ 5);
            let b = pseudo_random_dense(m, n, seed ^ 6);
            let c = csr_t_dense(&a, &b).unwrap();
            let mut expect = DenseBlock::zeros(k, n);
            for (i, kk, v) in a.iter() {
                for j in 0..n {
                    expect.set(kk, j, expect.get(kk, j) + v * b.get(i, j));
                }
            }
            for i in 0..k {
                for j in 0..n {
                    prop_assert_eq!(c.get(i, j).to_bits(), expect.get(i, j).to_bits());
                }
            }
        }
    }
}
