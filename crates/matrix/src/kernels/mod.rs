//! Local block-multiplication kernels.
//!
//! These stand in for the BLAS libraries the paper's systems call:
//! `cublasDgemm` / MKL `dgemm` for dense blocks and `cusparseDcsrmm` for
//! sparse ones (§4.4). The [`multiply`] entry point dispatches on operand
//! formats exactly like DistME's local-multiplication step.

pub mod gemm;
pub mod sddmm;
pub mod spgemm;
pub mod spmm;

use crate::block::Block;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};

/// Number of floating-point operations of a block product `m×k · k×n`
/// (one multiply + one add per inner step).
pub fn flops(m: u64, k: u64, n: u64) -> u64 {
    2 * m * k * n
}

/// Multiplies two blocks, dispatching to the format-appropriate kernel, and
/// returns the product in a density-appropriate format.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when `a.cols() != b.rows()`.
pub fn multiply(a: &Block, b: &Block) -> Result<Block> {
    check_mul_dims(a, b)?;
    let out = match (a, b) {
        (Block::Dense(da), Block::Dense(db)) => {
            let mut c = DenseBlock::zeros(da.rows(), db.cols());
            gemm::gemm(1.0, da, db, 0.0, &mut c)?;
            Block::Dense(c)
        }
        (Block::Sparse(sa), Block::Dense(db)) => Block::Dense(spmm::csr_dense(sa, db)?),
        (Block::Dense(da), Block::Sparse(sb)) => Block::Dense(spmm::dense_csr(da, sb)?),
        (Block::Sparse(sa), Block::Sparse(sb)) => {
            Block::Sparse(spgemm::csr_csr(sa, sb)?).normalize()
        }
    };
    Ok(out)
}

/// `c += a · b` with a dense accumulator — the shape of the update DistME's
/// GPU iterations perform while keeping `C` resident in device memory (§4.3).
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when operand shapes are
/// incompatible with each other or with `c`.
pub fn multiply_accumulate(c: &mut DenseBlock, a: &Block, b: &Block) -> Result<()> {
    check_mul_dims(a, b)?;
    if c.rows() != a.rows() || c.cols() != b.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "multiply_accumulate",
            lhs: (c.rows() as u64, c.cols() as u64),
            rhs: (a.rows() as u64, b.cols() as u64),
        });
    }
    match (a, b) {
        (Block::Dense(da), Block::Dense(db)) => gemm::gemm(1.0, da, db, 1.0, c),
        (Block::Sparse(sa), Block::Dense(db)) => spmm::csr_dense_acc(sa, db, c),
        (Block::Dense(da), Block::Sparse(sb)) => {
            let prod = spmm::dense_csr(da, sb)?;
            c.add_assign(&prod)
        }
        (Block::Sparse(sa), Block::Sparse(sb)) => {
            let prod = spgemm::csr_csr(sa, sb)?;
            c.add_assign(&prod.to_dense())
        }
    }
}

fn check_mul_dims(a: &Block, b: &Block) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "multiply",
            lhs: (a.rows() as u64, a.cols() as u64),
            rhs: (b.rows() as u64, b.cols() as u64),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrBlock;

    fn dense_a() -> DenseBlock {
        DenseBlock::from_fn(3, 4, |i, j| (i * 4 + j) as f64)
    }

    fn dense_b() -> DenseBlock {
        DenseBlock::from_fn(4, 2, |i, j| (i as f64) - (j as f64))
    }

    /// Naive reference product for validation.
    fn naive(a: &DenseBlock, b: &DenseBlock) -> DenseBlock {
        let mut c = DenseBlock::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn flops_formula() {
        assert_eq!(flops(10, 20, 30), 12_000);
    }

    #[test]
    fn multiply_dispatches_all_format_pairs() {
        let da = dense_a();
        let db = dense_b();
        let expect = naive(&da, &db);
        let sa = CsrBlock::from_dense(&da);
        let sb = CsrBlock::from_dense(&db);
        for a in [Block::Dense(da.clone()), Block::Sparse(sa)] {
            for b in [Block::Dense(db.clone()), Block::Sparse(sb.clone())] {
                let c = multiply(&a, &b).unwrap();
                assert!(
                    c.to_dense().max_abs_diff(&expect).unwrap() < 1e-12,
                    "format pair {:?}x{:?}",
                    a.format(),
                    b.format()
                );
            }
        }
    }

    #[test]
    fn multiply_rejects_bad_dims() {
        let a = Block::Dense(DenseBlock::zeros(2, 3));
        let b = Block::Dense(DenseBlock::zeros(4, 2));
        assert!(multiply(&a, &b).is_err());
    }

    #[test]
    fn accumulate_matches_two_products() {
        let da = dense_a();
        let db = dense_b();
        let mut c = naive(&da, &db);
        // c += a*b again => 2 * naive
        multiply_accumulate(&mut c, &Block::Dense(da.clone()), &Block::Dense(db.clone())).unwrap();
        let mut twice = naive(&da, &db);
        twice.scale(2.0);
        assert!(c.max_abs_diff(&twice).unwrap() < 1e-12);
    }

    #[test]
    fn accumulate_rejects_bad_output_shape() {
        let a = Block::Dense(dense_a());
        let b = Block::Dense(dense_b());
        let mut c = DenseBlock::zeros(3, 3); // should be 3x2
        assert!(multiply_accumulate(&mut c, &a, &b).is_err());
    }

    #[test]
    fn accumulate_all_format_pairs() {
        let da = dense_a();
        let db = dense_b();
        let expect = naive(&da, &db);
        let sa = CsrBlock::from_dense(&da);
        let sb = CsrBlock::from_dense(&db);
        for a in [Block::Dense(da.clone()), Block::Sparse(sa)] {
            for b in [Block::Dense(db.clone()), Block::Sparse(sb.clone())] {
                let mut c = DenseBlock::zeros(3, 2);
                multiply_accumulate(&mut c, &a, &b).unwrap();
                assert!(c.max_abs_diff(&expect).unwrap() < 1e-12);
            }
        }
    }
}
