//! Dense general matrix multiply: `C = alpha * A * B + beta * C`.
//!
//! A cache-tiled implementation with a register-blocked 4×4 micro-kernel,
//! standing in for MKL `dgemm` / `cublasDgemm`. Tiling parameters follow the
//! usual L1/L2 blocking recipe; on 1000 × 1000 f64 blocks this runs within a
//! small factor of vendor BLAS single-threaded throughput — good enough that
//! compute/communication ratios in the benchmarks are realistic.

use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};

/// Tile size along the k dimension (panel depth).
const KC: usize = 256;
/// Tile size along the m dimension (panel height).
const MC: usize = 64;
/// Register block: the micro-kernel computes an `MR × NR` sub-tile.
const MR: usize = 4;
/// See [`MR`].
const NR: usize = 4;

/// `c = alpha * a * b + beta * c`.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when operand shapes are
/// incompatible.
pub fn gemm(
    alpha: f64,
    a: &DenseBlock,
    b: &DenseBlock,
    beta: f64,
    c: &mut DenseBlock,
) -> Result<()> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb || c.rows() != m || c.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm",
            lhs: (m as u64, k as u64),
            rhs: (kb as u64, n as u64),
        });
    }

    if beta != 1.0 {
        for v in c.data_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let av = a.data();
    let bv = b.data();
    let cv = c.data_mut();

    // Loop nest: pack-free tiled SAXPY-style kernel. For each (mc, kc) panel
    // of A we stream B rows, accumulating into C with a 4x4 register block.
    let mut kk = 0;
    while kk < k {
        let kc = KC.min(k - kk);
        let mut ii = 0;
        while ii < m {
            let mc = MC.min(m - ii);
            macro_kernel(alpha, av, bv, cv, ii, kk, mc, kc, n, k);
            ii += mc;
        }
        kk += kc;
    }
    Ok(())
}

/// Computes `C[ii..ii+mc, :] += alpha * A[ii..ii+mc, kk..kk+kc] * B[kk..kk+kc, :]`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    ii: usize,
    kk: usize,
    mc: usize,
    kc: usize,
    n: usize,
    lda_k: usize,
) {
    let mut i = 0;
    while i + MR <= mc {
        let mut j = 0;
        while j + NR <= n {
            micro_kernel_4x4(alpha, a, b, c, ii + i, kk, kc, j, n, lda_k);
            j += NR;
        }
        // Remainder columns.
        if j < n {
            edge_kernel(alpha, a, b, c, ii + i, kk, MR, kc, j, n - j, n, lda_k);
        }
        i += MR;
    }
    // Remainder rows.
    if i < mc {
        edge_kernel(alpha, a, b, c, ii + i, kk, mc - i, kc, 0, n, n, lda_k);
    }
}

/// 4×4 register-blocked inner kernel over a kc-deep panel.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_4x4(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    i0: usize,
    kk: usize,
    kc: usize,
    j0: usize,
    n: usize,
    lda_k: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    // Hoist row bases so the inner loop indexes with constant offsets.
    let a0 = i0 * lda_k + kk;
    let a1 = a0 + lda_k;
    let a2 = a1 + lda_k;
    let a3 = a2 + lda_k;
    for p in 0..kc {
        let brow = (kk + p) * n + j0;
        let bs = &b[brow..brow + NR];
        let av = [a[a0 + p], a[a1 + p], a[a2 + p], a[a3 + p]];
        for (r, &ar) in av.iter().enumerate() {
            acc[r][0] += ar * bs[0];
            acc[r][1] += ar * bs[1];
            acc[r][2] += ar * bs[2];
            acc[r][3] += ar * bs[3];
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = (i0 + r) * n + j0;
        let cs = &mut c[crow..crow + NR];
        for (q, &v) in accr.iter().enumerate() {
            cs[q] += alpha * v;
        }
    }
}

/// Scalar fallback for tile edges.
#[allow(clippy::too_many_arguments)]
fn edge_kernel(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    i0: usize,
    kk: usize,
    mr: usize,
    kc: usize,
    j0: usize,
    nr: usize,
    n: usize,
    lda_k: usize,
) {
    for i in 0..mr {
        let arow = (i0 + i) * lda_k + kk;
        let crow = (i0 + i) * n + j0;
        for p in 0..kc {
            let av = alpha * a[arow + p];
            if av == 0.0 {
                continue;
            }
            let brow = (kk + p) * n + j0;
            let (bs, cs) = (&b[brow..brow + nr], &mut c[crow..crow + nr]);
            for q in 0..nr {
                cs[q] += av * bs[q];
            }
        }
    }
}

/// `c = alpha * aᵀ * b + beta * c` without materializing `aᵀ`.
///
/// The `WᵀV` / `WᵀW` pattern of GNMF and the Gram-matrix pattern of least
/// squares both left-multiply by a transpose; walking `A` column-wise here
/// saves the transpose pass and its temporary.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when operand shapes are
/// incompatible (`a` is `k × m`, `b` is `k × n`, `c` is `m × n`).
pub fn gemm_tn(
    alpha: f64,
    a: &DenseBlock,
    b: &DenseBlock,
    beta: f64,
    c: &mut DenseBlock,
) -> Result<()> {
    let (k, m) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb || c.rows() != m || c.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm_tn",
            lhs: (k as u64, m as u64),
            rhs: (kb as u64, n as u64),
        });
    }
    if beta != 1.0 {
        for v in c.data_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }
    let av = a.data();
    let bv = b.data();
    let cv = c.data_mut();
    // Row p of A contributes the outer product aᵀ[., p] ⊗ b[p, .]:
    // perfectly sequential reads of both operands.
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &aip) in arow.iter().enumerate() {
            let w = alpha * aip;
            if w == 0.0 {
                continue;
            }
            let crow = &mut cv[i * n..(i + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += w * bj;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &DenseBlock, b: &DenseBlock) -> DenseBlock {
        let mut c = DenseBlock::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> DenseBlock {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DenseBlock::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo_random(17, 17, 3);
        let id = DenseBlock::identity(17);
        let mut c = DenseBlock::zeros(17, 17);
        gemm(1.0, &a, &id, 0.0, &mut c).unwrap();
        assert!(c.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 4, 4),
            (5, 3, 9),
            (64, 64, 64),
            (65, 63, 67),
            (130, 70, 10),
            (10, 300, 6),
        ] {
            let a = pseudo_random(m, k, (m * 31 + k) as u64);
            let b = pseudo_random(k, n, (k * 17 + n) as u64);
            let expect = naive(&a, &b);
            let mut c = DenseBlock::zeros(m, n);
            gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
            assert!(
                c.max_abs_diff(&expect).unwrap() < 1e-9,
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = pseudo_random(6, 6, 1);
        let b = pseudo_random(6, 6, 2);
        let mut c = pseudo_random(6, 6, 3);
        let c0 = c.clone();
        let ab = naive(&a, &b);
        gemm(2.0, &a, &b, 0.5, &mut c).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let expect = 2.0 * ab.get(i, j) + 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let a = pseudo_random(4, 4, 9);
        let b = pseudo_random(4, 4, 10);
        let mut c = pseudo_random(4, 4, 11);
        let mut expect = c.clone();
        expect.scale(3.0);
        gemm(0.0, &a, &b, 3.0, &mut c).unwrap();
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let a = DenseBlock::zeros(2, 3);
        let b = DenseBlock::zeros(2, 3);
        let mut c = DenseBlock::zeros(2, 3);
        assert!(gemm(1.0, &a, &b, 0.0, &mut c).is_err());
        let b2 = DenseBlock::zeros(3, 3);
        let mut c_bad = DenseBlock::zeros(3, 3);
        assert!(gemm(1.0, &a, &b2, 0.0, &mut c_bad).is_err());
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        for &(k, m, n) in &[(5usize, 3usize, 7usize), (64, 32, 16), (33, 65, 9)] {
            let a = pseudo_random(k, m, 71);
            let b = pseudo_random(k, n, 72);
            let mut expect = DenseBlock::zeros(m, n);
            gemm(1.0, &a.transpose(), &b, 0.0, &mut expect).unwrap();
            let mut got = DenseBlock::zeros(m, n);
            gemm_tn(1.0, &a, &b, 0.0, &mut got).unwrap();
            assert!(got.max_abs_diff(&expect).unwrap() < 1e-9, "{k}x{m}x{n}");
        }
    }

    #[test]
    fn gemm_tn_alpha_beta_and_dims() {
        let a = pseudo_random(4, 3, 1);
        let b = pseudo_random(4, 2, 2);
        let mut c = pseudo_random(3, 2, 3);
        let c0 = c.clone();
        let mut ab = DenseBlock::zeros(3, 2);
        gemm(1.0, &a.transpose(), &b, 0.0, &mut ab).unwrap();
        gemm_tn(3.0, &a, &b, 0.5, &mut c).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                let expect = 3.0 * ab.get(i, j) + 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - expect).abs() < 1e-9);
            }
        }
        // Shape checks.
        let mut bad = DenseBlock::zeros(2, 2);
        assert!(gemm_tn(1.0, &a, &b, 0.0, &mut bad).is_err());
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = DenseBlock::zeros(0, 4);
        let b = DenseBlock::zeros(4, 3);
        let mut c = DenseBlock::zeros(0, 3);
        gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
    }
}
