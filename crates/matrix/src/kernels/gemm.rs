//! Dense general matrix multiply: `C = alpha * A * B + beta * C`.
//!
//! A packed, cache-blocked implementation in the BLIS/GotoBLAS mold,
//! standing in for MKL `dgemm` / `cublasDgemm`:
//!
//! * the operands are repacked into contiguous panels — A into `MR`-strided
//!   row panels, B into `NR`-strided column panels — so the micro-kernel
//!   streams both with unit stride and no edge branches;
//! * the loop nest blocks by `NC` (B columns, L3), `KC` (panel depth, L1/L2)
//!   and `MC` (A rows, L2), with an `MR × NR = 8 × 4` register-tiled
//!   micro-kernel at the bottom;
//! * on x86-64 the micro-kernel dispatches at runtime to an AVX2+FMA
//!   instantiation (`mul_add` compiles to `vfmadd`) when the CPU supports
//!   it, with a portable mul+add fallback everywhere else.
//!
//! [`gemm_tn`] (`C = alpha * aᵀ * b + beta * C`) shares the same driver:
//! packing A reads it column-wise, so the transpose costs nothing extra and
//! the micro-kernel is identical.

use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};

/// Tile size along the k dimension (panel depth; A and B panels of this
/// depth stay L1/L2-resident under the micro-kernel).
const KC: usize = 256;
/// Tile size along the m dimension (rows of A packed per panel).
const MC: usize = 128;
/// Tile size along the n dimension (columns of B packed per panel).
const NC: usize = 2048;
/// Register block: the micro-kernel computes an `MR × NR` sub-tile.
const MR: usize = 8;
/// See [`MR`].
const NR: usize = 4;

/// `c = alpha * a * b + beta * c`.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when operand shapes are
/// incompatible.
pub fn gemm(
    alpha: f64,
    a: &DenseBlock,
    b: &DenseBlock,
    beta: f64,
    c: &mut DenseBlock,
) -> Result<()> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb || c.rows() != m || c.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm",
            lhs: (m as u64, k as u64),
            rhs: (kb as u64, n as u64),
        });
    }
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }
    blocked_driver::<false>(alpha, a.data(), b.data(), c.data_mut(), m, n, k);
    Ok(())
}

/// `c = alpha * aᵀ * b + beta * c` without materializing `aᵀ`.
///
/// The `WᵀV` / `WᵀW` pattern of GNMF and the Gram-matrix pattern of least
/// squares both left-multiply by a transpose; packing `A` column-wise here
/// absorbs the transpose into the packing pass, so the blocked kernel runs
/// at the same rate as [`gemm`].
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when operand shapes are
/// incompatible (`a` is `k × m`, `b` is `k × n`, `c` is `m × n`).
pub fn gemm_tn(
    alpha: f64,
    a: &DenseBlock,
    b: &DenseBlock,
    beta: f64,
    c: &mut DenseBlock,
) -> Result<()> {
    let (k, m) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb || c.rows() != m || c.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm_tn",
            lhs: (k as u64, m as u64),
            rhs: (kb as u64, n as u64),
        });
    }
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }
    blocked_driver::<true>(alpha, a.data(), b.data(), c.data_mut(), m, n, k);
    Ok(())
}

fn scale_c(beta: f64, c: &mut DenseBlock) {
    if beta != 1.0 {
        for v in c.data_mut() {
            *v *= beta;
        }
    }
}

/// The five-loop blocked driver. `TN` selects how A is read during packing:
/// `false` — A is `m × k` row-major; `true` — A is `k × m` row-major and the
/// packed panels hold `aᵀ`.
fn blocked_driver<const TN: bool>(
    alpha: f64,
    av: &[f64],
    bv: &[f64],
    cv: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    let use_fma = fma_available();
    // Panel buffers are rounded up to full MR/NR tiles and zero-padded, so
    // the micro-kernel never branches on edges; the write-back masks them.
    let mut apack = vec![0.0f64; MC.div_ceil(MR) * MR * KC];
    let mut bpack = vec![0.0f64; NC.div_ceil(NR) * NR * KC];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut bpack, bv, n, pc, jc, kc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                if TN {
                    pack_a_tn(&mut apack, av, m, pc, ic, kc, mc);
                } else {
                    pack_a(&mut apack, av, k, pc, ic, kc, mc);
                }
                macro_kernel(alpha, &apack, &bpack, cv, ic, jc, mc, nc, kc, n, use_fma);
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` (row-major, leading dimension `lda`)
/// into MR-strided panels: panel `ir` holds, for each depth `p`, the MR
/// consecutive values `A[ic+ir.., pc+p]`. Rows past `mc` pad with zero.
fn pack_a(apack: &mut [f64], av: &[f64], lda: usize, pc: usize, ic: usize, kc: usize, mc: usize) {
    let mut dst = 0;
    let mut ir = 0;
    while ir < mc {
        let rows = MR.min(mc - ir);
        for p in 0..kc {
            let base = dst + p * MR;
            for r in 0..rows {
                apack[base + r] = av[(ic + ir + r) * lda + pc + p];
            }
            for r in rows..MR {
                apack[base + r] = 0.0;
            }
        }
        dst += kc * MR;
        ir += MR;
    }
}

/// [`pack_a`] for the transposed layout: A is `k × m` row-major and the
/// packed panel holds `aᵀ[ic.., pc..]`, i.e. element `(r, p)` reads
/// `A[pc+p, ic+ir+r]`. Reading row `pc+p` of A is sequential, so the
/// transpose costs one strided write pattern into a cache-resident panel.
fn pack_a_tn(apack: &mut [f64], av: &[f64], m: usize, pc: usize, ic: usize, kc: usize, mc: usize) {
    let mut dst = 0;
    let mut ir = 0;
    while ir < mc {
        let rows = MR.min(mc - ir);
        for p in 0..kc {
            let arow = (pc + p) * m + ic + ir;
            let base = dst + p * MR;
            apack[base..base + rows].copy_from_slice(&av[arow..arow + rows]);
            for r in rows..MR {
                apack[base + r] = 0.0;
            }
        }
        dst += kc * MR;
        ir += MR;
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` (row-major, leading dimension `ldb`)
/// into NR-strided panels: panel `jr` holds, for each depth `p`, the NR
/// consecutive values `B[pc+p, jc+jr..]`. Columns past `nc` pad with zero.
fn pack_b(bpack: &mut [f64], bv: &[f64], ldb: usize, pc: usize, jc: usize, kc: usize, nc: usize) {
    let mut dst = 0;
    let mut jr = 0;
    while jr < nc {
        let cols = NR.min(nc - jr);
        for p in 0..kc {
            let brow = (pc + p) * ldb + jc + jr;
            let base = dst + p * NR;
            bpack[base..base + cols].copy_from_slice(&bv[brow..brow + cols]);
            for q in cols..NR {
                bpack[base + q] = 0.0;
            }
        }
        dst += kc * NR;
        jr += NR;
    }
}

/// Walks the packed panels, invoking the micro-kernel per `MR × NR` tile.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    cv: &mut [f64],
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    ldc: usize,
    use_fma: bool,
) {
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let bp = &bpack[(jr / NR) * kc * NR..][..kc * NR];
        let mut ir = 0;
        while ir < mc {
            let mr = MR.min(mc - ir);
            let ap = &apack[(ir / MR) * kc * MR..][..kc * MR];
            let c0 = (ic + ir) * ldc + jc + jr;
            if use_fma {
                // SAFETY: `use_fma` is true only when `fma_available`
                // confirmed AVX2+FMA support on this CPU at runtime.
                unsafe { micro_kernel_avx2(alpha, ap, bp, cv, c0, ldc, mr, nr) };
            } else {
                micro_kernel_portable(alpha, ap, bp, cv, c0, ldc, mr, nr);
            }
            ir += MR;
        }
        jr += NR;
    }
}

#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn fma_available() -> bool {
    false
}

/// The register-tiled inner kernel over one `MR`-panel of A and one
/// `NR`-panel of B: 32 accumulators, fully unrolled across the tile, one
/// multiply-add per element per depth step. `FMA` selects `mul_add`
/// (single rounding, compiles to `vfmadd` under the fma feature) versus
/// plain mul+add, so the portable build never hits the libm soft-fma path.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_kernel_body<const FMA: bool>(
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    cv: &mut [f64],
    c0: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (avec, bvec) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let avec: &[f64; MR] = avec.try_into().expect("exact chunk");
        let bvec: &[f64; NR] = bvec.try_into().expect("exact chunk");
        for r in 0..MR {
            let ar = avec[r];
            for q in 0..NR {
                if FMA {
                    acc[r][q] = ar.mul_add(bvec[q], acc[r][q]);
                } else {
                    acc[r][q] += ar * bvec[q];
                }
            }
        }
    }
    // Edge masking happens here, not in the hot loop: the panels are
    // zero-padded to full MR × NR, so only the write-back needs `mr`/`nr`.
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let crow = &mut cv[c0 + r * ldc..][..nr];
        for (cq, &v) in crow.iter_mut().zip(accr.iter()) {
            if FMA {
                *cq = alpha.mul_add(v, *cq);
            } else {
                *cq += alpha * v;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn micro_kernel_portable(
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    cv: &mut [f64],
    c0: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_kernel_body::<false>(alpha, ap, bp, cv, c0, ldc, mr, nr);
}

/// AVX2+FMA instantiation of the same body: with the features enabled the
/// compiler vectorizes the NR-wide accumulator rows into `vfmadd231pd`.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
fn micro_kernel_avx2(
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    cv: &mut [f64],
    c0: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_kernel_body::<true>(alpha, ap, bp, cv, c0, ldc, mr, nr);
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel_avx2(
    _alpha: f64,
    _ap: &[f64],
    _bp: &[f64],
    _cv: &mut [f64],
    _c0: usize,
    _ldc: usize,
    _mr: usize,
    _nr: usize,
) {
    unreachable!("fma_available() is false off x86-64");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &DenseBlock, b: &DenseBlock) -> DenseBlock {
        let mut c = DenseBlock::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> DenseBlock {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DenseBlock::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo_random(17, 17, 3);
        let id = DenseBlock::identity(17);
        let mut c = DenseBlock::zeros(17, 17);
        gemm(1.0, &a, &id, 0.0, &mut c).unwrap();
        assert!(c.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 4, 4),
            (5, 3, 9),
            (8, 4, 8),
            (64, 64, 64),
            (65, 63, 67),
            (130, 70, 10),
            (10, 300, 6),
            (1, 300, 1),
            (129, 257, 5),
        ] {
            let a = pseudo_random(m, k, (m * 31 + k) as u64);
            let b = pseudo_random(k, n, (k * 17 + n) as u64);
            let expect = naive(&a, &b);
            let mut c = DenseBlock::zeros(m, n);
            gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
            assert!(
                c.max_abs_diff(&expect).unwrap() < 1e-9,
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn blocking_boundaries_are_exact() {
        // Shapes that straddle every tile edge: MR/NR, MC/KC, and the
        // panel-internal padding rows/cols.
        for &(m, k, n) in &[
            (MR, KC, NR),
            (MR - 1, KC + 1, NR + 1),
            (MC, KC, NR * 3),
            (MC + 1, KC - 1, NR * 3 + 2),
            (MR * 2 + 3, 2 * KC + 5, NR + 3),
        ] {
            let a = pseudo_random(m, k, 7);
            let b = pseudo_random(k, n, 8);
            let expect = naive(&a, &b);
            let mut c = DenseBlock::zeros(m, n);
            gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
            assert!(
                c.max_abs_diff(&expect).unwrap() < 1e-8,
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = pseudo_random(6, 6, 1);
        let b = pseudo_random(6, 6, 2);
        let mut c = pseudo_random(6, 6, 3);
        let c0 = c.clone();
        let ab = naive(&a, &b);
        gemm(2.0, &a, &b, 0.5, &mut c).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let expect = 2.0 * ab.get(i, j) + 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let a = pseudo_random(4, 4, 9);
        let b = pseudo_random(4, 4, 10);
        let mut c = pseudo_random(4, 4, 11);
        let mut expect = c.clone();
        expect.scale(3.0);
        gemm(0.0, &a, &b, 3.0, &mut c).unwrap();
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let a = DenseBlock::zeros(2, 3);
        let b = DenseBlock::zeros(2, 3);
        let mut c = DenseBlock::zeros(2, 3);
        assert!(gemm(1.0, &a, &b, 0.0, &mut c).is_err());
        let b2 = DenseBlock::zeros(3, 3);
        let mut c_bad = DenseBlock::zeros(3, 3);
        assert!(gemm(1.0, &a, &b2, 0.0, &mut c_bad).is_err());
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        for &(k, m, n) in &[
            (5usize, 3usize, 7usize),
            (64, 32, 16),
            (33, 65, 9),
            (KC + 3, MC + 2, NR * 2 + 1),
        ] {
            let a = pseudo_random(k, m, 71);
            let b = pseudo_random(k, n, 72);
            let mut expect = DenseBlock::zeros(m, n);
            gemm(1.0, &a.transpose(), &b, 0.0, &mut expect).unwrap();
            let mut got = DenseBlock::zeros(m, n);
            gemm_tn(1.0, &a, &b, 0.0, &mut got).unwrap();
            assert!(got.max_abs_diff(&expect).unwrap() < 1e-8, "{k}x{m}x{n}");
        }
    }

    #[test]
    fn gemm_tn_alpha_beta_and_dims() {
        let a = pseudo_random(4, 3, 1);
        let b = pseudo_random(4, 2, 2);
        let mut c = pseudo_random(3, 2, 3);
        let c0 = c.clone();
        let mut ab = DenseBlock::zeros(3, 2);
        gemm(1.0, &a.transpose(), &b, 0.0, &mut ab).unwrap();
        gemm_tn(3.0, &a, &b, 0.5, &mut c).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                let expect = 3.0 * ab.get(i, j) + 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - expect).abs() < 1e-9);
            }
        }
        // Shape checks.
        let mut bad = DenseBlock::zeros(2, 2);
        assert!(gemm_tn(1.0, &a, &b, 0.0, &mut bad).is_err());
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = DenseBlock::zeros(0, 4);
        let b = DenseBlock::zeros(4, 3);
        let mut c = DenseBlock::zeros(0, 3);
        gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
    }
}
