//! Sparse × dense kernels (the `cusparseDcsrmm` stand-in).

use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;

/// `C = A_csr · B_dense`, returning a dense block.
///
/// Row-wise SpMM: for each non-zero `A[i,k]`, axpy row `k` of `B` into row
/// `i` of `C`. This is the classic CSR-row formulation with good locality on
/// B's rows.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when `a.cols() != b.rows()`.
pub fn csr_dense(a: &CsrBlock, b: &DenseBlock) -> Result<DenseBlock> {
    let mut c = DenseBlock::zeros(a.rows(), b.cols());
    csr_dense_acc(a, b, &mut c)?;
    Ok(c)
}

/// `C += A_csr · B_dense` with a caller-provided accumulator.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch.
pub fn csr_dense_acc(a: &CsrBlock, b: &DenseBlock, c: &mut DenseBlock) -> Result<()> {
    if a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "csr_dense",
            lhs: (a.rows() as u64, a.cols() as u64),
            rhs: (b.rows() as u64, b.cols() as u64),
        });
    }
    let n = b.cols();
    let bv = b.data();
    let cv = c.data_mut();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for i in 0..a.rows() {
        let crow = &mut cv[i * n..(i + 1) * n];
        let (s, e) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        for idx in s..e {
            let k = col_idx[idx] as usize;
            let v = values[idx];
            let brow = &bv[k * n..(k + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += v * *bj;
            }
        }
    }
    Ok(())
}

/// `C = A_dense · B_csr`, returning a dense block.
///
/// Implemented as scatter along B's rows: for each non-zero `B[k,j]`, axpy
/// column `k` of `A` into column `j` of `C`. Iterates A row-major in the
/// outer loop to keep writes sequential.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when `a.cols() != b.rows()`.
pub fn dense_csr(a: &DenseBlock, b: &CsrBlock) -> Result<DenseBlock> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "dense_csr",
            lhs: (a.rows() as u64, a.cols() as u64),
            rhs: (b.rows() as u64, b.cols() as u64),
        });
    }
    let m = a.rows();
    let kdim = a.cols();
    let n = b.cols();
    let mut c = DenseBlock::zeros(m, n);
    let av = a.data();
    let cv = c.data_mut();
    let row_ptr = b.row_ptr();
    let col_idx = b.col_idx();
    let values = b.values();
    for i in 0..m {
        let arow = &av[i * kdim..(i + 1) * kdim];
        let crow = &mut cv[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let (s, e) = (row_ptr[k] as usize, row_ptr[k + 1] as usize);
            for idx in s..e {
                crow[col_idx[idx] as usize] += aik * values[idx];
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gemm::gemm;

    fn pseudo_random_sparse(rows: usize, cols: usize, every: usize, seed: u64) -> CsrBlock {
        let mut trips = Vec::new();
        let mut state = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if ((state >> 33) as usize).is_multiple_of(every) {
                    trips.push((i, j, ((state >> 40) as f64 % 17.0) - 8.0));
                }
            }
        }
        CsrBlock::from_triplets(rows, cols, trips).unwrap()
    }

    fn pseudo_random_dense(rows: usize, cols: usize, seed: u64) -> DenseBlock {
        let mut state = seed | 1;
        DenseBlock::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 35) % 100) as f64 / 50.0 - 1.0
        })
    }

    fn reference(a: &DenseBlock, b: &DenseBlock) -> DenseBlock {
        let mut c = DenseBlock::zeros(a.rows(), b.cols());
        gemm(1.0, a, b, 0.0, &mut c).unwrap();
        c
    }

    #[test]
    fn csr_dense_matches_gemm() {
        let a = pseudo_random_sparse(23, 31, 5, 7);
        let b = pseudo_random_dense(31, 11, 9);
        let c = csr_dense(&a, &b).unwrap();
        let expect = reference(&a.to_dense(), &b);
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-10);
    }

    #[test]
    fn dense_csr_matches_gemm() {
        let a = pseudo_random_dense(13, 29, 21);
        let b = pseudo_random_sparse(29, 17, 4, 5);
        let c = dense_csr(&a, &b).unwrap();
        let expect = reference(&a, &b.to_dense());
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-10);
    }

    #[test]
    fn accumulate_adds_onto_existing() {
        let a = pseudo_random_sparse(8, 8, 3, 11);
        let b = pseudo_random_dense(8, 8, 13);
        let mut c = pseudo_random_dense(8, 8, 15);
        let c0 = c.clone();
        csr_dense_acc(&a, &b, &mut c).unwrap();
        let prod = reference(&a.to_dense(), &b);
        for i in 0..8 {
            for j in 0..8 {
                assert!((c.get(i, j) - (c0.get(i, j) + prod.get(i, j))).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn empty_sparse_yields_zero() {
        let a = CsrBlock::empty(5, 6);
        let b = pseudo_random_dense(6, 4, 3);
        let c = csr_dense(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn all_zero_dense_operand_yields_zero() {
        let a = pseudo_random_sparse(9, 7, 2, 3);
        let c = csr_dense(&a, &DenseBlock::zeros(7, 5)).unwrap();
        assert_eq!(c.nnz(), 0);
        let b = pseudo_random_sparse(9, 4, 2, 5);
        let c2 = dense_csr(&DenseBlock::zeros(6, 9), &b).unwrap();
        assert_eq!(c2.nnz(), 0);
    }

    #[test]
    fn dim_mismatches_rejected() {
        let a = CsrBlock::empty(5, 6);
        let b = pseudo_random_dense(7, 4, 3);
        assert!(csr_dense(&a, &b).is_err());
        let d = pseudo_random_dense(4, 9, 3);
        let s = CsrBlock::empty(5, 6);
        assert!(dense_csr(&d, &s).is_err());
    }
}
