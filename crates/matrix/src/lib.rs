//! # distme-matrix — block-matrix substrate
//!
//! The linear-algebra foundation of the DistME reproduction. Distributed
//! matrix systems in the paper's lineage (SystemML, MatFast, DMac, DistME)
//! represent a matrix as a grid of fixed-size *blocks* (default
//! 1000 × 1000) and use a block as the unit of computation, shuffling, and
//! storage. This crate provides:
//!
//! * [`DenseBlock`] / [`CsrBlock`] — the two block storage formats the paper
//!   uses (dense, and Compressed Sparse Row), unified under [`Block`];
//! * local kernels standing in for BLAS/cuBLAS/cuSPARSE:
//!   [`kernels::gemm`] (cache-tiled dense GEMM with a 4×4 micro-kernel),
//!   [`kernels::spmm`] (CSR × dense), and [`kernels::spgemm`]
//!   (CSR × CSR, Gustavson's algorithm);
//! * [`BlockMatrix`] — a single-node blocked matrix used as the correctness
//!   reference for every distributed method;
//! * [`MatrixMeta`] — a *virtual* matrix descriptor (shape, block size,
//!   sparsity) that the discrete-event simulator uses to reason about
//!   paper-scale matrices (e.g. 100 000 × 100 000 doubles ≈ 80 GB) without
//!   materializing them;
//! * [`codec`] — a compact binary block codec used by the shuffle service so
//!   that communication cost is measured on real serialized bytes;
//! * [`generator`] — synthetic dense/sparse matrix generators matching the
//!   paper's uniform-random workloads (§6.1).

pub mod block;
pub mod block_matrix;
pub mod codec;
pub mod csc;
pub mod dense;
pub mod elementwise;
pub mod error;
pub mod generator;
pub mod io;
pub mod kernels;
pub mod meta;
pub mod ops;
pub mod sparse;

pub use block::{Block, BlockFormat, BlockId};
pub use block_matrix::{fresh_matrix_uid, BlockMatrix};
pub use csc::CscBlock;
pub use dense::DenseBlock;
pub use error::{MatrixError, Result};
pub use generator::MatrixGenerator;
pub use meta::MatrixMeta;
pub use sparse::CsrBlock;

/// Default block side length used throughout the paper ("we use the block
/// size of 1000 × 1000 in all experiments", §6.1).
pub const DEFAULT_BLOCK_SIZE: u64 = 1000;

/// Bytes per `f64` matrix element.
pub const ELEM_BYTES: u64 = 8;

/// Approximate serialized bytes per non-zero in CSR format: an 8-byte value
/// plus a 4-byte column index, with row-pointer overhead amortized.
pub const CSR_NNZ_BYTES: u64 = 12;
