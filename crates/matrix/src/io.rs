//! Matrix I/O.
//!
//! DistME "uses the parquet format for reading and writing the matrix data
//! with HDFS" (§5). This module provides the equivalent persistence layer:
//!
//! * [`write_bbm`] / [`read_bbm`] — **B**locked **B**inary **M**atrix, a
//!   columnar-style container of codec-encoded blocks with a footer index
//!   (the parquet stand-in): blocks can be decoded independently, in any
//!   order, which is what a distributed loader needs;
//! * [`write_matrix_market`] / [`read_matrix_market`] — the MatrixMarket
//!   coordinate exchange format, for interoperability with SuiteSparse /
//!   scipy datasets.

use crate::block::Block;
use crate::block_matrix::BlockMatrix;
use crate::codec;
use crate::error::{MatrixError, Result};
use crate::meta::MatrixMeta;
use crate::sparse::CsrBlock;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const BBM_MAGIC: &[u8; 8] = b"DISTMEb1";

/// Writes a blocked binary matrix file.
///
/// Layout: `magic | meta (rows, cols, block_size: u64 LE; sparsity: f64 LE)
/// | block count: u32 | per block: (row: u32, col: u32, len: u32, payload)`.
///
/// # Errors
/// Propagates I/O errors as [`MatrixError::Codec`].
pub fn write_bbm(path: &Path, matrix: &BlockMatrix) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(BBM_MAGIC).map_err(io_err)?;
    let meta = matrix.meta();
    for v in [meta.rows, meta.cols, meta.block_size] {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    w.write_all(&meta.sparsity.to_le_bytes()).map_err(io_err)?;
    w.write_all(&(matrix.num_materialized() as u32).to_le_bytes())
        .map_err(io_err)?;
    for (id, block) in matrix.blocks() {
        let payload = codec::encode(block);
        w.write_all(&id.row.to_le_bytes()).map_err(io_err)?;
        w.write_all(&id.col.to_le_bytes()).map_err(io_err)?;
        w.write_all(&(payload.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        w.write_all(&payload).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Reads a blocked binary matrix file written by [`write_bbm`].
///
/// # Errors
/// Returns [`MatrixError::Codec`] on malformed input.
pub fn read_bbm(path: &Path) -> Result<BlockMatrix> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != BBM_MAGIC {
        return Err(MatrixError::Codec(
            "not a DistME blocked matrix file".into(),
        ));
    }
    let rows = read_u64(&mut r)?;
    let cols = read_u64(&mut r)?;
    let block_size = read_u64(&mut r)?;
    let mut f8 = [0u8; 8];
    r.read_exact(&mut f8).map_err(io_err)?;
    let sparsity = f64::from_le_bytes(f8);
    if block_size == 0 {
        return Err(MatrixError::Codec("zero block size".into()));
    }
    let meta = MatrixMeta {
        rows,
        cols,
        block_size,
        sparsity,
    };
    let count = read_u32(&mut r)?;
    let mut matrix = BlockMatrix::new(meta);
    for _ in 0..count {
        let row = read_u32(&mut r)?;
        let col = read_u32(&mut r)?;
        let len = read_u32(&mut r)? as usize;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload).map_err(io_err)?;
        let block = codec::decode(bytes::Bytes::from(payload))?;
        matrix.put(row, col, block)?;
    }
    Ok(matrix)
}

/// Writes MatrixMarket coordinate format (1-indexed, `real general`).
///
/// # Errors
/// Propagates I/O errors as [`MatrixError::Codec`].
pub fn write_matrix_market(path: &Path, matrix: &BlockMatrix) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(w, "% written by distme-matrix").map_err(io_err)?;
    let meta = matrix.meta();
    writeln!(w, "{} {} {}", meta.rows, meta.cols, matrix.nnz()).map_err(io_err)?;
    let bs = meta.block_size;
    for (id, block) in matrix.blocks() {
        let (r0, c0) = (id.row as u64 * bs, id.col as u64 * bs);
        let sparse = block.to_sparse();
        for (i, j, v) in sparse.iter() {
            writeln!(w, "{} {} {v}", r0 + i as u64 + 1, c0 + j as u64 + 1).map_err(io_err)?;
        }
    }
    w.flush().map_err(io_err)
}

/// Reads MatrixMarket coordinate format into a [`BlockMatrix`] with the
/// given block size. Supports `real`/`integer` fields, `general` and
/// `symmetric` symmetry.
///
/// # Errors
/// Returns [`MatrixError::Codec`] on malformed input.
pub fn read_matrix_market(path: &Path, block_size: u64) -> Result<BlockMatrix> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut lines = BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| MatrixError::Codec("empty MatrixMarket file".into()))?
        .map_err(io_err)?;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket matrix coordinate") {
        return Err(MatrixError::Codec(format!(
            "unsupported MatrixMarket header: {header}"
        )));
    }
    let symmetric = h.contains("symmetric");
    if h.contains("complex") || h.contains("pattern") {
        return Err(MatrixError::Codec(
            "complex/pattern MatrixMarket fields are not supported".into(),
        ));
    }

    let mut dims: Option<(u64, u64, u64)> = None;
    let mut triplets: Vec<(u64, u64, f64)> = Vec::new();
    for line in lines {
        let line = line.map_err(io_err)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        if dims.is_none() {
            let rows = parse_u64(parts.next(), "rows")?;
            let cols = parse_u64(parts.next(), "cols")?;
            let nnz = parse_u64(parts.next(), "nnz")?;
            dims = Some((rows, cols, nnz));
            continue;
        }
        let i = parse_u64(parts.next(), "row index")?;
        let j = parse_u64(parts.next(), "col index")?;
        let v: f64 = parts
            .next()
            .ok_or_else(|| MatrixError::Codec("missing value".into()))?
            .parse()
            .map_err(|e| MatrixError::Codec(format!("bad value: {e}")))?;
        let (rows, cols, _) = dims.expect("dims parsed before entries");
        if i == 0 || j == 0 || i > rows || j > cols {
            return Err(MatrixError::Codec(format!(
                "entry ({i}, {j}) outside {rows}x{cols}"
            )));
        }
        triplets.push((i - 1, j - 1, v));
        if symmetric && i != j {
            triplets.push((j - 1, i - 1, v));
        }
    }
    let (rows, cols, declared) =
        dims.ok_or_else(|| MatrixError::Codec("missing size line".into()))?;
    let base = if symmetric {
        // Symmetric files declare only the lower triangle.
        triplets.len() as u64
    } else {
        declared
    };
    let _ = base;

    let meta = MatrixMeta {
        rows,
        cols,
        block_size,
        sparsity: (triplets.len() as f64 / (rows as f64 * cols as f64)).min(1.0),
    };
    type BlockTriplets = std::collections::BTreeMap<(u32, u32), Vec<(usize, usize, f64)>>;
    let mut per_block: BlockTriplets = std::collections::BTreeMap::new();
    for (i, j, v) in triplets {
        let key = ((i / block_size) as u32, (j / block_size) as u32);
        per_block.entry(key).or_default().push((
            (i % block_size) as usize,
            (j % block_size) as usize,
            v,
        ));
    }
    let mut matrix = BlockMatrix::new(meta);
    for ((bi, bj), trips) in per_block {
        let (r, c) = meta.block_dims(bi, bj);
        let block = Block::Sparse(CsrBlock::from_triplets(r as usize, c as usize, trips)?);
        matrix.put(bi, bj, block.normalize())?;
    }
    Ok(matrix)
}

fn io_err(e: std::io::Error) -> MatrixError {
    MatrixError::Codec(format!("io error: {e}"))
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u32::from_le_bytes(b))
}

fn parse_u64(s: Option<&str>, what: &str) -> Result<u64> {
    s.ok_or_else(|| MatrixError::Codec(format!("missing {what}")))?
        .parse()
        .map_err(|e| MatrixError::Codec(format!("bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::MatrixGenerator;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("distme-io-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn sample(sparsity: f64) -> BlockMatrix {
        let meta = MatrixMeta::sparse(70, 50, sparsity).with_block_size(32);
        MatrixGenerator::with_seed(7).generate(&meta).unwrap()
    }

    #[test]
    fn bbm_roundtrip_dense() {
        let m = sample(1.0);
        let p = tmp("dense.bbm");
        write_bbm(&p, &m).unwrap();
        let back = read_bbm(&p).unwrap();
        assert_eq!(back.meta(), m.meta());
        assert!(m.max_abs_diff(&back).unwrap() == 0.0);
    }

    #[test]
    fn bbm_roundtrip_sparse() {
        let m = sample(0.05);
        let p = tmp("sparse.bbm");
        write_bbm(&p, &m).unwrap();
        let back = read_bbm(&p).unwrap();
        assert_eq!(back.nnz(), m.nnz());
        assert!(m.max_abs_diff(&back).unwrap() == 0.0);
    }

    #[test]
    fn bbm_rejects_garbage() {
        let p = tmp("garbage.bbm");
        std::fs::write(&p, b"not a matrix").unwrap();
        assert!(read_bbm(&p).is_err());
    }

    #[test]
    fn matrix_market_roundtrip() {
        let m = sample(0.1);
        let p = tmp("roundtrip.mtx");
        write_matrix_market(&p, &m).unwrap();
        let back = read_matrix_market(&p, 32).unwrap();
        assert_eq!(back.meta().rows, 70);
        assert_eq!(back.meta().cols, 50);
        assert!(m.max_abs_diff(&back).unwrap() < 1e-12);
    }

    #[test]
    fn matrix_market_symmetric_expansion() {
        let p = tmp("sym.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 7.0\n",
        )
        .unwrap();
        let m = read_matrix_market(&p, 2).unwrap();
        assert_eq!(m.get_element(1, 0), 5.0);
        assert_eq!(m.get_element(0, 1), 5.0);
        assert_eq!(m.get_element(2, 2), 7.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn matrix_market_rejects_bad_entries() {
        let p = tmp("bad.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
        )
        .unwrap();
        assert!(read_matrix_market(&p, 2).is_err());
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n",
        )
        .unwrap();
        assert!(read_matrix_market(&p, 2).is_err());
    }

    #[test]
    fn matrix_market_comments_and_blank_lines() {
        let p = tmp("comments.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% more\n1 2 3.5\n",
        )
        .unwrap();
        let m = read_matrix_market(&p, 2).unwrap();
        assert_eq!(m.get_element(0, 1), 3.5);
    }
}
