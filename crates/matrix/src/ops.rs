//! Whole-matrix convenience operations on [`BlockMatrix`].
//!
//! The reductions here (row/column sums, trace, scaling) are the building
//! blocks the paper's application list needs around multiplication:
//! normalization steps in factorization, degree vectors for graph
//! algorithms, convergence checks.

use crate::block::Block;
use crate::block_matrix::BlockMatrix;
use crate::dense::DenseBlock;
use crate::elementwise::map;
use crate::error::{MatrixError, Result};
use crate::meta::MatrixMeta;

impl BlockMatrix {
    /// Returns `alpha · self`.
    pub fn scale(&self, alpha: f64) -> BlockMatrix {
        let mut out = BlockMatrix::new(*self.meta());
        for (id, block) in self.blocks() {
            let scaled = map(block, |v| alpha * v).expect("map never fails on matching shapes");
            out.put(id.row, id.col, scaled)
                .expect("same grid as source");
        }
        out
    }

    /// Applies `f` to every element (including implicit zeros when
    /// `f(0) != 0`, which densifies missing blocks).
    pub fn map_elements(&self, f: impl Fn(f64) -> f64 + Copy) -> BlockMatrix {
        let mut out = BlockMatrix::new(*self.meta());
        let densify = f(0.0) != 0.0;
        for bi in 0..self.meta().block_rows() {
            for bj in 0..self.meta().block_cols() {
                let mapped = match self.get(bi, bj) {
                    Some(block) => map(block, f).expect("shape preserved"),
                    None if densify => {
                        let (r, c) = self.meta().block_dims(bi, bj);
                        map(&Block::Dense(DenseBlock::zeros(r as usize, c as usize)), f)
                            .expect("shape preserved")
                    }
                    None => continue,
                };
                if mapped.nnz() > 0 {
                    out.put(bi, bj, mapped).expect("same grid");
                }
            }
        }
        out
    }

    /// Sum of each row, as a dense vector of length `rows`.
    pub fn row_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.meta().rows as usize];
        let bs = self.meta().block_size;
        for (id, block) in self.blocks() {
            let base = id.row as u64 * bs;
            match block {
                Block::Sparse(s) => {
                    for (i, _, v) in s.iter() {
                        sums[(base + i as u64) as usize] += v;
                    }
                }
                Block::Dense(d) => {
                    for i in 0..d.rows() {
                        let row = &d.data()[i * d.cols()..(i + 1) * d.cols()];
                        sums[(base + i as u64) as usize] += row.iter().sum::<f64>();
                    }
                }
            }
        }
        sums
    }

    /// Sum of each column, as a dense vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.meta().cols as usize];
        let bs = self.meta().block_size;
        for (id, block) in self.blocks() {
            let base = id.col as u64 * bs;
            match block {
                Block::Sparse(s) => {
                    for (_, j, v) in s.iter() {
                        sums[(base + j as u64) as usize] += v;
                    }
                }
                Block::Dense(d) => {
                    for i in 0..d.rows() {
                        for j in 0..d.cols() {
                            sums[(base + j as u64) as usize] += d.get(i, j);
                        }
                    }
                }
            }
        }
        sums
    }

    /// Sum of the main diagonal.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] for non-square matrices.
    pub fn trace(&self) -> Result<f64> {
        let meta = self.meta();
        if meta.rows != meta.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "trace",
                lhs: (meta.rows, meta.cols),
                rhs: (meta.cols, meta.cols),
            });
        }
        Ok((0..meta.rows).map(|i| self.get_element(i, i)).sum())
    }

    /// Sum of all elements.
    pub fn total_sum(&self) -> f64 {
        self.row_sums().iter().sum()
    }

    /// The Gram matrix `selfᵀ · self` computed without materializing the
    /// transpose (the `WᵀW` of GNMF and `XᵀX` of least squares), using the
    /// [`crate::kernels::gemm::gemm_tn`] kernel per block pair.
    pub fn gram(&self) -> BlockMatrix {
        let meta = self.meta();
        let out_meta = MatrixMeta {
            rows: meta.cols,
            cols: meta.cols,
            block_size: meta.block_size,
            sparsity: 1.0,
        };
        let mut out = BlockMatrix::new(out_meta);
        for bi in 0..meta.block_cols() {
            for bj in 0..meta.block_cols() {
                let (r, c) = out_meta.block_dims(bi, bj);
                let mut acc = DenseBlock::zeros(r as usize, c as usize);
                let mut any = false;
                for bk in 0..meta.block_rows() {
                    let (Some(a), Some(b)) = (self.get(bk, bi), self.get(bk, bj)) else {
                        continue;
                    };
                    crate::kernels::gemm::gemm_tn(1.0, &a.to_dense(), &b.to_dense(), 1.0, &mut acc)
                        .expect("block shapes align by construction");
                    any = true;
                }
                if any {
                    out.put(bi, bj, Block::Dense(acc))
                        .expect("grid position valid");
                }
            }
        }
        out
    }

    /// Block-aligned sub-matrix: block rows `[r0, r1)` × block cols
    /// `[c0, c1)`, re-indexed from (0, 0).
    ///
    /// # Errors
    /// Returns [`MatrixError::BlockOutOfBounds`] for ranges outside the
    /// grid or empty ranges.
    pub fn slice_blocks(&self, r0: u32, r1: u32, c0: u32, c1: u32) -> Result<BlockMatrix> {
        let meta = self.meta();
        if r0 >= r1 || c0 >= c1 || r1 > meta.block_rows() || c1 > meta.block_cols() {
            return Err(MatrixError::BlockOutOfBounds {
                id: (r1.saturating_sub(1), c1.saturating_sub(1)),
                grid: (meta.block_rows(), meta.block_cols()),
            });
        }
        let bs = meta.block_size;
        let rows = (r1 as u64 * bs).min(meta.rows) - r0 as u64 * bs;
        let cols = (c1 as u64 * bs).min(meta.cols) - c0 as u64 * bs;
        let out_meta = MatrixMeta {
            rows,
            cols,
            block_size: bs,
            sparsity: meta.sparsity,
        };
        let mut out = BlockMatrix::new(out_meta);
        for (id, block) in self.blocks() {
            if id.row >= r0 && id.row < r1 && id.col >= c0 && id.col < c1 {
                out.put(id.row - r0, id.col - c0, block.clone())?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::MatrixGenerator;

    fn sample(sparsity: f64) -> BlockMatrix {
        let meta = MatrixMeta::sparse(50, 30, sparsity).with_block_size(16);
        MatrixGenerator::with_seed(11).generate(&meta).unwrap()
    }

    #[test]
    fn scale_scales_every_element() {
        let m = sample(0.3);
        let s = m.scale(2.5);
        for i in (0..50).step_by(7) {
            for j in (0..30).step_by(5) {
                assert!((s.get_element(i, j) - 2.5 * m.get_element(i, j)).abs() < 1e-12);
            }
        }
        // Sparsity pattern preserved.
        assert_eq!(s.nnz(), m.nnz());
    }

    #[test]
    fn map_densifies_when_f0_nonzero() {
        let meta = MatrixMeta::sparse(20, 20, 0.0).with_block_size(10);
        let empty = BlockMatrix::new(meta);
        let shifted = empty.map_elements(|v| v + 1.0);
        assert_eq!(shifted.get_element(7, 13), 1.0);
        assert_eq!(shifted.nnz(), 400);
        // And zero-preserving maps keep the pattern.
        let doubled = empty.map_elements(|v| v * 2.0);
        assert_eq!(doubled.nnz(), 0);
    }

    #[test]
    fn row_and_col_sums_agree_with_elementwise_scan() {
        let m = sample(0.4);
        let rows = m.row_sums();
        let cols = m.col_sums();
        for i in 0..50 {
            let expect: f64 = (0..30).map(|j| m.get_element(i, j)).sum();
            assert!((rows[i as usize] - expect).abs() < 1e-9, "row {i}");
        }
        for j in 0..30 {
            let expect: f64 = (0..50).map(|i| m.get_element(i, j)).sum();
            assert!((cols[j as usize] - expect).abs() < 1e-9, "col {j}");
        }
        assert!((m.total_sum() - rows.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn trace_requires_square() {
        let m = sample(1.0);
        assert!(m.trace().is_err());
        let meta = MatrixMeta::dense(32, 32).with_block_size(16);
        let sq = MatrixGenerator::with_seed(3).generate(&meta).unwrap();
        let expect: f64 = (0..32).map(|i| sq.get_element(i, i)).sum();
        assert!((sq.trace().unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn slice_blocks_reindexes() {
        let m = sample(1.0);
        let s = m.slice_blocks(1, 3, 0, 2).unwrap();
        assert_eq!(s.meta().rows, 32);
        assert_eq!(s.meta().cols, 30); // col blocks 0..2 cover all 30 cols
        for i in 0..32 {
            for j in 0..30 {
                assert_eq!(s.get_element(i, j), m.get_element(16 + i, j));
            }
        }
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let m = sample(0.6);
        let expect = m.transpose().multiply(&m).unwrap();
        let got = m.gram();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
        // Gram matrices are symmetric.
        assert!(got.max_abs_diff(&got.transpose()).unwrap() < 1e-12);
    }

    #[test]
    fn slice_blocks_validates_ranges() {
        let m = sample(1.0);
        assert!(m.slice_blocks(0, 0, 0, 1).is_err()); // empty
        assert!(m.slice_blocks(0, 9, 0, 1).is_err()); // out of grid
    }
}
