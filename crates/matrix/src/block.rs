//! The [`Block`] enum unifying dense and sparse block formats, and block
//! addressing within a matrix's block grid.

use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;

/// Grid coordinates of a block within a matrix: `Ai,j` in the paper's
/// notation, `i` being the block-row and `j` the block-column index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Block-row index.
    pub row: u32,
    /// Block-column index.
    pub col: u32,
}

impl BlockId {
    /// Creates a block id.
    pub const fn new(row: u32, col: u32) -> Self {
        BlockId { row, col }
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// Storage format of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockFormat {
    /// Row-major dense array, 8 bytes/element.
    Dense,
    /// Compressed sparse row, ~12 bytes/non-zero.
    Sparse,
}

/// A matrix block in either dense or CSR representation.
///
/// The engine picks the representation per block based on density, mirroring
/// the hybrid storage of SystemML/DistME; conversions are explicit.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// Dense storage.
    Dense(DenseBlock),
    /// CSR storage.
    Sparse(CsrBlock),
}

/// Density threshold above which a block is materialized densely. SystemML
/// uses nnz/cells > 0.4 as its dense/sparse crossover; we adopt the same.
pub const DENSE_THRESHOLD: f64 = 0.4;

impl Block {
    /// Number of rows in the block.
    pub fn rows(&self) -> usize {
        match self {
            Block::Dense(d) => d.rows(),
            Block::Sparse(s) => s.rows(),
        }
    }

    /// Number of columns in the block.
    pub fn cols(&self) -> usize {
        match self {
            Block::Dense(d) => d.cols(),
            Block::Sparse(s) => s.cols(),
        }
    }

    /// Storage format tag.
    pub fn format(&self) -> BlockFormat {
        match self {
            Block::Dense(_) => BlockFormat::Dense,
            Block::Sparse(_) => BlockFormat::Sparse,
        }
    }

    /// Number of non-zero elements. Exact for CSR, a scan for dense.
    pub fn nnz(&self) -> usize {
        match self {
            Block::Dense(d) => d.nnz(),
            Block::Sparse(s) => s.nnz(),
        }
    }

    /// Fraction of non-zero cells.
    pub fn density(&self) -> f64 {
        let cells = self.rows() * self.cols();
        if cells == 0 {
            return 0.0;
        }
        self.nnz() as f64 / cells as f64
    }

    /// In-memory footprint in bytes.
    pub fn mem_bytes(&self) -> u64 {
        match self {
            Block::Dense(d) => d.mem_bytes(),
            Block::Sparse(s) => s.mem_bytes(),
        }
    }

    /// Returns a dense view, converting if needed.
    pub fn to_dense(&self) -> DenseBlock {
        match self {
            Block::Dense(d) => d.clone(),
            Block::Sparse(s) => s.to_dense(),
        }
    }

    /// Returns a CSR view, converting if needed.
    pub fn to_sparse(&self) -> CsrBlock {
        match self {
            Block::Dense(d) => CsrBlock::from_dense(d),
            Block::Sparse(s) => s.clone(),
        }
    }

    /// Re-encodes the block into the storage format its density warrants
    /// (dense above [`DENSE_THRESHOLD`], CSR below).
    pub fn normalize(self) -> Block {
        let density = self.density();
        match (&self, density >= DENSE_THRESHOLD) {
            (Block::Dense(_), true) | (Block::Sparse(_), false) => self,
            (Block::Dense(d), false) => Block::Sparse(CsrBlock::from_dense(d)),
            (Block::Sparse(s), true) => Block::Dense(s.to_dense()),
        }
    }

    /// Transposed block in the same storage format.
    pub fn transpose(&self) -> Block {
        match self {
            Block::Dense(d) => Block::Dense(d.transpose()),
            Block::Sparse(s) => Block::Sparse(s.transpose()),
        }
    }

    /// Element accessor (slow path; for tests and small examples).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Block::Dense(d) => d.get(i, j),
            Block::Sparse(s) => {
                let (start, end) = (s.row_ptr()[i] as usize, s.row_ptr()[i + 1] as usize);
                match s.col_idx()[start..end].binary_search(&(j as u32)) {
                    Ok(pos) => s.values()[start + pos],
                    Err(_) => 0.0,
                }
            }
        }
    }

    /// `self + other`, selecting an output format by density.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when shapes differ.
    pub fn add(&self, other: &Block) -> Result<Block> {
        if self.rows() != other.rows() || self.cols() != other.cols() {
            return Err(MatrixError::DimensionMismatch {
                op: "add",
                lhs: (self.rows() as u64, self.cols() as u64),
                rhs: (other.rows() as u64, other.cols() as u64),
            });
        }
        match (self, other) {
            (Block::Sparse(a), Block::Sparse(b)) => {
                // Sparse + sparse: merge triplets.
                let mut trips: Vec<(usize, usize, f64)> = a.iter().collect();
                trips.extend(b.iter());
                Ok(Block::Sparse(CsrBlock::from_triplets(
                    a.rows(),
                    a.cols(),
                    trips,
                )?))
            }
            _ => {
                let mut d = self.to_dense();
                d.add_assign(&other.to_dense())?;
                Ok(Block::Dense(d))
            }
        }
    }

    /// Maximum absolute difference against another block (any formats).
    pub fn max_abs_diff(&self, other: &Block) -> Option<f64> {
        self.to_dense().max_abs_diff(&other.to_dense())
    }
}

impl From<DenseBlock> for Block {
    fn from(d: DenseBlock) -> Self {
        Block::Dense(d)
    }
}

impl From<CsrBlock> for Block {
    fn from(s: CsrBlock) -> Self {
        Block::Sparse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_sample() -> CsrBlock {
        CsrBlock::from_triplets(3, 3, vec![(0, 0, 1.0), (2, 1, 4.0)]).unwrap()
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId::new(2, 7).to_string(), "(2, 7)");
    }

    #[test]
    fn format_and_shape_dispatch() {
        let d: Block = DenseBlock::zeros(2, 3).into();
        let s: Block = sparse_sample().into();
        assert_eq!(d.format(), BlockFormat::Dense);
        assert_eq!(s.format(), BlockFormat::Sparse);
        assert_eq!(d.rows(), 2);
        assert_eq!(d.cols(), 3);
        assert_eq!(s.rows(), 3);
    }

    #[test]
    fn get_on_sparse_finds_zeros_and_values() {
        let s: Block = sparse_sample().into();
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(2, 1), 4.0);
    }

    #[test]
    fn normalize_respects_threshold() {
        // 1/9 dense => should become sparse.
        let mut d = DenseBlock::zeros(3, 3);
        d.set(1, 1, 5.0);
        let b = Block::Dense(d).normalize();
        assert_eq!(b.format(), BlockFormat::Sparse);
        // Fully dense CSR => should become dense.
        let full = CsrBlock::from_dense(&DenseBlock::from_fn(2, 2, |_, _| 1.0));
        let b = Block::Sparse(full).normalize();
        assert_eq!(b.format(), BlockFormat::Dense);
    }

    #[test]
    fn add_mixed_formats() {
        let d: Block = DenseBlock::from_fn(3, 3, |i, j| (i + j) as f64).into();
        let s: Block = sparse_sample().into();
        let sum = d.add(&s).unwrap();
        assert_eq!(sum.get(0, 0), 1.0);
        assert_eq!(sum.get(2, 1), 7.0);
        assert_eq!(sum.get(1, 2), 3.0);
    }

    #[test]
    fn add_sparse_sparse_stays_sparse() {
        let a: Block = sparse_sample().into();
        let b: Block = sparse_sample().into();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.format(), BlockFormat::Sparse);
        assert_eq!(sum.get(2, 1), 8.0);
        assert_eq!(sum.nnz(), 2);
    }

    #[test]
    fn add_shape_mismatch() {
        let a: Block = DenseBlock::zeros(2, 2).into();
        let b: Block = DenseBlock::zeros(3, 2).into();
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn transpose_preserves_format() {
        let d: Block = DenseBlock::zeros(2, 3).into();
        let s: Block = sparse_sample().into();
        assert_eq!(d.transpose().format(), BlockFormat::Dense);
        assert_eq!(s.transpose().format(), BlockFormat::Sparse);
        assert_eq!(d.transpose().rows(), 3);
    }
}
