//! Element-wise block operations: the `∗` (Hadamard product), `/`, `+`, `-`
//! operators the GNMF update rules use (Appendix A, Eq. 7).

use crate::block::Block;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrBlock;

/// Element-wise binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b` (Hadamard)
    Mul,
    /// `a / b` — division by zero yields `0.0`, matching SystemML's
    /// sparse-safe semantics for the GNMF quotient.
    Div,
}

impl EwOp {
    /// Applies the scalar operator.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            EwOp::Add => a + b,
            EwOp::Sub => a - b,
            EwOp::Mul => a * b,
            EwOp::Div => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
        }
    }

    /// True when `op(0, x) == 0` for all x — lets sparse left operands keep
    /// their sparsity pattern (Mul, Div).
    pub fn zero_preserving_left(self) -> bool {
        matches!(self, EwOp::Mul | EwOp::Div)
    }
}

/// Applies `op` element-wise over two blocks.
///
/// Sparse-aware fast paths:
/// * `Sparse ⊙ any` for `Mul`/`Div` iterates only the left operand's
///   non-zeros (the pattern of the result is a subset of the left pattern);
/// * everything else densifies.
///
/// # Errors
/// Returns [`MatrixError::DimensionMismatch`] when shapes differ.
pub fn ew(op: EwOp, a: &Block, b: &Block) -> Result<Block> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "elementwise",
            lhs: (a.rows() as u64, a.cols() as u64),
            rhs: (b.rows() as u64, b.cols() as u64),
        });
    }
    if op.zero_preserving_left() {
        if let Block::Sparse(sa) = a {
            return ew_sparse_left(op, sa, b);
        }
    }
    let da = a.to_dense();
    let db = b.to_dense();
    let mut out = Vec::with_capacity(da.len());
    for (x, y) in da.data().iter().zip(db.data().iter()) {
        out.push(op.apply(*x, *y));
    }
    Ok(Block::Dense(DenseBlock::from_vec(
        da.rows(),
        da.cols(),
        out,
    )?))
}

fn ew_sparse_left(op: EwOp, a: &CsrBlock, b: &Block) -> Result<Block> {
    let mut trips = Vec::with_capacity(a.nnz());
    for (i, j, v) in a.iter() {
        let r = op.apply(v, b.get(i, j));
        if r != 0.0 {
            trips.push((i, j, r));
        }
    }
    Ok(Block::Sparse(CsrBlock::from_triplets(
        a.rows(),
        a.cols(),
        trips,
    )?))
}

/// Applies a scalar function to every element of a block, preserving
/// sparsity when `f(0) == 0`.
pub fn map(a: &Block, f: impl Fn(f64) -> f64) -> Result<Block> {
    if f(0.0) == 0.0 {
        if let Block::Sparse(s) = a {
            let trips: Vec<_> = s.iter().map(|(i, j, v)| (i, j, f(v))).collect();
            return Ok(Block::Sparse(CsrBlock::from_triplets(
                s.rows(),
                s.cols(),
                trips,
            )?));
        }
    }
    let d = a.to_dense();
    let out: Vec<f64> = d.data().iter().map(|&v| f(v)).collect();
    Ok(Block::Dense(DenseBlock::from_vec(d.rows(), d.cols(), out)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockFormat;

    fn dense(seed: f64) -> Block {
        Block::Dense(DenseBlock::from_fn(3, 4, |i, j| {
            seed + (i as f64) * 4.0 + j as f64
        }))
    }

    fn sparse() -> Block {
        Block::Sparse(
            CsrBlock::from_triplets(3, 4, vec![(0, 0, 2.0), (1, 2, -3.0), (2, 3, 4.0)]).unwrap(),
        )
    }

    #[test]
    fn add_sub_dense() {
        let a = dense(1.0);
        let b = dense(10.0);
        let sum = ew(EwOp::Add, &a, &b).unwrap();
        let diff = ew(EwOp::Sub, &b, &a).unwrap();
        assert_eq!(sum.get(0, 0), 11.0);
        assert_eq!(diff.get(2, 3), 9.0);
    }

    #[test]
    fn hadamard_sparse_left_stays_sparse() {
        let s = sparse();
        let d = dense(1.0);
        let prod = ew(EwOp::Mul, &s, &d).unwrap();
        assert_eq!(prod.format(), BlockFormat::Sparse);
        assert_eq!(prod.get(1, 2), -3.0 * (1.0 + 4.0 + 2.0));
        assert_eq!(prod.get(0, 1), 0.0);
        assert_eq!(prod.nnz(), 3);
    }

    #[test]
    fn div_by_zero_is_zero() {
        let a = dense(1.0);
        let zero = Block::Dense(DenseBlock::zeros(3, 4));
        let q = ew(EwOp::Div, &a, &zero).unwrap();
        assert_eq!(q.nnz(), 0);
    }

    #[test]
    fn sparse_div_dense() {
        let s = sparse();
        let d = dense(1.0); // no zeros at the sparse positions
        let q = ew(EwOp::Div, &s, &d).unwrap();
        assert_eq!(q.format(), BlockFormat::Sparse);
        assert!((q.get(2, 3) - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = dense(0.0);
        let b = Block::Dense(DenseBlock::zeros(4, 3));
        assert!(ew(EwOp::Add, &a, &b).is_err());
    }

    #[test]
    fn map_preserves_sparsity_for_zero_fixed_functions() {
        let s = sparse();
        let doubled = map(&s, |v| 2.0 * v).unwrap();
        assert_eq!(doubled.format(), BlockFormat::Sparse);
        assert_eq!(doubled.get(0, 0), 4.0);
        // f(0) != 0 must densify.
        let shifted = map(&s, |v| v + 1.0).unwrap();
        assert_eq!(shifted.format(), BlockFormat::Dense);
        assert_eq!(shifted.get(0, 1), 1.0);
    }

    #[test]
    fn ew_op_apply_table() {
        assert_eq!(EwOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(EwOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(EwOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(EwOp::Div.apply(6.0, 3.0), 2.0);
        assert_eq!(EwOp::Div.apply(6.0, 0.0), 0.0);
    }
}
