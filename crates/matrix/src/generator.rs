//! Synthetic matrix generators.
//!
//! The paper generates "matrices that have randomly and uniformly distributed
//! non-zero elements as in SystemML" (§6.1). [`MatrixGenerator`] reproduces
//! that: dense blocks of uniform values, or sparse blocks whose non-zero
//! count per block is sampled to hit a target sparsity.

use crate::block::Block;
use crate::block_matrix::BlockMatrix;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::meta::MatrixMeta;
use crate::sparse::CsrBlock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic generator of synthetic block matrices.
#[derive(Debug, Clone)]
pub struct MatrixGenerator {
    seed: u64,
    /// Value range for generated non-zeros, `[lo, hi)`.
    value_range: (f64, f64),
}

impl Default for MatrixGenerator {
    fn default() -> Self {
        MatrixGenerator {
            seed: 42,
            value_range: (0.0, 1.0),
        }
    }
}

impl MatrixGenerator {
    /// Creates a generator with a fixed seed (same seed ⇒ same matrix).
    pub fn with_seed(seed: u64) -> Self {
        MatrixGenerator {
            seed,
            ..Default::default()
        }
    }

    /// Sets the non-zero value range (builder style).
    pub fn value_range(mut self, lo: f64, hi: f64) -> Self {
        self.value_range = (lo, hi);
        self
    }

    /// Generates a full [`BlockMatrix`] described by `meta`.
    ///
    /// Dense metas (`sparsity >= 0.4`) produce dense blocks (zero cells
    /// included at the requested rate); sparse metas produce CSR blocks.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidParameter`] when `meta.sparsity` is
    /// outside `[0, 1]`.
    pub fn generate(&self, meta: &MatrixMeta) -> Result<BlockMatrix> {
        if !(0.0..=1.0).contains(&meta.sparsity) {
            return Err(MatrixError::InvalidParameter(format!(
                "sparsity {} outside [0, 1]",
                meta.sparsity
            )));
        }
        let mut m = BlockMatrix::new(*meta);
        for bi in 0..meta.block_rows() {
            for bj in 0..meta.block_cols() {
                let block = self.generate_block(meta, bi, bj)?;
                m.put(bi, bj, block)?;
            }
        }
        Ok(m)
    }

    /// Generates the single block at grid position `(bi, bj)` of the matrix
    /// described by `meta`. Deterministic per (seed, bi, bj), so a
    /// distributed loader can materialize blocks independently on any node.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidParameter`] on a bad sparsity, or an
    /// internal error if the block coordinates are out of range.
    pub fn generate_block(&self, meta: &MatrixMeta, bi: u32, bj: u32) -> Result<Block> {
        if bi >= meta.block_rows() || bj >= meta.block_cols() {
            return Err(MatrixError::BlockOutOfBounds {
                id: (bi, bj),
                grid: (meta.block_rows(), meta.block_cols()),
            });
        }
        let (rows, cols) = meta.block_dims(bi, bj);
        let (rows, cols) = (rows as usize, cols as usize);
        let mut rng = self.block_rng(bi, bj);
        let (lo, hi) = self.value_range;

        if meta.is_dense_storage() {
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows * cols {
                if meta.sparsity >= 1.0 || rng.gen::<f64>() < meta.sparsity {
                    data.push(rng.gen_range(lo..hi));
                } else {
                    data.push(0.0);
                }
            }
            Ok(Block::Dense(DenseBlock::from_vec(rows, cols, data)?))
        } else {
            // Sample nnz ~ Binomial(cells, sparsity) approximated by its mean,
            // then draw that many distinct cells.
            let cells = rows * cols;
            let target = ((cells as f64) * meta.sparsity).round() as usize;
            let mut trips = Vec::with_capacity(target);
            let mut seen = std::collections::HashSet::with_capacity(target * 2);
            while trips.len() < target.min(cells) {
                let i = rng.gen_range(0..rows);
                let j = rng.gen_range(0..cols);
                if seen.insert((i, j)) {
                    let mut v = rng.gen_range(lo..hi);
                    if v == 0.0 {
                        v = (lo + hi) * 0.5 + 0.5;
                    }
                    trips.push((i, j, v));
                }
            }
            Ok(Block::Sparse(CsrBlock::from_triplets(rows, cols, trips)?))
        }
    }

    /// Per-block RNG: mixes seed with block coordinates (splitmix-style) so
    /// blocks are independent and order of generation is irrelevant.
    fn block_rng(&self, bi: u32, bj: u32) -> StdRng {
        let mut z = self
            .seed
            .wrapping_add((bi as u64) << 32 | bj as u64)
            .wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockFormat;

    #[test]
    fn dense_generation_matches_meta() {
        let meta = MatrixMeta::dense(250, 130).with_block_size(100);
        let m = MatrixGenerator::with_seed(7).generate(&meta).unwrap();
        assert_eq!(m.meta().block_rows(), 3);
        assert_eq!(m.meta().block_cols(), 2);
        let b = m.get(2, 1).unwrap();
        assert_eq!(b.rows(), 50);
        assert_eq!(b.cols(), 30);
        assert_eq!(b.format(), BlockFormat::Dense);
    }

    #[test]
    fn sparse_generation_hits_target_density() {
        let meta = MatrixMeta::sparse(400, 400, 0.01).with_block_size(200);
        let m = MatrixGenerator::with_seed(11).generate(&meta).unwrap();
        let total_nnz: usize = m.blocks().map(|(_, b)| b.nnz()).sum();
        let expect = (400.0f64 * 400.0 * 0.01) as usize;
        // Exact per construction (mean-count sampling per block).
        assert_eq!(total_nnz, expect);
        assert!(m.blocks().all(|(_, b)| b.format() == BlockFormat::Sparse));
    }

    #[test]
    fn deterministic_per_seed_and_block() {
        let meta = MatrixMeta::dense(128, 128).with_block_size(64);
        let g = MatrixGenerator::with_seed(99);
        let a = g.generate_block(&meta, 1, 1).unwrap();
        let b = g.generate_block(&meta, 1, 1).unwrap();
        assert_eq!(a, b);
        let other = g.generate_block(&meta, 0, 1).unwrap();
        assert_ne!(a, other);
        let g2 = MatrixGenerator::with_seed(100);
        assert_ne!(a, g2.generate_block(&meta, 1, 1).unwrap());
    }

    #[test]
    fn block_wise_generation_equals_full_generation() {
        let meta = MatrixMeta::sparse(90, 60, 0.1).with_block_size(30);
        let g = MatrixGenerator::with_seed(5);
        let full = g.generate(&meta).unwrap();
        for bi in 0..3 {
            for bj in 0..2 {
                let lone = g.generate_block(&meta, bi, bj).unwrap();
                assert_eq!(full.get(bi, bj).unwrap(), &lone);
            }
        }
    }

    #[test]
    fn invalid_sparsity_rejected() {
        let meta = MatrixMeta::sparse(10, 10, 1.5);
        assert!(MatrixGenerator::default().generate(&meta).is_err());
    }

    #[test]
    fn out_of_range_block_rejected() {
        let meta = MatrixMeta::dense(100, 100).with_block_size(100);
        let g = MatrixGenerator::default();
        assert!(g.generate_block(&meta, 1, 0).is_err());
    }

    #[test]
    fn value_range_respected() {
        let meta = MatrixMeta::dense(64, 64).with_block_size(64);
        let g = MatrixGenerator::with_seed(3).value_range(5.0, 6.0);
        let b = g.generate_block(&meta, 0, 0).unwrap();
        let d = b.to_dense();
        assert!(d.data().iter().all(|&v| (5.0..6.0).contains(&v)));
    }
}
