//! Dense block storage: a row-major buffer of `rows × cols` `f64`s, either
//! owned (`Vec<f64>`) or a zero-copy view into a shared wire buffer.

use crate::error::{MatrixError, Result};
use bytes::Bytes;

/// Backing storage of a dense block.
///
/// `Shared` aliases an 8-byte-aligned region of a reference-counted wire
/// buffer (the codec's `decode_view` path): the block's elements are the
/// received bytes themselves, never copied out of the frame. The `Bytes`
/// clone keeps the whole receive buffer alive for as long as the block is
/// resident; any mutation first materializes into `Owned` (copy-on-write),
/// so shared storage is observationally identical to owned storage.
#[derive(Debug, Clone)]
enum Storage {
    Owned(Vec<f64>),
    /// Invariants (checked at construction): the view's base address is
    /// 8-byte aligned and its length is exactly `rows * cols * 8` bytes.
    Shared(Bytes),
}

/// A dense matrix block in row-major order.
///
/// Blocks at the right/bottom edge of a matrix may be smaller than the
/// nominal block size, so `rows`/`cols` are stored per block.
#[derive(Debug, Clone)]
pub struct DenseBlock {
    rows: usize,
    cols: usize,
    data: Storage,
}

impl PartialEq for DenseBlock {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data() == other.data()
    }
}

impl DenseBlock {
    /// Creates a zero-filled block.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseBlock {
            rows,
            cols,
            data: Storage::Owned(vec![0.0; rows * cols]),
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidParameter`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidParameter(format!(
                "buffer of {} elements cannot back a {rows}x{cols} block",
                data.len()
            )));
        }
        Ok(DenseBlock {
            rows,
            cols,
            data: Storage::Owned(data),
        })
    }

    /// Wraps a shared byte buffer as the block's element storage without
    /// copying: the little-endian `f64` payload of a wire frame becomes the
    /// block's row-major data in place. Only valid on little-endian targets
    /// (the wire encoding there *is* the in-memory representation).
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidParameter`] when the view is not
    /// 8-byte aligned, its length is not exactly `rows * cols * 8`, or the
    /// target is big-endian — callers fall back to a copying decode.
    pub fn from_shared_bytes(rows: usize, cols: usize, bytes: Bytes) -> Result<Self> {
        if cfg!(not(target_endian = "little")) {
            return Err(MatrixError::InvalidParameter(
                "shared wire views require a little-endian target".into(),
            ));
        }
        let n = rows.checked_mul(cols).ok_or_else(|| {
            MatrixError::InvalidParameter(format!("{rows}x{cols} block overflows usize"))
        })?;
        if bytes.len() != n * 8 {
            return Err(MatrixError::InvalidParameter(format!(
                "view of {} bytes cannot back a {rows}x{cols} block",
                bytes.len()
            )));
        }
        if !(bytes.as_ref().as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>()) {
            return Err(MatrixError::InvalidParameter(
                "shared view is not 8-byte aligned".into(),
            ));
        }
        Ok(DenseBlock {
            rows,
            cols,
            data: Storage::Shared(bytes),
        })
    }

    /// Whether this block's storage is a zero-copy view into a shared wire
    /// buffer (diagnostics/tests; semantics are identical either way).
    pub fn is_shared(&self) -> bool {
        matches!(self.data, Storage::Shared(_))
    }

    /// Builds a block from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseBlock {
            rows,
            cols,
            data: Storage::Owned(data),
        }
    }

    /// An identity block (ones on the main diagonal).
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows in this block.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in this block.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major element buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        match &self.data {
            Storage::Owned(v) => v,
            // SAFETY: `from_shared_bytes` established that the view is
            // 8-byte aligned and exactly `rows * cols * 8` bytes long; the
            // bytes are immutable for the `Bytes` lifetime, every bit
            // pattern is a valid `f64`, and the returned slice borrows
            // `self`, which keeps the `Bytes` (and its Arc) alive.
            Storage::Shared(b) => unsafe {
                std::slice::from_raw_parts(b.as_ref().as_ptr().cast::<f64>(), b.len() / 8)
            },
        }
    }

    /// Mutable view of the row-major element buffer. A shared wire view is
    /// first materialized into owned storage (copy-on-write), so mutation
    /// never writes through a shared receive buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        if self.is_shared() {
            self.data = Storage::Owned(self.data().to_vec());
        }
        match &mut self.data {
            Storage::Owned(v) => v,
            Storage::Shared(_) => unreachable!("shared storage materialized above"),
        }
    }

    /// Consumes the block, returning its buffer (copying a shared view out).
    pub fn into_vec(self) -> Vec<f64> {
        match self.data {
            Storage::Owned(v) => v,
            Storage::Shared(_) => self.data().to_vec(),
        }
    }

    /// Element accessor (debug/tests; kernels index the raw slice).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data()[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        let cols = self.cols;
        self.data_mut()[i * cols + j] = v;
    }

    /// Number of stored elements (`rows × cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the block has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of non-zero elements (exact scan).
    pub fn nnz(&self) -> usize {
        self.data().iter().filter(|v| **v != 0.0).count()
    }

    /// In-memory footprint in bytes (element payload only).
    pub fn mem_bytes(&self) -> u64 {
        (self.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Returns the transposed block.
    pub fn transpose(&self) -> DenseBlock {
        let mut out = DenseBlock::zeros(self.cols, self.rows);
        let (rows, cols) = (self.rows, self.cols);
        let src = self.data();
        let dst = out.data_mut();
        // Tile the transpose to stay cache-friendly for 1000x1000 blocks.
        const TILE: usize = 32;
        for ib in (0..rows).step_by(TILE) {
            for jb in (0..cols).step_by(TILE) {
                let imax = (ib + TILE).min(rows);
                let jmax = (jb + TILE).min(cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        dst[j * rows + i] = src[i * cols + j];
                    }
                }
            }
        }
        out
    }

    /// `self += other`, element-wise.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &DenseBlock) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "add",
                lhs: (self.rows as u64, self.cols as u64),
                rhs: (other.rows as u64, other.cols as u64),
            });
        }
        for (a, b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in self.data_mut() {
            *v *= alpha;
        }
    }

    /// Maximum absolute element difference against `other`; `None` when
    /// shapes differ. Used by tests for approximate equality.
    pub fn max_abs_diff(&self, other: &DenseBlock) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data()
                .iter()
                .zip(other.data().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Frobenius norm of the block.
    pub fn frobenius_norm(&self) -> f64 {
        self.data().iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let b = DenseBlock::zeros(3, 5);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 5);
        assert_eq!(b.len(), 15);
        assert!(b.data().iter().all(|&v| v == 0.0));
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseBlock::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseBlock::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut b = DenseBlock::zeros(4, 4);
        b.set(2, 3, 7.5);
        assert_eq!(b.get(2, 3), 7.5);
        assert_eq!(b.nnz(), 1);
    }

    #[test]
    fn transpose_small() {
        let b = DenseBlock::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let t = b.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(b.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn transpose_involution_on_rectangular_block() {
        let b = DenseBlock::from_fn(67, 41, |i, j| (i as f64) * 0.5 - (j as f64) * 1.25);
        let tt = b.transpose().transpose();
        assert_eq!(b, tt);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = DenseBlock::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = DenseBlock::from_fn(2, 2, |_, _| 1.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 3.0);
        a.scale(2.0);
        assert_eq!(a.get(1, 1), 6.0);
    }

    #[test]
    fn add_assign_shape_mismatch_errors() {
        let mut a = DenseBlock::zeros(2, 2);
        let b = DenseBlock::zeros(2, 3);
        assert!(matches!(
            a.add_assign(&b),
            Err(MatrixError::DimensionMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn identity_matmul_property_via_get() {
        let id = DenseBlock::identity(5);
        assert_eq!(id.nnz(), 5);
        assert_eq!(id.get(3, 3), 1.0);
        assert_eq!(id.get(3, 2), 0.0);
    }

    /// An 8-byte-aligned `Bytes` view carrying `vals` little-endian.
    fn aligned_bytes(vals: &[f64]) -> Bytes {
        let mut raw = vec![0u8; vals.len() * 8 + 8];
        let off = (8 - raw.as_ptr() as usize % 8) % 8;
        for (i, v) in vals.iter().enumerate() {
            raw[off + i * 8..off + (i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        Bytes::from(raw).slice(off..off + vals.len() * 8)
    }

    #[test]
    fn shared_view_reads_like_owned_storage() {
        let vals = [1.5, -2.0, 0.0, 9.25, 4.0, -0.5];
        let shared = DenseBlock::from_shared_bytes(2, 3, aligned_bytes(&vals)).unwrap();
        assert!(shared.is_shared());
        let owned = DenseBlock::from_vec(2, 3, vals.to_vec()).unwrap();
        assert!(!owned.is_shared());
        assert_eq!(shared, owned);
        assert_eq!(shared.data(), owned.data());
        assert_eq!(shared.get(1, 0), 9.25);
        assert_eq!(shared.mem_bytes(), 48);
        assert_eq!(shared.transpose(), owned.transpose());
        assert_eq!(shared.clone().into_vec(), vals.to_vec());
    }

    #[test]
    fn mutating_a_shared_view_copies_on_write() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let bytes = aligned_bytes(&vals);
        let mut block = DenseBlock::from_shared_bytes(2, 2, bytes.clone()).unwrap();
        let twin = DenseBlock::from_shared_bytes(2, 2, bytes).unwrap();
        block.set(0, 0, 99.0);
        assert!(!block.is_shared(), "mutation materializes owned storage");
        assert_eq!(block.get(0, 0), 99.0);
        // The shared buffer itself is untouched: the twin still reads 1.0.
        assert!(twin.is_shared());
        assert_eq!(twin.get(0, 0), 1.0);
    }

    #[test]
    fn misaligned_or_missized_views_are_rejected() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let aligned = aligned_bytes(&vals);
        // Wrong length for the shape.
        assert!(DenseBlock::from_shared_bytes(3, 2, aligned.clone()).is_err());
        // Knock the view off 8-byte alignment by one byte.
        let mut raw = vec![0u8; vals.len() * 8 + 9];
        let off = (8 - raw.as_ptr() as usize % 8) % 8 + 1;
        for (i, v) in vals.iter().enumerate() {
            raw[off + i * 8..off + (i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        let misaligned = Bytes::from(raw).slice(off..off + vals.len() * 8);
        assert!(DenseBlock::from_shared_bytes(2, 2, misaligned).is_err());
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let b = DenseBlock::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((b.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch_and_values() {
        let a = DenseBlock::zeros(2, 2);
        let b = DenseBlock::zeros(3, 2);
        assert!(a.max_abs_diff(&b).is_none());
        let mut c = DenseBlock::zeros(2, 2);
        c.set(0, 1, 0.25);
        assert_eq!(a.max_abs_diff(&c), Some(0.25));
    }
}
