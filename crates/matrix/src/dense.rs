//! Dense block storage: a row-major `Vec<f64>` of `rows × cols` elements.

use crate::error::{MatrixError, Result};

/// A dense matrix block in row-major order.
///
/// Blocks at the right/bottom edge of a matrix may be smaller than the
/// nominal block size, so `rows`/`cols` are stored per block.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseBlock {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseBlock {
    /// Creates a zero-filled block.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseBlock {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidParameter`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidParameter(format!(
                "buffer of {} elements cannot back a {rows}x{cols} block",
                data.len()
            )));
        }
        Ok(DenseBlock { rows, cols, data })
    }

    /// Builds a block from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseBlock { rows, cols, data }
    }

    /// An identity block (ones on the main diagonal).
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows in this block.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in this block.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major element buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major element buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the block, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor (debug/tests; kernels index the raw slice).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Number of stored elements (`rows × cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the block has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of non-zero elements (exact scan).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// In-memory footprint in bytes (element payload only).
    pub fn mem_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Returns the transposed block.
    pub fn transpose(&self) -> DenseBlock {
        let mut out = DenseBlock::zeros(self.cols, self.rows);
        // Tile the transpose to stay cache-friendly for 1000x1000 blocks.
        const TILE: usize = 32;
        for ib in (0..self.rows).step_by(TILE) {
            for jb in (0..self.cols).step_by(TILE) {
                let imax = (ib + TILE).min(self.rows);
                let jmax = (jb + TILE).min(self.cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// `self += other`, element-wise.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &DenseBlock) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "add",
                lhs: (self.rows as u64, self.cols as u64),
                rhs: (other.rows as u64, other.cols as u64),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Maximum absolute element difference against `other`; `None` when
    /// shapes differ. Used by tests for approximate equality.
    pub fn max_abs_diff(&self, other: &DenseBlock) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Frobenius norm of the block.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let b = DenseBlock::zeros(3, 5);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 5);
        assert_eq!(b.len(), 15);
        assert!(b.data().iter().all(|&v| v == 0.0));
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseBlock::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseBlock::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut b = DenseBlock::zeros(4, 4);
        b.set(2, 3, 7.5);
        assert_eq!(b.get(2, 3), 7.5);
        assert_eq!(b.nnz(), 1);
    }

    #[test]
    fn transpose_small() {
        let b = DenseBlock::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let t = b.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(b.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn transpose_involution_on_rectangular_block() {
        let b = DenseBlock::from_fn(67, 41, |i, j| (i as f64) * 0.5 - (j as f64) * 1.25);
        let tt = b.transpose().transpose();
        assert_eq!(b, tt);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = DenseBlock::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = DenseBlock::from_fn(2, 2, |_, _| 1.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 3.0);
        a.scale(2.0);
        assert_eq!(a.get(1, 1), 6.0);
    }

    #[test]
    fn add_assign_shape_mismatch_errors() {
        let mut a = DenseBlock::zeros(2, 2);
        let b = DenseBlock::zeros(2, 3);
        assert!(matches!(
            a.add_assign(&b),
            Err(MatrixError::DimensionMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn identity_matmul_property_via_get() {
        let id = DenseBlock::identity(5);
        assert_eq!(id.nnz(), 5);
        assert_eq!(id.get(3, 3), 1.0);
        assert_eq!(id.get(3, 2), 0.0);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let b = DenseBlock::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((b.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch_and_values() {
        let a = DenseBlock::zeros(2, 2);
        let b = DenseBlock::zeros(3, 2);
        assert!(a.max_abs_diff(&b).is_none());
        let mut c = DenseBlock::zeros(2, 2);
        c.set(0, 1, 0.25);
        assert_eq!(a.max_abs_diff(&c), Some(0.25));
    }
}
