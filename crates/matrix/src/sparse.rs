//! Sparse block storage in Compressed Sparse Row (CSR) format.
//!
//! CSR is the format the paper's systems use for sparse blocks (§2.1) and the
//! input format of `cusparseDcsrmm`, the sparse kernel DistME calls on the
//! GPU (§4.4).

use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};

/// A sparse matrix block in CSR format.
///
/// Invariants (checked by [`CsrBlock::validate`], enforced by constructors):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_idx.len() == values.len()`;
/// * `row_ptr` is non-decreasing;
/// * within each row, column indices are strictly increasing and `< cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrBlock {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrBlock {
    /// An empty (all-zero) sparse block.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrBlock {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR block from `(row, col, value)` triplets.
    ///
    /// Triplets may be unordered; duplicates are summed (the usual COO→CSR
    /// semantics). Explicit zeros are dropped.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidSparseStructure`] when an index is out of
    /// range.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        let mut items: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &items {
            if r >= rows || c >= cols {
                return Err(MatrixError::InvalidSparseStructure(format!(
                    "triplet ({r}, {c}) outside {rows}x{cols} block"
                )));
            }
        }
        items.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates (sum), dropping explicit/cancelled zeros below.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(items.len());
        for (r, c, v) in items {
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }

        let mut row_ptr = vec![0u32; rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(merged.len());
        let mut values: Vec<f64> = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            if v == 0.0 {
                continue;
            }
            col_idx.push(c as u32);
            values.push(v);
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let out = CsrBlock {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        out.validate()?;
        Ok(out)
    }

    /// Builds a CSR block from raw parts, validating the structure.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidSparseStructure`] when the CSR invariants
    /// do not hold.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let b = CsrBlock {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        b.validate()?;
        Ok(b)
    }

    /// Converts a dense block to CSR, dropping zeros.
    pub fn from_dense(d: &DenseBlock) -> Self {
        let rows = d.rows();
        let cols = d.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        let data = d.data();
        for i in 0..rows {
            for j in 0..cols {
                let v = data[i * cols + j];
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrBlock {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts to a dense block.
    pub fn to_dense(&self) -> DenseBlock {
        let mut d = DenseBlock::zeros(self.rows, self.cols);
        let out = d.data_mut();
        for i in 0..self.rows {
            let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            for k in s..e {
                out[i * self.cols + self.col_idx[k] as usize] = self.values[k];
            }
        }
        d
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row-pointer array (`rows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column indices, row-major within rows.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Non-zero values, parallel to [`Self::col_idx`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(row, col, value)` of stored non-zeros.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            (s..e).map(move |k| (i, self.col_idx[k] as usize, self.values[k]))
        })
    }

    /// In-memory footprint in bytes (values + indices + row pointers).
    pub fn mem_bytes(&self) -> u64 {
        (self.values.len() * 8 + self.col_idx.len() * 4 + self.row_ptr.len() * 4) as u64
    }

    /// Fraction of non-zero elements, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Returns the transpose (CSR of the transposed matrix), built with a
    /// counting pass — O(nnz + rows + cols).
    pub fn transpose(&self) -> CsrBlock {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut cursor = counts;
        let nnz = self.nnz();
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        for (i, j, v) in self.iter() {
            let pos = cursor[j] as usize;
            col_idx[pos] = i as u32;
            values[pos] = v;
            cursor[j] += 1;
        }
        CsrBlock {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Checks the CSR invariants.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidSparseStructure`] describing the first
    /// violated invariant.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(MatrixError::InvalidSparseStructure(format!(
                "row_ptr has {} entries, expected {}",
                self.row_ptr.len(),
                self.rows + 1
            )));
        }
        if self.row_ptr[0] != 0 {
            return Err(MatrixError::InvalidSparseStructure(
                "row_ptr[0] must be 0".into(),
            ));
        }
        if *self.row_ptr.last().unwrap() as usize != self.values.len()
            || self.col_idx.len() != self.values.len()
        {
            return Err(MatrixError::InvalidSparseStructure(
                "row_ptr tail, col_idx and values lengths disagree".into(),
            ));
        }
        for w in self.row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(MatrixError::InvalidSparseStructure(
                    "row_ptr must be non-decreasing".into(),
                ));
            }
        }
        for i in 0..self.rows {
            let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            let mut prev: Option<u32> = None;
            for k in s..e {
                let c = self.col_idx[k];
                if c as usize >= self.cols {
                    return Err(MatrixError::InvalidSparseStructure(format!(
                        "column index {c} out of range in row {i}"
                    )));
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(MatrixError::InvalidSparseStructure(format!(
                            "column indices not strictly increasing in row {i}"
                        )));
                    }
                }
                prev = Some(c);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrBlock {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrBlock::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_builds_valid_csr() {
        let b = sample();
        assert_eq!(b.nnz(), 4);
        assert_eq!(b.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(b.col_idx(), &[0, 2, 0, 1]);
        b.validate().unwrap();
    }

    #[test]
    fn from_triplets_rejects_out_of_range() {
        assert!(CsrBlock::from_triplets(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(CsrBlock::from_triplets(2, 2, vec![(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn from_triplets_merges_duplicates() {
        let b = CsrBlock::from_triplets(2, 2, vec![(0, 0, 1.5), (0, 0, 2.5)]).unwrap();
        assert_eq!(b.nnz(), 1);
        assert_eq!(b.values(), &[4.0]);
    }

    #[test]
    fn from_triplets_drops_explicit_and_cancelled_zeros() {
        let b =
            CsrBlock::from_triplets(2, 2, vec![(0, 1, 0.0), (1, 1, 3.0), (1, 1, -3.0)]).unwrap();
        assert_eq!(b.nnz(), 0);
        b.validate().unwrap();
    }

    #[test]
    fn dense_roundtrip() {
        let b = sample();
        let d = b.to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(d.get(2, 1), 4.0);
        let b2 = CsrBlock::from_dense(&d);
        assert_eq!(b, b2);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let b = sample();
        let t = b.transpose();
        t.validate().unwrap();
        assert_eq!(t.to_dense(), b.to_dense().transpose());
    }

    #[test]
    fn transpose_involution() {
        let b = sample();
        assert_eq!(b.transpose().transpose(), b);
    }

    #[test]
    fn density_and_mem_bytes() {
        let b = sample();
        assert!((b.density() - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(b.mem_bytes(), 4 * 8 + 4 * 4 + 4 * 4);
    }

    #[test]
    fn validate_rejects_corrupt_structures() {
        // Non-monotone row_ptr.
        assert!(CsrBlock::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // Column out of range.
        assert!(CsrBlock::from_raw_parts(1, 2, vec![0, 1], vec![7], vec![1.0]).is_err());
        // Unsorted columns within a row.
        assert!(CsrBlock::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // Length disagreement.
        assert!(CsrBlock::from_raw_parts(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn empty_block_is_valid() {
        let b = CsrBlock::empty(4, 7);
        b.validate().unwrap();
        assert_eq!(b.nnz(), 0);
        assert_eq!(b.density(), 0.0);
    }

    #[test]
    fn iter_yields_sorted_triplets() {
        let b = sample();
        let got: Vec<_> = b.iter().collect();
        assert_eq!(
            got,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }
}
