//! Error types for the matrix substrate.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors raised by matrix construction, kernels, and the block codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Short name of the operation ("gemm", "add", ...).
        op: &'static str,
        /// Left operand shape (rows, cols).
        lhs: (u64, u64),
        /// Right operand shape (rows, cols).
        rhs: (u64, u64),
    },
    /// A block index is outside the matrix's block grid.
    BlockOutOfBounds {
        /// Offending block coordinates.
        id: (u32, u32),
        /// Grid dimensions in blocks.
        grid: (u32, u32),
    },
    /// CSR structure is internally inconsistent (row pointers not
    /// monotone, column index out of range, ...).
    InvalidSparseStructure(String),
    /// The codec encountered a malformed byte stream.
    Codec(String),
    /// A parameter is outside its legal range (e.g. sparsity not in [0, 1]).
    InvalidParameter(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::BlockOutOfBounds { id, grid } => write!(
                f,
                "block ({}, {}) outside grid of {}x{} blocks",
                id.0, id.1, grid.0, grid.1
            ),
            MatrixError::InvalidSparseStructure(msg) => {
                write!(f, "invalid sparse structure: {msg}")
            }
            MatrixError::Codec(msg) => write!(f, "codec error: {msg}"),
            MatrixError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        let e = MatrixError::DimensionMismatch {
            op: "gemm",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in gemm: lhs is 3x4, rhs is 5x6"
        );
        let e = MatrixError::BlockOutOfBounds {
            id: (9, 9),
            grid: (4, 4),
        };
        assert!(e.to_string().contains("outside grid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatrixError>();
    }
}
