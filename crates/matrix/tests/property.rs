//! Property-based tests over the matrix substrate: structural invariants
//! and algebraic laws that must hold for arbitrary inputs.

use distme_matrix::elementwise::{ew, EwOp};
use distme_matrix::kernels;
use distme_matrix::{
    codec, Block, BlockMatrix, CscBlock, CsrBlock, DenseBlock, MatrixGenerator, MatrixMeta,
};
use proptest::prelude::*;

/// Strategy: an arbitrary dense block up to 24 x 24.
fn dense_block() -> impl Strategy<Value = DenseBlock> {
    (1usize..24, 1usize..24, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut state = seed | 1;
        DenseBlock::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 2000) as f64 / 100.0 - 10.0
        })
    })
}

/// Strategy: an arbitrary sparse block up to 24 x 24.
fn sparse_block() -> impl Strategy<Value = CsrBlock> {
    (1usize..24, 1usize..24, any::<u64>(), 1usize..6).prop_map(|(r, c, seed, every)| {
        let mut state = seed | 1;
        let mut trips = Vec::new();
        for i in 0..r {
            for j in 0..c {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                if ((state >> 33) as usize).is_multiple_of(every) {
                    trips.push((i, j, ((state >> 40) % 19) as f64 - 9.0));
                }
            }
        }
        CsrBlock::from_triplets(r, c, trips).expect("valid triplets")
    })
}

proptest! {
    #[test]
    fn codec_roundtrips_dense(b in dense_block()) {
        let block = Block::Dense(b);
        let bytes = codec::encode(&block);
        prop_assert_eq!(bytes.len() as u64, codec::encoded_len(&block));
        let back = codec::decode(bytes).expect("decodes");
        prop_assert_eq!(block, back);
    }

    #[test]
    fn codec_roundtrips_sparse(s in sparse_block()) {
        let block = Block::Sparse(s);
        let bytes = codec::encode(&block);
        prop_assert_eq!(bytes.len() as u64, codec::encoded_len(&block));
        let back = codec::decode(bytes).expect("decodes");
        prop_assert_eq!(block, back);
    }

    #[test]
    fn codec_never_panics_on_truncation(s in sparse_block(), cut in 0usize..64) {
        let bytes = codec::encode(&Block::Sparse(s));
        let cut = cut.min(bytes.len().saturating_sub(1));
        // Truncated input must error, never panic.
        prop_assert!(codec::decode(bytes.slice(0..cut)).is_err());
    }

    #[test]
    fn csr_dense_csr_roundtrip(s in sparse_block()) {
        let back = CsrBlock::from_dense(&s.to_dense());
        prop_assert_eq!(s, back);
    }

    #[test]
    fn csc_is_a_faithful_dual(s in sparse_block()) {
        let csc = CscBlock::from_csr(&s);
        csc.validate().expect("valid CSC");
        prop_assert_eq!(csc.nnz(), s.nnz());
        prop_assert_eq!(csc.to_dense(), s.to_dense());
        prop_assert_eq!(csc.to_csr(), s);
    }

    #[test]
    fn transpose_is_an_involution(s in sparse_block(), d in dense_block()) {
        prop_assert_eq!(s.transpose().transpose(), s);
        prop_assert_eq!(d.transpose().transpose(), d);
    }

    #[test]
    fn sparse_and_dense_kernels_agree(a in sparse_block(), d in dense_block()) {
        // Make shapes compatible: use a x a_dense where inner dims match.
        let b = DenseBlock::from_fn(a.cols(), d.rows().min(8), |i, j| {
            ((i * 7 + j * 3) % 11) as f64 - 5.0
        });
        let via_sparse = kernels::multiply(&Block::Sparse(a.clone()), &Block::Dense(b.clone()))
            .expect("multiplies");
        let via_dense = kernels::multiply(
            &Block::Dense(a.to_dense()),
            &Block::Dense(b),
        ).expect("multiplies");
        let diff = via_sparse.max_abs_diff(&via_dense).expect("same shape");
        prop_assert!(diff < 1e-9);
    }

    #[test]
    fn elementwise_mul_commutes_on_values(a in dense_block()) {
        let b = DenseBlock::from_fn(a.rows(), a.cols(), |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let ab = ew(EwOp::Mul, &Block::Dense(a.clone()), &Block::Dense(b.clone())).expect("ew");
        let ba = ew(EwOp::Mul, &Block::Dense(b), &Block::Dense(a)).expect("ew");
        prop_assert!(ab.max_abs_diff(&ba).expect("same shape") < 1e-12);
    }

    #[test]
    fn matmul_is_associative(
        dims in (1u64..4, 1u64..4, 1u64..4, 1u64..4),
        seed in 0u64..10_000,
    ) {
        let bs = 8u64;
        let (i, k, l, j) = dims;
        let gen = |rows: u64, cols: u64, s: u64| {
            MatrixGenerator::with_seed(s)
                .value_range(-1.0, 1.0)
                .generate(&MatrixMeta::dense(rows * bs, cols * bs).with_block_size(bs))
                .expect("generates")
        };
        let a = gen(i, k, seed);
        let b = gen(k, l, seed ^ 1);
        let c = gen(l, j, seed ^ 2);
        let left = a.multiply(&b).expect("ab").multiply(&c).expect("(ab)c");
        let right = a.multiply(&b.multiply(&c).expect("bc")).expect("a(bc)");
        prop_assert!(left.max_abs_diff(&right).expect("same shape") < 1e-7);
    }

    #[test]
    fn distribution_law_holds(seed in 0u64..10_000) {
        // A (B + C) == A B + A C over block matrices.
        let bs = 8u64;
        let meta_a = MatrixMeta::dense(2 * bs, 3 * bs).with_block_size(bs);
        let meta_bc = MatrixMeta::dense(3 * bs, 2 * bs).with_block_size(bs);
        let a = MatrixGenerator::with_seed(seed).generate(&meta_a).expect("a");
        let b = MatrixGenerator::with_seed(seed ^ 5).generate(&meta_bc).expect("b");
        let c = MatrixGenerator::with_seed(seed ^ 9).generate(&meta_bc).expect("c");
        let lhs = a
            .multiply(&b.elementwise(EwOp::Add, &c).expect("b+c"))
            .expect("a(b+c)");
        let rhs = a
            .multiply(&b)
            .expect("ab")
            .elementwise(EwOp::Add, &a.multiply(&c).expect("ac"))
            .expect("ab+ac");
        prop_assert!(lhs.max_abs_diff(&rhs).expect("same shape") < 1e-8);
    }

    #[test]
    fn row_sums_match_ones_product(seed in 0u64..10_000, sparsity in 0.05f64..1.0) {
        // row_sums(A) == A · 1.
        let bs = 8u64;
        let meta = MatrixMeta::sparse(3 * bs, 2 * bs, sparsity).with_block_size(bs);
        let a = MatrixGenerator::with_seed(seed).generate(&meta).expect("a");
        let ones_meta = MatrixMeta::dense(2 * bs, 1).with_block_size(bs);
        let mut ones = BlockMatrix::new(ones_meta);
        for bi in 0..ones_meta.block_rows() {
            let (r, c) = ones_meta.block_dims(bi, 0);
            ones.put(bi, 0, Block::Dense(DenseBlock::from_fn(r as usize, c as usize, |_, _| 1.0)))
                .expect("in grid");
        }
        let product = a.multiply(&ones).expect("a*1");
        let sums = a.row_sums();
        for (idx, s) in sums.iter().enumerate() {
            prop_assert!((s - product.get_element(idx as u64, 0)).abs() < 1e-9);
        }
    }
}
