//! Property-based tests over the matrix substrate: structural invariants
//! and algebraic laws that must hold for arbitrary inputs.

use distme_matrix::elementwise::{ew, EwOp};
use distme_matrix::kernels;
use distme_matrix::kernels::gemm::{gemm, gemm_tn};
use distme_matrix::kernels::{spgemm, spmm};
use distme_matrix::{
    codec, Block, BlockMatrix, CscBlock, CsrBlock, DenseBlock, MatrixGenerator, MatrixMeta,
};
use proptest::prelude::*;

/// Strategy: an arbitrary dense block up to 24 x 24.
fn dense_block() -> impl Strategy<Value = DenseBlock> {
    (1usize..24, 1usize..24, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut state = seed | 1;
        DenseBlock::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 2000) as f64 / 100.0 - 10.0
        })
    })
}

/// Strategy: an arbitrary sparse block up to 24 x 24.
fn sparse_block() -> impl Strategy<Value = CsrBlock> {
    (1usize..24, 1usize..24, any::<u64>(), 1usize..6).prop_map(|(r, c, seed, every)| {
        let mut state = seed | 1;
        let mut trips = Vec::new();
        for i in 0..r {
            for j in 0..c {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                if ((state >> 33) as usize).is_multiple_of(every) {
                    trips.push((i, j, ((state >> 40) % 19) as f64 - 9.0));
                }
            }
        }
        CsrBlock::from_triplets(r, c, trips).expect("valid triplets")
    })
}

/// Seeded dense block of an exact shape (for dimension-matched operands).
fn seeded_dense(rows: usize, cols: usize, seed: u64) -> DenseBlock {
    let mut state = seed | 1;
    DenseBlock::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % 2000) as f64 / 100.0 - 10.0
    })
}

/// Seeded sparse block of an exact shape; `every == 0` yields an empty
/// (all-implicit-zero) block.
fn seeded_sparse(rows: usize, cols: usize, every: usize, seed: u64) -> CsrBlock {
    if every == 0 {
        return CsrBlock::empty(rows, cols);
    }
    let mut state = seed | 1;
    let mut trips = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            if ((state >> 33) as usize).is_multiple_of(every) {
                trips.push((i, j, ((state >> 40) % 19) as f64 - 9.0));
            }
        }
    }
    CsrBlock::from_triplets(rows, cols, trips).expect("valid triplets")
}

/// Strategy: GEMM shapes that stress the packed kernel's blocking edges —
/// dot products (1 × k × 1), tall/skinny and short/wide panels crossing the
/// MC = 128 cache block, deep k crossing the KC = 256 panel depth, and
/// general small shapes exercising the MR × NR = 8 × 4 edge masks.
fn gemm_shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    prop_oneof![
        (Just(1usize), 1usize..500, Just(1usize)),
        (90usize..300, 1usize..6, 1usize..6),
        (1usize..6, 1usize..6, 90usize..300),
        (1usize..10, 200usize..300, 1usize..10),
        (1usize..40, 1usize..40, 1usize..40),
    ]
}

/// Strategy: alpha/beta including the identity and annihilator special
/// cases alongside arbitrary scalars.
fn scalar() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), Just(-1.0), -2.5f64..2.5]
}

/// Triple-loop reference for `alpha * a * b + beta * c0`.
fn naive_gemm(
    alpha: f64,
    a: &DenseBlock,
    b: &DenseBlock,
    beta: f64,
    c0: &DenseBlock,
) -> DenseBlock {
    DenseBlock::from_fn(c0.rows(), c0.cols(), |i, j| {
        let mut acc = 0.0;
        for p in 0..a.cols() {
            acc += a.get(i, p) * b.get(p, j);
        }
        alpha * acc + beta * c0.get(i, j)
    })
}

proptest! {
    #[test]
    fn packed_gemm_matches_naive(
        shape in gemm_shapes(),
        alpha in scalar(),
        beta in scalar(),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = shape;
        let a = seeded_dense(m, k, seed);
        let b = seeded_dense(k, n, seed ^ 0xb10c);
        let c0 = seeded_dense(m, n, seed ^ 0xacc);
        let mut c = c0.clone();
        gemm(alpha, &a, &b, beta, &mut c).expect("shapes match");
        let expect = naive_gemm(alpha, &a, &b, beta, &c0);
        // |values| <= 10, so a k-deep dot is <= 100k; 1e-6 absolute leaves
        // ample room for reassociation error at k = 500.
        prop_assert!(c.max_abs_diff(&expect).expect("same shape") < 1e-6);
    }

    #[test]
    fn packed_gemm_tn_matches_naive(
        shape in gemm_shapes(),
        alpha in scalar(),
        beta in scalar(),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = shape;
        // `a` is stored k × m; gemm_tn multiplies by its transpose.
        let a = seeded_dense(k, m, seed);
        let b = seeded_dense(k, n, seed ^ 0xb10c);
        let c0 = seeded_dense(m, n, seed ^ 0xacc);
        let mut c = c0.clone();
        gemm_tn(alpha, &a, &b, beta, &mut c).expect("shapes match");
        let at = a.transpose();
        let expect = naive_gemm(alpha, &at, &b, beta, &c0);
        prop_assert!(c.max_abs_diff(&expect).expect("same shape") < 1e-6);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(len in 0usize..512, seed in any::<u64>()) {
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                (state >> 33) as u8
            })
            .collect();
        // Arbitrary garbage must produce Ok or Err, never a panic.
        let _ = codec::decode_slice(&bytes);
    }

    #[test]
    fn decode_never_panics_on_corrupted_encodings(
        s in sparse_block(),
        pos in any::<usize>(),
        bit in 0u32..8,
    ) {
        let bytes = codec::encode(&Block::Sparse(s));
        let mut v = bytes.to_vec();
        let i = pos % v.len();
        v[i] ^= 1 << bit;
        // A single flipped bit may still decode (value bytes) or must
        // error cleanly (structure bytes) — never panic.
        let _ = codec::decode_slice(&v);
    }

    #[test]
    fn spmm_matches_dense_reference(
        dims in (1usize..24, 1usize..24, 1usize..17),
        every in 0usize..6,
        zero_dense in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a = seeded_sparse(m, k, every, seed);
        let b = if zero_dense {
            DenseBlock::zeros(k, n)
        } else {
            seeded_dense(k, n, seed ^ 0xd)
        };
        let expect = naive_gemm(1.0, &a.to_dense(), &b, 0.0, &DenseBlock::zeros(m, n));
        let csr_d = spmm::csr_dense(&a, &b).expect("shapes match");
        prop_assert!(csr_d.max_abs_diff(&expect).expect("same shape") < 1e-9);
        // dense · csr with the same operands, transposed roles.
        let d = if zero_dense {
            DenseBlock::zeros(n, m)
        } else {
            seeded_dense(n, m, seed ^ 0xe)
        };
        let expect2 = naive_gemm(1.0, &d, &a.to_dense(), 0.0, &DenseBlock::zeros(n, k));
        let d_csr = spmm::dense_csr(&d, &a).expect("shapes match");
        prop_assert!(d_csr.max_abs_diff(&expect2).expect("same shape") < 1e-9);
    }

    #[test]
    fn spgemm_matches_dense_reference(
        dims in (1usize..24, 1usize..24, 1usize..24),
        density in (0usize..6, 0usize..6),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a = seeded_sparse(m, k, density.0, seed);
        let b = seeded_sparse(k, n, density.1, seed ^ 0x5e);
        let c = spgemm::csr_csr(&a, &b).expect("shapes match");
        c.validate().expect("valid CSR output");
        let expect = naive_gemm(
            1.0,
            &a.to_dense(),
            &b.to_dense(),
            0.0,
            &DenseBlock::zeros(m, n),
        );
        prop_assert!(c.to_dense().max_abs_diff(&expect).expect("same shape") < 1e-9);
    }
}

proptest! {
    #[test]
    fn codec_roundtrips_dense(b in dense_block()) {
        let block = Block::Dense(b);
        let bytes = codec::encode(&block);
        prop_assert_eq!(bytes.len() as u64, codec::encoded_len(&block));
        let back = codec::decode(bytes).expect("decodes");
        prop_assert_eq!(block, back);
    }

    #[test]
    fn codec_roundtrips_sparse(s in sparse_block()) {
        let block = Block::Sparse(s);
        let bytes = codec::encode(&block);
        prop_assert_eq!(bytes.len() as u64, codec::encoded_len(&block));
        let back = codec::decode(bytes).expect("decodes");
        prop_assert_eq!(block, back);
    }

    #[test]
    fn codec_never_panics_on_truncation(s in sparse_block(), cut in 0usize..64) {
        let bytes = codec::encode(&Block::Sparse(s));
        let cut = cut.min(bytes.len().saturating_sub(1));
        // Truncated input must error, never panic.
        prop_assert!(codec::decode(bytes.slice(0..cut)).is_err());
    }

    #[test]
    fn every_crc_tier_agrees_on_random_large_buffers(len in 0usize..65536, seed in any::<u64>()) {
        // The dispatch tiers (bytewise / slicing-by-8 / PCLMUL folding)
        // must compute the identical IEEE CRC-32 on arbitrary inputs well
        // past every fold threshold — a SIMD divergence here would make
        // wire frames machine-dependent.
        let mut state = seed | 1;
        let data: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let reference = codec::crc32_with_tier(codec::CrcTier::Bytewise, &data).expect("bytewise");
        prop_assert_eq!(codec::crc32(&data), reference);
        for tier in codec::CrcTier::ALL {
            match codec::crc32_with_tier(tier, &data) {
                Some(crc) => prop_assert_eq!(crc, reference, "{} diverged", tier.name()),
                None => prop_assert!(!tier.available()),
            }
        }
    }

    #[test]
    fn decode_view_agrees_with_decode_slice(b in dense_block(), shift in 0usize..8) {
        // However the frame lands in memory, the zero-copy view decode and
        // the materializing decode must produce equal blocks.
        let block = Block::Dense(b);
        let plain = codec::encode(&block);
        let mut host = vec![0u8; shift];
        host.extend_from_slice(plain.as_ref());
        let wire = bytes::Bytes::from(host);
        let frame = wire.slice(shift..wire.len());
        let viewed = codec::decode_view(&frame).expect("view decodes");
        let copied = codec::decode_slice(frame.as_ref()).expect("slice decodes");
        prop_assert_eq!(&viewed, &copied);
        prop_assert_eq!(viewed, block);
    }

    #[test]
    fn csr_dense_csr_roundtrip(s in sparse_block()) {
        let back = CsrBlock::from_dense(&s.to_dense());
        prop_assert_eq!(s, back);
    }

    #[test]
    fn csc_is_a_faithful_dual(s in sparse_block()) {
        let csc = CscBlock::from_csr(&s);
        csc.validate().expect("valid CSC");
        prop_assert_eq!(csc.nnz(), s.nnz());
        prop_assert_eq!(csc.to_dense(), s.to_dense());
        prop_assert_eq!(csc.to_csr(), s);
    }

    #[test]
    fn transpose_is_an_involution(s in sparse_block(), d in dense_block()) {
        prop_assert_eq!(s.transpose().transpose(), s);
        prop_assert_eq!(d.transpose().transpose(), d);
    }

    #[test]
    fn sparse_and_dense_kernels_agree(a in sparse_block(), d in dense_block()) {
        // Make shapes compatible: use a x a_dense where inner dims match.
        let b = DenseBlock::from_fn(a.cols(), d.rows().min(8), |i, j| {
            ((i * 7 + j * 3) % 11) as f64 - 5.0
        });
        let via_sparse = kernels::multiply(&Block::Sparse(a.clone()), &Block::Dense(b.clone()))
            .expect("multiplies");
        let via_dense = kernels::multiply(
            &Block::Dense(a.to_dense()),
            &Block::Dense(b),
        ).expect("multiplies");
        let diff = via_sparse.max_abs_diff(&via_dense).expect("same shape");
        prop_assert!(diff < 1e-9);
    }

    #[test]
    fn elementwise_mul_commutes_on_values(a in dense_block()) {
        let b = DenseBlock::from_fn(a.rows(), a.cols(), |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let ab = ew(EwOp::Mul, &Block::Dense(a.clone()), &Block::Dense(b.clone())).expect("ew");
        let ba = ew(EwOp::Mul, &Block::Dense(b), &Block::Dense(a)).expect("ew");
        prop_assert!(ab.max_abs_diff(&ba).expect("same shape") < 1e-12);
    }

    #[test]
    fn matmul_is_associative(
        dims in (1u64..4, 1u64..4, 1u64..4, 1u64..4),
        seed in 0u64..10_000,
    ) {
        let bs = 8u64;
        let (i, k, l, j) = dims;
        let gen = |rows: u64, cols: u64, s: u64| {
            MatrixGenerator::with_seed(s)
                .value_range(-1.0, 1.0)
                .generate(&MatrixMeta::dense(rows * bs, cols * bs).with_block_size(bs))
                .expect("generates")
        };
        let a = gen(i, k, seed);
        let b = gen(k, l, seed ^ 1);
        let c = gen(l, j, seed ^ 2);
        let left = a.multiply(&b).expect("ab").multiply(&c).expect("(ab)c");
        let right = a.multiply(&b.multiply(&c).expect("bc")).expect("a(bc)");
        prop_assert!(left.max_abs_diff(&right).expect("same shape") < 1e-7);
    }

    #[test]
    fn distribution_law_holds(seed in 0u64..10_000) {
        // A (B + C) == A B + A C over block matrices.
        let bs = 8u64;
        let meta_a = MatrixMeta::dense(2 * bs, 3 * bs).with_block_size(bs);
        let meta_bc = MatrixMeta::dense(3 * bs, 2 * bs).with_block_size(bs);
        let a = MatrixGenerator::with_seed(seed).generate(&meta_a).expect("a");
        let b = MatrixGenerator::with_seed(seed ^ 5).generate(&meta_bc).expect("b");
        let c = MatrixGenerator::with_seed(seed ^ 9).generate(&meta_bc).expect("c");
        let lhs = a
            .multiply(&b.elementwise(EwOp::Add, &c).expect("b+c"))
            .expect("a(b+c)");
        let rhs = a
            .multiply(&b)
            .expect("ab")
            .elementwise(EwOp::Add, &a.multiply(&c).expect("ac"))
            .expect("ab+ac");
        prop_assert!(lhs.max_abs_diff(&rhs).expect("same shape") < 1e-8);
    }

    #[test]
    fn row_sums_match_ones_product(seed in 0u64..10_000, sparsity in 0.05f64..1.0) {
        // row_sums(A) == A · 1.
        let bs = 8u64;
        let meta = MatrixMeta::sparse(3 * bs, 2 * bs, sparsity).with_block_size(bs);
        let a = MatrixGenerator::with_seed(seed).generate(&meta).expect("a");
        let ones_meta = MatrixMeta::dense(2 * bs, 1).with_block_size(bs);
        let mut ones = BlockMatrix::new(ones_meta);
        for bi in 0..ones_meta.block_rows() {
            let (r, c) = ones_meta.block_dims(bi, 0);
            ones.put(bi, 0, Block::Dense(DenseBlock::from_fn(r as usize, c as usize, |_, _| 1.0)))
                .expect("in grid");
        }
        let product = a.multiply(&ones).expect("a*1");
        let sums = a.row_sums();
        for (idx, s) in sums.iter().enumerate() {
            prop_assert!((s - product.get_element(idx as u64, 0)).abs() < 1e-9);
        }
    }
}
