//! `(P2, Q2, R2)`-subcuboid partitioning for GPU memory (§4.1–4.2).
//!
//! A task's cuboid usually exceeds the per-task GPU budget θg, so it is cut
//! again — with the same grid scheme — into subcuboids that fit, processed
//! sequentially as *iterations*. The optimizer solves Eq. 5: minimize the
//! PCI-E traffic `Costm(P2,Q2,R2) = Q2·|Am| + P2·|Bm| + |Cm|` (Eq. 6 — note
//! the missing `R2` on `|Cm|`: intermediate C stays resident in device
//! memory across k-axis iterations) subject to `Memm ≤ θg`.

use crate::cuboid::Cuboid;

/// Subcuboid partitioning parameters within one cuboid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubcuboidSpec {
    /// Partitions of the cuboid along the i-axis.
    pub p2: u32,
    /// Partitions along the j-axis.
    pub q2: u32,
    /// Partitions along the k-axis.
    pub r2: u32,
}

impl SubcuboidSpec {
    /// Iterations a task performs: `P2 · Q2 · R2`.
    pub fn iterations(&self) -> u64 {
        self.p2 as u64 * self.q2 as u64 * self.r2 as u64
    }
}

impl std::fmt::Display for SubcuboidSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.p2, self.q2, self.r2)
    }
}

/// Byte sizes of one task's cuboid sides (`|Am|`, `|Bm|`, `|Cm|` — §4.2:
/// "Memm considers the sizes of A and B within the given cuboid processed
/// by the task tm").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CuboidSides {
    /// Cuboid extents in blocks, `(I', J', K')` before subdivision.
    pub extents: (u32, u32, u32),
    /// Bytes of one A block.
    pub a_block_bytes: u64,
    /// Bytes of one B block.
    pub b_block_bytes: u64,
    /// Bytes of one C block.
    pub c_block_bytes: u64,
}

impl CuboidSides {
    /// Builds the sides description from a cuboid and per-block byte sizes.
    pub fn of(cuboid: &Cuboid, a_block: u64, b_block: u64, c_block: u64) -> Self {
        CuboidSides {
            extents: cuboid.extents(),
            a_block_bytes: a_block,
            b_block_bytes: b_block,
            c_block_bytes: c_block,
        }
    }

    /// `|Am|`: bytes of the cuboid's A side.
    pub fn a_bytes(&self) -> u64 {
        let (i, _, k) = self.extents;
        i as u64 * k as u64 * self.a_block_bytes
    }

    /// `|Bm|`: bytes of the cuboid's B side.
    pub fn b_bytes(&self) -> u64 {
        let (_, j, k) = self.extents;
        k as u64 * j as u64 * self.b_block_bytes
    }

    /// `|Cm|`: bytes of the cuboid's C side.
    pub fn c_bytes(&self) -> u64 {
        let (i, j, _) = self.extents;
        i as u64 * j as u64 * self.c_block_bytes
    }
}

/// `Memm(P2, Q2, R2)` — block-granular device-memory footprint of one
/// subcuboid (BufA + BufB + BufC of Algorithm 1, line 7).
pub fn mem_bytes(sides: &CuboidSides, spec: SubcuboidSpec) -> u64 {
    let (i, j, k) = sides.extents;
    let si = i.div_ceil(spec.p2) as u64;
    let sj = j.div_ceil(spec.q2) as u64;
    let sk = k.div_ceil(spec.r2) as u64;
    si * sk * sides.a_block_bytes + sk * sj * sides.b_block_bytes + si * sj * sides.c_block_bytes
}

/// `Costm(P2, Q2, R2)` — Eq. 6: PCI-E bytes moved for the whole cuboid.
/// `|Cm|` is *not* multiplied by `R2`: C stays in GPU memory across k-axis
/// iterations and is copied back once.
pub fn cost_bytes(sides: &CuboidSides, spec: SubcuboidSpec) -> u64 {
    spec.q2 as u64 * sides.a_bytes() + spec.p2 as u64 * sides.b_bytes() + sides.c_bytes()
}

/// Solves Eq. 5 exhaustively. Returns `None` when even single-voxel
/// subcuboids exceed θg (the task cannot use the GPU; DistME would fall
/// back to the CPU kernel).
pub fn optimize(sides: &CuboidSides, gpu_task_mem_bytes: u64) -> Option<(SubcuboidSpec, u64)> {
    let (i, j, k) = sides.extents;
    let mut best: Option<(SubcuboidSpec, u64)> = None;
    for p2 in 1..=i {
        for q2 in 1..=j {
            // Mem shrinks as R2 grows while cost is R2-independent, so take
            // the smallest feasible R2 (fewest iterations).
            for r2 in 1..=k {
                let spec = SubcuboidSpec { p2, q2, r2 };
                if mem_bytes(sides, spec) > gpu_task_mem_bytes {
                    continue;
                }
                let cost = cost_bytes(sides, spec);
                let better = match &best {
                    None => true,
                    Some((bs, bc)) => {
                        cost < *bc || (cost == *bc && spec.iterations() < bs.iterations())
                    }
                };
                if better {
                    best = Some((spec, cost));
                }
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 10 x 12 x 20-block cuboid of 8 MB blocks (1000x1000 f64 dense).
    fn sides() -> CuboidSides {
        CuboidSides {
            extents: (10, 12, 20),
            a_block_bytes: 8_000_000,
            b_block_bytes: 8_000_000,
            c_block_bytes: 8_000_000,
        }
    }

    #[test]
    fn side_byte_arithmetic() {
        let s = sides();
        assert_eq!(s.a_bytes(), 10 * 20 * 8_000_000);
        assert_eq!(s.b_bytes(), 20 * 12 * 8_000_000);
        assert_eq!(s.c_bytes(), 10 * 12 * 8_000_000);
    }

    #[test]
    fn paper_tendency_is_1_1_r2() {
        // §4.2: "the optimization of Eq.(5) tends to produce (1,1,R2)".
        // θg = 2 GB: |Cm| (960 MB) fits beside thin k-slices.
        let (spec, _) = optimize(&sides(), 2_000_000_000).unwrap();
        assert_eq!((spec.p2, spec.q2), (1, 1), "got {spec}");
        assert!(spec.r2 > 1);
        assert!(mem_bytes(&sides(), spec) <= 2_000_000_000);
    }

    #[test]
    fn large_c_forces_p2_q2_above_one() {
        // §4.2: when |Cm| alone exceeds θg, "larger parameters of P2 > 1
        // and Q2 > 1 are picked". Make C huge relative to θg.
        let s = CuboidSides {
            extents: (30, 30, 1),
            a_block_bytes: 1_000,
            b_block_bytes: 1_000,
            c_block_bytes: 8_000_000,
        };
        // |Cm| = 900 * 8 MB = 7.2 GB; θg = 1 GB.
        let (spec, _) = optimize(&s, 1_000_000_000).unwrap();
        assert!(spec.p2 > 1 || spec.q2 > 1, "got {spec}");
        assert!(mem_bytes(&s, spec) <= 1_000_000_000);
    }

    #[test]
    fn cost_omits_r2_on_c() {
        let s = sides();
        let small_r = SubcuboidSpec {
            p2: 1,
            q2: 1,
            r2: 2,
        };
        let big_r = SubcuboidSpec {
            p2: 1,
            q2: 1,
            r2: 20,
        };
        assert_eq!(cost_bytes(&s, small_r), cost_bytes(&s, big_r));
    }

    #[test]
    fn cost_is_optimal_among_feasible() {
        let s = sides();
        let theta_g = 1_000_000_000u64;
        let (best, best_cost) = optimize(&s, theta_g).unwrap();
        for p2 in 1..=10 {
            for q2 in 1..=12 {
                for r2 in 1..=20 {
                    let spec = SubcuboidSpec { p2, q2, r2 };
                    if mem_bytes(&s, spec) <= theta_g {
                        assert!(
                            cost_bytes(&s, spec) >= best_cost,
                            "{spec} beats chosen {best}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn infeasible_when_three_blocks_exceed_theta_g() {
        let s = CuboidSides {
            extents: (2, 2, 2),
            a_block_bytes: 8_000_000,
            b_block_bytes: 8_000_000,
            c_block_bytes: 8_000_000,
        };
        assert!(optimize(&s, 10_000_000).is_none()); // 3 blocks = 24 MB > 10 MB
        assert!(optimize(&s, 24_000_000).is_some());
    }

    #[test]
    fn whole_cuboid_fits_in_one_iteration() {
        let s = sides();
        // θg larger than the entire cuboid: (1,1,1).
        let total = s.a_bytes() + s.b_bytes() + s.c_bytes();
        let (spec, _) = optimize(&s, total).unwrap();
        assert_eq!(spec.iterations(), 1);
    }

    #[test]
    fn fig5_example_shape() {
        // Fig. 5(a): cuboid of 2 x 3 x 4 voxels split (1,1,2) into two
        // 2 x 3 x 2 subcuboids. Choose θg to admit exactly half the k range.
        let s = CuboidSides {
            extents: (2, 3, 4),
            a_block_bytes: 100,
            b_block_bytes: 100,
            c_block_bytes: 100,
        };
        // Full cuboid: A 800 + B 1200 + C 600 = 2600. Half-k: A 400 +
        // B 600 + C 600 = 1600.
        let (spec, _) = optimize(&s, 1600).unwrap();
        assert_eq!(
            spec,
            SubcuboidSpec {
                p2: 1,
                q2: 1,
                r2: 2
            }
        );
    }
}
