//! The CuboidMM parameter optimizer (§3.2).
//!
//! Solves Eq. 2: find `(P*, Q*, R*)` minimizing the communication cost
//! `Cost(P,Q,R) = Q·|A| + P·|B| + R·|C|` (Eq. 4) subject to the per-task
//! memory bound `Mem(P,Q,R) ≤ θt` (Eq. 3), by exhaustive search over the
//! `I × J × K` parameter space ("the search space ... is usually not so
//! large, since I, J, and K are the numbers of blocks").
//!
//! Two refinements from §3.2 are implemented:
//! * parameters with `P·Q·R < M·Tc` are pruned so the cluster's parallelism
//!   is fully exploited;
//! * in the exceptional case `I·J·K < M·Tc`, the parameters degrade to
//!   `(I, J, K)` — voxel-level partitioning, "which actually works like the
//!   RMM method".
//!
//! Memory is accounted **block-granularly**: a cuboid holds
//! `⌈I/P⌉ × ⌈K/R⌉` whole A blocks (not the fractional `|A|/(P·R)`
//! elements), matching how a task's heap actually fills and how the paper's
//! Table 4 parameters behave at the θt boundary.

use crate::cuboid::CuboidSpec;
use crate::problem::MatmulProblem;
use distme_cluster::ClusterConfig;

/// Optimizer inputs: the memory bound and parallelism floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Per-task memory budget θt, bytes.
    pub task_mem_bytes: u64,
    /// Cluster parallelism `M · Tc`; specs with fewer cuboids are pruned.
    pub min_parallelism: u64,
}

impl OptimizerConfig {
    /// Derives the optimizer inputs from a cluster configuration.
    pub fn from_cluster(cfg: &ClusterConfig) -> Self {
        OptimizerConfig {
            task_mem_bytes: cfg.task_mem_bytes,
            min_parallelism: cfg.total_slots() as u64,
        }
    }
}

/// The optimizer's result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimum {
    /// The chosen `(P*, Q*, R*)`.
    pub spec: CuboidSpec,
    /// `Cost(P*, Q*, R*)` in bytes.
    pub cost_bytes: u64,
    /// `Mem(P*, Q*, R*)` in bytes.
    pub mem_bytes: u64,
    /// False when the `I·J·K < M·Tc` exception fired and the spec is the
    /// forced `(I, J, K)`.
    pub minimized: bool,
}

/// `Mem(P, Q, R)` — Eq. 3, block-granular: the bytes of whole blocks a
/// cuboid-task must hold (`A` side + `B` side + `C` side).
pub fn mem_bytes(problem: &MatmulProblem, spec: CuboidSpec) -> u64 {
    let (i, j, k) = problem.dims();
    let ai = i.div_ceil(spec.p) as u64;
    let bj = j.div_ceil(spec.q) as u64;
    let ck = k.div_ceil(spec.r) as u64;
    ai * ck * problem.a_block_bytes()
        + ck * bj * problem.b_block_bytes()
        + ai * bj * problem.c_block_bytes()
}

/// `Cost(P, Q, R)` — Eq. 4: bytes replicated in repartition
/// (`Q·|A| + P·|B|`) plus bytes shuffled in aggregation (`R·|C|`).
pub fn cost_bytes(problem: &MatmulProblem, spec: CuboidSpec) -> u64 {
    spec.q as u64 * problem.a.total_bytes()
        + spec.p as u64 * problem.b.total_bytes()
        + spec.r as u64 * problem.c.total_bytes()
}

/// Solves Eq. 2 by exhaustive search.
///
/// Returns `None` when even voxel-level partitioning `(I, J, K)` exceeds
/// θt — no cuboid decomposition can run without O.O.M. (a single voxel's
/// three blocks don't fit).
pub fn optimize(problem: &MatmulProblem, cfg: &OptimizerConfig) -> Option<Optimum> {
    #[cfg(test)]
    instrument::record_call();
    let (i, j, k) = problem.dims();
    let voxels = i as u64 * j as u64 * k as u64;

    // §3.2 exception: fewer voxels than slots — use every voxel as a task.
    if voxels < cfg.min_parallelism {
        let spec = CuboidSpec::new(i, j, k);
        if mem_bytes(problem, spec) > cfg.task_mem_bytes {
            return None;
        }
        return Some(Optimum {
            spec,
            cost_bytes: cost_bytes(problem, spec),
            mem_bytes: mem_bytes(problem, spec),
            minimized: false,
        });
    }

    let mut best: Option<Optimum> = None;
    for p in 1..=i {
        for q in 1..=j {
            // Cost is monotone in R for fixed (P, Q): the smallest feasible
            // R is optimal, so scan R upward and stop at the first fit.
            for r in 1..=k {
                let spec = CuboidSpec::new(p, q, r);
                if spec.count() < cfg.min_parallelism {
                    continue;
                }
                let mem = mem_bytes(problem, spec);
                if mem > cfg.task_mem_bytes {
                    continue;
                }
                let cost = cost_bytes(problem, spec);
                let better = match &best {
                    None => true,
                    Some(b) => cost < b.cost_bytes || (cost == b.cost_bytes && mem < b.mem_bytes),
                };
                if better {
                    best = Some(Optimum {
                        spec,
                        cost_bytes: cost,
                        mem_bytes: mem,
                        minimized: true,
                    });
                }
                break; // larger R only adds cost for this (P, Q)
            }
        }
    }
    best
}

/// Analytic per-method costs of Table 2, in *element* units as the paper
/// states them (`|A|` = number of elements). Used by tests and docs; the
/// executors measure real bytes instead.
pub mod table2 {
    /// One row of Table 2.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Row {
        /// Communication in the matrix-repartition step (elements).
        pub repartition: f64,
        /// Communication in the matrix-aggregation step (elements).
        pub aggregation: f64,
        /// Memory usage per task (elements).
        pub mem_per_task: f64,
        /// Maximum number of tasks.
        pub max_tasks: u64,
    }

    /// BMM with `T` tasks (`|A| > |B|`; B is broadcast).
    pub fn bmm(a: f64, b: f64, c: f64, t: f64, i: u64) -> Row {
        Row {
            repartition: a + t * b,
            aggregation: 0.0,
            mem_per_task: a / t + b + c / t,
            max_tasks: i,
        }
    }

    /// CPMM with `T` tasks.
    pub fn cpmm(a: f64, b: f64, c: f64, t: f64, k: u64) -> Row {
        Row {
            repartition: a + b,
            aggregation: t * c,
            mem_per_task: a / t + b / t + c,
            max_tasks: k,
        }
    }

    /// RMM with `T` tasks over an `I × J × K` model.
    pub fn rmm(a: f64, b: f64, c: f64, t: f64, i: u64, j: u64, k: u64) -> Row {
        Row {
            repartition: j as f64 * a + i as f64 * b,
            aggregation: k as f64 * c,
            mem_per_task: (j as f64 * a + i as f64 * b + k as f64 * c) / t,
            max_tasks: i * j * k,
        }
    }

    /// CuboidMM with `(P, Q, R)` over an `I × J × K` model, `T = P·Q·R`.
    #[allow(clippy::too_many_arguments)]
    pub fn cuboid(a: f64, b: f64, c: f64, p: u64, q: u64, r: u64, i: u64, j: u64, k: u64) -> Row {
        let t = (p * q * r) as f64;
        Row {
            repartition: q as f64 * a + p as f64 * b,
            aggregation: r as f64 * c,
            mem_per_task: (q as f64 * a + p as f64 * b + r as f64 * c) / t,
            max_tasks: i * j * k,
        }
    }
}

/// Test-only instrumentation: counts [`optimize`] invocations so plan-level
/// regression tests can assert method resolution happens exactly once per
/// job (not once per stage or once per executor).
#[cfg(test)]
pub(crate) mod instrument {
    use std::cell::Cell;

    thread_local! {
        static CALLS: Cell<u64> = const { Cell::new(0) };
    }

    /// Optimizer invocations on this thread so far.
    pub(crate) fn optimize_calls() -> u64 {
        CALLS.with(|c| c.get())
    }

    pub(crate) fn record_call() {
        CALLS.with(|c| c.set(c.get() + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_optimizer() -> OptimizerConfig {
        OptimizerConfig {
            task_mem_bytes: 6_000_000_000,
            min_parallelism: 90,
        }
    }

    /// Table 4's small rows (e.g. (1,1,9) = 9 tasks) violate the text's
    /// own `P·Q·R >= M·Tc = 90` pruning rule, so the paper evidently pruned
    /// with a node-level floor; this config reproduces Table 4's regime.
    fn table4_optimizer() -> OptimizerConfig {
        OptimizerConfig {
            task_mem_bytes: 6_000_000_000,
            min_parallelism: 9,
        }
    }

    fn problem(rows: u64, common: u64, cols: u64) -> MatmulProblem {
        MatmulProblem::dense(rows, common, cols)
    }

    #[test]
    fn optimum_is_feasible_and_no_worse_than_table4() {
        // Table 4 rows: our exhaustive search must find parameters whose
        // cost is <= the paper's choice while respecting θt.
        type Case = (u64, u64, u64, (u32, u32, u32));
        let cases: [Case; 6] = [
            (70_000, 70_000, 70_000, (4, 7, 4)),
            (100_000, 100_000, 100_000, (7, 9, 5)),
            (10_000, 100_000, 10_000, (1, 1, 9)),
            (10_000, 1_000_000, 10_000, (1, 1, 36)),
            (100_000, 1_000, 100_000, (9, 10, 1)),
            (500_000, 1_000, 500_000, (17, 24, 1)),
        ];
        let cfg = table4_optimizer();
        for (rows, common, cols, (pp, pq, pr)) in cases {
            let prob = problem(rows, common, cols);
            let opt = optimize(&prob, &cfg).expect("feasible");
            assert!(
                opt.mem_bytes <= cfg.task_mem_bytes,
                "{rows}x{common}x{cols}: mem {} > θt",
                opt.mem_bytes
            );
            assert!(
                opt.spec.count() >= cfg.min_parallelism,
                "{rows}x{common}x{cols}: parallelism pruned spec leaked"
            );
            let paper_spec = CuboidSpec::new(pp, pq, pr);
            let paper_cost = cost_bytes(&prob, paper_spec);
            assert!(
                opt.cost_bytes <= paper_cost,
                "{rows}x{common}x{cols}: our cost {} worse than paper's {}",
                opt.cost_bytes,
                paper_cost
            );
        }
    }

    #[test]
    fn common_large_dimension_yields_p_q_one() {
        // Table 4: all 10K x N x 10K rows have (P*, Q*) = (1, 1).
        let cfg = table4_optimizer();
        for n in [100_000u64, 500_000, 1_000_000] {
            let prob = problem(10_000, n, 10_000);
            let opt = optimize(&prob, &cfg).unwrap();
            assert_eq!((opt.spec.p, opt.spec.q), (1, 1), "N = {n}: {}", opt.spec);
            assert!(opt.spec.r > 1);
        }
    }

    #[test]
    fn two_large_dimensions_yield_r_one() {
        // Table 4: all N x 1K x N rows have R* = 1.
        let cfg = table4_optimizer();
        for n in [100_000u64, 250_000, 500_000] {
            let prob = problem(n, 1_000, n);
            let opt = optimize(&prob, &cfg).unwrap();
            assert_eq!(opt.spec.r, 1, "N = {n}: {}", opt.spec);
        }
    }

    #[test]
    fn small_problem_falls_back_to_voxel_grid() {
        // 4x4x4 blocks = 64 voxels < 90 slots => (I, J, K).
        let prob = problem(4_000, 4_000, 4_000);
        let opt = optimize(&prob, &paper_optimizer()).unwrap();
        assert_eq!(opt.spec, CuboidSpec::new(4, 4, 4));
        assert!(!opt.minimized);
    }

    #[test]
    fn infeasible_when_one_voxel_exceeds_memory() {
        let prob = problem(4_000, 4_000, 4_000);
        let cfg = OptimizerConfig {
            task_mem_bytes: 1_000_000, // < 3 blocks of 8 MB
            min_parallelism: 1,
        };
        assert!(optimize(&prob, &cfg).is_none());
    }

    #[test]
    fn mem_is_block_granular() {
        let prob = problem(5_000, 5_000, 5_000); // 5x5x5 blocks of 8 MB
                                                 // (2,2,2): ceil(5/2) = 3 => A 3x3 + B 3x3 + C 3x3 = 27 blocks.
        let m = mem_bytes(&prob, CuboidSpec::new(2, 2, 2));
        assert_eq!(m, 27 * 8_000_000);
    }

    #[test]
    fn cost_matches_eq4() {
        let prob = problem(5_000, 5_000, 5_000);
        let each = 25u64 * 8_000_000;
        let c = cost_bytes(&prob, CuboidSpec::new(2, 3, 4));
        assert_eq!(c, 3 * each + 2 * each + 4 * each);
    }

    #[test]
    fn table2_formulas() {
        // Symbolic check with |A| = |B| = |C| = s on an N^3 model.
        let (s, i, j, k) = (100.0, 10u64, 10u64, 10u64);
        let bmm = table2::bmm(s, s, s, i as f64, i);
        assert_eq!(bmm.repartition, s + 10.0 * s);
        assert_eq!(bmm.aggregation, 0.0);
        assert_eq!(bmm.max_tasks, 10);

        let cpmm = table2::cpmm(s, s, s, k as f64, k);
        assert_eq!(cpmm.repartition, 2.0 * s);
        assert_eq!(cpmm.aggregation, 10.0 * s);
        assert_eq!(cpmm.mem_per_task, s / 10.0 + s / 10.0 + s);

        let rmm = table2::rmm(s, s, s, (i * j) as f64, i, j, k);
        assert_eq!(rmm.repartition, 20.0 * s);
        assert_eq!(rmm.aggregation, 10.0 * s);
        assert_eq!(rmm.max_tasks, 1000);

        let cu = table2::cuboid(s, s, s, 2, 3, 4, i, j, k);
        assert_eq!(cu.repartition, 5.0 * s);
        assert_eq!(cu.aggregation, 4.0 * s);
        // Cuboid cost <= RMM cost for any P<=I, Q<=J, R<=K.
        assert!(cu.repartition + cu.aggregation <= rmm.repartition + rmm.aggregation);
    }

    #[test]
    fn optimizer_is_fast_at_paper_scale() {
        // §3.2: "determination of the optimal parameters takes only 0.3
        // seconds" for 100K x 100K. Ours should be comfortably under that.
        let prob = problem(100_000, 100_000, 100_000);
        let t0 = std::time::Instant::now();
        let _ = optimize(&prob, &paper_optimizer()).unwrap();
        assert!(t0.elapsed().as_secs_f64() < 0.3);
    }

    #[test]
    fn deterministic() {
        let prob = problem(90_000, 90_000, 90_000);
        let a = optimize(&prob, &paper_optimizer()).unwrap();
        let b = optimize(&prob, &paper_optimizer()).unwrap();
        assert_eq!(a, b);
    }
}
