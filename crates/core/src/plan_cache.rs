//! Epoch-keyed plan cache.
//!
//! Plan construction runs the `(P*, Q*, R*)` optimizer search, which is
//! cheap per call but shows up when a session executes thousands of
//! structurally identical multiplies (GNMF iterates the same three shapes
//! every iteration). A [`PlanCache`] memoizes built plans under a caller
//! fingerprint, with one hard invariant from the elasticity model: every
//! entry is tagged with the membership epoch it was built at, and **any**
//! epoch change drops the whole cache. A plan routed for a dead grid must
//! never be served, even if the node count happens to match again — the
//! placement hash would still agree, but resident-block reuse and the
//! executors' epoch check would not.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Counters describing how a cache behaved (useful in tests and stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a fresh value.
    pub misses: u64,
    /// Whole-cache drops caused by a membership epoch change.
    pub invalidations: u64,
}

/// A `Mutex`-guarded memo table whose entries live exactly as long as the
/// membership epoch they were built under.
///
/// Concurrency contract (the cache is shared across sessions by the job
/// service): the lock is held *through* `build`, so racing lookups of the
/// same key run the optimizer search exactly once — the losers block and
/// then hit. A panicking `build` poisons nothing: the guard is recovered,
/// because the state it protects (a memo plus counters) is valid at every
/// step.
#[derive(Debug)]
pub struct PlanCache<T: Clone> {
    inner: Mutex<Inner<T>>,
}

impl<T: Clone> Default for PlanCache<T> {
    fn default() -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    epoch: u64,
    entries: BTreeMap<String, T>,
    stats: PlanCacheStats,
}

impl<T> Default for Inner<T> {
    fn default() -> Self {
        Inner {
            epoch: 0,
            entries: BTreeMap::new(),
            stats: PlanCacheStats::default(),
        }
    }
}

impl<T: Clone> PlanCache<T> {
    /// An empty cache pinned at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached value for `key` at `epoch`, building it with
    /// `build` on a miss. If `epoch` differs from the epoch the cache last
    /// served, every entry is dropped first — membership changed, so every
    /// cached routing is stale.
    pub fn get_or_insert(&self, epoch: u64, key: &str, build: impl FnOnce() -> T) -> T {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.epoch != epoch {
            inner.entries.clear();
            inner.epoch = epoch;
            inner.stats.invalidations += 1;
        }
        if let Some(v) = inner.entries.get(key).cloned() {
            inner.stats.hits += 1;
            return v;
        }
        inner.stats.misses += 1;
        let v = build();
        inner.entries.insert(key.to_string(), v.clone());
        v
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entries
            .len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/invalidation counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MulMethod;
    use crate::plan::JobPlan;
    use crate::problem::MatmulProblem;
    use distme_cluster::ClusterConfig;
    use std::sync::Arc;

    #[test]
    fn hits_misses_and_epoch_invalidation() {
        let cache: PlanCache<u32> = PlanCache::new();
        assert_eq!(cache.get_or_insert(0, "a", || 1), 1);
        assert_eq!(cache.get_or_insert(0, "a", || 2), 1); // hit keeps the old value
        assert_eq!(cache.get_or_insert(0, "b", || 3), 3);
        assert_eq!(cache.len(), 2);
        // Epoch change drops everything, including other keys.
        assert_eq!(cache.get_or_insert(1, "a", || 4), 4);
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 3, 1));
    }

    #[test]
    fn cached_plans_skip_the_optimizer_until_membership_changes() {
        // The PR-1 regression, extended across a membership change: a
        // cached plan must not re-run `optimizer::optimize`, and an epoch
        // bump must force exactly one re-search.
        let cfg = ClusterConfig::laptop();
        let problem = MatmulProblem::dense(4 * 16, 3 * 16, 2 * 16);
        let cache: PlanCache<Arc<JobPlan>> = PlanCache::new();
        let build = |epoch: u64| {
            cache.get_or_insert(epoch, "dense-4x3x2", || {
                Arc::new(JobPlan::build(&problem, MulMethod::CuboidAuto, &cfg).at_epoch(epoch))
            })
        };

        let before = crate::optimizer::instrument::optimize_calls();
        let first = build(0);
        let second = build(0);
        assert_eq!(
            crate::optimizer::instrument::optimize_calls() - before,
            1,
            "a cached plan must not re-run the (P*,Q*,R*) search"
        );
        assert!(Arc::ptr_eq(&first, &second));

        let rebuilt = build(1);
        assert_eq!(
            crate::optimizer::instrument::optimize_calls() - before,
            2,
            "an epoch bump must re-run the search exactly once"
        );
        assert_eq!(rebuilt.epoch, 1);
        assert!(!Arc::ptr_eq(&first, &rebuilt));
    }

    #[test]
    fn parallel_sessions_on_one_key_optimize_exactly_once() {
        // The job service shares one cache across sessions: eight threads
        // racing the same (problem, method) fingerprint must run the
        // (P*,Q*,R*) search once — the lock is held through `build`, so
        // the losers block and then hit.
        let cfg = ClusterConfig::laptop();
        let problem = MatmulProblem::dense(4 * 16, 3 * 16, 2 * 16);
        let cache: PlanCache<Arc<JobPlan>> = PlanCache::new();
        // The instrument counter is thread-local (so parallel tests stay
        // isolated); sum each builder thread's delta to count searches
        // across all racing sessions.
        let searches = std::sync::atomic::AtomicU64::new(0);
        let plans: Vec<Arc<JobPlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        cache.get_or_insert(0, "dense-4x3x2", || {
                            let before = crate::optimizer::instrument::optimize_calls();
                            let plan = Arc::new(
                                JobPlan::build(&problem, MulMethod::CuboidAuto, &cfg).at_epoch(0),
                            );
                            searches.fetch_add(
                                crate::optimizer::instrument::optimize_calls() - before,
                                std::sync::atomic::Ordering::SeqCst,
                            );
                            plan
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            searches.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "racing sessions must share one optimizer search"
        );
        for p in &plans[1..] {
            assert!(Arc::ptr_eq(&plans[0], p), "all callers get the same plan");
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (7, 1));
    }

    #[test]
    fn epoch_bump_mid_flight_invalidates_without_panics() {
        // Threads race lookups across two epochs (a resize landing while
        // jobs are in flight). No panics, no stale cross-epoch value: the
        // value observed for an epoch is always the one built at it.
        let cache: PlanCache<u64> = PlanCache::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for round in 0..50u64 {
                        let epoch = (t + round) % 2;
                        let got = cache.get_or_insert(epoch, "k", || epoch * 100);
                        assert_eq!(got, epoch * 100, "epoch {epoch} served a stale plan");
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 400);
        assert!(s.invalidations >= 1);
    }

    #[test]
    fn a_panicking_build_does_not_poison_the_cache() {
        let cache: PlanCache<u32> = PlanCache::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_insert(0, "k", || panic!("optimizer blew up"))
        }));
        assert!(boom.is_err());
        // The cache stays usable and the failed build left no entry.
        assert_eq!(cache.get_or_insert(0, "k", || 7), 7);
        assert_eq!(cache.len(), 1);
    }
}
