//! Dependency-driven streaming executor: overlap communication and
//! compute (Algorithm 1's double buffering, generalized to the whole job).
//!
//! The barrier executor in [`crate::real_exec`] runs repartition, local
//! multiplication and aggregation as three synchronized stages: no task
//! multiplies until every routed block has moved, and no task reduces
//! until every task has multiplied. This module fuses the three phases
//! into **one** gated stage ([`LocalCluster::run_stage_gated`]) scheduled
//! by per-task block dependencies instead of phase barriers:
//!
//! * **mult tasks** dispatch immediately. Each one splits its routed
//!   inputs into k-panels (the A column-slice and B row-slice of one k
//!   step) and runs a per-task prefetch thread that pushes panels through
//!   the transport up to [`PREFETCH_DEPTH`] ahead of the consuming compute
//!   loop — the k-axis double buffering of the paper's Algorithm 1,
//!   applied to network transfers instead of PCIe copies. The compute loop
//!   accumulates each k-panel as soon as it lands (its completion signal
//!   is the [`DeliveryBoard`]); panels the prefetch has not reached are
//!   pulled directly through [`Transport::fetch`], which skips blocks that
//!   already landed via another route;
//! * **pre-moves** (CRMM's re-blocking pass) dispatch immediately — they
//!   feed no mult-task read (every mult task routes its own inputs), so
//!   they just stream alongside;
//! * **aggregation tasks** are gated: each one's readiness countdown is
//!   the set of mult tasks named by its planned `C`-copy inputs
//!   ([`crate::plan::TaskSpec::producer_tasks`]), and the last producer to
//!   finish marks it ready ([`StageGate::mark_ready`]) — so reduction of
//!   early C blocks overlaps multiplication of late ones.
//!
//! **Determinism contract.** Result bytes are bit-identical to the barrier
//! path: the CPU cuboid loop accumulates k ascending per output cell
//! (exactly the barrier loop's per-cell order, restructured k-outer), the
//! GPU subcuboid schedule waits for all panels and then runs unmodified,
//! and reductions consume the same planned copies. Ledger model bytes are
//! charged by the shared [`crate::real_exec::prepare_job`] prologue from
//! the plan's routing view, so sim/real byte parity is untouched. Only
//! *physical payload* bytes may differ from the barrier path: the pull
//! path skips blocks another task's push already landed, so
//! `transport_payload_bytes` is timing-dependent here (tests compare
//! result and ledger bytes for pipelined runs, never payload).

use crate::plan::{JobPlan, Operand, TaskWork};
use crate::real_exec::{
    self, lower_move, multiply_cuboid_cpu, multiply_voxels, prepare_job, put_block, reduce_groups,
    JobSetup, RealExecOptions,
};
use crate::{gpu_local, methods::MulMethod};
use distme_cluster::{
    BlockSource, BlockView, DeliveryBoard, JobError, JobStats, LocalCluster, Phase, PhaseStats,
    StoreKey, TaskError, WireMove, RESIDENCY_WINDOW_JOBS,
};
use distme_matrix::{codec, kernels, Block, BlockId, BlockMatrix, DenseBlock};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many k-panels a task's prefetch thread may run ahead of its compute
/// loop: one panel multiplying, one in flight — Algorithm 1's double
/// buffering. Deeper prefetch only grows the resident working set without
/// hiding more latency (the compute loop consumes panels in order).
pub const PREFETCH_DEPTH: usize = 2;

/// How long a compute loop waits on the delivery board before re-checking
/// whether its prefetch thread died with an error.
const STALL_POLL: Duration = Duration::from_millis(10);

/// [`real_exec::multiply`] through the streaming path.
///
/// # Errors
/// See [`real_exec::multiply`].
pub fn multiply_pipelined(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    method: MulMethod,
) -> Result<(BlockMatrix, JobStats), JobError> {
    real_exec::multiply_with(
        cluster,
        a,
        b,
        method,
        RealExecOptions {
            pipelined: true,
            ..Default::default()
        },
    )
}

/// One item of the fused stage. Indices are laid out mult tasks first
/// (fused index == plan task index, so the replica copy index and the
/// round-robin node both line up with the barrier path), then pre-moves,
/// then aggregation tasks.
#[derive(Clone)]
enum FusedWork {
    /// A pre-stage (CRMM map) task's routed moves: push them, done.
    Premove(Arc<Vec<WireMove>>),
    /// One local-mult task with its inputs grouped into k-panels.
    Mult {
        task: usize,
        work: TaskWork,
        panels: Arc<Vec<Vec<WireMove>>>,
    },
    /// One aggregation task: its plan node, routed copy fetches, and the
    /// producer copies to reduce per output block.
    Agg {
        node: usize,
        moves: Arc<Vec<WireMove>>,
        groups: Arc<Vec<(BlockId, Vec<u32>)>>,
    },
}

enum FusedOut {
    Done,
    Mult(Vec<BlockId>),
    Agg(Vec<(BlockId, Block)>),
}

fn micros_since(t0: Instant) -> u64 {
    t0.elapsed().as_micros() as u64
}

/// Executes `plan` with the fused dependency-gated stage. Called through
/// [`real_exec::execute_plan`] when [`RealExecOptions::pipelined`] is set.
///
/// # Errors
/// See [`real_exec::multiply`].
pub fn execute_plan_pipelined(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    plan: &JobPlan,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let problem = &plan.problem;
    let nodes = cluster.config().nodes;
    let broadcast_b = plan.resolved.broadcast_b;

    let prep_timer = Instant::now();
    let setup = prepare_job(cluster, a, b, plan, &opts)?;
    let JobSetup {
        ref job_transport,
        ref a_index,
        ref b_index,
        model_shuffle,
        model_cross,
        model_broadcast,
        c_uid,
        parity_blocks_encoded,
        ..
    } = setup;
    let stores = cluster.stores();
    let lower =
        |phase: Phase, m: &crate::plan::BlockMove| lower_move(a.uid(), b.uid(), c_uid, phase, m);
    let prep_secs = prep_timer.elapsed().as_secs_f64();

    // ------------- The fused stage ----------------------------------------
    let fused_timer = Instant::now();
    let mult_stage = plan.stage(Phase::LocalMult).expect("plans always multiply");
    let mult_n = mult_stage.tasks.len();
    let needs_agg = plan.stage(Phase::Aggregation).is_some();

    let mut items: Vec<FusedWork> = Vec::with_capacity(mult_n);
    for (t, task) in mult_stage.tasks.iter().enumerate() {
        // Group the task's routed inputs into one panel per k step of its
        // cuboid (A moves carry column k, B moves carry row k); any other
        // work shape gets a single all-inputs panel.
        let panels: Vec<Vec<WireMove>> = match &task.work {
            TaskWork::Cuboid(c) if c.k1 > c.k0 => {
                let mut panels: Vec<Vec<WireMove>> = (c.k0..c.k1).map(|_| Vec::new()).collect();
                for m in &task.inputs {
                    let k = match m.operand {
                        Operand::A if m.id.col >= c.k0 && m.id.col < c.k1 => Some(m.id.col),
                        Operand::B if m.id.row >= c.k0 && m.id.row < c.k1 => Some(m.id.row),
                        _ => None,
                    };
                    // Unclassifiable moves ride the first panel: delivered
                    // before any compute step, like the barrier path.
                    let slot = k.map_or(0, |k| (k - c.k0) as usize);
                    panels[slot].push(lower(mult_stage.input_phase, m));
                }
                panels
            }
            _ => vec![task
                .inputs
                .iter()
                .map(|m| lower(mult_stage.input_phase, m))
                .collect()],
        };
        items.push(FusedWork::Mult {
            task: t,
            work: task.work.clone(),
            panels: Arc::new(panels),
        });
    }
    for stage in plan
        .stages
        .iter()
        .filter(|s| s.phase != Phase::Aggregation && s.phase != Phase::LocalMult)
    {
        for task in &stage.tasks {
            if task.inputs.is_empty() {
                continue;
            }
            let moves = task
                .inputs
                .iter()
                .map(|m| lower(stage.input_phase, m))
                .collect();
            items.push(FusedWork::Premove(Arc::new(moves)));
        }
    }
    let agg_base = items.len();

    // Aggregation gating: each agg task counts down its distinct producer
    // mult tasks; the last producer to finish marks it ready.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); mult_n];
    let mut remaining: Vec<AtomicUsize> = Vec::new();
    let mut initially_ready: Vec<usize> = (0..agg_base).collect();
    if let Some(stage) = plan.stage(Phase::Aggregation) {
        for (j, task) in stage.tasks.iter().enumerate() {
            let producers = task.producer_tasks();
            let moves: Vec<WireMove> = task
                .inputs
                .iter()
                .map(|m| lower(stage.input_phase, m))
                .collect();
            let mut copies: BTreeMap<BlockId, BTreeSet<u32>> = BTreeMap::new();
            for m in &task.inputs {
                copies.entry(m.id).or_default().insert(m.copy);
            }
            let groups: Vec<(BlockId, Vec<u32>)> = match &task.work {
                TaskWork::Aggregate(ids) => ids
                    .iter()
                    .map(|id| {
                        (
                            *id,
                            copies
                                .get(id)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default(),
                        )
                    })
                    .collect(),
                _ => Vec::new(),
            };
            if producers.is_empty() {
                initially_ready.push(agg_base + j);
            }
            for &p in &producers {
                debug_assert!(p < mult_n, "C copy {p} names a mult task");
                consumers[p].push(j);
            }
            remaining.push(AtomicUsize::new(producers.len()));
            items.push(FusedWork::Agg {
                node: task.node,
                moves: Arc::new(moves),
                groups: Arc::new(groups),
            });
        }
    }

    let board = DeliveryBoard::default();
    let transport = cluster
        .transport()
        .with_job_counters(job_transport)
        .with_delivery_board(&board);
    // Which (block, producer-copy) pairs physically exist. An agg task only
    // queries copies of its own (completed, gated-on) producers, so the
    // set is always complete for the copies it looks up.
    let produced: Mutex<BTreeSet<(BlockId, u32)>> = Mutex::new(BTreeSet::new());
    // Guards the consumer countdowns: an injected crash strikes *after* a
    // task's closure returned Ok, so a retried mult task re-runs with its
    // side effects already applied — the countdown must decrement once.
    let mult_done: Vec<AtomicBool> = (0..mult_n).map(|_| AtomicBool::new(false)).collect();
    let comm_micros = AtomicU64::new(0);
    let stall_micros = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let stalls = AtomicU64::new(0);

    let run = cluster.run_stage_gated(
        opts.tenant,
        opts.priority,
        items,
        initially_ready,
        |ctx, item, gate| {
            match item {
                FusedWork::Premove(moves) => {
                    for mv in moves.iter() {
                        let t0 = Instant::now();
                        let payload = transport.execute(mv, ctx.attempt);
                        comm_micros.fetch_add(micros_since(t0), Ordering::Relaxed);
                        let payload = payload?;
                        ctx.alloc(payload)?;
                        ctx.free(payload);
                    }
                    Ok(FusedOut::Done)
                }
                FusedWork::Mult { task, work, panels } => {
                    debug_assert_eq!(mult_stage.tasks[task].node, ctx.node);
                    let store = stores.node(ctx.node);
                    let a_view = BlockView::new(store, a.uid(), a_index);
                    let b_view = BlockView::new(store, b.uid(), b_index);
                    let finish = |blk: Block| if needs_agg { blk } else { blk.normalize() };
                    let attempt = ctx.attempt;
                    let n_panels = panels.len();

                    // Per-attempt pipeline state: exclusive panel claims
                    // (each panel's moves execute exactly once per attempt,
                    // by push or by pull), the prefetch's error slot, and
                    // the consumer's progress cursor (MAX = done/bailed).
                    let claimed: Vec<AtomicBool> =
                        (0..n_panels).map(|_| AtomicBool::new(false)).collect();
                    let prefetch_err: Mutex<Option<TaskError>> = Mutex::new(None);
                    let compute_pos = AtomicUsize::new(0);

                    let produced_ids = std::thread::scope(|scope| {
                        scope.spawn(|| {
                            for (p, panel) in panels.iter().enumerate() {
                                loop {
                                    let pos = compute_pos.load(Ordering::Acquire);
                                    if pos == usize::MAX {
                                        return;
                                    }
                                    if p < pos.saturating_add(PREFETCH_DEPTH) {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                                if claimed[p].swap(true, Ordering::AcqRel) {
                                    continue; // the compute loop pulled it
                                }
                                for mv in panel {
                                    let t0 = Instant::now();
                                    let r = transport.execute(mv, attempt);
                                    comm_micros.fetch_add(micros_since(t0), Ordering::Relaxed);
                                    if let Err(e) = r {
                                        *prefetch_err.lock().expect("prefetch error slot") =
                                            Some(e);
                                        return;
                                    }
                                }
                            }
                        });

                        let ensure_panel = |p: usize| -> Result<(), TaskError> {
                            let panel = &panels[p];
                            if !claimed[p].swap(true, Ordering::AcqRel) {
                                // The prefetch hasn't claimed this panel:
                                // pull the stragglers ourselves. `fetch`
                                // skips blocks that already landed.
                                stalls.fetch_add(1, Ordering::Relaxed);
                                let t0 = Instant::now();
                                for mv in panel {
                                    let payload = transport.fetch(mv, attempt)?;
                                    ctx.alloc(payload)?;
                                    ctx.free(payload);
                                }
                                let us = micros_since(t0);
                                comm_micros.fetch_add(us, Ordering::Relaxed);
                                stall_micros.fetch_add(us, Ordering::Relaxed);
                                return Ok(());
                            }
                            let keys: Vec<StoreKey> = panel.iter().map(|m| m.dst).collect();
                            if board.all_landed(ctx.node, &keys) {
                                hits.fetch_add(1, Ordering::Relaxed);
                                return Ok(());
                            }
                            // In flight: block on the delivery board,
                            // re-checking for a dead prefetch between polls.
                            stalls.fetch_add(1, Ordering::Relaxed);
                            let t0 = Instant::now();
                            for mv in panel {
                                while !board.wait_for(mv.to_node, &mv.dst, STALL_POLL) {
                                    if let Some(e) =
                                        prefetch_err.lock().expect("prefetch error slot").take()
                                    {
                                        stall_micros.fetch_add(micros_since(t0), Ordering::Relaxed);
                                        return Err(e);
                                    }
                                }
                            }
                            stall_micros.fetch_add(micros_since(t0), Ordering::Relaxed);
                            Ok(())
                        };

                        let result = (|| -> Result<Vec<BlockId>, TaskError> {
                            match (&work, opts.gpu_task_mem_bytes) {
                                (TaskWork::Cuboid(cuboid), None) if cuboid.k1 > cuboid.k0 => {
                                    // CPU path: accumulate each k-panel as it
                                    // lands. k runs ascending per output cell —
                                    // the barrier loop's exact per-cell
                                    // accumulation order, so bits match.
                                    let nj = (cuboid.j1 - cuboid.j0) as usize;
                                    let ni = (cuboid.i1 - cuboid.i0) as usize;
                                    let mut acc: Vec<Option<DenseBlock>> =
                                        (0..ni * nj).map(|_| None).collect();
                                    for p in 0..n_panels {
                                        ensure_panel(p)?;
                                        let k = cuboid.k0 + p as u32;
                                        // Charge the panel's landed input
                                        // bytes before multiplying — summed
                                        // over panels this is exactly the
                                        // barrier path's input charge.
                                        let mut panel_bytes = 0u64;
                                        for i in cuboid.i0..cuboid.i1 {
                                            if let Some(ab) = a_view.block(i, k)? {
                                                panel_bytes += codec::encoded_len(&ab);
                                            }
                                        }
                                        if !broadcast_b {
                                            for j in cuboid.j0..cuboid.j1 {
                                                if let Some(bb) = b_view.block(k, j)? {
                                                    panel_bytes += codec::encoded_len(&bb);
                                                }
                                            }
                                        }
                                        ctx.alloc(panel_bytes)?;
                                        for i in cuboid.i0..cuboid.i1 {
                                            let Some(ab) = a_view.block(i, k)? else {
                                                continue;
                                            };
                                            for j in cuboid.j0..cuboid.j1 {
                                                let Some(bb) = b_view.block(k, j)? else {
                                                    continue;
                                                };
                                                let cell = &mut acc[(i - cuboid.i0) as usize * nj
                                                    + (j - cuboid.j0) as usize];
                                                let slot = match cell {
                                                    Some(d) => d,
                                                    None => {
                                                        let (rows, cols) =
                                                            problem.c.block_dims(i, j);
                                                        cell.insert(DenseBlock::zeros(
                                                            rows as usize,
                                                            cols as usize,
                                                        ))
                                                    }
                                                };
                                                kernels::multiply_accumulate(slot, &ab, &bb)?;
                                            }
                                        }
                                        compute_pos.store(p + 1, Ordering::Release);
                                    }
                                    let mut produced_out = Vec::new();
                                    for i in cuboid.i0..cuboid.i1 {
                                        for j in cuboid.j0..cuboid.j1 {
                                            let idx = (i - cuboid.i0) as usize * nj
                                                + (j - cuboid.j0) as usize;
                                            if let Some(dense) = acc[idx].take() {
                                                ctx.alloc(dense.mem_bytes())?;
                                                let id = BlockId::new(i, j);
                                                store.install(
                                                    StoreKey::replica(c_uid, id, task as u32),
                                                    Arc::new(finish(Block::Dense(dense))),
                                                );
                                                produced_out.push(id);
                                            }
                                        }
                                    }
                                    Ok(produced_out)
                                }
                                _ => {
                                    // GPU subcuboid schedules (and degenerate
                                    // or voxel work) consume the whole input
                                    // set at once: drain every panel, then run
                                    // the barrier-identical body. The panels
                                    // still stream in behind the prefetch.
                                    for p in 0..n_panels {
                                        ensure_panel(p)?;
                                        compute_pos.store(p + 1, Ordering::Release);
                                    }
                                    match &work {
                                        TaskWork::Cuboid(cuboid) => {
                                            let mut in_bytes = 0u64;
                                            for id in cuboid.a_block_ids() {
                                                if let Some(blk) = a_view.block(id.row, id.col)? {
                                                    in_bytes += codec::encoded_len(&blk);
                                                }
                                            }
                                            if !broadcast_b {
                                                for id in cuboid.b_block_ids() {
                                                    if let Some(blk) =
                                                        b_view.block(id.row, id.col)?
                                                    {
                                                        in_bytes += codec::encoded_len(&blk);
                                                    }
                                                }
                                            }
                                            ctx.alloc(in_bytes)?;
                                            let blocks = match opts.gpu_task_mem_bytes {
                                                Some(theta_g) => {
                                                    gpu_local::execute_cuboid_real(
                                                        cuboid, &a_view, &b_view, problem, theta_g,
                                                    )?
                                                    .blocks
                                                }
                                                None => multiply_cuboid_cpu(
                                                    cuboid, &a_view, &b_view, problem,
                                                )?,
                                            };
                                            let mut produced_out = Vec::with_capacity(blocks.len());
                                            for (id, dense) in blocks {
                                                ctx.alloc(dense.mem_bytes())?;
                                                store.install(
                                                    StoreKey::replica(c_uid, id, task as u32),
                                                    Arc::new(finish(Block::Dense(dense))),
                                                );
                                                produced_out.push(id);
                                            }
                                            Ok(produced_out)
                                        }
                                        TaskWork::Voxels(voxels) => {
                                            let acc =
                                                multiply_voxels(ctx, voxels, &a_view, &b_view)?;
                                            let mut produced_out = Vec::with_capacity(acc.len());
                                            for (id, blk) in acc {
                                                store.install(
                                                    StoreKey::replica(c_uid, id, task as u32),
                                                    Arc::new(finish(blk)),
                                                );
                                                produced_out.push(id);
                                            }
                                            Ok(produced_out)
                                        }
                                        TaskWork::MapRead | TaskWork::Aggregate(_) => {
                                            Ok(Vec::new())
                                        }
                                    }
                                }
                            }
                        })();
                        // Unblock the prefetch throttle whether we finished
                        // or failed; the scope joins it before returning.
                        compute_pos.store(usize::MAX, Ordering::Release);
                        result
                    })?;

                    {
                        let mut set = produced.lock().expect("produced set");
                        for &id in &produced_ids {
                            set.insert((id, task as u32));
                        }
                    }
                    if !mult_done[task].swap(true, Ordering::AcqRel) {
                        for &j in &consumers[task] {
                            if remaining[j].fetch_sub(1, Ordering::AcqRel) == 1 {
                                gate.mark_ready(agg_base + j);
                            }
                        }
                    }
                    Ok(FusedOut::Mult(produced_ids))
                }
                FusedWork::Agg {
                    node,
                    moves,
                    groups,
                } => {
                    // Every producer has finished (gating invariant), so the
                    // planned copies are installed at their sources; the
                    // fetches stream while other mult tasks still run.
                    for mv in moves.iter() {
                        let t0 = Instant::now();
                        let payload = transport.execute(mv, ctx.attempt);
                        comm_micros.fetch_add(micros_since(t0), Ordering::Relaxed);
                        let payload = payload?;
                        ctx.alloc(payload)?;
                        ctx.free(payload);
                    }
                    let store = stores.node(node);
                    let out = reduce_groups(
                        ctx,
                        store,
                        node,
                        c_uid,
                        groups.as_ref().clone(),
                        &|id, copy| produced.lock().expect("produced set").contains(&(id, copy)),
                    )?;
                    Ok(FusedOut::Agg(out))
                }
            }
        },
    )?;
    let fused_secs = fused_timer.elapsed().as_secs_f64() + run.backoff_secs;

    // ------------- Result assembly ---------------------------------------
    let mut mult_outputs: Vec<Vec<BlockId>> = Vec::with_capacity(mult_n);
    let mut agg_outputs: Vec<Vec<(BlockId, Block)>> = Vec::new();
    for out in run.outputs {
        match out {
            FusedOut::Mult(ids) => mult_outputs.push(ids),
            FusedOut::Agg(blocks) => agg_outputs.push(blocks),
            FusedOut::Done => {}
        }
    }
    let mut c = BlockMatrix::new(problem.c);
    if needs_agg {
        for (id, blk) in agg_outputs.into_iter().flatten() {
            if blk.nnz() > 0 {
                put_block(&mut c, id, Arc::new(blk))?;
            }
        }
    } else {
        // R = 1: every intermediate copy is final; collect each task's
        // locally-installed outputs.
        for (t, ids) in mult_outputs.into_iter().enumerate() {
            let store = stores.node(mult_stage.tasks[t].node);
            for id in ids {
                let blk = store
                    .get(&StoreKey::replica(c_uid, id, t as u32))
                    .expect("a task's own installs are resident");
                if blk.nnz() > 0 {
                    put_block(&mut c, id, blk)?;
                }
            }
        }
    }

    // Same residency epilogue as the barrier path.
    stores.evict_matrix(c_uid);
    for (id, blk) in c.blocks_shared() {
        let key = StoreKey::operand(c.uid(), id);
        stores.ingest(
            crate::plan::operand_home(Operand::A, id, nodes),
            key,
            Arc::clone(&blk),
        );
        stores.ingest(crate::plan::operand_home(Operand::B, id, nodes), key, blk);
    }
    stores.touch(c.uid());
    stores.evict_stale(RESIDENCY_WINDOW_JOBS);
    // Same coded-replication epilogue as the barrier path.
    let parity_blocks_encoded = parity_blocks_encoded + cluster.encode_parity(c.uid());

    // ------------- Statistics --------------------------------------------
    // Bytes come from the shared routing-view accumulators — identical to
    // the barrier path. Time splits by *where it was spent*: stalled
    // communication reports as repartition, everything else the fused
    // window did (compute + hidden communication) as local mult;
    // aggregation's fetches and reduces ran inside the window, so its
    // phase keeps bytes but no wall time of its own.
    let comm_secs = comm_micros.load(Ordering::Relaxed) as f64 / 1e6;
    let stall_secs = (stall_micros.load(Ordering::Relaxed) as f64 / 1e6).min(fused_secs);
    let overlap_ratio = if comm_secs > 0.0 {
        Some(((comm_secs - stall_secs) / comm_secs).clamp(0.0, 1.0))
    } else {
        None
    };
    let rep = Phase::Repartition.index();
    let agg_i = Phase::Aggregation.index();
    let mut stats = JobStats {
        elapsed_secs: prep_secs + fused_secs,
        peak_task_mem_bytes: run.peak_task_mem_bytes,
        intermediate_bytes: model_shuffle[rep] + model_shuffle[agg_i],
        gpu_utilization: None,
        transport_payload_bytes: job_transport.payload_bytes(),
        retries: run.retries,
        redelivered_moves: job_transport.redelivered(),
        retransmitted_payload_bytes: job_transport.retransmitted_bytes(),
        overlap_ratio,
        prefetch_hits: hits.load(Ordering::Relaxed),
        prefetch_stalls: stalls.load(Ordering::Relaxed),
        parity_blocks_encoded,
        reconstructed_blocks: job_transport.reconstructed(),
        reconstruction_payload_bytes: job_transport.reconstruction_bytes(),
        ..Default::default()
    };
    *stats.phase_mut(Phase::Repartition) = PhaseStats {
        secs: prep_secs + stall_secs,
        shuffle_bytes: model_shuffle[rep],
        cross_node_bytes: model_cross[rep],
        broadcast_bytes: model_broadcast[rep],
        tasks: plan.stage(Phase::Repartition).map_or(0, |s| s.tasks.len()),
    };
    *stats.phase_mut(Phase::LocalMult) = PhaseStats {
        secs: (fused_secs - stall_secs).max(0.0),
        shuffle_bytes: 0,
        cross_node_bytes: 0,
        broadcast_bytes: 0,
        tasks: mult_n,
    };
    *stats.phase_mut(Phase::Aggregation) = PhaseStats {
        secs: 0.0,
        shuffle_bytes: model_shuffle[agg_i],
        cross_node_bytes: model_cross[agg_i],
        broadcast_bytes: 0,
        tasks: plan.stage(Phase::Aggregation).map_or(0, |s| s.tasks.len()),
    };
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuboid::CuboidSpec;
    use distme_cluster::ClusterConfig;
    use distme_matrix::{MatrixGenerator, MatrixMeta};

    fn cluster() -> LocalCluster {
        LocalCluster::new(ClusterConfig::laptop())
    }

    fn operands(bs: u64, sparsity: f64) -> (BlockMatrix, BlockMatrix, BlockMatrix) {
        let am = MatrixMeta::sparse(5 * bs, 4 * bs, sparsity).with_block_size(bs);
        let bm = MatrixMeta::sparse(4 * bs, 3 * bs, sparsity).with_block_size(bs);
        let a = MatrixGenerator::with_seed(11).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(22).generate(&bm).unwrap();
        let reference = a.multiply(&b).unwrap();
        (a, b, reference)
    }

    #[test]
    fn every_method_streams_the_reference_product() {
        let (a, b, reference) = operands(16, 1.0);
        for method in [
            MulMethod::Bmm,
            MulMethod::Cpmm,
            MulMethod::Rmm,
            MulMethod::CuboidAuto,
            MulMethod::Cuboid(CuboidSpec::new(2, 2, 2)),
            MulMethod::Crmm,
        ] {
            let c = cluster();
            let (prod, _) = multiply_pipelined(&c, &a, &b, method)
                .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()));
            let diff = prod.max_abs_diff(&reference).unwrap();
            assert!(diff < 1e-9, "{}: diff {diff}", method.name());
        }
    }

    #[test]
    fn streamed_bits_match_the_barrier_path_exactly() {
        let (a, b, _) = operands(16, 1.0);
        for method in [MulMethod::Cpmm, MulMethod::CuboidAuto, MulMethod::Rmm] {
            let barrier = real_exec::multiply(&cluster(), &a, &b, method).unwrap().0;
            let streamed = multiply_pipelined(&cluster(), &a, &b, method).unwrap().0;
            assert_eq!(
                streamed.max_abs_diff(&barrier).unwrap(),
                0.0,
                "{} must be bit-identical",
                method.name()
            );
        }
    }

    #[test]
    fn pipelined_runs_report_overlap_and_prefetch_counters() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, stats) = multiply_pipelined(&c, &a, &b, MulMethod::Cpmm).unwrap();
        let ratio = stats.overlap_ratio.expect("pipelined jobs report overlap");
        assert!((0.0..=1.0).contains(&ratio));
        assert!(
            stats.prefetch_hits + stats.prefetch_stalls > 0,
            "every panel is either a hit or a stall"
        );
        // Barrier runs must not pretend to overlap.
        let c = cluster();
        let (_, stats) = real_exec::multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        assert_eq!(stats.overlap_ratio, None);
    }

    #[test]
    fn pipelined_ledger_matches_barrier_model_bytes() {
        let (a, b, _) = operands(16, 1.0);
        for method in [MulMethod::Cpmm, MulMethod::CuboidAuto, MulMethod::Crmm] {
            let cb = cluster();
            let (_, barrier) = real_exec::multiply(&cb, &a, &b, method).unwrap();
            let cp = cluster();
            let (_, streamed) = multiply_pipelined(&cp, &a, &b, method).unwrap();
            for phase in Phase::ALL {
                assert_eq!(
                    cb.ledger().shuffle_bytes(phase),
                    cp.ledger().shuffle_bytes(phase),
                    "{} ledger parity in {}",
                    method.name(),
                    phase.label()
                );
                assert_eq!(
                    barrier.phase(phase).shuffle_bytes,
                    streamed.phase(phase).shuffle_bytes,
                    "{} stats parity in {}",
                    method.name(),
                    phase.label()
                );
                assert_eq!(
                    barrier.phase(phase).cross_node_bytes,
                    streamed.phase(phase).cross_node_bytes,
                );
                assert_eq!(
                    barrier.phase(phase).broadcast_bytes,
                    streamed.phase(phase).broadcast_bytes,
                );
            }
        }
    }

    #[test]
    fn gpu_schedule_streams_bit_identically_too() {
        let (a, b, _) = operands(16, 1.0);
        let opts = RealExecOptions {
            gpu_task_mem_bytes: Some(40_000),
            ..Default::default()
        };
        let barrier = real_exec::multiply_with(&cluster(), &a, &b, MulMethod::CuboidAuto, opts)
            .unwrap()
            .0;
        let streamed = real_exec::multiply_with(
            &cluster(),
            &a,
            &b,
            MulMethod::CuboidAuto,
            RealExecOptions {
                pipelined: true,
                ..opts
            },
        )
        .unwrap()
        .0;
        assert_eq!(streamed.max_abs_diff(&barrier).unwrap(), 0.0);
    }
}
